// F1 — Figure 1 end to end: lift the three substrate relational databases
// into the universe, define the unified view U and the customized views
// D'_i, materialize, and verify the round-trip equivalences (dbE == euter,
// dbC == chwab, dbO == ource). This is the paper's architecture diagram as
// a single measured pipeline.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace {

using idl_bench::MakeWorkload;

void RunPipeline(benchmark::State& state, idl::EvalSubstrate substrate) {
  size_t stocks = state.range(0);
  size_t days = state.range(1);
  idl::StockWorkload w = MakeWorkload(stocks, days);
  idl::RelationalDatabase euter = BuildEuterDatabase(w);
  idl::RelationalDatabase chwab = BuildChwabDatabase(w);
  idl::RelationalDatabase ource = BuildOurceDatabase(w);

  for (auto _ : state) {
    idl::Session session;
    idl::EvalOptions materialize;
    materialize.substrate = substrate;
    session.set_materialize_options(materialize);
    IDL_BENCH_CHECK(session.RegisterDatabase(euter).ok());
    IDL_BENCH_CHECK(session.RegisterDatabase(chwab).ok());
    IDL_BENCH_CHECK(session.RegisterDatabase(ource).ok());
    IDL_BENCH_CHECK(session.DefineRules(idl::PaperViewRules()).ok());
    auto u = session.universe();
    IDL_BENCH_CHECK(u.ok());
    const idl::Value& universe = **u;
    IDL_BENCH_CHECK(*universe.FindField("dbE")->FindField("r") ==
                    *universe.FindField("euter")->FindField("r"));
    IDL_BENCH_CHECK(*universe.FindField("dbC")->FindField("r") ==
                    *universe.FindField("chwab")->FindField("r"));
    IDL_BENCH_CHECK(*universe.FindField("dbO") ==
                    *universe.FindField("ource"));
  }
  state.counters["base_facts"] = static_cast<double>(stocks * days);
  state.counters["facts_per_sec"] = benchmark::Counter(
      static_cast<double>(stocks * days),
      benchmark::Counter::kIsIterationInvariantRate);
}

void BM_Fig1_Pipeline(benchmark::State& state) {
  RunPipeline(state, idl::EvalSubstrate::kColumnar);
}
BENCHMARK(BM_Fig1_Pipeline)
    ->Args({3, 4})    // the paper's toy scale
    ->Args({8, 20})
    ->Args({16, 40})
    ->Unit(benchmark::kMillisecond);

// The same pipeline forced through the tuple-at-a-time substrate. CI's
// release bench smoke asserts the columnar 16/40 point is >= 2x faster
// (docs/COLUMNAR.md).
void BM_Fig1_Pipeline_Nested(benchmark::State& state) {
  RunPipeline(state, idl::EvalSubstrate::kNested);
}
BENCHMARK(BM_Fig1_Pipeline_Nested)
    ->Args({3, 4})
    ->Args({8, 20})
    ->Args({16, 40})
    ->Unit(benchmark::kMillisecond);

}  // namespace

IDL_BENCH_MAIN()
