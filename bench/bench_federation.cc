// Federation layer benchmarks (src/federation): gateway fetch paths on
// universes hosted across autonomous sites.
//
// Families:
//  - FetchAllWarm/*: pull-everything fetch with hot per-site caches — the
//    steady-state cost of a metadata query (`?.X.Y`) against an unchanged
//    federation.
//  - FetchAllCold/*: the same fetch after a write-back invalidated one
//    site, so its export is re-pulled and re-lowered.
//  - ShipRestricted/*: a first-order subgoal shipped as a pushed-down
//    selection versus pulling the site's full export — the payoff of the
//    ship planner on selective queries.
//  - FanOutLatency/*: fetch across sites with simulated per-request
//    latency, fetch_workers=1 (serial) vs 4 (parallel fan-out).
//
// Accepts `--json <path>` (see bench_util.h) for machine-readable output.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "federation/gateway.h"
#include "federation/ship.h"
#include "federation/site.h"

namespace {

using idl::BuildStockUniverse;
using idl::Gateway;
using idl::LocalSite;
using idl::PlanQuery;
using idl::Query;
using idl::ShipPlan;
using idl::SimulatedRemoteSite;
using idl::Value;

// Builds a gateway hosting each universe field on its own LocalSite,
// optionally wrapped in a SimulatedRemoteSite with fixed latency.
std::shared_ptr<Gateway> MakeGateway(const Value& universe,
                                     Gateway::Options options,
                                     int latency_ms = 0) {
  auto gateway = std::make_shared<Gateway>(options);
  for (const auto& field : universe.fields()) {
    std::unique_ptr<idl::Site> site =
        std::make_unique<LocalSite>(field.name, field.value);
    if (latency_ms > 0) {
      auto remote = std::make_unique<SimulatedRemoteSite>(std::move(site));
      remote->set_latency_ms(latency_ms);
      site = std::move(remote);
    }
    IDL_BENCH_CHECK(gateway->AddSite(std::move(site)).ok());
  }
  return gateway;
}

Value StockUniverse(size_t stocks, size_t days) {
  return BuildStockUniverse(idl_bench::MakeWorkload(stocks, days));
}

// ---- Warm and cold full fetches --------------------------------------------

void BM_FetchAllWarm(benchmark::State& state) {
  Value universe = StockUniverse(static_cast<size_t>(state.range(0)), 30);
  auto gateway = MakeGateway(universe, Gateway::Options());
  IDL_BENCH_CHECK(gateway->FetchAll().ok());  // prime the caches
  for (auto _ : state) {
    auto fetch = gateway->FetchAll();
    IDL_BENCH_CHECK(fetch.ok());
    benchmark::DoNotOptimize(fetch->site_databases);
  }
}
BENCHMARK(BM_FetchAllWarm)->Arg(10)->Arg(100)->Arg(400);

void BM_FetchAllCold(benchmark::State& state) {
  Value universe = StockUniverse(static_cast<size_t>(state.range(0)), 30);
  auto gateway = MakeGateway(universe, Gateway::Options());
  const Value& euter = *universe.FindField("euter");
  for (auto _ : state) {
    // Write-back invalidates euter's cache; the fetch re-pulls its export.
    IDL_BENCH_CHECK(gateway->WriteSite("euter", euter).ok());
    auto fetch = gateway->FetchAll();
    IDL_BENCH_CHECK(fetch.ok());
    benchmark::DoNotOptimize(fetch->site_databases);
  }
}
BENCHMARK(BM_FetchAllCold)->Arg(10)->Arg(100)->Arg(400);

// ---- Shipped selection vs full pull ----------------------------------------

void ShipBench(benchmark::State& state, const std::string& query_text) {
  Value universe = StockUniverse(static_cast<size_t>(state.range(0)), 30);
  auto gateway = MakeGateway(universe, Gateway::Options());
  Query query = idl_bench::MustQuery(query_text);
  ShipPlan plan = PlanQuery(query, gateway->SiteNames());
  uint64_t shipped = 0;
  for (auto _ : state) {
    auto fetch = gateway->Fetch(plan);
    IDL_BENCH_CHECK(fetch.ok());
    benchmark::DoNotOptimize(fetch->site_databases);
  }
  for (const auto& stats : gateway->Stats()) {
    shipped += stats.shipped_subgoals;
  }
  state.counters["shipped"] = static_cast<double>(shipped);
}

void BM_ShipRestricted(benchmark::State& state) {
  // Selective point lookup: only matching rows cross the site boundary.
  ShipBench(state, "?.euter.r(.stkCode=stk0, .clsPrice=P)");
}
void BM_ShipUnrestrictedPull(benchmark::State& state) {
  // Relation-variable query: the planner must pull the whole export.
  ShipBench(state, "?.euter.Y(.clsPrice=P)");
}
BENCHMARK(BM_ShipRestricted)->Arg(10)->Arg(100)->Arg(400);
BENCHMARK(BM_ShipUnrestrictedPull)->Arg(10)->Arg(100)->Arg(400);

// ---- Parallel fan-out under latency ----------------------------------------

void FanOut(benchmark::State& state, size_t fetch_workers) {
  Value universe = StockUniverse(20, 10);
  Gateway::Options options;
  options.fetch_workers = fetch_workers;
  auto gateway = MakeGateway(universe, options, /*latency_ms=*/1);
  Value fresh = *universe.FindField("euter");
  for (auto _ : state) {
    // Invalidate every site so each fetch really crosses the boundary.
    state.PauseTiming();
    for (const auto& field : universe.fields()) {
      IDL_BENCH_CHECK(gateway->WriteSite(field.name, field.value).ok());
    }
    state.ResumeTiming();
    auto fetch = gateway->FetchAll();
    IDL_BENCH_CHECK(fetch.ok());
    benchmark::DoNotOptimize(fetch->site_databases);
  }
}

void BM_FanOutSerial(benchmark::State& state) { FanOut(state, 1); }
void BM_FanOutParallel(benchmark::State& state) { FanOut(state, 4); }
BENCHMARK(BM_FanOutSerial)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FanOutParallel)->Unit(benchmark::kMillisecond);

}  // namespace

IDL_BENCH_MAIN()
