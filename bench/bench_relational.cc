// B3: relational substrate characterization — scans, selections, hash
// joins, group-by, pivot/unpivot, and the adapter lift/lower crossings.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "relational/adapter.h"
#include "relational/algebra.h"
#include "relational/pivot.h"

namespace {

using idl_bench::MakeWorkload;

idl::RelationalDatabase Euter(size_t rows_per_stock) {
  return BuildEuterDatabase(MakeWorkload(10, rows_per_stock));
}

void BM_Scan(benchmark::State& state) {
  idl::RelationalDatabase db = Euter(state.range(0));
  const idl::Table& t = *db.FindTable("r");
  for (auto _ : state) {
    idl::ResultSet rs = ScanAll(t);
    benchmark::DoNotOptimize(rs.rows.data());
  }
  state.counters["rows"] = static_cast<double>(t.NumRows());
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(t.NumRows()),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_Scan)->Arg(10)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

void BM_Select(benchmark::State& state) {
  idl::RelationalDatabase db = Euter(state.range(0));
  idl::ResultSet all = ScanAll(*db.FindTable("r"));
  for (auto _ : state) {
    auto rs = Select(all, "clsPrice", idl::RelOp::kGt, idl::Value::Real(200));
    IDL_BENCH_CHECK(rs.ok());
  }
  state.counters["rows"] = static_cast<double>(all.rows.size());
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(all.rows.size()),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_Select)->Arg(10)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

void BM_HashJoin(benchmark::State& state) {
  idl::RelationalDatabase db = Euter(state.range(0));
  idl::ResultSet all = ScanAll(*db.FindTable("r"));
  for (auto _ : state) {
    auto rs = HashJoin(all, all, "date", "date");
    IDL_BENCH_CHECK(rs.ok());
    benchmark::DoNotOptimize(rs->rows.size());
  }
  state.counters["rows"] = static_cast<double>(all.rows.size());
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(all.rows.size()),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_HashJoin)->Arg(10)->Arg(50)->Arg(200)
    ->Unit(benchmark::kMicrosecond);

void BM_GroupBy(benchmark::State& state) {
  idl::RelationalDatabase db = Euter(state.range(0));
  idl::ResultSet all = ScanAll(*db.FindTable("r"));
  for (auto _ : state) {
    auto rs = GroupBy(all, {"stkCode"},
                      {idl::AggSpec{idl::AggFn::kMax, "clsPrice", "maxP"},
                       idl::AggSpec{idl::AggFn::kAvg, "clsPrice", "avgP"}});
    IDL_BENCH_CHECK(rs.ok() && rs->rows.size() == 10);
  }
  state.counters["rows"] = static_cast<double>(all.rows.size());
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(all.rows.size()),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_GroupBy)->Arg(10)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

void BM_PivotOp(benchmark::State& state) {
  idl::RelationalDatabase db = Euter(state.range(0));
  const idl::Table& t = *db.FindTable("r");
  for (auto _ : state) {
    auto p = Pivot(t, "date", "stkCode", "clsPrice");
    IDL_BENCH_CHECK(p.ok());
  }
  state.counters["rows"] = static_cast<double>(t.NumRows());
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(t.NumRows()),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_PivotOp)->Arg(10)->Arg(100)->Arg(500)
    ->Unit(benchmark::kMicrosecond);

void BM_AdapterLift(benchmark::State& state) {
  idl::RelationalDatabase db = Euter(state.range(0));
  for (auto _ : state) {
    idl::Value lifted = LiftDatabase(db);
    benchmark::DoNotOptimize(lifted.TupleSize());
  }
  state.counters["rows"] = static_cast<double>(10 * state.range(0));
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(10 * state.range(0)),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_AdapterLift)->Arg(10)->Arg(100)->Arg(500)
    ->Unit(benchmark::kMicrosecond);

void BM_AdapterLower(benchmark::State& state) {
  idl::RelationalDatabase db = Euter(state.range(0));
  idl::Value lifted = LiftDatabase(db);
  for (auto _ : state) {
    auto lowered = LowerDatabase("euter", lifted);
    IDL_BENCH_CHECK(lowered.ok());
  }
  state.counters["rows"] = static_cast<double>(10 * state.range(0));
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(10 * state.range(0)),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_AdapterLower)->Arg(10)->Arg(100)->Arg(500)
    ->Unit(benchmark::kMicrosecond);

void BM_IndexedProbeVsScan(benchmark::State& state) {
  idl::RelationalDatabase db = Euter(state.range(0));
  idl::Table* t = db.FindTable("r");
  IDL_BENCH_CHECK(t->CreateIndex("stkCode").ok());
  idl::Value key = idl::Value::String("stk7");
  for (auto _ : state) {
    auto hits = t->Probe("stkCode", key);
    IDL_BENCH_CHECK(hits.ok());
    benchmark::DoNotOptimize(hits->size());
  }
  state.counters["rows"] = static_cast<double>(t->NumRows());
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(t->NumRows()),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_IndexedProbeVsScan)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

IDL_BENCH_MAIN()
