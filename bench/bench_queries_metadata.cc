// Q5/Q7: metadata queries — quantifying over database and relation names —
// as the schema (not the data) grows. These are the queries that are simply
// *inexpressible* in a first-order language; cost here scales with the
// number of schema elements, not tuples.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace {

using idl_bench::MakeWorkload;
using idl_bench::MustQuery;
using idl_bench::RunQuery;

void BM_Q5_ListDatabases(benchmark::State& state) {
  idl::StockWorkload w = MakeWorkload(state.range(0), 5);
  idl::Value universe = BuildStockUniverse(w);
  idl::Query q = MustQuery("?.X");
  for (auto _ : state) {
    size_t rows = RunQuery(universe, q);
    IDL_BENCH_CHECK(rows == 3);
  }
}
BENCHMARK(BM_Q5_ListDatabases)->Arg(8)->Arg(64)->Arg(512)
    ->Unit(benchmark::kMicrosecond);

void BM_Q5_ListRelations(benchmark::State& state) {
  idl::StockWorkload w = MakeWorkload(state.range(0), 5);
  idl::Value universe = BuildStockUniverse(w);
  idl::Query q = MustQuery("?.X.Y");
  size_t rows = 0;
  for (auto _ : state) rows = RunQuery(universe, q);
  // euter.r, chwab.r, and one relation per stock in ource.
  IDL_BENCH_CHECK(rows == 2 + static_cast<size_t>(state.range(0)));
  state.counters["schema_elements"] = static_cast<double>(rows);
}
BENCHMARK(BM_Q5_ListRelations)->Arg(8)->Arg(64)->Arg(512)
    ->Unit(benchmark::kMicrosecond);

void BM_Q5_DatabasesContainingRelation(benchmark::State& state) {
  idl::StockWorkload w = MakeWorkload(state.range(0), 5);
  idl::Value universe = BuildStockUniverse(w);
  idl::Query q = MustQuery("?.X.stk0");
  for (auto _ : state) {
    size_t rows = RunQuery(universe, q);
    IDL_BENCH_CHECK(rows == 1);  // only ource has a relation named stk0
  }
}
BENCHMARK(BM_Q5_DatabasesContainingRelation)->Arg(8)->Arg(64)->Arg(512)
    ->Unit(benchmark::kMicrosecond);

void BM_Q5_RelationsWithAttribute(benchmark::State& state) {
  idl::StockWorkload w = MakeWorkload(state.range(0), 5);
  idl::Value universe = BuildStockUniverse(w);
  idl::Query q = MustQuery("?.X.Y(.stkCode)");
  for (auto _ : state) {
    size_t rows = RunQuery(universe, q);
    IDL_BENCH_CHECK(rows == 1);  // euter.r
  }
}
BENCHMARK(BM_Q5_RelationsWithAttribute)->Arg(8)->Arg(64)->Arg(512)
    ->Unit(benchmark::kMicrosecond);

void BM_Q7_RelationsInAllDatabases(benchmark::State& state) {
  idl::StockWorkload w = MakeWorkload(state.range(0), 5);
  idl::Value universe = BuildStockUniverse(w);
  idl::Query q = MustQuery("?.euter.Y, .chwab.Y, .ource.Y");
  for (auto _ : state) {
    size_t rows = RunQuery(universe, q);
    IDL_BENCH_CHECK(rows == 0);  // r is not an ource relation
  }
}
BENCHMARK(BM_Q7_RelationsInAllDatabases)->Arg(8)->Arg(64)->Arg(512)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

IDL_BENCH_MAIN()
