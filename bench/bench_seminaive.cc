// Naive vs semi-naive fixpoint evaluation (views/engine.h).
//
// Two workload families:
//  - PaperPipeline/*: the full Figure-1 rule stack (non-recursive) on
//    growing stock universes — both strategies do one derivation pass per
//    level, so this measures the delta bookkeeping overhead on the workload
//    where semi-naive cannot win.
//  - DateChainTC/*: per-stock transitive closure over next-trading-day
//    chains (recursive) — the naive engine re-derives the whole closure
//    every pass, the semi-naive engine only extends the frontier. This is
//    where the delta strategy earns its keep.
//
// The /parallel variants use materialize_parallelism=0 (auto); on a
// single-core host they measure the thread-pool overhead, not a speedup.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "views/engine.h"

namespace {

using idl::EvalOptions;
using idl::EvalStrategy;
using idl::ParseRule;
using idl::Value;
using idl::ViewEngine;

ViewEngine EngineFor(const std::vector<std::string>& rule_texts) {
  ViewEngine engine;
  for (const auto& text : rule_texts) {
    auto r = ParseRule(text);
    IDL_BENCH_CHECK(r.ok());
    IDL_BENCH_CHECK(engine.AddRule(std::move(r).value()).ok());
  }
  return engine;
}

void RunMaterialize(benchmark::State& state, const ViewEngine& engine,
                    const Value& universe, EvalStrategy strategy,
                    size_t parallelism) {
  EvalOptions options;
  options.strategy = strategy;
  options.materialize_parallelism = parallelism;
  uint64_t facts = 0;
  uint64_t skipped = 0;
  for (auto _ : state) {
    auto m = engine.Materialize(universe, options);
    IDL_BENCH_CHECK(m.ok());
    facts = m->facts_derived;
    skipped = m->substitutions_skipped;
    benchmark::DoNotOptimize(m->universe);
  }
  state.counters["facts"] = static_cast<double>(facts);
  state.counters["skipped"] = static_cast<double>(skipped);
}

// ---- Non-recursive: the paper pipeline on growing universes ----------------

void PaperPipeline(benchmark::State& state, EvalStrategy strategy,
                   size_t parallelism) {
  size_t stocks = static_cast<size_t>(state.range(0));
  idl::StockWorkload w = idl_bench::MakeWorkload(stocks, 30);
  Value universe = idl::BuildStockUniverse(w);
  ViewEngine engine = EngineFor(idl::PaperViewRules());
  RunMaterialize(state, engine, universe, strategy, parallelism);
}

void BM_PaperPipeline_Naive(benchmark::State& state) {
  PaperPipeline(state, EvalStrategy::kNaive, 1);
}
void BM_PaperPipeline_SemiNaive(benchmark::State& state) {
  PaperPipeline(state, EvalStrategy::kSemiNaive, 1);
}
void BM_PaperPipeline_SemiNaiveParallel(benchmark::State& state) {
  PaperPipeline(state, EvalStrategy::kSemiNaive, 0);
}
BENCHMARK(BM_PaperPipeline_Naive)->Arg(10)->Arg(100)->Arg(400);
BENCHMARK(BM_PaperPipeline_SemiNaive)->Arg(10)->Arg(100)->Arg(400);
BENCHMARK(BM_PaperPipeline_SemiNaiveParallel)->Arg(10)->Arg(100)->Arg(400);

// ---- Recursive: reachability along each stock's trading-day chain ----------
//
// ource-style schematic shape: one base relation per stock (succ.<stk>)
// holding that stock's next-trading-day edges, and a higher-order closure
// rule deriving one reach.<stk> relation per stock. The fixpoint runs
// chain-length passes; the naive engine re-derives every closure fact on
// every pass, the semi-naive engine only extends each stock's frontier.

Value ChainUniverse(size_t stocks, size_t days) {
  idl::StockWorkload w = idl_bench::MakeWorkload(stocks, days);
  Value succ = Value::EmptyTuple();
  for (size_t s = 0; s < w.stocks.size(); ++s) {
    Value rel = Value::EmptySet();
    for (size_t d = 0; d + 1 < w.dates.size(); ++d) {
      Value e = Value::EmptyTuple();
      e.SetField("from", Value::Of(w.dates[d]));
      e.SetField("to", Value::Of(w.dates[d + 1]));
      rel.Insert(std::move(e));
    }
    succ.SetField(w.stocks[s], std::move(rel));
  }
  Value universe = Value::EmptyTuple();
  universe.SetField("succ", std::move(succ));
  return universe;
}

const std::vector<std::string>& ReachRules() {
  static const auto& kRules = *new std::vector<std::string>{
      ".reach.S(.from=X, .to=Y) <- .succ.S(.from=X, .to=Y)",
      ".reach.S(.from=X, .to=Z) <- "
      ".reach.S(.from=X, .to=Y), .succ.S(.from=Y, .to=Z)",
  };
  return kRules;
}

void DateChainTC(benchmark::State& state, EvalStrategy strategy,
                 size_t parallelism) {
  size_t stocks = static_cast<size_t>(state.range(0));
  size_t days = static_cast<size_t>(state.range(1));
  Value universe = ChainUniverse(stocks, days);
  ViewEngine engine = EngineFor(ReachRules());
  RunMaterialize(state, engine, universe, strategy, parallelism);
}

void BM_DateChainTC_Naive(benchmark::State& state) {
  DateChainTC(state, EvalStrategy::kNaive, 1);
}
void BM_DateChainTC_SemiNaive(benchmark::State& state) {
  DateChainTC(state, EvalStrategy::kSemiNaive, 1);
}
void BM_DateChainTC_SemiNaiveParallel(benchmark::State& state) {
  DateChainTC(state, EvalStrategy::kSemiNaive, 0);
}
#define TC_ARGS \
  Args({10, 16})->Args({100, 16})->Args({1000, 16})->Args({10, 64})
BENCHMARK(BM_DateChainTC_Naive)->TC_ARGS->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DateChainTC_SemiNaive)->TC_ARGS->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DateChainTC_SemiNaiveParallel)
    ->TC_ARGS->Unit(benchmark::kMillisecond);

}  // namespace

IDL_BENCH_MAIN()
