// U-series: throughput of the §5 update expressions — set insert/delete
// pairs, query-dependent deletes, atomic nulling, attribute
// creation/deletion — against each schema shape.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "update/applier.h"

namespace {

using idl_bench::MakeWorkload;
using idl_bench::MustQuery;

void ApplyOrDie(idl::Value* universe, const idl::Query& q) {
  auto r = ApplyUpdateRequest(universe, q);
  IDL_BENCH_CHECK(r.ok());
}

// Insert+delete of the same euter tuple: net-zero pair throughput.
void BM_U1_InsertDeletePair_Euter(benchmark::State& state) {
  idl::StockWorkload w = MakeWorkload(10, state.range(0));
  idl::Value universe = BuildStockUniverse(w);
  idl::Query ins =
      MustQuery("?.euter.r+(.date=9/9/99,.stkCode=zzz,.clsPrice=1)");
  idl::Query del = MustQuery("?.euter.r-(.date=9/9/99,.stkCode=zzz)");
  for (auto _ : state) {
    ApplyOrDie(&universe, ins);
    ApplyOrDie(&universe, del);
  }
  state.counters["relation_rows"] =
      static_cast<double>(10 * state.range(0));
}
BENCHMARK(BM_U1_InsertDeletePair_Euter)->Arg(10)->Arg(100)->Arg(500)
    ->Unit(benchmark::kMicrosecond);

// U2: query-dependent delete + reinsert (the delete must first bind C).
void BM_U2_QueryDependentRoundTrip(benchmark::State& state) {
  idl::StockWorkload w = MakeWorkload(10, state.range(0));
  idl::Value universe = BuildStockUniverse(w);
  std::string date = w.dates[0].ToString();
  idl::Query cycle = MustQuery(
      "?.euter.r-(.date=" + date + ",.stkCode=stk0,.clsPrice=C),"
      ".euter.r+(.date=" + date + ",.stkCode=stk0,.clsPrice=C)");
  for (auto _ : state) ApplyOrDie(&universe, cycle);
}
BENCHMARK(BM_U2_QueryDependentRoundTrip)->Arg(10)->Arg(100)->Arg(500)
    ->Unit(benchmark::kMicrosecond);

// U3: atomic null / rewrite of a chwab cell (one row among many, one
// attribute among many).
void BM_U3_AtomicCellUpdate_Chwab(benchmark::State& state) {
  idl::StockWorkload w = MakeWorkload(state.range(0), 50);
  idl::Value universe = BuildStockUniverse(w);
  std::string date = w.dates[7].ToString();
  idl::Query null_it =
      MustQuery("?.chwab.r(.date=" + date + ", .stk0-=X)");
  idl::Query restore =
      MustQuery("?.chwab.r(.date=" + date + ", .stk0+=55)");
  for (auto _ : state) {
    ApplyOrDie(&universe, null_it);
    ApplyOrDie(&universe, restore);
  }
  state.counters["attrs"] = static_cast<double>(state.range(0) + 1);
}
BENCHMARK(BM_U3_AtomicCellUpdate_Chwab)->Arg(4)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMicrosecond);

// U4: the delete-then-insert composition with arithmetic (price += 1,
// then -= 1 to stay net-zero across iterations).
void BM_U4_DeleteInsertComposition(benchmark::State& state) {
  idl::StockWorkload w = MakeWorkload(8, state.range(0));
  idl::Value universe = BuildStockUniverse(w);
  std::string date = w.dates[0].ToString();
  idl::Query up = MustQuery(
      "?.chwab.r-(.date=" + date + ",.stk0=C), "
      ".chwab.r+(.date=" + date + ",.stk0=C+1)");
  idl::Query down = MustQuery(
      "?.chwab.r-(.date=" + date + ",.stk0=C), "
      ".chwab.r+(.date=" + date + ",.stk0=C-1)");
  for (auto _ : state) {
    ApplyOrDie(&universe, up);
    ApplyOrDie(&universe, down);
  }
}
BENCHMARK(BM_U4_DeleteInsertComposition)->Arg(10)->Arg(100)
    ->Unit(benchmark::kMicrosecond);

// Metadata update: create + drop a relation in ource.
void BM_RelationCreateDrop_Ource(benchmark::State& state) {
  idl::StockWorkload w = MakeWorkload(state.range(0), 10);
  idl::Value universe = BuildStockUniverse(w);
  idl::Query create = MustQuery("?.ource+.zzz");
  idl::Query fill = MustQuery("?.ource.zzz+(.date=9/9/99,.clsPrice=1)");
  idl::Query drop = MustQuery("?.ource-.zzz");
  for (auto _ : state) {
    ApplyOrDie(&universe, create);
    ApplyOrDie(&universe, fill);
    ApplyOrDie(&universe, drop);
  }
  state.counters["relations"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_RelationCreateDrop_Ource)->Arg(4)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

IDL_BENCH_MAIN()
