// Incremental view maintenance vs full rematerialization (views/engine.h
// ApplyDelta, docs/INCREMENTAL.md) on interleaved update/query traces.
//
// Each iteration is one trace step against a live Session: an update
// request lands in euter, then a query forces the view cache current. Under
// MaintenanceMode::kIncremental the session propagates the update's delta
// into the retained materialization (insertions semi-naively, deletions by
// delete-and-rederive); under kRematerialize it rebuilds every view from
// scratch — so the ratio of the two /N timings is the maintenance speedup
// at N stocks.
//
// Two trace shapes:
//  - AppendTrace/*: fresh quotes only (the stock-ticker workload) — the
//    pure-insertion fast path, where maintenance cost tracks the delta,
//    not the universe.
//  - ChurnTrace/*: three appends, then a deletion — the deletion routes
//    through delete-and-rederive, which for this rule stack re-derives
//    every affected stratum, so churn measures the blended win.
//
// The rule stack is the paper's unified view dbI.p plus the dbE and dbO
// customized views (dbO with a higher-order relation-name head). dbC's
// higher-order *attribute* head is deliberately absent: its absorb-fold is
// order-dependent, so insertions beneath it reroute through
// delete-and-rederive (see docs/INCREMENTAL.md) and would measure DRed
// twice.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "idl/session.h"
#include "object/date.h"

namespace {

using idl::MaintenanceMode;
using idl::StockWorkload;

std::vector<std::string> BenchViewRules() {
  return {
      ".dbI.p(.date=D, .stk=S, .clsPrice=P) <- "
      ".euter.r(.date=D, .stkCode=S, .clsPrice=P)",
      ".dbI.p(.date=D, .stk=S, .clsPrice=P) <- "
      ".chwab.r(.date=D, .S=P), S != date",
      ".dbI.p(.date=D, .stk=S, .clsPrice=P) <- "
      ".ource.S(.date=D, .clsPrice=P)",
      ".dbE.r(.date=D, .stkCode=S, .clsPrice=P) <- "
      ".dbI.p(.date=D, .stk=S, .clsPrice=P)",
      ".dbO.S(.date=D, .clsPrice=P) <- .dbI.p(.date=D, .stk=S, .clsPrice=P)",
  };
}

struct TraceSession {
  idl::Session session;
  std::vector<std::string> stocks;
  int64_t next_day = 0;
  uint64_t step = 0;

  void SetUp(size_t stocks_count, MaintenanceMode mode) {
    StockWorkload w = idl_bench::MakeWorkload(stocks_count, 30);
    IDL_BENCH_CHECK(session.RegisterDatabase(BuildEuterDatabase(w)).ok());
    IDL_BENCH_CHECK(session.RegisterDatabase(BuildChwabDatabase(w)).ok());
    IDL_BENCH_CHECK(session.RegisterDatabase(BuildOurceDatabase(w)).ok());
    IDL_BENCH_CHECK(session.DefineRules(BenchViewRules()).ok());
    idl::EvalOptions options;
    options.maintenance = mode;
    session.set_materialize_options(options);
    IDL_BENCH_CHECK(session.universe().ok());  // initial materialization
    stocks = w.stocks;
    next_day = w.dates.back().DayNumber() + 1;
  }

  // One fresh quote: a brand-new trading day for a round-robin stock.
  std::string AppendRequest() {
    const std::string& stk = stocks[step % stocks.size()];
    std::string date = idl::Date::FromDayNumber(next_day++).ToString();
    return "?.euter.r+(.date=" + date + ",.stkCode=" + stk +
           ",.clsPrice=" + std::to_string(100 + step % 400) + ")";
  }

  // Retract the oldest remaining appended quote (one row: appended days
  // carry exactly one stock each).
  std::string DeleteRequest(int64_t day) {
    return "?.euter.r-(.date=" + idl::Date::FromDayNumber(day).ToString() +
           ")";
  }

  void Apply(const std::string& request) {
    auto r = session.Update(request);
    IDL_BENCH_CHECK(r.ok());
  }

  size_t QueryUnifiedView() {
    auto a = session.Query("?.dbI.p(.stk=S, .clsPrice>450)");
    IDL_BENCH_CHECK(a.ok());
    ++step;
    return a->rows.size();
  }

  void ReportMaintenance(benchmark::State& state) const {
    const idl::Materialized* m = session.last_materialization();
    IDL_BENCH_CHECK(m != nullptr);
    state.counters["deltas"] =
        static_cast<double>(m->maintenance.deltas_applied);
    state.counters["fallbacks"] =
        static_cast<double>(m->maintenance.fallbacks);
    state.counters["strata_skipped"] =
        static_cast<double>(m->maintenance.strata_skipped);
  }
};

void AppendTrace(benchmark::State& state, MaintenanceMode mode) {
  TraceSession t;
  t.SetUp(static_cast<size_t>(state.range(0)), mode);
  size_t rows = 0;
  for (auto _ : state) {
    t.Apply(t.AppendRequest());
    rows += t.QueryUnifiedView();
  }
  benchmark::DoNotOptimize(rows);
  t.ReportMaintenance(state);
}

void BM_AppendTrace_Incremental(benchmark::State& state) {
  AppendTrace(state, MaintenanceMode::kIncremental);
}
void BM_AppendTrace_Rematerialize(benchmark::State& state) {
  AppendTrace(state, MaintenanceMode::kRematerialize);
}
BENCHMARK(BM_AppendTrace_Incremental)->Arg(100)->Arg(1000);
BENCHMARK(BM_AppendTrace_Rematerialize)->Arg(100)->Arg(1000);

void ChurnTrace(benchmark::State& state, MaintenanceMode mode) {
  TraceSession t;
  t.SetUp(static_cast<size_t>(state.range(0)), mode);
  int64_t oldest_appended = t.next_day;
  size_t rows = 0;
  for (auto _ : state) {
    if (t.step % 4 == 3 && oldest_appended < t.next_day) {
      t.Apply(t.DeleteRequest(oldest_appended++));
    } else {
      t.Apply(t.AppendRequest());
    }
    rows += t.QueryUnifiedView();
  }
  benchmark::DoNotOptimize(rows);
  t.ReportMaintenance(state);
}

void BM_ChurnTrace_Incremental(benchmark::State& state) {
  ChurnTrace(state, MaintenanceMode::kIncremental);
}
void BM_ChurnTrace_Rematerialize(benchmark::State& state) {
  ChurnTrace(state, MaintenanceMode::kRematerialize);
}
BENCHMARK(BM_ChurnTrace_Incremental)->Arg(100)->Arg(1000);
BENCHMARK(BM_ChurnTrace_Rematerialize)->Arg(100)->Arg(1000);

}  // namespace

IDL_BENCH_MAIN()
