// Ablation: equality-index acceleration in the matcher. Selections and
// joins over large relations probe a lazily-built per-query hash index
// instead of scanning; higher-order enumeration is unaffected. Expected
// shape: the indexed join is ~O(rows) while the scan join is ~O(rows^2).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace {

using idl_bench::MakeWorkload;
using idl_bench::MustQuery;

void RunWith(benchmark::State& state, const char* query_text,
             bool use_indexes,
             idl::EvalSubstrate substrate = idl::EvalSubstrate::kColumnar) {
  idl::StockWorkload w = MakeWorkload(10, state.range(0));
  idl::Value universe = BuildStockUniverse(w);
  idl::Query q = MustQuery(query_text);
  idl::EvalOptions options;
  options.use_indexes = use_indexes;
  options.substrate = substrate;
  idl::EvalStats stats;
  size_t result_rows = 0;
  for (auto _ : state) {
    auto a = EvaluateQuery(universe, q, options, &stats);
    IDL_BENCH_CHECK(a.ok());
    result_rows = a->rows.size();
    benchmark::DoNotOptimize(result_rows);
  }
  state.counters["rows"] = static_cast<double>(10 * state.range(0));
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(10 * state.range(0)),
      benchmark::Counter::kIsIterationInvariantRate);
  state.counters["scanned_per_iter"] =
      static_cast<double>(stats.set_elements_scanned) / state.iterations();
}

constexpr const char* kJoin =
    "?.euter.r(.stkCode=stk0,.clsPrice=P1,.date=D),"
    ".euter.r(.stkCode=stk1,.clsPrice=P2,.date=D)";

void BM_Join_Indexed(benchmark::State& state) { RunWith(state, kJoin, true); }
BENCHMARK(BM_Join_Indexed)->Arg(20)->Arg(60)->Arg(180)
    ->Unit(benchmark::kMicrosecond);

// The substrate ablation: the identical indexed join forced through the
// tuple-at-a-time matcher. CI's release bench smoke asserts
// BM_Join_Indexed/180 is >= 3x faster than this leg (docs/COLUMNAR.md).
void BM_Join_Indexed_Nested(benchmark::State& state) {
  RunWith(state, kJoin, true, idl::EvalSubstrate::kNested);
}
BENCHMARK(BM_Join_Indexed_Nested)->Arg(20)->Arg(60)->Arg(180)
    ->Unit(benchmark::kMicrosecond);

void BM_Join_Scan(benchmark::State& state) { RunWith(state, kJoin, false); }
BENCHMARK(BM_Join_Scan)->Arg(20)->Arg(60)->Arg(180)
    ->Unit(benchmark::kMicrosecond);

constexpr const char* kSelect =
    "?.euter.r(.stkCode=stk7, .clsPrice=P, .date=D)";

void BM_Select_Indexed(benchmark::State& state) {
  RunWith(state, kSelect, true);
}
BENCHMARK(BM_Select_Indexed)->Arg(20)->Arg(60)->Arg(180)
    ->Unit(benchmark::kMicrosecond);

void BM_Select_Indexed_Nested(benchmark::State& state) {
  RunWith(state, kSelect, true, idl::EvalSubstrate::kNested);
}
BENCHMARK(BM_Select_Indexed_Nested)->Arg(20)->Arg(60)->Arg(180)
    ->Unit(benchmark::kMicrosecond);

void BM_Select_Scan(benchmark::State& state) {
  RunWith(state, kSelect, false);
}
BENCHMARK(BM_Select_Scan)->Arg(20)->Arg(60)->Arg(180)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

IDL_BENCH_MAIN()
