// Generated multi-tenant discrepancy workloads (workload/discrepancy_gen.h)
// end to end: how fast the generator mints universes and traces, what full
// unification over N tenants costs under each evaluation strategy, and
// what one schema-evolution trace step costs under incremental maintenance
// vs rematerialization. The generator is the substrate for the cross-mode
// differential sweep (tests/workload_differential_test.cc); these numbers
// bound how far the sweep's universe counts can grow before it stops being
// a tier-1 test.
//
// - GenerateUniverse/*: pure generation (facts + rules + oracle), no
//   evaluation. Should stay microseconds — the sweep calls it hundreds of
//   times.
// - UnifyTenants/*: cold Session materialization of the unified view over
//   a generated universe, naive vs semi-naive vs parallel semi-naive.
// - TraceStep/*: replay generated evolution steps (style flips, relation
//   churn, upserts) against a live Session, incremental vs rematerialize —
//   the maintenance ratio for *schema-shaped* deltas, not just row churn.

#include <benchmark/benchmark.h>

#include <cstddef>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "idl/session.h"
#include "workload/discrepancy_gen.h"

namespace {

using idl::DiscrepancyConfig;
using idl::DiscrepancyUniverse;
using idl::EvalOptions;
using idl::EvalStrategy;
using idl::EvolutionTrace;
using idl::MaintenanceMode;

DiscrepancyConfig BenchConfig(size_t tenants) {
  DiscrepancyConfig config;
  config.seed = 42;
  config.num_tenants = tenants;
  config.num_entities = 5;
  config.num_keys = 4;
  config.mangle_rate = 0.4;
  return config;
}

void BM_GenerateUniverse(benchmark::State& state) {
  DiscrepancyConfig config = BenchConfig(static_cast<size_t>(state.range(0)));
  size_t facts = 0;
  for (auto _ : state) {
    DiscrepancyUniverse u = idl::GenerateDiscrepancyUniverse(config);
    for (const auto& tenant : u.tenants) facts += tenant.facts.size();
    benchmark::DoNotOptimize(u);
  }
  state.counters["facts"] = static_cast<double>(
      facts / static_cast<size_t>(std::max<int64_t>(1, state.iterations())));
}
BENCHMARK(BM_GenerateUniverse)->Arg(4)->Arg(16);

void BM_GenerateTrace(benchmark::State& state) {
  DiscrepancyConfig config = BenchConfig(4);
  size_t requests = 0;
  for (auto _ : state) {
    DiscrepancyUniverse u = idl::GenerateDiscrepancyUniverse(config);
    EvolutionTrace trace =
        idl::GenerateEvolutionTrace(u, static_cast<size_t>(state.range(0)),
                                    /*salt=*/7);
    requests += trace.TotalRequests();
    benchmark::DoNotOptimize(trace);
  }
  state.counters["requests"] = static_cast<double>(
      requests /
      static_cast<size_t>(std::max<int64_t>(1, state.iterations())));
}
BENCHMARK(BM_GenerateTrace)->Arg(8)->Arg(32);

// Cold materialization of the unified view (plus customized roll/wide
// views) over a freshly registered N-tenant universe.
void UnifyTenants(benchmark::State& state, EvalStrategy strategy,
                  int parallelism) {
  DiscrepancyUniverse u = idl::GenerateDiscrepancyUniverse(
      BenchConfig(static_cast<size_t>(state.range(0))));
  size_t cells = 0;
  for (auto _ : state) {
    idl::Session session;
    for (const auto& tenant : u.tenants) {
      IDL_BENCH_CHECK(
          session.RegisterDatabase(tenant.name, u.BuildTenantDatabase(tenant))
              .ok());
    }
    IDL_BENCH_CHECK(session.DefineRules(u.UnificationRules()).ok());
    EvalOptions options;
    options.strategy = strategy;
    options.materialize_parallelism = parallelism;
    session.set_materialize_options(options);
    auto universe = session.universe();
    IDL_BENCH_CHECK(universe.ok());
    const idl::Value* unified = (*universe)->FindField("u");
    IDL_BENCH_CHECK(unified != nullptr);
    cells += unified->FindField("p")->elements().size();
  }
  benchmark::DoNotOptimize(cells);
  state.counters["unified_rows"] = static_cast<double>(
      cells / static_cast<size_t>(std::max<int64_t>(1, state.iterations())));
}

void BM_UnifyTenants_Naive(benchmark::State& state) {
  UnifyTenants(state, EvalStrategy::kNaive, 1);
}
void BM_UnifyTenants_SemiNaive(benchmark::State& state) {
  UnifyTenants(state, EvalStrategy::kSemiNaive, 1);
}
void BM_UnifyTenants_SemiNaiveParallel(benchmark::State& state) {
  UnifyTenants(state, EvalStrategy::kSemiNaive, 0);
}
BENCHMARK(BM_UnifyTenants_Naive)->Arg(4)->Arg(16);
BENCHMARK(BM_UnifyTenants_SemiNaive)->Arg(4)->Arg(16);
BENCHMARK(BM_UnifyTenants_SemiNaiveParallel)->Arg(4)->Arg(16);

// One evolution-trace request per iteration against a live Session; the
// trace regenerates (same seed/salt) when exhausted. Schema-shaped deltas
// — relation creation, style flips — stress maintenance paths the
// row-churn benches (bench_incremental.cc) never touch.
void TraceStep(benchmark::State& state, MaintenanceMode mode) {
  DiscrepancyConfig config = BenchConfig(4);
  DiscrepancyUniverse u = idl::GenerateDiscrepancyUniverse(config);
  idl::Session session;
  for (const auto& tenant : u.tenants) {
    IDL_BENCH_CHECK(
        session.RegisterDatabase(tenant.name, u.BuildTenantDatabase(tenant))
            .ok());
  }
  IDL_BENCH_CHECK(session.DefineRules(u.UnificationRules()).ok());
  EvalOptions options;
  options.maintenance = mode;
  session.set_materialize_options(options);
  IDL_BENCH_CHECK(session.universe().ok());  // initial materialization

  // GenerateEvolutionTrace mutates its universe in place, so generating
  // successive traces (fresh salt each refill) from the same evolving copy
  // keeps every request consistent with the session's current state.
  std::vector<std::string> requests;
  uint64_t salt = 1;
  auto refill = [&] {
    EvolutionTrace trace =
        idl::GenerateEvolutionTrace(u, /*num_steps=*/16, salt++);
    requests.clear();
    for (const auto& step : trace.steps)
      for (const auto& request : step.requests) requests.push_back(request);
  };
  refill();

  size_t at = 0;
  for (auto _ : state) {
    if (at == requests.size()) {
      state.PauseTiming();
      refill();
      at = 0;
      state.ResumeTiming();
    }
    auto r = session.Update(requests[at++]);
    IDL_BENCH_CHECK(r.ok());
    auto universe = session.universe();
    IDL_BENCH_CHECK(universe.ok());
  }
  const idl::Materialized* m = session.last_materialization();
  IDL_BENCH_CHECK(m != nullptr);
  state.counters["fallbacks"] = static_cast<double>(m->maintenance.fallbacks);
}

void BM_TraceStep_Incremental(benchmark::State& state) {
  TraceStep(state, MaintenanceMode::kIncremental);
}
void BM_TraceStep_Rematerialize(benchmark::State& state) {
  TraceStep(state, MaintenanceMode::kRematerialize);
}
BENCHMARK(BM_TraceStep_Incremental);
BENCHMARK(BM_TraceStep_Rematerialize);

}  // namespace

IDL_BENCH_MAIN()
