// Q1-Q3 (paper §4.2): first-order queries against the euter schema —
// selection, self-join on date, and negation (all-time high) — as the
// relation grows. Establishes the single-database query costs that the
// higher-order benches are compared against.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace {

using idl_bench::MakeWorkload;
using idl_bench::MustQuery;
using idl_bench::RunQuery;

void BM_Q1_Selection(benchmark::State& state) {
  idl::StockWorkload w = MakeWorkload(20, state.range(0));
  idl::Value universe = BuildStockUniverse(w);
  idl::Query q = MustQuery("?.euter.r(.stkCode=stk0, .clsPrice>0, .date=D)");
  size_t rows = 0;
  for (auto _ : state) {
    rows = RunQuery(universe, q);
    benchmark::DoNotOptimize(rows);
  }
  state.counters["relation_rows"] =
      static_cast<double>(20 * state.range(0));
  state.counters["answer_rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_Q1_Selection)->Arg(10)->Arg(50)->Arg(250)
    ->Unit(benchmark::kMicrosecond);

void BM_Q2_SelfJoinOnDate(benchmark::State& state) {
  idl::StockWorkload w = MakeWorkload(10, state.range(0));
  idl::Value universe = BuildStockUniverse(w);
  idl::Query q = MustQuery(
      "?.euter.r(.stkCode=stk0,.clsPrice=P1,.date=D),"
      ".euter.r(.stkCode=stk1,.clsPrice=P2,.date=D)");
  for (auto _ : state) {
    size_t rows = RunQuery(universe, q);
    benchmark::DoNotOptimize(rows);
  }
  state.counters["relation_rows"] =
      static_cast<double>(10 * state.range(0));
}
BENCHMARK(BM_Q2_SelfJoinOnDate)->Arg(10)->Arg(30)->Arg(100)
    ->Unit(benchmark::kMicrosecond);

void BM_Q3_AllTimeHighNegation(benchmark::State& state) {
  idl::StockWorkload w = MakeWorkload(5, state.range(0));
  idl::Value universe = BuildStockUniverse(w);
  idl::Query q = MustQuery(
      "?.euter.r(.stkCode=stk0,.clsPrice=P,.date=D),"
      ".euter.r!(.stkCode=stk0, .clsPrice>P)");
  for (auto _ : state) {
    size_t rows = RunQuery(universe, q);
    IDL_BENCH_CHECK(rows >= 1);
  }
  state.counters["relation_rows"] = static_cast<double>(5 * state.range(0));
}
BENCHMARK(BM_Q3_AllTimeHighNegation)->Arg(10)->Arg(25)->Arg(50)
    ->Unit(benchmark::kMicrosecond);

void BM_BooleanPointQuery(benchmark::State& state) {
  idl::StockWorkload w = MakeWorkload(20, 100);
  idl::Value universe = BuildStockUniverse(w);
  idl::Query q = MustQuery("?.euter.r(.stkCode=stk7, .clsPrice>0)");
  for (auto _ : state) {
    size_t rows = RunQuery(universe, q);
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_BooleanPointQuery)->Unit(benchmark::kMicrosecond);

}  // namespace

IDL_BENCH_MAIN()
