// Q4/Q6/Q8: higher-order queries — the same intention against all three
// schematically discrepant schemas, and cross-schema joins. The headline
// comparison: the *one* higher-order formulation costs about the same
// against every schema, growing linearly with the data (see
// bench_baseline_expansion for what a first-order system pays instead).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace {

using idl_bench::MakeWorkload;
using idl_bench::MustQuery;
using idl_bench::RunQuery;

constexpr size_t kDays = 20;

void BM_Q4_Euter(benchmark::State& state) {
  idl::StockWorkload w = MakeWorkload(state.range(0), kDays);
  idl::Value universe = BuildStockUniverse(w);
  idl::Query q = MustQuery("?.euter.r(.stkCode=S, .clsPrice>200)");
  idl::EvalStats stats;
  for (auto _ : state) RunQuery(universe, q, &stats);
  state.counters["scanned_per_iter"] =
      static_cast<double>(stats.set_elements_scanned) / state.iterations();
}
BENCHMARK(BM_Q4_Euter)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMicrosecond);

void BM_Q4_ChwabHigherOrderAttr(benchmark::State& state) {
  idl::StockWorkload w = MakeWorkload(state.range(0), kDays);
  idl::Value universe = BuildStockUniverse(w);
  idl::Query q = MustQuery("?.chwab.r(.S>200)");
  idl::EvalStats stats;
  for (auto _ : state) RunQuery(universe, q, &stats);
  state.counters["attrs_enumerated_per_iter"] =
      static_cast<double>(stats.attrs_enumerated) / state.iterations();
}
BENCHMARK(BM_Q4_ChwabHigherOrderAttr)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMicrosecond);

void BM_Q4_OurceHigherOrderRel(benchmark::State& state) {
  idl::StockWorkload w = MakeWorkload(state.range(0), kDays);
  idl::Value universe = BuildStockUniverse(w);
  idl::Query q = MustQuery("?.ource.S(.clsPrice>200)");
  idl::EvalStats stats;
  for (auto _ : state) RunQuery(universe, q, &stats);
  state.counters["attrs_enumerated_per_iter"] =
      static_cast<double>(stats.attrs_enumerated) / state.iterations();
}
BENCHMARK(BM_Q4_OurceHigherOrderRel)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMicrosecond);

// Q6: join between two different schematic representations
// (attribute-name stocks x relation-name stocks).
void BM_Q6_CrossSchemaJoin(benchmark::State& state) {
  idl::StockWorkload w = MakeWorkload(state.range(0), 10);
  idl::Value universe = BuildStockUniverse(w);
  idl::Query q = MustQuery(
      "?.chwab.r(.date=D,.S=P), .ource.S(.date=D,.clsPrice=P)");
  size_t rows = 0;
  for (auto _ : state) rows = RunQuery(universe, q);
  IDL_BENCH_CHECK(rows == static_cast<size_t>(state.range(0)) * 10);
}
BENCHMARK(BM_Q6_CrossSchemaJoin)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Q8: highest closing price per day, per schema (grouped negation).
void BM_Q8_HighestPerDay_Euter(benchmark::State& state) {
  idl::StockWorkload w = MakeWorkload(8, state.range(0));
  idl::Value universe = BuildStockUniverse(w);
  idl::Query q = MustQuery(
      "?.euter.r(.date=D, .stkCode=S, .clsPrice=P),"
      ".euter.r!(.date=D, .clsPrice>P)");
  size_t rows = 0;
  for (auto _ : state) rows = RunQuery(universe, q);
  IDL_BENCH_CHECK(rows >= static_cast<size_t>(state.range(0)));
}
BENCHMARK(BM_Q8_HighestPerDay_Euter)->Arg(5)->Arg(10)->Arg(20)
    ->Unit(benchmark::kMillisecond);

void BM_Q8_HighestPerDay_Ource(benchmark::State& state) {
  idl::StockWorkload w = MakeWorkload(8, state.range(0));
  idl::Value universe = BuildStockUniverse(w);
  idl::Query q = MustQuery(
      "?.ource.S(.date=D, .clsPrice=P), !.ource.S2(.date=D, .clsPrice>P)");
  size_t rows = 0;
  for (auto _ : state) rows = RunQuery(universe, q);
  IDL_BENCH_CHECK(rows >= static_cast<size_t>(state.range(0)));
}
BENCHMARK(BM_Q8_HighestPerDay_Ource)->Arg(5)->Arg(10)->Arg(20)
    ->Unit(benchmark::kMillisecond);

}  // namespace

IDL_BENCH_MAIN()
