// V5: name-discrepancy reconciliation through explicit mapping relations
// (mapCE/mapOE, §6). Measures the overhead of joining every chwab/ource
// fact through the mapping relation versus the direct (name-identity)
// unification.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "views/engine.h"

namespace {

using idl_bench::MakeWorkload;

void RunUnification(benchmark::State& state, bool mapped) {
  size_t stocks = state.range(0);
  idl::StockWorkload w = MakeWorkload(stocks, 15, 0.0, mapped);
  idl::Value universe = BuildStockUniverse(w);
  idl::ViewEngine engine;
  for (size_t i = 0; i < 3; ++i) {
    auto rule = idl::ParseRule(idl::PaperViewRules(mapped)[i]);
    IDL_BENCH_CHECK(rule.ok());
    IDL_BENCH_CHECK(engine.AddRule(std::move(rule).value()).ok());
  }
  for (auto _ : state) {
    auto m = engine.Materialize(universe);
    IDL_BENCH_CHECK(m.ok());
    IDL_BENCH_CHECK(
        m->universe.FindField("dbI")->FindField("p")->SetSize() ==
        stocks * 15);
  }
}

void BM_Unify_NameIdentity(benchmark::State& state) {
  RunUnification(state, /*mapped=*/false);
}
BENCHMARK(BM_Unify_NameIdentity)->Arg(4)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_Unify_ThroughNameMappings(benchmark::State& state) {
  RunUnification(state, /*mapped=*/true);
}
BENCHMARK(BM_Unify_ThroughNameMappings)->Arg(4)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

}  // namespace

IDL_BENCH_MAIN()
