// PL1 — what the cost-based planner buys on the paper's unification view.
//
// Three contenders materialize the same unified dbI.p over the three
// schematically discrepant schemas at 16 stocks x 50 days:
//
//   BM_Planner_HandPivoted    the relational ceiling: hand-written
//                             UNPIVOT + per-relation UNION (the plan a
//                             human query writer compiles to by hand —
//                             BM_Pivot_Unification's workload, kept here so
//                             one binary carries the whole comparison)
//   BM_Planner_HO_Written     the higher-order rules evaluated in written
//                             order (the oracle executor): every pass
//                             re-enumerates metadata per tuple
//   BM_Planner_HO_Planned     the same rules under PlannerMode::kCostBased:
//                             higher-order conjuncts specialized into
//                             first-order instances at plan time, joins
//                             reordered bound-first
//
// CI gates planned <= 2x hand-pivoted at 16/50 (scripts in
// .github/workflows/ci.yml); written order historically sat near 4x.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "relational/algebra.h"
#include "relational/pivot.h"
#include "views/engine.h"

namespace {

using idl_bench::MakeWorkload;

void BM_Planner_HandPivoted(benchmark::State& state) {
  size_t stocks = state.range(0);
  size_t days = state.range(1);
  idl::StockWorkload w = MakeWorkload(stocks, days);
  idl::RelationalDatabase euter = BuildEuterDatabase(w);
  idl::RelationalDatabase chwab = BuildChwabDatabase(w);
  idl::RelationalDatabase ource = BuildOurceDatabase(w);

  for (auto _ : state) {
    auto chwab_flat =
        Unpivot(*chwab.FindTable("r"), "date", "stkCode", "clsPrice");
    IDL_BENCH_CHECK(chwab_flat.ok());
    idl::ResultSet unified = ScanAll(*euter.FindTable("r"));
    auto u1 = Union(unified, ScanAll(*chwab_flat));
    IDL_BENCH_CHECK(u1.ok());
    unified = std::move(u1).value();
    for (const auto& name : ource.TableNames()) {
      const idl::Table& t = *ource.FindTable(name);
      idl::ResultSet branch = ScanAll(t);
      idl::ResultSet widened;
      widened.schema = idl::Schema({t.schema().column(0),
                                    idl::Column{"stkCode",
                                                idl::ColumnType::kString},
                                    t.schema().column(1)});
      for (const auto& row : branch.rows) {
        widened.rows.push_back(idl::Row(
            {row.cells[0], idl::Value::String(name), row.cells[1]}));
      }
      auto u2 = Union(unified, widened);
      IDL_BENCH_CHECK(u2.ok());
      unified = std::move(u2).value();
    }
    IDL_BENCH_CHECK(unified.rows.size() == stocks * days);
  }
}
BENCHMARK(BM_Planner_HandPivoted)
    ->Args({4, 10})
    ->Args({8, 25})
    ->Args({16, 50})
    ->Unit(benchmark::kMillisecond);

void RunUnification(benchmark::State& state, idl::PlannerMode planner) {
  size_t stocks = state.range(0);
  size_t days = state.range(1);
  idl::StockWorkload w = MakeWorkload(stocks, days);
  idl::Value universe = BuildStockUniverse(w);
  idl::ViewEngine engine;
  for (size_t i = 0; i < 3; ++i) {
    auto rule = idl::ParseRule(idl::PaperViewRules()[i]);
    IDL_BENCH_CHECK(rule.ok());
    IDL_BENCH_CHECK(engine.AddRule(std::move(rule).value()).ok());
  }
  idl::EvalOptions options;
  options.planner = planner;
  for (auto _ : state) {
    auto m = engine.Materialize(universe, options);
    IDL_BENCH_CHECK(m.ok());
    IDL_BENCH_CHECK(
        m->universe.FindField("dbI")->FindField("p")->SetSize() ==
        stocks * days);
  }
}

void BM_Planner_HO_Written(benchmark::State& state) {
  RunUnification(state, idl::PlannerMode::kWrittenOrder);
}
BENCHMARK(BM_Planner_HO_Written)
    ->Args({4, 10})
    ->Args({8, 25})
    ->Args({16, 50})
    ->Unit(benchmark::kMillisecond);

void BM_Planner_HO_Planned(benchmark::State& state) {
  RunUnification(state, idl::PlannerMode::kCostBased);
}
BENCHMARK(BM_Planner_HO_Planned)
    ->Args({4, 10})
    ->Args({8, 25})
    ->Args({16, 50})
    ->Unit(benchmark::kMillisecond);

}  // namespace

IDL_BENCH_MAIN()
