// V2: the full two-level view stack (dbI + dbE + dbC + dbO). Compared with
// bench_view_unified, the delta is the cost of the customized views —
// including dbC's absorb-merge into one-tuple-per-date and dbO's
// data-dependent relation creation.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "views/engine.h"

namespace {

using idl_bench::MakeWorkload;

void BM_MaterializeAllCustomizedViews(benchmark::State& state) {
  size_t stocks = state.range(0);
  size_t days = state.range(1);
  idl::StockWorkload w = MakeWorkload(stocks, days);
  idl::Value universe = BuildStockUniverse(w);
  idl::ViewEngine engine;
  for (const auto& text : idl::PaperViewRules()) {
    auto rule = idl::ParseRule(text);
    IDL_BENCH_CHECK(rule.ok());
    IDL_BENCH_CHECK(engine.AddRule(std::move(rule).value()).ok());
  }
  for (auto _ : state) {
    auto m = engine.Materialize(universe);
    IDL_BENCH_CHECK(m.ok());
    // Faithfulness spot checks.
    IDL_BENCH_CHECK(*m->universe.FindField("dbE")->FindField("r") ==
                    *m->universe.FindField("euter")->FindField("r"));
    IDL_BENCH_CHECK(m->universe.FindField("dbO")->TupleSize() == stocks);
  }
  state.counters["base_facts"] = static_cast<double>(stocks * days);
}
BENCHMARK(BM_MaterializeAllCustomizedViews)
    ->Args({4, 10})
    ->Args({8, 25})
    ->Args({16, 50})
    ->Unit(benchmark::kMillisecond);

}  // namespace

IDL_BENCH_MAIN()
