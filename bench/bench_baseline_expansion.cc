// B1 — the headline comparison. "Did any stock ever close above 200?"
// against the chwab schema (stocks as attributes) and the ource schema
// (stocks as relations):
//
//   IDL:       ONE higher-order query; the engine scans the data once and
//              enumerates attribute/relation names as it goes.
//   Baseline:  a first-order (Datalog/MSQL-class) engine must run one query
//              per stock — N queries, and for chwab N full scans of the
//              relation — plus a metadata pass to discover the stock list.
//
// Expected shape: baseline cost grows ~quadratically for chwab (N queries x
// N-wide rows) and linearly-in-queries for ource, while the IDL query stays
// a single pass; the gap widens with the number of stocks.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "relational/fo_engine.h"

namespace {

using idl_bench::MakeWorkload;
using idl_bench::MustQuery;
using idl_bench::RunQuery;

constexpr size_t kDays = 20;
constexpr double kThreshold = 200.0;

void BM_IDL_HigherOrder_Chwab(benchmark::State& state) {
  idl::StockWorkload w = MakeWorkload(state.range(0), kDays);
  idl::Value universe = BuildStockUniverse(w);
  idl::Query q = MustQuery("?.chwab.r(.S>200)");
  idl::EvalStats stats;
  for (auto _ : state) RunQuery(universe, q, &stats);
  state.counters["queries"] = 1;
  state.counters["scans_per_iter"] =
      static_cast<double>(stats.set_elements_scanned) / state.iterations();
}
BENCHMARK(BM_IDL_HigherOrder_Chwab)->Arg(4)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

void BM_FO_Expansion_Chwab(benchmark::State& state) {
  idl::StockWorkload w = MakeWorkload(state.range(0), kDays);
  idl::RelationalDatabase chwab = BuildChwabDatabase(w);
  const idl::Schema& schema = chwab.FindTable("r")->schema();
  idl::FoStats stats;
  for (auto _ : state) {
    size_t hits = 0;
    // One first-order query per stock column (the pre-IDL workaround). The
    // stock list itself comes from a catalog scan the baseline also pays.
    for (const auto& col : schema.columns()) {
      if (col.name == "date") continue;
      idl::FoQuery q;
      idl::FoAtom atom;
      atom.relation = "r";
      atom.args.push_back(
          {col.name, "", idl::Value::Real(kThreshold), idl::RelOp::kGt});
      q.atoms.push_back(std::move(atom));
      auto rs = ExecuteFoQuery(chwab, q, &stats);
      IDL_BENCH_CHECK(rs.ok());
      if (!rs->rows.empty()) ++hits;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.counters["queries"] = static_cast<double>(state.range(0));
  state.counters["scans_per_iter"] =
      static_cast<double>(stats.rows_scanned) / state.iterations();
}
BENCHMARK(BM_FO_Expansion_Chwab)->Arg(4)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

void BM_IDL_HigherOrder_Ource(benchmark::State& state) {
  idl::StockWorkload w = MakeWorkload(state.range(0), kDays);
  idl::Value universe = BuildStockUniverse(w);
  idl::Query q = MustQuery("?.ource.S(.clsPrice>200)");
  for (auto _ : state) {
    size_t rows = RunQuery(universe, q);
    benchmark::DoNotOptimize(rows);
  }
  state.counters["queries"] = 1;
}
BENCHMARK(BM_IDL_HigherOrder_Ource)->Arg(4)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

void BM_FO_Expansion_Ource(benchmark::State& state) {
  idl::StockWorkload w = MakeWorkload(state.range(0), kDays);
  idl::RelationalDatabase ource = BuildOurceDatabase(w);
  std::vector<std::string> tables = ource.TableNames();
  idl::FoStats stats;
  for (auto _ : state) {
    size_t hits = 0;
    // One first-order query per stock relation.
    for (const auto& table : tables) {
      idl::FoQuery q;
      idl::FoAtom atom;
      atom.relation = table;
      atom.args.push_back(
          {"clsPrice", "", idl::Value::Real(kThreshold), idl::RelOp::kGt});
      q.atoms.push_back(std::move(atom));
      auto rs = ExecuteFoQuery(ource, q, &stats);
      IDL_BENCH_CHECK(rs.ok());
      if (!rs->rows.empty()) ++hits;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.counters["queries"] = static_cast<double>(state.range(0));
  state.counters["scans_per_iter"] =
      static_cast<double>(stats.rows_scanned) / state.iterations();
}
BENCHMARK(BM_FO_Expansion_Ource)->Arg(4)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

IDL_BENCH_MAIN()
