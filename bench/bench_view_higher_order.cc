// V3: the higher-order view dbO — a single rule whose *head* relation name
// is data dependent. A first-order view system needs one CREATE VIEW per
// stock; IDL needs one rule regardless. Cost and derived-relation count as
// the number of stocks grows (days fixed).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "views/engine.h"

namespace {

using idl_bench::MakeWorkload;

void BM_HigherOrderViewDbO(benchmark::State& state) {
  size_t stocks = state.range(0);
  idl::StockWorkload w = MakeWorkload(stocks, 10);
  idl::Value universe = BuildStockUniverse(w);
  idl::ViewEngine engine;
  // dbI.p from euter only, then dbO from dbI.p.
  auto r1 = idl::ParseRule(
      ".dbI.p(.date=D, .stk=S, .clsPrice=P) <- "
      ".euter.r(.date=D, .stkCode=S, .clsPrice=P)");
  auto r2 = idl::ParseRule(
      ".dbO.S(.date=D, .clsPrice=P) <- .dbI.p(.date=D, .stk=S, .clsPrice=P)");
  IDL_BENCH_CHECK(r1.ok() && r2.ok());
  IDL_BENCH_CHECK(engine.AddRule(std::move(r1).value()).ok());
  IDL_BENCH_CHECK(engine.AddRule(std::move(r2).value()).ok());
  size_t relations = 0;
  for (auto _ : state) {
    auto m = engine.Materialize(universe);
    IDL_BENCH_CHECK(m.ok());
    relations = m->universe.FindField("dbO")->TupleSize();
    IDL_BENCH_CHECK(relations == stocks);
  }
  // One rule defined `relations` relations: the count a first-order system
  // would need as separate view definitions.
  state.counters["derived_relations"] = static_cast<double>(relations);
  state.counters["rules"] = 2;
}
BENCHMARK(BM_HigherOrderViewDbO)->Arg(4)->Arg(16)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

}  // namespace

IDL_BENCH_MAIN()
