// Shared helpers for the benchmark binaries.

#ifndef IDL_BENCH_BENCH_UTIL_H_
#define IDL_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "eval/query.h"
#include "idl/session.h"
#include "syntax/parser.h"
#include "workload/paper_universe.h"
#include "workload/stock_gen.h"

namespace idl_bench {

inline idl::Query MustQuery(const std::string& text) {
  auto q = idl::ParseQuery(text);
  if (!q.ok()) {
    std::fprintf(stderr, "bad bench query %s: %s\n", text.c_str(),
                 q.status().ToString().c_str());
    std::abort();
  }
  return std::move(q).value();
}

// Evaluates and returns the row count; aborts on error (benches must not
// silently measure failures).
inline size_t RunQuery(const idl::Value& universe, const idl::Query& query,
                       idl::EvalStats* stats = nullptr) {
  auto a = idl::EvaluateQuery(universe, query, idl::EvalOptions(), stats);
  if (!a.ok()) {
    std::fprintf(stderr, "bench query failed: %s\n",
                 a.status().ToString().c_str());
    std::abort();
  }
  return a->rows.size();
}

inline idl::StockWorkload MakeWorkload(size_t stocks, size_t days,
                                       double discrepancy_rate = 0.0,
                                       bool name_discrepancies = false) {
  return idl::GenerateStockWorkload({.num_stocks = stocks,
                                     .num_days = days,
                                     .seed = 42,
                                     .discrepancy_rate = discrepancy_rate,
                                     .name_discrepancies = name_discrepancies});
}

#define IDL_BENCH_CHECK(cond)                                          \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::fprintf(stderr, "bench check failed at %s:%d: %s\n",        \
                   __FILE__, __LINE__, #cond);                         \
      std::abort();                                                    \
    }                                                                  \
  } while (0)

// Entry point for bench binaries that accept `--json <path>` (or
// `--json=<path>`): the flag is rewritten into google/benchmark's
// --benchmark_out=<path> --benchmark_out_format=json pair before
// Initialize(), so `bench_federation --json results.json` drops a
// BENCH_federation.json-style report next to the console output. All other
// arguments pass through untouched.
//
// When a report path is known (via --json or a passed-through
// --benchmark_out=), the run's process-metrics snapshot
// (idl::MetricsRegistry, common/metrics.h) is additionally written to
// `<path>.metrics.json`, so merged reports (scripts/bench_all.sh) carry the
// counters — fixpoint passes, index builds, site retries — that explain the
// timings next to them.
inline int RunBenchmarks(int argc, char** argv) {
  std::vector<std::string> rewritten;
  rewritten.reserve(static_cast<size_t>(argc) + 1);
  rewritten.emplace_back(argv[0]);
  std::string json_path;  // set by --json; rewritten into --benchmark_out
  std::string out_path;   // any known report path (either flag spelling)
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(std::strlen("--json="));
    } else {
      if (arg.rfind("--benchmark_out=", 0) == 0) {
        out_path = arg.substr(std::strlen("--benchmark_out="));
      }
      rewritten.push_back(std::move(arg));
    }
  }
  if (!json_path.empty()) {
    out_path = json_path;
    rewritten.push_back("--benchmark_out=" + json_path);
    rewritten.push_back("--benchmark_out_format=json");
  }
  std::string metrics_path =
      out_path.empty() ? std::string() : out_path + ".metrics.json";

  std::vector<char*> args;
  args.reserve(rewritten.size());
  for (auto& arg : rewritten) args.push_back(arg.data());
  int rewritten_argc = static_cast<int>(args.size());
  benchmark::Initialize(&rewritten_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(rewritten_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  if (!metrics_path.empty()) {
    std::FILE* f = std::fopen(metrics_path.c_str(), "w");
    if (f != nullptr) {
      std::string snapshot = idl::MetricsRegistry::Global().ToJson();
      std::fwrite(snapshot.data(), 1, snapshot.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "bench_util: cannot write %s\n",
                   metrics_path.c_str());
    }
  }
  benchmark::Shutdown();
  return 0;
}

// main() for binaries built with idl_bench_with_main (links
// benchmark::benchmark without benchmark_main, so the --json rewrite above
// sees the arguments first).
#define IDL_BENCH_MAIN()                                   \
  int main(int argc, char** argv) {                        \
    return ::idl_bench::RunBenchmarks(argc, argv);         \
  }

}  // namespace idl_bench

#endif  // IDL_BENCH_BENCH_UTIL_H_
