// Shared helpers for the benchmark binaries.

#ifndef IDL_BENCH_BENCH_UTIL_H_
#define IDL_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "eval/query.h"
#include "idl/session.h"
#include "syntax/parser.h"
#include "workload/paper_universe.h"
#include "workload/stock_gen.h"

namespace idl_bench {

inline idl::Query MustQuery(const std::string& text) {
  auto q = idl::ParseQuery(text);
  if (!q.ok()) {
    std::fprintf(stderr, "bad bench query %s: %s\n", text.c_str(),
                 q.status().ToString().c_str());
    std::abort();
  }
  return std::move(q).value();
}

// Evaluates and returns the row count; aborts on error (benches must not
// silently measure failures).
inline size_t RunQuery(const idl::Value& universe, const idl::Query& query,
                       idl::EvalStats* stats = nullptr) {
  auto a = idl::EvaluateQuery(universe, query, idl::EvalOptions(), stats);
  if (!a.ok()) {
    std::fprintf(stderr, "bench query failed: %s\n",
                 a.status().ToString().c_str());
    std::abort();
  }
  return a->rows.size();
}

inline idl::StockWorkload MakeWorkload(size_t stocks, size_t days,
                                       double discrepancy_rate = 0.0,
                                       bool name_discrepancies = false) {
  return idl::GenerateStockWorkload({.num_stocks = stocks,
                                     .num_days = days,
                                     .seed = 42,
                                     .discrepancy_rate = discrepancy_rate,
                                     .name_discrepancies = name_discrepancies});
}

#define IDL_BENCH_CHECK(cond)                                          \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::fprintf(stderr, "bench check failed at %s:%d: %s\n",        \
                   __FILE__, __LINE__, #cond);                         \
      std::abort();                                                    \
    }                                                                  \
  } while (0)

}  // namespace idl_bench

#endif  // IDL_BENCH_BENCH_UTIL_H_
