// B4: language front-end throughput — lexing and parsing the paper's query
// corpus, rule set, and update programs; bytes/second.

#include <benchmark/benchmark.h>

#include <numeric>

#include "bench/bench_util.h"
#include "syntax/lexer.h"
#include "syntax/printer.h"

namespace {

const char* kCorpus[] = {
    "?.euter.r(.stkCode=hp, .clsPrice>60)",
    "?.euter.r(.stkCode=hp,.clsPrice>150,.date=D),"
    ".euter.r(.stkCode=ibm,.clsPrice>150,.date=D)",
    "?.euter.r(.stkCode=hp,.clsPrice=P,.date=D),"
    ".euter.r!(.stkCode=hp, .clsPrice>P)",
    "?.chwab.r(.S>200)",
    "?.ource.S(.clsPrice > 200)",
    "?.chwab.r(.date=D,.S=P), .ource.S(.date=D,.clsPrice=P)",
    "?.euter.Y, .chwab.Y, .ource.Y",
    "?.euter.r+(.date=3/3/85,.stkCode=hp,.clsPrice=50)",
    "?.chwab.r-(.date=3/3/85,.hp=C), .chwab.r+(.date=3/3/85,.hp=C+10)",
};

size_t CorpusBytes() {
  size_t total = 0;
  for (const char* text : kCorpus) total += std::string(text).size();
  return total;
}

void BM_Lex(benchmark::State& state) {
  for (auto _ : state) {
    for (const char* text : kCorpus) {
      auto tokens = idl::Lex(text);
      IDL_BENCH_CHECK(tokens.ok());
      benchmark::DoNotOptimize(tokens->size());
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(CorpusBytes()));
}
BENCHMARK(BM_Lex);

void BM_ParseQueries(benchmark::State& state) {
  for (auto _ : state) {
    for (const char* text : kCorpus) {
      auto q = idl::ParseQuery(text);
      IDL_BENCH_CHECK(q.ok());
      benchmark::DoNotOptimize(q->conjuncts.size());
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(CorpusBytes()));
}
BENCHMARK(BM_ParseQueries);

void BM_ParseRulesAndPrograms(benchmark::State& state) {
  std::vector<std::string> rules = idl::PaperViewRules(true);
  std::vector<std::string> programs = idl::PaperUpdatePrograms();
  size_t bytes = 0;
  for (const auto& s : rules) bytes += s.size();
  for (const auto& s : programs) bytes += s.size();
  for (auto _ : state) {
    for (const auto& text : rules) {
      auto r = idl::ParseRule(text);
      IDL_BENCH_CHECK(r.ok());
    }
    for (const auto& text : programs) {
      auto c = idl::ParseProgramClause(text);
      IDL_BENCH_CHECK(c.ok());
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes));
}
BENCHMARK(BM_ParseRulesAndPrograms);

void BM_PrintParseRoundTrip(benchmark::State& state) {
  std::vector<idl::Query> parsed;
  for (const char* text : kCorpus) {
    parsed.push_back(std::move(idl::ParseQuery(text)).value());
  }
  for (auto _ : state) {
    for (const auto& q : parsed) {
      std::string printed = idl::ToString(q);
      auto again = idl::ParseQuery(printed);
      IDL_BENCH_CHECK(again.ok());
    }
  }
}
BENCHMARK(BM_PrintParseRoundTrip);

}  // namespace

IDL_BENCH_MAIN()
