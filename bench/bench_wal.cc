// Durability-layer benchmarks (docs/DURABILITY.md, EXPERIMENTS.md D1):
//
//   * WalAppend        — raw record append throughput, fsync on vs off.
//                        The gap between the two is the price of the
//                        power-failure guarantee; the fsync-off number is
//                        the process-crash guarantee alone.
//   * WalReplay        — ReadWal validation + decode rate over a cold log,
//                        i.e. the records/s ceiling of recovery's replay
//                        phase before any session work happens.
//   * ServerCommit     — end-to-end commit throughput of one session
//                        streaming insert/delete pairs, across the three
//                        durability modes: in-memory (the bench_server
//                        baseline shape), WAL with fsync off, WAL with
//                        fsync on. The acceptance gate compares mode 1 to
//                        mode 0: apply -> append -> publish may not cost
//                        more than 2x the in-memory path (CI asserts this
//                        on the smoke run's report).
//   * ServerRecover    — full Server::Recover wall time for a directory
//                        holding one register record plus range(0) commit
//                        records, no snapshot coverage (worst case: every
//                        record replays). Feeds the recovery.wall_ms
//                        histogram the sidecar exports.

#include <unistd.h>

#include <cstdlib>
#include <memory>
#include <filesystem>
#include <string>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/str_util.h"
#include "idl/idl.h"

namespace {

using namespace idl;  // NOLINT

namespace fs = std::filesystem;

// Fresh temp directory, removed on scope exit.
class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/idl_bench_wal_XXXXXX";
    path_ = ::mkdtemp(tmpl);
  }
  ~TempDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

constexpr std::string_view kCommitBody =
    "?.euter.r+(.date=6/1/2001, .stkCode=ww, .clsPrice=1)";

// Raw append path: one writer streaming commit-sized records into a fresh
// log. records/s is the WAL's contribution to the commit-throughput
// ceiling; bytes/s is what the disk actually absorbs.
void BM_WalAppend(benchmark::State& state) {
  TempDir dir;
  WalOptions options;
  options.fsync = state.range(0) != 0;
  auto wal = Wal::Create(dir.path() + "/wal.log", 1, options);
  IDL_BENCH_CHECK(wal.ok());
  size_t records = 0, bytes = 0;
  for (auto _ : state) {
    IDL_BENCH_CHECK(
        (*wal)->Append(WalRecordType::kCommit, "", kCommitBody, records + 1)
            .ok());
    ++records;
    bytes += kCommitBody.size();
  }
  state.counters["records/s"] = benchmark::Counter(
      static_cast<double>(records), benchmark::Counter::kIsRate);
  state.counters["payload_bytes/s"] = benchmark::Counter(
      static_cast<double>(bytes), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_WalAppend)
    ->Arg(0)->Arg(1)  // fsync off / on
    ->Unit(benchmark::kMicrosecond);

// Cold-read validation rate: every iteration re-reads (and CRC-checks) a
// log of range(0) records. This is the replay phase's input rate; the
// session-side reapplication measured by ServerRecover sits on top.
void BM_WalReplay(benchmark::State& state) {
  TempDir dir;
  const std::string path = dir.path() + "/wal.log";
  const size_t num_records = static_cast<size_t>(state.range(0));
  {
    WalOptions options;
    options.fsync = false;
    auto wal = Wal::Create(path, 1, options);
    IDL_BENCH_CHECK(wal.ok());
    for (size_t i = 0; i < num_records; ++i) {
      IDL_BENCH_CHECK(
          (*wal)->Append(WalRecordType::kCommit, "", kCommitBody, i + 1).ok());
    }
  }
  size_t records = 0;
  for (auto _ : state) {
    auto read = ReadWal(path, /*repair_torn_tail=*/false);
    IDL_BENCH_CHECK(read.ok());
    IDL_BENCH_CHECK(read->records.size() == num_records);
    records += read->records.size();
    benchmark::DoNotOptimize(read->next_lsn);
  }
  state.counters["records/s"] = benchmark::Counter(
      static_cast<double>(records), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_WalReplay)
    ->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

// End-to-end commit throughput by durability mode. Mode 0 reproduces
// bench_server's BM_ServerCommitThroughput shape (bare relation, no rule)
// so the three numbers differ only in what happens between apply and
// publish: nothing / append / append+fsync.
void BM_ServerCommit(benchmark::State& state) {
  TempDir dir;
  const int mode = static_cast<int>(state.range(0));
  ServerOptions options;
  if (mode > 0) {
    options.durability.dir = dir.path();
    options.durability.fsync = mode == 2;
    // Keep checkpoints out of the measured loop: the periodic snapshot is
    // amortized cost with its own knob, not part of the per-commit path.
    options.durability.checkpoint_every = 1u << 30;
  }
  std::unique_ptr<Server> server;
  if (mode > 0) {
    auto opened = Server::Open(options, nullptr);
    IDL_BENCH_CHECK(opened.ok());
    server = std::move(opened).value();
  } else {
    server = std::make_unique<Server>(options);
  }
  IDL_BENCH_CHECK(
      server->RegisterDatabase("euter", *ParseValue("(r: {})")).ok());
  auto session = server->Connect();
  IDL_BENCH_CHECK(session.ok());
  size_t commits = 0;
  for (auto _ : state) {
    IDL_BENCH_CHECK(session->Update(kCommitBody).ok());
    IDL_BENCH_CHECK(
        session->Update("?.euter.r-(.date=6/1/2001, .stkCode=ww)").ok());
    commits += 2;
  }
  state.counters["commits/s"] = benchmark::Counter(
      static_cast<double>(commits), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServerCommit)
    ->Arg(0)   // in-memory baseline
    ->Arg(1)   // WAL, fsync off
    ->Arg(2)   // WAL, fsync on
    ->Unit(benchmark::kMicrosecond);

// Full recovery: Server::Recover over a directory whose log holds one
// database registration plus range(0) distinct-row commits and no snapshot
// (checkpointing disabled while writing), so every record replays through
// the session commit path. records/s here is the end-to-end replay rate —
// the number EXPERIMENTS.md D1 reports against the WalReplay ceiling.
void BM_ServerRecover(benchmark::State& state) {
  TempDir dir;
  const size_t num_commits = static_cast<size_t>(state.range(0));
  ServerOptions options;
  options.durability.dir = dir.path();
  options.durability.fsync = false;
  options.durability.checkpoint_every = 1u << 30;
  {
    auto server = Server::Open(options, nullptr);
    IDL_BENCH_CHECK(server.ok());
    IDL_BENCH_CHECK(
        (*server)->RegisterDatabase("db", *ParseValue("(r: {})")).ok());
    auto session = (*server)->Connect();
    IDL_BENCH_CHECK(session.ok());
    for (size_t i = 0; i < num_commits; ++i) {
      IDL_BENCH_CHECK(
          session->Update(StrCat("?.db.r+(.k=k", i, ", .v=", i, ")")).ok());
    }
  }
  size_t replayed = 0;
  for (auto _ : state) {
    RecoveryReport report;
    auto recovered = Server::Recover(options, &report);
    IDL_BENCH_CHECK(recovered.ok());
    IDL_BENCH_CHECK(report.replayed_records == num_commits + 1);
    replayed += report.replayed_records;
  }
  state.counters["records/s"] = benchmark::Counter(
      static_cast<double>(replayed), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServerRecover)
    ->Arg(100)->Arg(500)
    ->Unit(benchmark::kMillisecond);

}  // namespace

IDL_BENCH_MAIN()
