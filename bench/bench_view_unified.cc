// V1: materializing the unified view dbI.p over euter+chwab+ource — three
// higher-order rules producing stocks x days facts. Cost as data grows.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "views/engine.h"

namespace {

using idl_bench::MakeWorkload;

void BM_MaterializeUnifiedView(benchmark::State& state) {
  size_t stocks = state.range(0);
  size_t days = state.range(1);
  idl::StockWorkload w = MakeWorkload(stocks, days);
  idl::Value universe = BuildStockUniverse(w);
  idl::ViewEngine engine;
  // Only the three dbI rules.
  for (size_t i = 0; i < 3; ++i) {
    auto rule = idl::ParseRule(idl::PaperViewRules()[i]);
    IDL_BENCH_CHECK(rule.ok());
    IDL_BENCH_CHECK(engine.AddRule(std::move(rule).value()).ok());
  }
  uint64_t facts = 0;
  for (auto _ : state) {
    auto m = engine.Materialize(universe);
    IDL_BENCH_CHECK(m.ok());
    facts = m->facts_derived;
    IDL_BENCH_CHECK(
        m->universe.FindField("dbI")->FindField("p")->SetSize() ==
        stocks * days);
  }
  state.counters["facts_per_iter"] = static_cast<double>(facts);
  state.counters["view_rows"] = static_cast<double>(stocks * days);
}
BENCHMARK(BM_MaterializeUnifiedView)
    ->Args({4, 10})
    ->Args({8, 25})
    ->Args({16, 50})
    ->Args({32, 50})
    ->Unit(benchmark::kMillisecond);

}  // namespace

IDL_BENCH_MAIN()
