// P1-P3: update-program execution — delStk/insStk cycles across all three
// databases, rmStk/addStk metadata cycles — and the dispatch overhead of
// going through a program versus issuing the three base update requests
// directly.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "programs/executor.h"
#include "update/applier.h"

namespace {

using idl_bench::MakeWorkload;
using idl_bench::MustQuery;

class ProgramFixture {
 public:
  explicit ProgramFixture(size_t stocks, size_t days = 15)
      : workload_(MakeWorkload(stocks, days)),
        universe_(BuildStockUniverse(workload_)) {
    for (const auto& text : idl::PaperUpdatePrograms()) {
      auto c = idl::ParseProgramClause(text);
      IDL_BENCH_CHECK(c.ok());
      IDL_BENCH_CHECK(registry_.Register(std::move(c).value()).ok());
    }
  }

  void Call(const std::string& path, std::map<std::string, idl::Value> args,
            idl::UpdateOp op = idl::UpdateOp::kNone) {
    idl::ProgramExecutor executor(&registry_, &universe_);
    auto r = executor.Call(path, op, args);
    IDL_BENCH_CHECK(r.ok());
  }

  idl::StockWorkload workload_;
  idl::Value universe_;
  idl::ProgramRegistry registry_;
};

void BM_P1P3_DelInsCycle(benchmark::State& state) {
  ProgramFixture f(state.range(0));
  idl::Value stk = idl::Value::String("stk0");
  idl::Value date = idl::Value::Of(f.workload_.dates[3]);
  idl::Value price = idl::Value::Real(55.0);
  for (auto _ : state) {
    f.Call("dbU.delStk", {{"stk", stk}, {"date", date}});
    f.Call("dbU.insStk", {{"stk", stk}, {"date", date}, {"price", price}});
  }
  state.counters["stocks"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_P1P3_DelInsCycle)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMicrosecond);

// The same three-database delete+insert issued as raw update requests —
// the program machinery's dispatch overhead is the difference.
void BM_RawEquivalentOfDelIns(benchmark::State& state) {
  idl::StockWorkload w = MakeWorkload(state.range(0), 15);
  idl::Value universe = BuildStockUniverse(w);
  std::string d = w.dates[3].ToString();
  std::vector<idl::Query> requests;
  requests.push_back(
      MustQuery("?.euter.r-(.stkCode=stk0,.date=" + d + ")"));
  requests.push_back(MustQuery("?.chwab.r(.date=" + d + ", .stk0-=X)"));
  requests.push_back(MustQuery("?.ource.stk0-(.date=" + d + ")"));
  requests.push_back(
      MustQuery("?.euter.r+(.date=" + d + ",.stkCode=stk0,.clsPrice=55.0)"));
  requests.push_back(MustQuery("?.chwab.r(.date=" + d + ", +.stk0=55.0)"));
  requests.push_back(
      MustQuery("?.ource.stk0+(.date=" + d + ",.clsPrice=55.0)"));
  for (auto _ : state) {
    for (const auto& q : requests) {
      auto r = ApplyUpdateRequest(&universe, q);
      IDL_BENCH_CHECK(r.ok());
    }
  }
  state.counters["stocks"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_RawEquivalentOfDelIns)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMicrosecond);

// P2: remove + re-add a stock (data in euter, attribute in chwab, relation
// in ource) — the metadata-updating program.
void BM_P2_RmAddStkCycle(benchmark::State& state) {
  ProgramFixture f(state.range(0));
  idl::Value stk = idl::Value::String("stk1");
  idl::Value price = idl::Value::Real(60.0);
  for (auto _ : state) {
    f.Call("dbU.rmStk", {{"stk", stk}});
    f.Call("dbU.addStk", {{"stk", stk}});
    for (const auto& date : f.workload_.dates) {
      f.Call("dbU.insStk",
             {{"stk", stk}, {"date", idl::Value::Of(date)}, {"price", price}});
    }
  }
  state.counters["stocks"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_P2_RmAddStkCycle)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace

IDL_BENCH_MAIN()
