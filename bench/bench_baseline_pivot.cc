// B2 — the modern relational partial answer: PIVOT/UNPIVOT can move stock
// names between value and attribute position, so a relational system can
// unify euter+chwab into one shape with UNPIVOT + UNION. Compared against
// IDL's rule-based unification of all three schemas. Note what PIVOT cannot
// do at all: the ource schema (stocks as *relation* names) needs one
// UNION branch per relation — discovered from the catalog, exactly the
// expansion problem again — which is included in the baseline cost below.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "relational/algebra.h"
#include "relational/pivot.h"
#include "views/engine.h"

namespace {

using idl_bench::MakeWorkload;

void BM_Pivot_Unification(benchmark::State& state) {
  size_t stocks = state.range(0);
  size_t days = state.range(1);
  idl::StockWorkload w = MakeWorkload(stocks, days);
  idl::RelationalDatabase euter = BuildEuterDatabase(w);
  idl::RelationalDatabase chwab = BuildChwabDatabase(w);
  idl::RelationalDatabase ource = BuildOurceDatabase(w);

  for (auto _ : state) {
    // chwab -> euter shape via UNPIVOT.
    auto chwab_flat =
        Unpivot(*chwab.FindTable("r"), "date", "stkCode", "clsPrice");
    IDL_BENCH_CHECK(chwab_flat.ok());
    idl::ResultSet unified = ScanAll(*euter.FindTable("r"));
    auto u1 = Union(unified, ScanAll(*chwab_flat));
    IDL_BENCH_CHECK(u1.ok());
    unified = std::move(u1).value();
    // ource: one UNION branch per relation (no single relational operator
    // quantifies over relation names).
    for (const auto& name : ource.TableNames()) {
      const idl::Table& t = *ource.FindTable(name);
      idl::ResultSet branch = ScanAll(t);
      // Add the stkCode column the relation name encodes.
      idl::ResultSet widened;
      widened.schema = idl::Schema({t.schema().column(0),
                                    idl::Column{"stkCode",
                                                idl::ColumnType::kString},
                                    t.schema().column(1)});
      for (const auto& row : branch.rows) {
        widened.rows.push_back(idl::Row(
            {row.cells[0], idl::Value::String(name), row.cells[1]}));
      }
      auto u2 = Union(unified, widened);
      IDL_BENCH_CHECK(u2.ok());
      unified = std::move(u2).value();
    }
    IDL_BENCH_CHECK(unified.rows.size() == stocks * days);
  }
  state.counters["union_branches"] = static_cast<double>(2 + stocks);
}
BENCHMARK(BM_Pivot_Unification)
    ->Args({4, 10})
    ->Args({8, 25})
    ->Args({16, 50})
    ->Unit(benchmark::kMillisecond);

void BM_IDL_Unification(benchmark::State& state) {
  size_t stocks = state.range(0);
  size_t days = state.range(1);
  idl::StockWorkload w = MakeWorkload(stocks, days);
  idl::Value universe = BuildStockUniverse(w);
  idl::ViewEngine engine;
  for (size_t i = 0; i < 3; ++i) {
    auto rule = idl::ParseRule(idl::PaperViewRules()[i]);
    IDL_BENCH_CHECK(rule.ok());
    IDL_BENCH_CHECK(engine.AddRule(std::move(rule).value()).ok());
  }
  for (auto _ : state) {
    auto m = engine.Materialize(universe);
    IDL_BENCH_CHECK(m.ok());
    IDL_BENCH_CHECK(
        m->universe.FindField("dbI")->FindField("p")->SetSize() ==
        stocks * days);
  }
  state.counters["rules"] = 3;
}
BENCHMARK(BM_IDL_Unification)
    ->Args({4, 10})
    ->Args({8, 25})
    ->Args({16, 50})
    ->Unit(benchmark::kMillisecond);

}  // namespace

IDL_BENCH_MAIN()
