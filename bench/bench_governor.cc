// Checkpoint overhead of the resource governor (common/governor.h).
//
// The governor promises that a governed-but-unconstrained run costs
// effectively nothing: a checkpoint is two relaxed atomics, the wall clock
// is consulted every 16th poll, and cell accounting only walks the base
// universe when a cell budget is actually set. This bench pins that claim on
// the 1000-stock recursive closure (the same DateChainTC workload as
// bench_seminaive — the materialization with by far the most checkpoints
// per unit of real work):
//
//   ClosureTC_Ungoverned      no governor at all (the legacy fast path)
//   ClosureTC_Governed        cancel token only, no budgets — pure
//                             checkpoint cost
//   ClosureTC_GovernedLimits  every budget armed (generously) — adds the
//                             budget compares and the base-universe cell
//                             walk
//
// Target: Governed and GovernedLimits within 2% of Ungoverned (CI smokes
// this bench in the release leg; compare the wall times in the --json
// output).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/governor.h"
#include "views/engine.h"

namespace {

using idl::EvalOptions;
using idl::GovernorLimits;
using idl::ResourceGovernor;
using idl::Value;
using idl::ViewEngine;

Value ChainUniverse(size_t stocks, size_t days) {
  idl::StockWorkload w = idl_bench::MakeWorkload(stocks, days);
  Value succ = Value::EmptyTuple();
  for (size_t s = 0; s < w.stocks.size(); ++s) {
    Value rel = Value::EmptySet();
    for (size_t d = 0; d + 1 < w.dates.size(); ++d) {
      Value e = Value::EmptyTuple();
      e.SetField("from", Value::Of(w.dates[d]));
      e.SetField("to", Value::Of(w.dates[d + 1]));
      rel.Insert(std::move(e));
    }
    succ.SetField(w.stocks[s], std::move(rel));
  }
  Value universe = Value::EmptyTuple();
  universe.SetField("succ", std::move(succ));
  return universe;
}

ViewEngine ClosureEngine() {
  ViewEngine engine;
  for (const char* text :
       {".reach.S(.from=X, .to=Y) <- .succ.S(.from=X, .to=Y)",
        ".reach.S(.from=X, .to=Z) <- "
        ".reach.S(.from=X, .to=Y), .succ.S(.from=Y, .to=Z)"}) {
    auto r = idl::ParseRule(text);
    IDL_BENCH_CHECK(r.ok());
    IDL_BENCH_CHECK(engine.AddRule(std::move(r).value()).ok());
  }
  return engine;
}

void RunClosure(benchmark::State& state, const GovernorLimits* limits) {
  size_t stocks = static_cast<size_t>(state.range(0));
  size_t days = static_cast<size_t>(state.range(1));
  Value universe = ChainUniverse(stocks, days);
  ViewEngine engine = ClosureEngine();
  EvalOptions options;  // semi-naive, auto parallelism: the production path
  uint64_t facts = 0;
  uint64_t checkpoints = 0;
  for (auto _ : state) {
    if (limits == nullptr) {
      auto m = engine.Materialize(universe, options);
      IDL_BENCH_CHECK(m.ok());
      facts = m->facts_derived;
      benchmark::DoNotOptimize(m->universe);
    } else {
      // A fresh governor per materialization, like Session builds one per
      // request.
      ResourceGovernor governor(*limits);
      auto m = engine.Materialize(universe, options, nullptr, &governor);
      IDL_BENCH_CHECK(m.ok());
      IDL_BENCH_CHECK(governor.Usage().abort_reason.empty());
      facts = m->facts_derived;
      checkpoints = governor.Usage().checkpoints;
      benchmark::DoNotOptimize(m->universe);
    }
  }
  state.counters["facts"] = static_cast<double>(facts);
  state.counters["checkpoints"] = static_cast<double>(checkpoints);
}

void BM_ClosureTC_Ungoverned(benchmark::State& state) {
  RunClosure(state, nullptr);
}

void BM_ClosureTC_Governed(benchmark::State& state) {
  static const GovernorLimits kNoLimits;  // cancel token only
  RunClosure(state, &kNoLimits);
}

void BM_ClosureTC_GovernedLimits(benchmark::State& state) {
  static const GovernorLimits kGenerous = [] {
    GovernorLimits limits;
    limits.deadline_ms = 10 * 60 * 1000;
    limits.max_passes = 1 << 20;
    limits.max_derivations = uint64_t{1} << 40;
    limits.max_universe_cells = uint64_t{1} << 40;
    return limits;
  }();
  RunClosure(state, &kGenerous);
}

#define GOV_ARGS Args({1000, 16})->Args({100, 16})
BENCHMARK(BM_ClosureTC_Ungoverned)->GOV_ARGS->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ClosureTC_Governed)->GOV_ARGS->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ClosureTC_GovernedLimits)
    ->GOV_ARGS->Unit(benchmark::kMillisecond);

}  // namespace

IDL_BENCH_MAIN()
