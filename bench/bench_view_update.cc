// P4: view updatability end to end — an update request against the dbE
// customized view, translated by the §7.2 programs into base updates, plus
// the re-materialization a subsequent view query pays. The faithfulness
// check (the updated view reflects the update) runs inside the measured
// region, as it is part of the paper's contract.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace {

using idl_bench::MakeWorkload;

void BM_ViewUpdateThroughProgram(benchmark::State& state) {
  size_t stocks = state.range(0);
  idl::StockWorkload w = MakeWorkload(stocks, 15);
  idl::Session session;
  IDL_BENCH_CHECK(session.RegisterDatabase(BuildEuterDatabase(w)).ok());
  IDL_BENCH_CHECK(session.RegisterDatabase(BuildChwabDatabase(w)).ok());
  IDL_BENCH_CHECK(session.RegisterDatabase(BuildOurceDatabase(w)).ok());
  IDL_BENCH_CHECK(session.DefineRules(idl::PaperViewRules()).ok());
  IDL_BENCH_CHECK(session.DefinePrograms(idl::PaperUpdatePrograms()).ok());

  std::string d = w.dates[4].ToString();
  std::string ins =
      "?.dbE.r+(.date=" + d + ", .stkCode=stk0, .clsPrice=777.0)";
  std::string del = "?.dbE.r-(.date=" + d + ", .stkCode=stk0)";
  std::string check = "?.dbE.r(.date=" + d + ", .stkCode=stk0, .clsPrice=777.0)";

  for (auto _ : state) {
    IDL_BENCH_CHECK(session.Update(ins).ok());
    auto visible = session.Query(check);  // forces re-materialization
    IDL_BENCH_CHECK(visible.ok() && visible->boolean());
    IDL_BENCH_CHECK(session.Update(del).ok());
  }
  state.counters["stocks"] = static_cast<double>(stocks);
}
BENCHMARK(BM_ViewUpdateThroughProgram)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

// The base-update path without the view layer, for comparison: same
// translation called directly as a program.
void BM_BaseUpdateWithoutViewLayer(benchmark::State& state) {
  size_t stocks = state.range(0);
  idl::StockWorkload w = MakeWorkload(stocks, 15);
  idl::Session session;
  IDL_BENCH_CHECK(session.RegisterDatabase(BuildEuterDatabase(w)).ok());
  IDL_BENCH_CHECK(session.RegisterDatabase(BuildChwabDatabase(w)).ok());
  IDL_BENCH_CHECK(session.RegisterDatabase(BuildOurceDatabase(w)).ok());
  IDL_BENCH_CHECK(session.DefinePrograms(idl::PaperUpdatePrograms()).ok());

  idl::Value stk = idl::Value::String("stk0");
  idl::Value date = idl::Value::Of(w.dates[4]);
  idl::Value price = idl::Value::Real(777.0);
  std::string check = "?.euter.r(.date=" + w.dates[4].ToString() +
                      ", .stkCode=stk0, .clsPrice=777.0)";
  for (auto _ : state) {
    IDL_BENCH_CHECK(
        session
            .CallProgram("dbU.insStk",
                         {{"stk", stk}, {"date", date}, {"price", price}})
            .ok());
    auto visible = session.Query(check);
    IDL_BENCH_CHECK(visible.ok() && visible->boolean());
    IDL_BENCH_CHECK(
        session.CallProgram("dbU.delStk", {{"stk", stk}, {"date", date}})
            .ok());
  }
  state.counters["stocks"] = static_cast<double>(stocks);
}
BENCHMARK(BM_BaseUpdateWithoutViewLayer)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace

IDL_BENCH_MAIN()
