// V4: value-discrepancy reconciliation. With a discrepancy rate d, the
// unified view p carries both prices for ~d of the (stock, day) cells (§6:
// "both prices are in the user's view"); pnew reconciles to one via a
// negation rule. Measures materialization cost and the surviving row counts
// as d grows.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "views/engine.h"

namespace {

using idl_bench::MakeWorkload;

void BM_ReconcileDiscrepancies(benchmark::State& state) {
  double rate = static_cast<double>(state.range(0)) / 100.0;
  size_t stocks = 8, days = 15;
  idl::StockWorkload w = MakeWorkload(stocks, days, rate);
  idl::Value universe = BuildStockUniverse(w);
  idl::ViewEngine engine;
  for (size_t i = 0; i < 3; ++i) {
    auto rule = idl::ParseRule(idl::PaperViewRules()[i]);
    IDL_BENCH_CHECK(rule.ok());
    IDL_BENCH_CHECK(engine.AddRule(std::move(rule).value()).ok());
  }
  auto pnew = idl::ParseRule(
      ".dbI.pnew(.date=D, .stk=S, .clsPrice=P) <- "
      ".dbI.p(.date=D, .stk=S, .clsPrice=P), "
      ".dbI.p!(.date=D, .stk=S, .clsPrice<P)");
  IDL_BENCH_CHECK(pnew.ok());
  IDL_BENCH_CHECK(engine.AddRule(std::move(pnew).value()).ok());

  size_t p_rows = 0, pnew_rows = 0;
  for (auto _ : state) {
    auto m = engine.Materialize(universe);
    IDL_BENCH_CHECK(m.ok());
    p_rows = m->universe.FindField("dbI")->FindField("p")->SetSize();
    pnew_rows = m->universe.FindField("dbI")->FindField("pnew")->SetSize();
  }
  // p holds both prices for discrepant cells; pnew exactly one per cell.
  IDL_BENCH_CHECK(pnew_rows == stocks * days);
  IDL_BENCH_CHECK(p_rows >= pnew_rows);
  state.counters["p_rows"] = static_cast<double>(p_rows);
  state.counters["pnew_rows"] = static_cast<double>(pnew_rows);
  state.counters["extra_rows"] = static_cast<double>(p_rows - pnew_rows);
}
BENCHMARK(BM_ReconcileDiscrepancies)->Arg(0)->Arg(10)->Arg(30)->Arg(50)
    ->Unit(benchmark::kMillisecond);

}  // namespace

IDL_BENCH_MAIN()
