// The multi-session server (src/server/server.h) under load: thousands of
// mixed reader/writer sessions against one universe, pure epoch-commit
// throughput through the single-writer queue, pinned-epoch read latency,
// and admission behaviour when the queue is saturated.
//
// Latency distributions land in the server.query_ms / server.commit_ms /
// server.commit_queue_ms histograms, so the metrics sidecar every bench
// binary writes (bench_util.h) carries p50/p95/p99 next to the wall-time
// rows once scripts/bench_all.sh merges it into BENCH_<sha>.json — that
// sidecar, not the console table, is the number the acceptance gate reads.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstddef>
#include <string>

#include "bench/bench_util.h"
#include "common/str_util.h"
#include "common/thread_pool.h"
#include "server/server.h"

namespace {

using idl::EvalOptions;
using idl::Server;
using idl::ServerOptions;
using idl::ServerSession;
using idl::StatusCode;
using idl::StrCat;
using idl::ThreadPool;

constexpr char kUnifiedRule[] =
    ".dbI.p(.date=D, .stk=S, .clsPrice=P) <- "
    ".euter.r(.date=D, .stkCode=S, .clsPrice=P)";
constexpr char kReadUnified[] = "?.dbI.p(.date=D, .stk=S, .clsPrice=P)";
constexpr char kReadBase[] = "?.euter.r(.date=D, .stkCode=S, .clsPrice=P)";

void PopulatePaper(Server* server, bool with_rule) {
  idl::PaperUniverse paper = idl::MakePaperUniverse(/*name_mappings=*/false);
  for (const auto& field : paper.universe.fields()) {
    IDL_BENCH_CHECK(
        server->RegisterDatabase(field.name, field.value).ok());
  }
  if (with_rule) IDL_BENCH_CHECK(server->DefineRule(kUnifiedRule).ok());
}

// N sessions per iteration, each a short mixed lifecycle: connect, read the
// unified view and the base relation, and (every tenth session) commit an
// insert+delete pair through the write queue — the universe returns to its
// baseline, so iterations are identical work. Sessions run on a pool wide
// enough to keep every core busy; `sessions/s` is the sustained rate.
void BM_ServerMixedSessions(benchmark::State& state) {
  Server server;
  PopulatePaper(&server, /*with_rule=*/true);
  IDL_BENCH_CHECK(server.PublishedEpoch().ok());
  const size_t num_sessions = static_cast<size_t>(state.range(0));
  ThreadPool pool(ThreadPool::DefaultWorkers());
  size_t sessions = 0;
  size_t commits = 0;
  for (auto _ : state) {
    pool.ParallelFor(num_sessions, [&](size_t task, size_t) {
      auto session = server.Connect();
      IDL_BENCH_CHECK(session.ok());
      auto unified = session->Query(kReadUnified);
      IDL_BENCH_CHECK(unified.ok());
      benchmark::DoNotOptimize(unified->rows.size());
      auto base = session->Query(kReadBase);
      IDL_BENCH_CHECK(base.ok());
      if (task % 10 == 0) {
        std::string row = StrCat("(.date=6/1/2001, .stkCode=w", task,
                                 ", .clsPrice=", 100 + task, ")");
        IDL_BENCH_CHECK(session->Update(StrCat("?.euter.r+", row)).ok());
        IDL_BENCH_CHECK(
            session->Update(StrCat("?.euter.r-(.date=6/1/2001, .stkCode=w",
                                   task, ")"))
                .ok());
      }
    });
    sessions += num_sessions;
    commits += 2 * (num_sessions + 9) / 10;
  }
  state.counters["sessions/s"] = benchmark::Counter(
      static_cast<double>(sessions), benchmark::Counter::kIsRate);
  state.counters["commits"] = static_cast<double>(commits);
}
BENCHMARK(BM_ServerMixedSessions)->Unit(benchmark::kMillisecond)
    ->Arg(100)->Arg(1000)->Arg(2000);

// Pure write path: one session streams insert/delete pairs through the
// commit queue; every commit snapshots and publishes an epoch, so
// `epochs/s` is the epoch-commit throughput of the server.
void BM_ServerCommitThroughput(benchmark::State& state) {
  Server server;
  PopulatePaper(&server, /*with_rule=*/state.range(0) != 0);
  auto session = server.Connect();
  IDL_BENCH_CHECK(session.ok());
  size_t commits = 0;
  for (auto _ : state) {
    IDL_BENCH_CHECK(
        session->Update("?.euter.r+(.date=6/1/2001, .stkCode=ww, "
                        ".clsPrice=1)")
            .ok());
    IDL_BENCH_CHECK(
        session->Update("?.euter.r-(.date=6/1/2001, .stkCode=ww)").ok());
    commits += 2;
  }
  state.counters["epochs/s"] = benchmark::Counter(
      static_cast<double>(commits), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServerCommitThroughput)
    ->Arg(0)->Arg(1)  // bare relation vs maintained unified view
    ->Unit(benchmark::kMicrosecond);

// Read latency at a pinned epoch — the hot path every reader session pays;
// feeds server.query_ms, whose p50/p99 the sidecar exports.
void BM_ServerPinnedRead(benchmark::State& state) {
  Server server;
  PopulatePaper(&server, /*with_rule=*/true);
  auto session = server.Connect();
  IDL_BENCH_CHECK(session.ok());
  for (auto _ : state) {
    auto answer = session->Query(kReadUnified);
    IDL_BENCH_CHECK(answer.ok());
    benchmark::DoNotOptimize(answer->rows.size());
  }
}
BENCHMARK(BM_ServerPinnedRead)->Unit(benchmark::kMicrosecond);

// Admission control at saturation: writers race a deliberately tiny queue;
// the accept/reject split shows what fraction of offered load the governor
// sheds instead of queueing unboundedly.
void BM_ServerOverloadAdmission(benchmark::State& state) {
  ServerOptions options;
  options.max_pending_commits = 2;
  Server server(options);
  PopulatePaper(&server, /*with_rule=*/false);
  IDL_BENCH_CHECK(server.PublishedEpoch().ok());
  ThreadPool pool(ThreadPool::DefaultWorkers());
  size_t accepted = 0;
  size_t rejected = 0;
  for (auto _ : state) {
    std::atomic<size_t> ok{0};
    std::atomic<size_t> shed{0};
    pool.ParallelFor(64, [&](size_t task, size_t) {
      std::string stk = StrCat("o", task);
      auto committed = server.Commit(
          StrCat("?.euter.r+(.date=6/2/2001, .stkCode=", stk,
                 ", .clsPrice=1)"));
      if (committed.ok()) {
        ++ok;
        // The cleanup delete competes for the same saturated queue: retry
        // until admitted so every iteration returns to the baseline.
        for (;;) {
          auto removed = server.Commit(StrCat(
              "?.euter.r-(.date=6/2/2001, .stkCode=", stk, ")"));
          if (removed.ok()) break;
          IDL_BENCH_CHECK(removed.status().code() ==
                          StatusCode::kResourceExhausted);
        }
      } else {
        IDL_BENCH_CHECK(committed.status().code() ==
                        StatusCode::kResourceExhausted);
        ++shed;
      }
    });
    accepted += ok.load();
    rejected += shed.load();
  }
  state.counters["accepted"] = static_cast<double>(accepted);
  state.counters["rejected"] = static_cast<double>(rejected);
}
BENCHMARK(BM_ServerOverloadAdmission)->Unit(benchmark::kMillisecond);

}  // namespace

IDL_BENCH_MAIN()
