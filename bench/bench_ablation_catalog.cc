// Ablation: genuine higher-order metadata queries vs the classic
// first-order workaround of *reifying* the catalog into ordinary relations
// and querying those. The workaround answers pure-metadata questions at
// comparable cost — but it pays a full reification pass whenever the
// universe changes, and mixed data/metadata questions still need the
// higher-order engine (the catalog only names things; it does not hold the
// prices).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "catalog/catalog.h"

namespace {

using idl_bench::MakeWorkload;
using idl_bench::MustQuery;
using idl_bench::RunQuery;

void BM_Metadata_HigherOrder(benchmark::State& state) {
  idl::StockWorkload w = MakeWorkload(state.range(0), 5);
  idl::Value universe = BuildStockUniverse(w);
  idl::Query q = MustQuery("?.X.Y(.clsPrice)");
  size_t rows = 0;
  for (auto _ : state) rows = RunQuery(universe, q);
  IDL_BENCH_CHECK(rows == 1 + static_cast<size_t>(state.range(0)));
}
BENCHMARK(BM_Metadata_HigherOrder)->Arg(8)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

void BM_Metadata_ReifiedCatalog(benchmark::State& state) {
  idl::StockWorkload w = MakeWorkload(state.range(0), 5);
  idl::Value universe = BuildStockUniverse(w);
  auto with = idl::WithCatalog(universe);
  IDL_BENCH_CHECK(with.ok());
  idl::Query q = MustQuery("?.cat.attributes(.attr=clsPrice, .db=X, .rel=Y)");
  size_t rows = 0;
  for (auto _ : state) rows = RunQuery(*with, q);
  IDL_BENCH_CHECK(rows == 1 + static_cast<size_t>(state.range(0)));
}
BENCHMARK(BM_Metadata_ReifiedCatalog)->Arg(8)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

// What the workaround really costs: the reification pass that must rerun
// after every schema-affecting update.
void BM_CatalogReification(benchmark::State& state) {
  idl::StockWorkload w = MakeWorkload(state.range(0), 5);
  idl::Value universe = BuildStockUniverse(w);
  for (auto _ : state) {
    idl::Value catalog = idl::BuildCatalog(universe);
    benchmark::DoNotOptimize(catalog.TupleSize());
  }
  state.counters["relations"] = static_cast<double>(state.range(0) + 2);
}
BENCHMARK(BM_CatalogReification)->Arg(8)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

// Mixed data/metadata: "which stocks (as schema elements) closed above 200"
// — the catalog alone cannot answer this; joining catalog names back into
// data still requires the higher-order step the catalog was meant to avoid.
void BM_MixedQuery_HigherOrderOnly(benchmark::State& state) {
  idl::StockWorkload w = MakeWorkload(state.range(0), 20);
  idl::Value universe = BuildStockUniverse(w);
  idl::Query q = MustQuery("?.ource.S(.clsPrice>200)");
  for (auto _ : state) {
    size_t rows = RunQuery(universe, q);
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_MixedQuery_HigherOrderOnly)->Arg(8)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

IDL_BENCH_MAIN()
