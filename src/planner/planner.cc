#include "planner/planner.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "common/metrics.h"
#include "common/str_util.h"
#include "common/trace.h"
#include "eval/index.h"
#include "eval/matcher.h"
#include "eval/vector_exec.h"
#include "relational/columnar.h"
#include "syntax/analysis.h"

namespace idl {

void PlanInfo::Merge(const PlanInfo& other) {
  planned |= other.planned;
  fell_back |= other.fell_back;
  plan_ms += other.plan_ms;
  est_rows += other.est_rows;
  actual_rows += other.actual_rows;
  if (summary.empty()) summary = other.summary;
}

namespace {

Counter* PlansCounter() {
  static Counter* c = MetricsRegistry::Global().counter("planner.plans");
  return c;
}
Counter* ReordersCounter() {
  static Counter* c = MetricsRegistry::Global().counter("planner.reorders");
  return c;
}
Counter* SpecializationsCounter() {
  static Counter* c =
      MetricsRegistry::Global().counter("planner.specializations");
  return c;
}
Counter* FallbacksCounter() {
  static Counter* c = MetricsRegistry::Global().counter("planner.fallbacks");
  return c;
}

// ---- Static shape analysis ------------------------------------------------

// Branch points every successful match path through `expr` crosses: set
// crossings and higher-order attribute items, excluding anything under
// negation (the recorder is suspended there). This is the per-conjunct
// segment length of the emission key.
size_t SegmentLength(const Expr& e) {
  if (e.negated) return 0;
  switch (e.kind) {
    case Expr::Kind::kEpsilon:
    case Expr::Kind::kAtomic:
      return 0;
    case Expr::Kind::kSet:
      return 1 + (e.set_inner != nullptr ? SegmentLength(*e.set_inner) : 0);
    case Expr::Kind::kTuple: {
      size_t n = 0;
      for (const TupleItem& item : e.items) {
        if (item.attr_is_var) ++n;
        if (item.expr != nullptr) n += SegmentLength(*item.expr);
      }
      return n;
    }
  }
  return 0;
}

bool TermMayError(const Term& t) {
  // Any arithmetic can raise (unbound operand, non-numeric, div by zero).
  return t.kind == Term::Kind::kArith;
}

// Whether matching `e` can raise an evaluation error under *some*
// substitution. Conjuncts for which this is false are safe to move: they
// fail silently (kind mismatches, absent attributes) or bind, never error,
// regardless of which variables happen to be bound when they run.
bool MayError(const Expr& e) {
  // Errors inside a negation probe propagate out, so negation is no shield.
  switch (e.kind) {
    case Expr::Kind::kEpsilon:
      return false;
    case Expr::Kind::kAtomic:
      if (e.update != UpdateOp::kNone) return true;
      if (!e.guard_var.empty()) {
        // A guard evaluates its term unconditionally (possibly-unbound
        // operand) and requires a bound guard variable for non-`=` relops.
        return TermMayError(e.term) || e.term.kind == Term::Kind::kVar ||
               e.relop != RelOp::kEq;
      }
      if (TermMayError(e.term)) return true;
      // `X relop c` with X unbound and relop != `=` is unsafe.
      return e.term.kind == Term::Kind::kVar && e.relop != RelOp::kEq;
    case Expr::Kind::kTuple:
      if (e.update != UpdateOp::kNone) return true;
      for (const TupleItem& item : e.items) {
        if (item.update != UpdateOp::kNone) return true;
        if (item.expr != nullptr && MayError(*item.expr)) return true;
      }
      return false;
    case Expr::Kind::kSet:
      if (e.update != UpdateOp::kNone) return true;
      return e.set_inner != nullptr && MayError(*e.set_inner);
  }
  return true;
}

size_t CountAttrVars(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kEpsilon:
    case Expr::Kind::kAtomic:
      return 0;
    case Expr::Kind::kSet:
      return e.set_inner != nullptr ? CountAttrVars(*e.set_inner) : 0;
    case Expr::Kind::kTuple: {
      size_t n = 0;
      for (const TupleItem& item : e.items) {
        if (item.attr_is_var) ++n;
        if (item.expr != nullptr) n += CountAttrVars(*item.expr);
      }
      return n;
    }
  }
  return 0;
}

// ---- Navigation -----------------------------------------------------------

// Peels single-item constant-attribute tuple wrappers (`.db` then `.rel`),
// following the navigated value alongside. Stops at the first node that is
// not such a wrapper. `value` may end null (absent attribute: the conjunct
// is dead) or non-null of any kind.
struct Navigation {
  const Expr* node;
  const Value* value;  // null = navigation hit an absent attribute
  size_t depth = 0;    // tuple wrappers peeled
};

Navigation Navigate(const Expr& root, const Value& universe) {
  Navigation nav{&root, &universe, 0};
  while (nav.node->kind == Expr::Kind::kTuple && !nav.node->negated &&
         nav.node->update == UpdateOp::kNone && nav.node->items.size() == 1) {
    const TupleItem& item = nav.node->items[0];
    if (item.attr_is_var || item.is_guard() ||
        item.update != UpdateOp::kNone || item.expr == nullptr) {
      break;
    }
    nav.node = item.expr.get();
    ++nav.depth;
    if (nav.value != nullptr) {
      nav.value =
          nav.value->is_tuple() ? nav.value->FindField(item.attr) : nullptr;
    }
  }
  return nav;
}

// ---- Cardinality estimation ----------------------------------------------

constexpr double kDefaultBase = 16.0;   // unknown-shape cardinality guess
constexpr double kDefaultEqSel = 0.1;   // `=`-item with no distinct stats
constexpr double kDefaultRelSel = 0.4;  // <,<=,>,>= filter

// One `.attr relop term` filter item of a conjunct's inner tuple, with the
// selectivity it contributes once its operand is ground.
struct FilterFactor {
  std::string var;  // empty: always ground (constant operand)
  double sel = kDefaultEqSel;
};

struct ConjEstimate {
  double base = kDefaultBase;
  std::vector<FilterFactor> factors;
  std::vector<std::string> vars;  // all variables the conjunct mentions

  double Cost(const std::unordered_set<std::string>& bound) const {
    double c = base;
    for (const FilterFactor& f : factors) {
      if (f.var.empty() || bound.count(f.var) != 0) c *= f.sel;
    }
    return c;
  }
};

// Per-attribute selectivity from the columnar page's lazy hash index when
// one is already built (plan time never forces a build), else the default.
double EqSelectivity(const std::shared_ptr<const ColumnarRelation>& page,
                     const std::string& attr, size_t cardinality) {
  if (page != nullptr && cardinality > 0) {
    int col = page->FindColumn(attr);
    if (col >= 0) {
      size_t distinct = page->DistinctIfIndexed(static_cast<size_t>(col));
      if (distinct > 0) {
        return 1.0 / static_cast<double>(distinct);
      }
    }
  }
  return kDefaultEqSel;
}

ConjEstimate Estimate(const ConjunctSource& source, const EvalOptions& options,
                      SetIndexCache* cache) {
  ConjEstimate est;
  source.expr->CollectVars(&est.vars);
  Navigation nav = Navigate(*source.expr, *source.universe);
  if (nav.value == nullptr) {
    // Absent attribute: the conjunct matches nothing. Cheapest possible —
    // running it first short-circuits the whole enumeration.
    est.base = 0.0;
    return est;
  }

  const Expr* node = nav.node;
  const Value* value = nav.value;
  double fanout = 1.0;

  // A relation-position attribute variable (`.db.R(...)`) ranges over the
  // navigated tuple's fields; estimate against their total size.
  if (node->kind == Expr::Kind::kTuple && !node->negated &&
      node->items.size() == 1 && node->items[0].attr_is_var &&
      node->items[0].expr != nullptr) {
    if (!value->is_tuple()) {
      est.base = 0.0;
      return est;
    }
    double total = 0.0;
    for (const auto& field : value->fields()) {
      if (field.value.is_set()) total += field.value.SetSize();
    }
    est.base = total;
    // The instances share the inner shape; fall through with an unknown
    // concrete set (no per-column stats), keeping the inner filters.
    node = node->items[0].expr.get();
    value = nullptr;
  }

  if (node->kind != Expr::Kind::kSet || node->negated) {
    return est;  // unknown shape: default base
  }

  std::shared_ptr<const ColumnarRelation> page;
  size_t cardinality = 0;
  if (value != nullptr) {
    if (!value->is_set()) {
      est.base = 0.0;
      return est;
    }
    cardinality = value->SetSize();
    est.base = static_cast<double>(cardinality);
    if (options.substrate == EvalSubstrate::kColumnar && cache != nullptr) {
      page = cache->Columnar(*value, options.columnar_store);
    }
  }

  const Expr* inner = node->set_inner.get();
  if (inner == nullptr || inner->kind != Expr::Kind::kTuple) {
    est.base *= fanout;
    return est;
  }
  for (const TupleItem& item : inner->items) {
    if (item.attr_is_var) {
      // Element-level attribute variable: fans out over each element's
      // attributes (catalog arity).
      RelationStats rs = value != nullptr ? StatsForRelation(*value)
                                          : RelationStats{};
      fanout *= rs.arity > 0 ? static_cast<double>(rs.arity) : 4.0;
      continue;
    }
    if (item.is_guard() || item.expr == nullptr) continue;
    const Expr& sub = *item.expr;
    if (sub.negated || sub.kind != Expr::Kind::kAtomic ||
        !sub.guard_var.empty()) {
      continue;
    }
    if (sub.relop == RelOp::kEq) {
      double sel = EqSelectivity(page, item.attr, cardinality);
      if (sub.term.kind == Term::Kind::kConst) {
        est.factors.push_back(FilterFactor{"", sel});
      } else if (sub.term.kind == Term::Kind::kVar) {
        // Bound at run time: filters. Unbound: binds (no reduction).
        est.factors.push_back(FilterFactor{sub.term.var, sel});
      }
    } else if (sub.term.kind == Term::Kind::kConst) {
      est.factors.push_back(FilterFactor{"", kDefaultRelSel});
    }
  }
  est.base *= fanout;
  return est;
}

// ---- Higher-order specialization -----------------------------------------

constexpr size_t kMaxInstances = 256;

// A specializable higher-order conjunct: exactly one attribute variable, in
// a position whose name range is enumerable from the live universe, with no
// branch point before it other than its own enclosing set crossing.
struct SpecSite {
  size_t splice_slot = 0;  // branch-point index of the attr-var (written)
  std::string var;
  std::vector<std::string> names;  // instance names, field order
  // Path to the attr-var item inside a clone: peel `depth` single-item
  // tuples, then (if `through_set`) enter set_inner, then items[item_index].
  size_t depth = 0;
  bool through_set = false;
  size_t item_index = 0;
};

std::optional<SpecSite> FindSpecSite(const ConjunctSource& source,
                                     const EvalOptions& options,
                                     SetIndexCache* cache) {
  const Expr& root = *source.expr;
  if (CountAttrVars(root) != 1) return std::nullopt;
  Navigation nav = Navigate(root, *source.universe);
  if (nav.value == nullptr) return std::nullopt;  // dead conjunct: no need

  SpecSite site;
  site.depth = nav.depth;

  const Expr* node = nav.node;
  if (node->negated) return std::nullopt;

  if (node->kind == Expr::Kind::kTuple) {
    // Relation-position variable: `.db.R(...)` — R ranges over the fields
    // of the navigated tuple (their names are exact at plan time; the
    // universe is frozen for the whole enumeration phase).
    if (node->items.size() != 1 || !node->items[0].attr_is_var) {
      return std::nullopt;
    }
    if (!nav.value->is_tuple()) return std::nullopt;
    site.splice_slot = 0;
    site.through_set = false;
    site.item_index = 0;
    site.var = node->items[0].attr;
    for (const auto& field : nav.value->fields()) {
      site.names.push_back(field.name);
    }
  } else if (node->kind == Expr::Kind::kSet) {
    // Attribute-position variable inside a relation: `.db.rel(.., .V=.., ..)`
    // — V ranges over element attributes. Requires a *uniform* flat
    // relation so the ordinal of a name inside any element's field list
    // equals its ordinal in the shared list (the emission key depends on
    // it). A columnar page is exactly that proof; under kNested the
    // catalog's uniformity stat decides.
    const Expr* inner = node->set_inner.get();
    if (inner == nullptr || inner->kind != Expr::Kind::kTuple ||
        inner->negated) {
      return std::nullopt;
    }
    if (!nav.value->is_set()) return std::nullopt;
    size_t k = inner->items.size();
    size_t before = 0;
    for (size_t i = 0; i < inner->items.size(); ++i) {
      const TupleItem& item = inner->items[i];
      if (item.attr_is_var) {
        k = i;
        break;
      }
      if (item.expr != nullptr) before += SegmentLength(*item.expr);
    }
    if (k == inner->items.size()) return std::nullopt;  // var nested deeper
    if (before != 0) return std::nullopt;  // branch point precedes the var
    std::shared_ptr<const ColumnarRelation> page;
    if (options.substrate == EvalSubstrate::kColumnar && cache != nullptr) {
      page = cache->Columnar(*nav.value, options.columnar_store);
    }
    if (page != nullptr) {
      for (const auto& col : page->columns()) site.names.push_back(col.name);
    } else {
      RelationStats rs = StatsForRelation(*nav.value);
      if (!rs.uniform) return std::nullopt;
      if (nav.value->SetSize() > 0) {
        for (const auto& field : nav.value->elements()[0].fields()) {
          site.names.push_back(field.name);
        }
      }
    }
    site.splice_slot = 1;  // after the set crossing
    site.through_set = true;
    site.item_index = k;
    site.var = inner->items[k].attr;
  } else {
    return std::nullopt;
  }

  if (site.names.size() > kMaxInstances) return std::nullopt;
  return site;
}

// Clones the conjunct with the attribute variable replaced by the concrete
// name `instance` (first-order; the columnar substrate can vectorize it).
ExprPtr SpecializeInstance(const Expr& root, const SpecSite& site,
                           const std::string& instance) {
  ExprPtr clone = root.Clone();
  Expr* e = clone.get();
  for (size_t i = 0; i < site.depth; ++i) e = e->items[0].expr.get();
  if (site.through_set) e = e->set_inner.get();
  TupleItem& item = e->items[site.item_index];
  item.attr_is_var = false;
  item.attr = instance;
  return clone;
}

// ---- Planned execution ----------------------------------------------------

struct PlannedStep {
  const ConjunctSource* src = nullptr;
  size_t written_pos = 0;   // index in the written order
  size_t seg_len = 0;       // branch points this conjunct records
  size_t written_off = 0;   // segment offset in the written-order key
  std::optional<VectorConjunctPlan> plan;  // non-specialized vector plan

  // Specialization (names/instances parallel).
  bool specialized = false;
  std::string var;
  size_t splice_slot = 0;
  std::vector<std::string> names;
  std::vector<ExprPtr> instances;
  std::vector<std::optional<VectorConjunctPlan>> instance_plans;

  // Maps an exec-order segment position to its written-order slot. For a
  // specialized step the instance ordinal is pushed first but belongs at
  // `splice_slot`; everything else keeps its relative order.
  size_t Remap(size_t k) const {
    if (!specialized) return k;
    if (k == 0) return splice_slot;
    return k <= splice_slot ? k - 1 : k;
  }
};

// Buffered emissions live in two parallel stores: one flat int32 buffer
// holding every emission's written-order key contiguously (emission i's key
// at [i*total_len, (i+1)*total_len)) and one vector of sigma snapshots.
// Sorting permutes an index vector over the flat keys — no per-emission
// allocation, and the comparator walks cache-resident spans.
struct EmissionBuffer {
  std::vector<int32_t> keys;
  std::vector<Substitution> sigmas;
};

struct PlannedChain {
  std::vector<PlannedStep>* steps;
  Matcher* matcher;
  ChoiceRecorder* recorder;  // null in streaming mode (no keys needed)
  const ResourceGovernor* governor;
  const EvalOptions* options;
  EvalStats* stats;
  SetIndexCache* page_cache;
  EmissionBuffer* buffer;
  size_t total_len = 0;
  // Streaming mode: the plan kept the written order and every specialized
  // site splices at slot 0, so the DFS below visits bindings in exactly the
  // written emission order — stream straight to the caller, no buffer/sort.
  const std::function<bool(const Substitution&)>* stream_cb = nullptr;
  size_t emitted = 0;
  Status error = Status::Ok();

  bool Emit(Substitution* sigma) {
    if (stream_cb != nullptr) {
      ++emitted;
      return (*stream_cb)(*sigma);
    }
    const std::vector<int32_t>& path = recorder->path();
    if (path.size() != total_len) {
      // Every successful match path records exactly total_len ordinals; a
      // mismatch means the static shape analysis missed a branch point.
      // Fail closed: the caller re-runs in written order.
      error = Internal("planner: branch-point path length mismatch");
      return false;
    }
    size_t base = buffer->keys.size();
    buffer->keys.resize(base + total_len);
    size_t off = 0;
    for (const PlannedStep& s : *steps) {
      for (size_t k = 0; k < s.seg_len; ++k) {
        buffer->keys[base + s.written_off + s.Remap(k)] = path[off + k];
      }
      off += s.seg_len;
    }
    buffer->sigmas.push_back(*sigma);
    return true;
  }

  bool RunExpr(const PlannedStep& s, const Expr& expr,
               const std::optional<VectorConjunctPlan>& plan, size_t index,
               Substitution* sigma) {
    if (plan.has_value()) {
      bool fell_back = false;
      Result<bool> r = ExecuteVectorConjunct(
          *plan, *s.src->universe, page_cache, options->columnar_store,
          options->use_indexes, options->index_min_set_size, stats, sigma,
          [&] { return Step(index + 1, sigma); }, &fell_back, recorder);
      if (!fell_back) {
        if (!r.ok()) {
          error = r.status();
          return false;
        }
        return *r;
      }
    }
    Result<bool> r =
        matcher->Match(*s.src->universe, expr, sigma,
                       [&](const Substitution&) { return Step(index + 1, sigma); });
    if (!r.ok()) {
      error = r.status();
      return false;
    }
    return *r;
  }

  bool Step(size_t index, Substitution* sigma) {
    if (governor != nullptr) {
      Status st = governor->Checkpoint();
      if (!st.ok()) {
        error = std::move(st);
        return false;
      }
    }
    if (index == steps->size()) return Emit(sigma);
    const PlannedStep& s = (*steps)[index];
    if (!s.specialized) return RunExpr(s, *s.src->expr, s.plan, index, sigma);

    const Value* bound = sigma->Lookup(s.var);
    // Matcher semantics: a bound non-string higher-order variable fails
    // silently; a bound string runs only its own instance.
    if (bound != nullptr && !bound->is_string()) return true;
    // Snapshot by value: deeper Binds inside RunExpr may reallocate sigma's
    // storage, so `bound` must not be dereferenced across iterations.
    const bool was_bound = bound != nullptr;
    const std::string bound_name = was_bound ? bound->as_string() : "";
    for (size_t n = 0; n < s.names.size(); ++n) {
      if (was_bound && bound_name != s.names[n]) continue;
      size_t mark = sigma->Mark();
      size_t cmark = recorder != nullptr ? recorder->Mark() : 0;
      if (recorder != nullptr) recorder->Push(static_cast<int32_t>(n));
      if (!was_bound) sigma->Bind(s.var, Value::String(s.names[n]));
      bool keep_going =
          RunExpr(s, *s.instances[n], s.instance_plans[n], index, sigma);
      if (recorder != nullptr) recorder->TruncateTo(cmark);
      sigma->RollbackTo(mark);
      if (!error.ok() || !keep_going) return false;
    }
    return true;
  }
};

std::string SummarizeOrder(const std::vector<size_t>& order,
                           const std::vector<PlannedStep>& steps) {
  std::string out = "order=[";
  for (size_t i = 0; i < order.size(); ++i) {
    if (i > 0) out += ' ';
    out += std::to_string(order[i]);
  }
  out += ']';
  for (const PlannedStep& s : steps) {
    if (s.specialized) {
      out += StrCat(" spec=[", s.written_pos, ":", s.var, "*",
                    s.names.size(), "]");
    }
  }
  return out;
}

}  // namespace

PlannedEnumerate TryPlannedEnumerate(
    const std::vector<ConjunctSource>& ordered, const EvalOptions& options,
    EvalStats* stats, SetIndexCache* page_cache,
    const std::function<bool(const Substitution&)>& cb,
    const ResourceGovernor* governor, PlanInfo* info) {
  PlannedEnumerate out;
  if (ordered.empty()) return out;

  PlanInfo local;
  auto plan_start = std::chrono::steady_clock::now();
  std::vector<PlannedStep> steps;
  std::vector<size_t> order;
  bool reordered = false;
  bool any_spec = false;
  double est_product = 1.0;
  {
    TraceSpan span("plan");

    // Classify: a conjunct is movable when it can never raise — then the
    // set of substitutions reaching any later (barrier) conjunct is
    // invariant under permuting the movables, and so is whether that
    // barrier errors.
    std::vector<bool> movable(ordered.size());
    for (size_t i = 0; i < ordered.size(); ++i) {
      const Expr& e = *ordered[i].expr;
      movable[i] = !MayError(e) && !ContainsNegation(e);
    }

    // Structural bail-out before any estimation: a plan can only differ
    // from the written order via reordering (needs a run of two or more
    // consecutive movables) or specialization (needs a movable conjunct
    // with exactly one metadata variable). First-order rule bodies —
    // the common case — decline here without touching the universe.
    bool can_transform = false;
    size_t run_len = 0;
    for (size_t i = 0; i < ordered.size(); ++i) {
      run_len = movable[i] ? run_len + 1 : 0;
      if (run_len >= 2) can_transform = true;
      if (movable[i] && CountAttrVars(*ordered[i].expr) == 1) {
        can_transform = true;
      }
    }
    if (!can_transform) {
      local.plan_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - plan_start)
                          .count();
      if (info != nullptr) info->Merge(local);
      return out;  // kDeclined
    }

    std::vector<ConjEstimate> estimates(ordered.size());
    for (size_t i = 0; i < ordered.size(); ++i) {
      estimates[i] = Estimate(ordered[i], options, page_cache);
    }

    // Greedy bound-first ordering inside each maximal run of movables;
    // barriers pin their written positions.
    std::unordered_set<std::string> bound;
    order.reserve(ordered.size());
    size_t i = 0;
    while (i < ordered.size()) {
      if (!movable[i]) {
        order.push_back(i);
        for (const std::string& v : estimates[i].vars) bound.insert(v);
        ++i;
        continue;
      }
      size_t j = i;
      while (j < ordered.size() && movable[j]) ++j;
      std::vector<size_t> run;
      for (size_t k = i; k < j; ++k) run.push_back(k);
      while (!run.empty()) {
        size_t best = 0;
        double best_cost = estimates[run[0]].Cost(bound);
        for (size_t k = 1; k < run.size(); ++k) {
          double c = estimates[run[k]].Cost(bound);
          if (c < best_cost) {
            best = k;
            best_cost = c;
          }
        }
        size_t pick = run[best];
        est_product *= std::max(best_cost, 1.0);
        order.push_back(pick);
        for (const std::string& v : estimates[pick].vars) bound.insert(v);
        run.erase(run.begin() + best);
      }
      i = j;
    }
    for (size_t k = 0; k < order.size(); ++k) reordered |= order[k] != k;

    // Build the execution steps in planned order; segment offsets in the
    // written-order key come from written positions.
    std::vector<size_t> seg_len(ordered.size());
    std::vector<size_t> written_off(ordered.size());
    size_t off = 0;
    for (size_t k = 0; k < ordered.size(); ++k) {
      seg_len[k] = SegmentLength(*ordered[k].expr);
      written_off[k] = off;
      off += seg_len[k];
    }

    steps.reserve(order.size());
    for (size_t pos : order) {
      PlannedStep step;
      step.src = &ordered[pos];
      step.written_pos = pos;
      step.seg_len = seg_len[pos];
      step.written_off = written_off[pos];
      if (movable[pos]) {
        std::optional<SpecSite> site =
            FindSpecSite(ordered[pos], options, page_cache);
        if (site.has_value()) {
          step.specialized = true;
          step.var = std::move(site->var);
          step.splice_slot = site->splice_slot;
          step.names = std::move(site->names);
          step.instances.reserve(step.names.size());
          step.instance_plans.reserve(step.names.size());
          for (const std::string& name : step.names) {
            step.instances.push_back(
                SpecializeInstance(*ordered[pos].expr, *site, name));
            if (options.substrate == EvalSubstrate::kColumnar) {
              step.instance_plans.push_back(
                  CompileVectorConjunct(*step.instances.back()));
            } else {
              step.instance_plans.push_back(std::nullopt);
            }
          }
          any_spec = true;
        }
      }
      if (!step.specialized &&
          options.substrate == EvalSubstrate::kColumnar) {
        step.plan = CompileVectorConjunct(*ordered[pos].expr);
      }
      steps.push_back(std::move(step));
    }
  }
  local.plan_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - plan_start)
                      .count();

  if (!reordered && !any_spec) {
    // The plan is the written order: run it without the buffering detour.
    if (info != nullptr) info->Merge(local);
    return out;  // kDeclined
  }

  PlansCounter()->Increment();
  if (reordered) ReordersCounter()->Increment();
  if (any_spec) SpecializationsCounter()->Increment();

  local.planned = true;
  local.est_rows = static_cast<uint64_t>(std::min(est_product, 1e18));
  local.summary = SummarizeOrder(order, steps);

  // Streaming fast-path: with the written order kept and every specialized
  // site splicing at slot 0 (relation-position, shape A — the instance loop
  // replaces the first branch point of its conjunct and enumerates names in
  // written field order), the planned DFS is node-for-node the written-order
  // DFS. Emissions already come out in canonical order, so the buffer+sort
  // detour is pure overhead — and because barriers stay pinned and movables
  // cannot raise, any error surfaces at exactly the written point too.
  bool streaming = !reordered;
  for (const PlannedStep& s : steps) {
    if (s.specialized && s.splice_slot != 0) streaming = false;
  }

  EvalStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  Matcher matcher(stats, options.use_indexes ? page_cache : nullptr);
  ChoiceRecorder recorder;
  if (!streaming) matcher.set_recorder(&recorder);
  Substitution sigma;
  EmissionBuffer buffer;
  size_t total_len = 0;
  for (const PlannedStep& s : steps) total_len += s.seg_len;
  PlannedChain chain{&steps,
                     &matcher,
                     streaming ? nullptr : &recorder,
                     governor,
                     &options,
                     stats,
                     page_cache,
                     &buffer,
                     total_len,
                     streaming ? &cb : nullptr};
  bool keep_going = chain.Step(0, &sigma);

  if (!chain.error.ok()) {
    if (streaming || chain.error.code() == StatusCode::kCancelled ||
        chain.error.code() == StatusCode::kDeadlineExceeded ||
        chain.error.code() == StatusCode::kResourceExhausted) {
      // Governor abort: surface directly (the caller discards partial work
      // on abort, as it would under written order). Streaming errors also
      // surface directly — the prefix already reached the caller in written
      // order and the error fired at the written point, so a written-order
      // re-run would double-emit; this IS the oracle's behavior.
      if (info != nullptr) info->Merge(local);
      out.kind = PlannedEnumerate::Kind::kDone;
      out.result = chain.error;
      return out;
    }
    // Evaluation error: the written order may error elsewhere (or emit
    // before erroring). Discard everything and let the caller re-run in
    // written order — enumeration is read-only, so the re-run is safe.
    FallbacksCounter()->Increment();
    local.fell_back = true;
    if (info != nullptr) info->Merge(local);
    out.kind = PlannedEnumerate::Kind::kErrorFallback;
    return out;
  }

  if (streaming) {
    local.actual_rows = chain.emitted;
    if (info != nullptr) info->Merge(local);
    out.kind = PlannedEnumerate::Kind::kDone;
    out.result = keep_going;
    return out;
  }

  // Replay in written order: lexicographic on the reconstructed keys. Keys
  // are unique by construction, so sorting emission indices (with the index
  // itself — the emission sequence — as tiebreak) is deterministic.
  size_t rows = buffer.sigmas.size();
  std::vector<uint32_t> idx(rows);
  for (size_t i = 0; i < rows; ++i) idx[i] = static_cast<uint32_t>(i);
  const int32_t* keys = buffer.keys.data();
  std::sort(idx.begin(), idx.end(), [&](uint32_t a, uint32_t b) {
    const int32_t* ka = keys + static_cast<size_t>(a) * total_len;
    const int32_t* kb = keys + static_cast<size_t>(b) * total_len;
    for (size_t k = 0; k < total_len; ++k) {
      if (ka[k] != kb[k]) return ka[k] < kb[k];
    }
    return a < b;
  });
  local.actual_rows = rows;
  if (info != nullptr) info->Merge(local);
  out.kind = PlannedEnumerate::Kind::kDone;
  for (uint32_t i : idx) {
    if (!cb(buffer.sigmas[i])) {
      out.result = false;
      return out;
    }
  }
  out.result = true;
  return out;
}

}  // namespace idl
