// Cost-based rule-body planner (docs/PLANNER.md).
//
// Runs between stratification and evaluation: given the post-defer written
// conjunct order of one rule body (or query), it
//  (1) estimates per-conjunct cardinalities from live relation sizes, the
//      catalog's relation stats (arity, uniformity) and the columnar pages'
//      per-column index stats;
//  (2) greedily reorders conjuncts bound-variable-first — the conjunct with
//      the smallest estimated intermediate given the variables already
//      bound runs next, so bindings pass sideways into later probes, and a
//      query's bound arguments push down into the first probe (the
//      magic-set effect for this left-to-right evaluator);
//  (3) specializes a higher-order conjunct — a variable in attribute
//      position whose range (relation or attribute names) is enumerable
//      from the live universe at plan time — into its first-order
//      instances, each of which the columnar substrate can then vectorize.
//
// The contract with EvalOptions::planner == kWrittenOrder (the oracle) is
// byte identity: same emitted substitutions in the same order, same errors
// with the same timing. Two mechanisms enforce it:
//  * Emission-order reconstruction. Every successful match path crosses a
//    statically known number of branch points (set crossings + attribute
//    variables outside negation), and every branch enumerates ordinals
//    ascending, so the written-order emission sequence is exactly the
//    lexicographic order of the per-emission branch-ordinal keys (segments
//    arranged in written conjunct order). The planned executor records
//    each emission's key (eval/matcher.h ChoiceRecorder), buffers, sorts,
//    and replays — the callback sees the written order.
//  * Error barriers. Conjuncts that can raise (arithmetic, non-`=` relops
//    on possibly-unbound variables, negation, updates) hold their written
//    positions; only runs of never-erroring conjuncts between them are
//    reordered. If a planned run errors anyway, the buffered output is
//    discarded and the caller re-runs the whole enumeration in written
//    order, reproducing the written error and its timing exactly.

#ifndef IDL_PLANNER_PLANNER_H_
#define IDL_PLANNER_PLANNER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/governor.h"
#include "common/result.h"
#include "eval/explain.h"
#include "eval/query.h"
#include "eval/substitution.h"

namespace idl {

class SetIndexCache;

// What the planner did for one enumeration; surfaced per rule in EXPLAIN
// ANALYZE (`plan_ms` column and plan lines).
struct PlanInfo {
  bool planned = false;      // a cost-based plan executed this enumeration
  bool fell_back = false;    // planned run errored; written order re-ran
  double plan_ms = 0.0;      // time spent planning (excluded from enum time)
  uint64_t est_rows = 0;     // estimated emissions for the chosen order
  uint64_t actual_rows = 0;  // emissions the planned run produced
  std::string summary;       // e.g. "order=[1 0] spec=[0:S*16]"

  void Merge(const PlanInfo& other);
};

// Outcome of a planned enumeration attempt.
struct PlannedEnumerate {
  enum class Kind {
    // The plan is the written order with no specialization (or the shape is
    // not plannable): nothing executed, the caller runs written order.
    kDeclined,
    // The planned run completed (successfully, stopped by the callback, or
    // aborted by the governor): `result` is the enumeration's result.
    kDone,
    // The planned run hit an evaluation error. Nothing was emitted to the
    // callback; the caller must re-run in written order so the error
    // surfaces with written timing.
    kErrorFallback,
  };
  Kind kind = Kind::kDeclined;
  Result<bool> result = true;
};

// Attempts cost-based enumeration of `ordered` (the post-defer written
// order). Emissions reach `cb` in exactly the written order. `page_cache`
// must be the same cache the written-order executor would use (columnar
// pages / equality indexes). `info`, if non-null, receives plan details
// (merged, so one PlanInfo can accumulate across delta variants).
PlannedEnumerate TryPlannedEnumerate(
    const std::vector<ConjunctSource>& ordered, const EvalOptions& options,
    EvalStats* stats, SetIndexCache* page_cache,
    const std::function<bool(const Substitution&)>& cb,
    const ResourceGovernor* governor, PlanInfo* info);

}  // namespace idl

#endif  // IDL_PLANNER_PLANNER_H_
