#include "constraints/checker.h"

#include <unordered_map>

#include "common/str_util.h"
#include "object/value_io.h"

namespace idl {

std::string Violation::ToString() const {
  std::string_view what;
  switch (kind) {
    case Kind::kMissingRelation:
      what = "missing relation";
      break;
    case Kind::kNotATuple:
      what = "non-tuple element";
      break;
    case Kind::kMissingRequired:
      what = "missing required attribute";
      break;
    case Kind::kWrongKind:
      what = "wrong attribute kind";
      break;
    case Kind::kUndeclaredAttr:
      what = "undeclared attribute";
      break;
    case Kind::kKeyViolation:
      what = "key violation";
      break;
  }
  return StrCat(what, ": ", detail);
}

void CheckRelation(const Value& relation,
                   const RelationConstraint& constraint,
                   std::vector<Violation>* out) {
  std::string where = StrCat(constraint.db, ".", constraint.rel);
  if (!relation.is_set()) {
    out->push_back({Violation::Kind::kMissingRelation,
                    StrCat(where, " is not a relation")});
    return;
  }

  // Key index: canonical key-tuple string -> first witness.
  std::unordered_map<std::string, std::string> seen_keys;

  for (const auto& element : relation.elements()) {
    if (!element.is_tuple()) {
      out->push_back({Violation::Kind::kNotATuple,
                      StrCat(where, " contains ", ToString(element))});
      continue;
    }
    // Declared attributes: kind + required.
    for (const auto& spec : constraint.attrs) {
      const Value* v = element.FindField(spec.name);
      if (v == nullptr || v->is_null()) {
        if (spec.required) {
          out->push_back(
              {Violation::Kind::kMissingRequired,
               StrCat(where, ".", spec.name, " absent in ",
                      ToString(element))});
        }
        continue;
      }
      if (!ValueMatchesKind(*v, spec.kind)) {
        out->push_back(
            {Violation::Kind::kWrongKind,
             StrCat(where, ".", spec.name, " = ", ToString(*v), " is not ",
                    AttrKindName(spec.kind))});
      }
    }
    // Closed relations: no undeclared attributes.
    if (constraint.closed) {
      for (const auto& field : element.fields()) {
        if (constraint.FindAttr(field.name) == nullptr) {
          out->push_back({Violation::Kind::kUndeclaredAttr,
                          StrCat(where, ".", field.name, " in ",
                                 ToString(element))});
        }
      }
    }
    // Key: collect the key projection; tuples missing part of the key are
    // exempt (the kMissingRequired check covers that when declared
    // required).
    if (!constraint.key.empty()) {
      std::string key_repr;
      bool complete = true;
      for (const auto& k : constraint.key) {
        const Value* v = element.FindField(k);
        if (v == nullptr || v->is_null()) {
          complete = false;
          break;
        }
        key_repr += ToString(*v);
        key_repr += '\x1f';
      }
      if (complete) {
        auto [it, inserted] =
            seen_keys.emplace(key_repr, ToString(element));
        if (!inserted) {
          out->push_back(
              {Violation::Kind::kKeyViolation,
               StrCat(where, " key (", Join(constraint.key, ", "),
                      ") duplicated by ", it->second, " and ",
                      ToString(element))});
        }
      }
    }
  }
}

void ConstraintSet::Add(RelationConstraint constraint) {
  for (auto& existing : constraints_) {
    if (existing.db == constraint.db && existing.rel == constraint.rel) {
      existing = std::move(constraint);
      return;
    }
  }
  constraints_.push_back(std::move(constraint));
}

Status ConstraintSet::AddText(std::string_view declaration) {
  IDL_ASSIGN_OR_RETURN(RelationConstraint c, ParseConstraint(declaration));
  Add(std::move(c));
  return Status::Ok();
}

std::vector<Violation> ConstraintSet::Check(const Value& universe) const {
  std::vector<Violation> out;
  for (const auto& constraint : constraints_) {
    const Value* db =
        universe.is_tuple() ? universe.FindField(constraint.db) : nullptr;
    const Value* rel = (db != nullptr && db->is_tuple())
                           ? db->FindField(constraint.rel)
                           : nullptr;
    if (rel == nullptr) {
      out.push_back({Violation::Kind::kMissingRelation,
                     StrCat(constraint.db, ".", constraint.rel,
                            " does not exist")});
      continue;
    }
    CheckRelation(*rel, constraint, &out);
  }
  return out;
}

Status ConstraintSet::Validate(const Value& universe) const {
  std::vector<Violation> violations = Check(universe);
  if (violations.empty()) return Status::Ok();
  std::vector<std::string> lines;
  lines.reserve(violations.size());
  for (const auto& v : violations) lines.push_back(v.ToString());
  return FailedPrecondition(
      StrCat(violations.size(), " constraint violation(s): ",
             Join(lines, "; ")));
}

}  // namespace idl
