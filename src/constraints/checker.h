// Constraint checking over universe relations, and the registry a Session
// consults to validate (and roll back) update requests.

#ifndef IDL_CONSTRAINTS_CHECKER_H_
#define IDL_CONSTRAINTS_CHECKER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "constraints/constraint.h"
#include "object/value.h"

namespace idl {

struct Violation {
  enum class Kind : uint8_t {
    kMissingRelation,   // the constrained relation does not exist / not a set
    kNotATuple,         // an element of the relation is not a tuple
    kMissingRequired,   // a required attribute is absent or null
    kWrongKind,         // an attribute value has the wrong kind
    kUndeclaredAttr,    // closed relation carries an undeclared attribute
    kKeyViolation,      // two tuples agree on the key
  };
  Kind kind;
  std::string detail;  // human-readable, includes db.rel and the culprit

  std::string ToString() const;
};

// Checks one relation value against `constraint`; appends violations.
void CheckRelation(const Value& relation,
                   const RelationConstraint& constraint,
                   std::vector<Violation>* out);

class ConstraintSet {
 public:
  // Declares (or replaces) the constraint for (db, rel).
  void Add(RelationConstraint constraint);
  Status AddText(std::string_view declaration);

  size_t size() const { return constraints_.size(); }
  const std::vector<RelationConstraint>& constraints() const {
    return constraints_;
  }

  // Checks every declared constraint against `universe`. A missing database
  // or relation is a kMissingRelation violation (declaring a constraint
  // asserts the relation should exist).
  std::vector<Violation> Check(const Value& universe) const;

  // OK iff Check() returns nothing; otherwise kFailedPrecondition listing
  // the violations.
  Status Validate(const Value& universe) const;

 private:
  std::vector<RelationConstraint> constraints_;
};

}  // namespace idl

#endif  // IDL_CONSTRAINTS_CHECKER_H_
