#include "constraints/constraint.h"

#include "common/str_util.h"
#include "syntax/lexer.h"

namespace idl {

std::string_view AttrKindName(AttrKind kind) {
  switch (kind) {
    case AttrKind::kAny:
      return "any";
    case AttrKind::kBool:
      return "bool";
    case AttrKind::kInt:
      return "int";
    case AttrKind::kDouble:
      return "double";
    case AttrKind::kNumber:
      return "number";
    case AttrKind::kString:
      return "string";
    case AttrKind::kDate:
      return "date";
  }
  return "any";
}

bool ValueMatchesKind(const Value& v, AttrKind kind) {
  switch (kind) {
    case AttrKind::kAny:
      return true;
    case AttrKind::kBool:
      return v.is_bool();
    case AttrKind::kInt:
      return v.is_int();
    case AttrKind::kDouble:
      return v.is_double();
    case AttrKind::kNumber:
      return v.is_number();
    case AttrKind::kString:
      return v.is_string();
    case AttrKind::kDate:
      return v.is_date();
  }
  return false;
}

const AttrSpec* RelationConstraint::FindAttr(std::string_view name) const {
  for (const auto& spec : attrs) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

std::string RelationConstraint::ToString() const {
  std::string out = StrCat("constrain .", db, ".", rel, " (");
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (i > 0) out += ", ";
    out += StrCat(attrs[i].name, ": ", AttrKindName(attrs[i].kind),
                  attrs[i].required ? "!" : "");
  }
  out += ")";
  if (!key.empty()) {
    out += StrCat(" key (", Join(key, ", "), ")");
  }
  if (closed) out += " closed";
  return out;
}

namespace {

Result<AttrKind> KindFromName(const std::string& name) {
  if (name == "any") return AttrKind::kAny;
  if (name == "bool") return AttrKind::kBool;
  if (name == "int") return AttrKind::kInt;
  if (name == "double") return AttrKind::kDouble;
  if (name == "number") return AttrKind::kNumber;
  if (name == "string") return AttrKind::kString;
  if (name == "date") return AttrKind::kDate;
  return ParseError(StrCat("unknown attribute kind '", name, "'"));
}

class ConstraintParser {
 public:
  explicit ConstraintParser(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  Result<RelationConstraint> Run() {
    RelationConstraint c;
    IDL_RETURN_IF_ERROR(ExpectIdent("constrain"));
    IDL_RETURN_IF_ERROR(Expect(TokenKind::kDot));
    IDL_ASSIGN_OR_RETURN(c.db, Ident());
    IDL_RETURN_IF_ERROR(Expect(TokenKind::kDot));
    IDL_ASSIGN_OR_RETURN(c.rel, Ident());

    IDL_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    if (!Check(TokenKind::kRParen)) {
      while (true) {
        AttrSpec spec;
        IDL_ASSIGN_OR_RETURN(spec.name, Ident());
        // The ':' of the surface syntax was stripped before lexing (see
        // ParseConstraint), so the kind name follows directly.
        IDL_ASSIGN_OR_RETURN(std::string kind_name, Ident());
        IDL_ASSIGN_OR_RETURN(spec.kind, KindFromName(kind_name));
        if (Consume(TokenKind::kNeg)) spec.required = true;
        c.attrs.push_back(std::move(spec));
        if (Consume(TokenKind::kComma)) continue;
        break;
      }
    }
    IDL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));

    if (CheckIdent("key")) {
      Next();
      IDL_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      while (true) {
        IDL_ASSIGN_OR_RETURN(std::string k, Ident());
        c.key.push_back(std::move(k));
        if (Consume(TokenKind::kComma)) continue;
        break;
      }
      IDL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    }
    if (CheckIdent("closed")) {
      Next();
      c.closed = true;
    }
    if (!Check(TokenKind::kEnd)) return Unexpected("end of declaration");

    for (const auto& k : c.key) {
      if (c.FindAttr(k) == nullptr) {
        return ParseError(
            StrCat("key attribute '", k, "' is not declared"));
      }
    }
    return c;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() {
    const Token& t = tokens_[pos_];
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
  }
  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  bool CheckIdent(std::string_view word) const {
    return Peek().kind == TokenKind::kIdent && Peek().text == word;
  }
  bool Consume(TokenKind kind) {
    if (Check(kind)) {
      Next();
      return true;
    }
    return false;
  }
  Status Unexpected(std::string_view expected) const {
    return ParseError(
        StrCat("expected ", expected, ", found ", Peek().Describe()));
  }
  Status Expect(TokenKind kind) {
    if (Consume(kind)) return Status::Ok();
    return Unexpected(TokenKindName(kind));
  }
  Status ExpectIdent(std::string_view word) {
    if (CheckIdent(word)) {
      Next();
      return Status::Ok();
    }
    return Unexpected(StrCat("'", word, "'"));
  }
  Result<std::string> Ident() {
    if (!Check(TokenKind::kIdent)) return Unexpected("an identifier");
    return Next().text;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<RelationConstraint> ParseConstraint(std::string_view text) {
  // The IDL lexer has no ':' token; strip colons before lexing (they are
  // pure syntax in declarations, never ambiguous).
  std::string stripped;
  stripped.reserve(text.size());
  for (char ch : text) {
    if (ch == ':') {
      stripped += ' ';
    } else {
      stripped += ch;
    }
  }
  IDL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(stripped));
  return ConstraintParser(std::move(tokens)).Run();
}

}  // namespace idl
