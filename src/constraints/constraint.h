// Integrity constraints over universe relations: attribute kinds, required
// attributes, and keys — the "other schematic information such as types,
// keys, referential integrity" that §2 and §8 say the model extends to.
//
// A constraint declaration has a compact text form:
//
//   constrain .euter.r (date: date!, stkCode: string!, clsPrice: number)
//       key (date, stkCode)
//
// `!` marks a required attribute (the object-model omission of null cells
// makes "required" meaningful); `number` accepts int or double; `any`
// accepts every atom. Attributes not listed are allowed unless the
// declaration ends with `closed`. Keys are value-based: no two tuples of
// the relation may agree on all key attributes.
//
// Constraints are checked against materialized relations (see checker.h);
// Session uses them to make update requests atomic: apply, validate,
// roll back on violation.

#ifndef IDL_CONSTRAINTS_CONSTRAINT_H_
#define IDL_CONSTRAINTS_CONSTRAINT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "object/value.h"

namespace idl {

// The kinds an attribute declaration may demand.
enum class AttrKind : uint8_t {
  kAny,
  kBool,
  kInt,
  kDouble,
  kNumber,  // int or double
  kString,
  kDate,
};

std::string_view AttrKindName(AttrKind kind);
bool ValueMatchesKind(const Value& v, AttrKind kind);

struct AttrSpec {
  std::string name;
  AttrKind kind = AttrKind::kAny;
  bool required = false;
};

struct RelationConstraint {
  std::string db;
  std::string rel;
  std::vector<AttrSpec> attrs;
  std::vector<std::string> key;  // empty = no key constraint
  // If true, tuples may not carry attributes outside `attrs`.
  bool closed = false;

  // nullptr if `name` is not declared.
  const AttrSpec* FindAttr(std::string_view name) const;

  // Canonical text form (round-trips through ParseConstraint).
  std::string ToString() const;
};

// Parses the `constrain .db.rel (...) [key (...)] [closed]` form.
Result<RelationConstraint> ParseConstraint(std::string_view text);

}  // namespace idl

#endif  // IDL_CONSTRAINTS_CONSTRAINT_H_
