// RelationalDatabase: a named catalog of tables, with the DDL surface the
// paper's update programs need (creating and dropping whole relations is how
// rmStk operates on the ource schema).

#ifndef IDL_RELATIONAL_DATABASE_H_
#define IDL_RELATIONAL_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/table.h"

namespace idl {

class RelationalDatabase {
 public:
  explicit RelationalDatabase(std::string name) : name_(std::move(name)) {}

  RelationalDatabase(const RelationalDatabase&) = delete;
  RelationalDatabase& operator=(const RelationalDatabase&) = delete;
  RelationalDatabase(RelationalDatabase&&) = default;
  RelationalDatabase& operator=(RelationalDatabase&&) = default;

  const std::string& name() const { return name_; }

  Result<Table*> CreateTable(std::string table_name, Schema schema);
  Status DropTable(std::string_view table_name);

  // nullptr if absent.
  Table* FindTable(std::string_view table_name);
  const Table* FindTable(std::string_view table_name) const;

  // Table names in sorted order.
  std::vector<std::string> TableNames() const;
  size_t NumTables() const { return tables_.size(); }

 private:
  std::string name_;
  std::map<std::string, std::unique_ptr<Table>, std::less<>> tables_;
};

}  // namespace idl

#endif  // IDL_RELATIONAL_DATABASE_H_
