// PIVOT / UNPIVOT: the modern relational partial answer to schematic
// discrepancies, implemented as the B2 baseline. PIVOT turns the euter shape
// (stock names as values) into the chwab shape (stock names as columns);
// UNPIVOT inverts it. Unlike IDL's higher-order rules, the output *schema*
// of PIVOT must be computed by a separate pass over the data, and a fresh
// DDL statement is needed whenever a new stock appears — precisely the
// rigidity the paper's higher-order views remove.

#ifndef IDL_RELATIONAL_PIVOT_H_
#define IDL_RELATIONAL_PIVOT_H_

#include <string>

#include "common/result.h"
#include "relational/table.h"

namespace idl {

// PIVOT: one output row per distinct `key_column` value; one output column
// per distinct `name_column` value, holding that row's `value_column` (null
// where absent). For euter: Pivot(r, "date", "stkCode", "clsPrice").
Result<Table> Pivot(const Table& in, std::string_view key_column,
                    std::string_view name_column,
                    std::string_view value_column);

// UNPIVOT: inverse. Every column other than `key_column` becomes a
// (name, value) row; null cells are skipped.
// For chwab: Unpivot(r, "date", "stkCode", "clsPrice").
Result<Table> Unpivot(const Table& in, std::string_view key_column,
                      std::string_view name_out, std::string_view value_out);

}  // namespace idl

#endif  // IDL_RELATIONAL_PIVOT_H_
