#include "relational/columnar.h"

#include <algorithm>

#include "common/metrics.h"
#include "common/str_util.h"
#include "common/trace.h"

namespace idl {

namespace {

// Numbers hash by their double value — so `=50` probes find `50.0` cells,
// matching EvalRelOp's cross-kind numeric equality — with -0.0 folded onto
// +0.0 (every relop treats them as equal, but their bit patterns differ).
uint64_t NormalizedNumberHash(double d) {
  if (d == 0) d = 0.0;
  return Value::Real(d).Hash();
}

// EvalRelOp (eval/matcher.cc) replicated over atoms, so the columnar
// kernels agree with the tuple-at-a-time matcher on every comparison.
// (Duplicated rather than shared: src/relational must not depend on
// src/eval, and columnar_test pins the two implementations together over
// exhaustive atom pairs.)
constexpr int kUnordered = 2;

int CompareAtomValues(const Value& a, const Value& b) {
  if (a.is_number() && b.is_number()) {
    if (a.is_int() && b.is_int()) {
      int64_t x = a.as_int(), y = b.as_int();
      return x == y ? 0 : (x < y ? -1 : 1);
    }
    double x = a.as_double(), y = b.as_double();
    return x == y ? 0 : (x < y ? -1 : 1);
  }
  if (a.is_string() && b.is_string()) {
    int c = a.as_string().compare(b.as_string());
    return c == 0 ? 0 : (c < 0 ? -1 : 1);
  }
  if (a.is_date() && b.is_date()) {
    if (a.as_date() == b.as_date()) return 0;
    return a.as_date() < b.as_date() ? -1 : 1;
  }
  if (a.is_bool() && b.is_bool()) {
    if (a.as_bool() == b.as_bool()) return 0;
    return !a.as_bool() ? -1 : 1;
  }
  return kUnordered;
}

bool OrderHolds(RelOp op, int c) {
  switch (op) {
    case RelOp::kLt:
      return c < 0;
    case RelOp::kLe:
      return c <= 0;
    case RelOp::kGt:
      return c > 0;
    case RelOp::kGe:
      return c >= 0;
    default:
      return false;
  }
}

bool AtomRelOp(RelOp op, const Value& object, const Value& operand) {
  if (object.is_null()) return false;
  if (op == RelOp::kEq || op == RelOp::kNe) {
    bool eq;
    if (object.is_number() && operand.is_number()) {
      eq = object.as_double() == operand.as_double();
    } else {
      eq = object == operand;
    }
    return op == RelOp::kEq ? eq : !eq;
  }
  int c = CompareAtomValues(object, operand);
  if (c == kUnordered) return false;
  return OrderHolds(op, c);
}

Counter* PagesBuiltCounter() {
  static Counter* c =
      MetricsRegistry::Global().counter("columnar.pages_built");
  return c;
}
Counter* PagesSharedCounter() {
  static Counter* c =
      MetricsRegistry::Global().counter("columnar.pages_shared");
  return c;
}
Counter* ColumnIndexesBuiltCounter() {
  static Counter* c =
      MetricsRegistry::Global().counter("columnar.indexes_built");
  return c;
}

}  // namespace

uint64_t NormalizedCellHash(const Value& v) {
  return v.is_number() ? NormalizedNumberHash(v.as_double()) : v.Hash();
}

bool ColumnarRelation::IsFlat(const Value& set) {
  if (!set.is_set()) return false;
  const std::vector<Value>& elems = set.elements();
  const std::vector<Value::Field>* shape = nullptr;
  for (const Value& e : elems) {
    if (!e.is_tuple()) return false;
    const std::vector<Value::Field>& fields = e.fields();
    for (const Value::Field& f : fields) {
      if (!f.value.is_atom()) return false;
    }
    if (shape == nullptr) {
      shape = &fields;
      continue;
    }
    // Fields are sorted by name, so shape equality is a name-wise walk.
    if (fields.size() != shape->size()) return false;
    for (size_t i = 0; i < fields.size(); ++i) {
      if (fields[i].name != (*shape)[i].name) return false;
    }
  }
  return true;
}

std::shared_ptr<const ColumnarRelation> ColumnarRelation::FromSet(
    const Value& set) {
  if (!IsFlat(set)) return nullptr;
  const std::vector<Value>& elems = set.elements();
  std::shared_ptr<ColumnarRelation> rel(new ColumnarRelation());
  rel->num_rows_ = elems.size();
  const size_t ncols = elems.empty() ? 0 : elems.front().TupleSize();
  rel->cols_.resize(ncols);

  // Pass 1: per-column kind — uniform non-null atom kind, else kMixed.
  for (size_t c = 0; c < ncols; ++c) {
    Column& col = rel->cols_[c];
    col.name = elems.front().fields()[c].name;
    bool decided = false;
    for (const Value& e : elems) {
      const Value& cell = e.fields()[c].value;
      if (cell.is_null()) continue;
      ColumnKind k;
      switch (cell.kind()) {
        case ValueKind::kInt:
          k = ColumnKind::kInt;
          break;
        case ValueKind::kDouble:
          k = ColumnKind::kDouble;
          break;
        case ValueKind::kBool:
          k = ColumnKind::kBool;
          break;
        case ValueKind::kString:
          k = ColumnKind::kString;
          break;
        case ValueKind::kDate:
          k = ColumnKind::kDate;
          break;
        default:
          k = ColumnKind::kMixed;
          break;
      }
      if (!decided) {
        col.kind = k;
        decided = true;
      } else if (col.kind != k) {
        col.kind = ColumnKind::kMixed;
        break;
      }
      if (k == ColumnKind::kMixed) break;
    }
    if (!decided) col.kind = ColumnKind::kMixed;  // all-null column
  }

  // Pass 2: fill the payload vectors.
  for (size_t c = 0; c < ncols; ++c) {
    Column& col = rel->cols_[c];
    switch (col.kind) {
      case ColumnKind::kInt:
        col.ints.reserve(elems.size());
        break;
      case ColumnKind::kDouble:
        col.reals.reserve(elems.size());
        break;
      case ColumnKind::kBool:
        col.bools.reserve(elems.size());
        break;
      case ColumnKind::kString:
        col.syms.reserve(elems.size());
        break;
      case ColumnKind::kDate:
        col.dates.reserve(elems.size());
        break;
      case ColumnKind::kMixed:
        col.mixed.reserve(elems.size());
        break;
    }
    bool any_null = false;
    for (const Value& e : elems) {
      const Value& cell = e.fields()[c].value;
      const bool null = cell.is_null();
      any_null |= null;
      switch (col.kind) {
        case ColumnKind::kInt:
          col.ints.push_back(null ? 0 : cell.as_int());
          break;
        case ColumnKind::kDouble:
          col.reals.push_back(null ? 0.0 : cell.as_double());
          break;
        case ColumnKind::kBool:
          col.bools.push_back(null ? 0 : (cell.as_bool() ? 1 : 0));
          break;
        case ColumnKind::kString: {
          if (null) {
            col.syms.push_back(0);
            break;
          }
          StringInterner::Id id = rel->syms_.Intern(cell.as_string());
          if (id == rel->sym_hashes_.size()) {
            rel->sym_hashes_.push_back(cell.Hash());
          }
          col.syms.push_back(id);
          break;
        }
        case ColumnKind::kDate:
          col.dates.push_back(null ? 0 : cell.as_date().DayNumber());
          break;
        case ColumnKind::kMixed:
          col.mixed.push_back(cell);
          break;
      }
    }
    if (any_null) {
      col.valid.resize(elems.size(), 1);
      for (size_t r = 0; r < elems.size(); ++r) {
        if (elems[r].fields()[c].value.is_null()) col.valid[r] = 0;
      }
    }
  }

  rel->indexes_ = std::vector<std::atomic<ColumnIndex*>>(ncols);
  for (auto& slot : rel->indexes_) {
    slot.store(nullptr, std::memory_order_relaxed);
  }
  PagesBuiltCounter()->Increment();
  return rel;
}

ColumnarRelation::~ColumnarRelation() {
  for (auto& slot : indexes_) {
    delete slot.load(std::memory_order_relaxed);
  }
}

int ColumnarRelation::FindColumn(std::string_view attr) const {
  // Columns are few (relation arity); a linear scan over sorted names beats
  // a map for the arities this system sees.
  for (size_t c = 0; c < cols_.size(); ++c) {
    if (cols_[c].name == attr) return static_cast<int>(c);
  }
  return -1;
}

Value ColumnarRelation::CellValue(size_t col, uint32_t row) const {
  const Column& c = cols_[col];
  if (c.IsNull(row)) return Value::Null();
  switch (c.kind) {
    case ColumnKind::kInt:
      return Value::Int(c.ints[row]);
    case ColumnKind::kDouble:
      return Value::Real(c.reals[row]);
    case ColumnKind::kBool:
      return Value::Bool(c.bools[row] != 0);
    case ColumnKind::kString:
      return Value::String(syms_.Lookup(c.syms[row]));
    case ColumnKind::kDate:
      return Value::Of(Date::FromDayNumber(c.dates[row]));
    case ColumnKind::kMixed:
      return c.mixed[row];
  }
  return Value::Null();
}

Value ColumnarRelation::ToNested() const {
  Value set = Value::EmptySet();
  for (uint32_t r = 0; r < num_rows_; ++r) {
    Value tuple = Value::EmptyTuple();
    for (size_t c = 0; c < cols_.size(); ++c) {
      tuple.SetField(cols_[c].name, CellValue(c, r));
    }
    set.Insert(std::move(tuple));
  }
  return set;
}

bool ColumnarRelation::CellSatisfies(size_t col, uint32_t row, RelOp op,
                                     const Value& operand) const {
  const Column& c = cols_[col];
  if (c.IsNull(row)) return false;  // null satisfies nothing
  switch (c.kind) {
    case ColumnKind::kInt: {
      if (operand.is_number()) {
        if (op == RelOp::kEq || op == RelOp::kNe) {
          bool eq = static_cast<double>(c.ints[row]) == operand.as_double();
          return op == RelOp::kEq ? eq : !eq;
        }
        if (operand.is_int()) {
          int64_t x = c.ints[row], y = operand.as_int();
          return OrderHolds(op, x == y ? 0 : (x < y ? -1 : 1));
        }
        double x = static_cast<double>(c.ints[row]), y = operand.as_double();
        return OrderHolds(op, x == y ? 0 : (x < y ? -1 : 1));
      }
      return op == RelOp::kNe;  // kind mismatch: only != holds
    }
    case ColumnKind::kDouble: {
      if (operand.is_number()) {
        double x = c.reals[row], y = operand.as_double();
        if (op == RelOp::kEq) return x == y;
        if (op == RelOp::kNe) return x != y;
        return OrderHolds(op, x == y ? 0 : (x < y ? -1 : 1));
      }
      return op == RelOp::kNe;
    }
    case ColumnKind::kBool: {
      if (operand.is_bool()) {
        bool x = c.bools[row] != 0, y = operand.as_bool();
        if (op == RelOp::kEq) return x == y;
        if (op == RelOp::kNe) return x != y;
        return OrderHolds(op, x == y ? 0 : (!x ? -1 : 1));
      }
      return op == RelOp::kNe;
    }
    case ColumnKind::kString: {
      if (operand.is_string()) {
        if (op == RelOp::kEq || op == RelOp::kNe) {
          // Content equality via the interner: equal strings share an id.
          StringInterner::Id id = syms_.Find(operand.as_string());
          bool eq = id != StringInterner::kNotInterned && id == c.syms[row];
          return op == RelOp::kEq ? eq : !eq;
        }
        int cmp = syms_.Lookup(c.syms[row]).compare(operand.as_string());
        return OrderHolds(op, cmp == 0 ? 0 : (cmp < 0 ? -1 : 1));
      }
      return op == RelOp::kNe;
    }
    case ColumnKind::kDate: {
      if (operand.is_date()) {
        int64_t x = c.dates[row], y = operand.as_date().DayNumber();
        if (op == RelOp::kEq) return x == y;
        if (op == RelOp::kNe) return x != y;
        return OrderHolds(op, x == y ? 0 : (x < y ? -1 : 1));
      }
      return op == RelOp::kNe;
    }
    case ColumnKind::kMixed:
      return AtomRelOp(op, c.mixed[row], operand);
  }
  return false;
}

void ColumnarRelation::Filter(size_t col, RelOp op, const Value& operand,
                              std::vector<uint32_t>* sel) const {
  // Kind-mismatch fast exits: against a tuple/set/null operand, typed cells
  // satisfy only `!=` (and null cells satisfy nothing) — CellSatisfies
  // handles each row, so just run the generic loop below.
  size_t out = 0;
  for (uint32_t r : *sel) {
    if (CellSatisfies(col, r, op, operand)) (*sel)[out++] = r;
  }
  sel->resize(out);
}

void ColumnarRelation::AllRows(std::vector<uint32_t>* sel) const {
  sel->resize(num_rows_);
  for (uint32_t r = 0; r < num_rows_; ++r) (*sel)[r] = r;
}

uint64_t ColumnarRelation::CellHash(size_t col, uint32_t row) const {
  const Column& c = cols_[col];
  switch (c.kind) {
    case ColumnKind::kInt:
      return NormalizedNumberHash(static_cast<double>(c.ints[row]));
    case ColumnKind::kDouble:
      return NormalizedNumberHash(c.reals[row]);
    case ColumnKind::kBool:
      return Value::Bool(c.bools[row] != 0).Hash();
    case ColumnKind::kString:
      return sym_hashes_[c.syms[row]];
    case ColumnKind::kDate:
      return Value::Of(Date::FromDayNumber(c.dates[row])).Hash();
    case ColumnKind::kMixed:
      return NormalizedCellHash(c.mixed[row]);
  }
  return 0;
}

const ColumnarRelation::ColumnIndex& ColumnarRelation::EnsureIndex(
    size_t col, bool* built) const {
  ColumnIndex* idx = indexes_[col].load(std::memory_order_acquire);
  if (idx != nullptr) {
    if (built != nullptr) *built = false;
    return *idx;
  }
  std::lock_guard<std::mutex> lock(index_mu_);
  idx = indexes_[col].load(std::memory_order_relaxed);
  if (idx != nullptr) {
    if (built != nullptr) *built = false;
    return *idx;
  }
  TraceSpan span("columnar.index_build",
                 StrCat("attr=", cols_[col].name, " rows=", num_rows_));
  auto owned = std::make_unique<ColumnIndex>();
  owned->buckets.reserve(num_rows_);
  const Column& c = cols_[col];
  for (uint32_t r = 0; r < num_rows_; ++r) {
    if (c.IsNull(r)) continue;  // null cells satisfy no equality
    owned->buckets[CellHash(col, r)].push_back(r);  // ascending by build
  }
  ColumnIndexesBuiltCounter()->Increment();
  idx = owned.release();
  indexes_[col].store(idx, std::memory_order_release);
  if (built != nullptr) *built = true;
  return *idx;
}

size_t ColumnarRelation::DistinctIfIndexed(size_t col) const {
  if (col >= indexes_.size()) return 0;
  const ColumnIndex* idx = indexes_[col].load(std::memory_order_acquire);
  return idx == nullptr ? 0 : idx->buckets.size();
}

void ColumnarRelation::ProbeEq(size_t col, const Value& operand,
                               std::vector<uint32_t>* out, bool* built) const {
  out->clear();
  if (built != nullptr) *built = false;
  // Aggregates and null never equal an atom cell.
  if (operand.is_tuple() || operand.is_set() || operand.is_null()) return;
  const ColumnIndex& index = EnsureIndex(col, built);
  auto it = index.buckets.find(NormalizedCellHash(operand));
  if (it == index.buckets.end()) return;
  for (uint32_t r : it->second) {
    // Verify: hash buckets may hold collisions.
    if (CellSatisfies(col, r, RelOp::kEq, operand)) out->push_back(r);
  }
}

std::shared_ptr<const ColumnarStore> ColumnarStore::Build(
    const Value& universe, const ColumnarStore* previous) {
  TraceSpan span("columnar.store_build");
  auto store = std::make_shared<ColumnarStore>();
  if (!universe.is_tuple()) return store;
  for (const Value::Field& db : universe.fields()) {
    if (!db.value.is_tuple()) continue;
    for (const Value::Field& rel : db.value.fields()) {
      if (!rel.value.is_set()) continue;
      std::string path = StrCat(db.name, ".", rel.name);
      std::shared_ptr<const ColumnarRelation> page;
      if (previous != nullptr) {
        auto prev = previous->by_path_.find(path);
        if (prev != previous->by_path_.end() && prev->second.page != nullptr &&
            prev->second.source != nullptr) {
          // Reuse requires *order-sensitive* equality: row order is
          // emission order, so an order-insensitively-equal set with
          // shuffled elements must rebuild.
          const std::vector<Value>& a = prev->second.source->elements();
          const std::vector<Value>& b = rel.value.elements();
          if (a.size() == b.size() &&
              std::equal(a.begin(), a.end(), b.begin())) {
            page = prev->second.page;
            ++store->shared_;
            PagesSharedCounter()->Increment();
          }
        }
      }
      if (page == nullptr) page = ColumnarRelation::FromSet(rel.value);
      if (page == nullptr) continue;  // not flat: nested evaluation only
      store->by_addr_[static_cast<const void*>(&rel.value)] = page;
      store->by_path_[path] = Entry{&rel.value, page};
    }
  }
  return store;
}

std::shared_ptr<const ColumnarRelation> ColumnarStore::Find(
    const void* addr) const {
  auto it = by_addr_.find(addr);
  return it == by_addr_.end() ? nullptr : it->second;
}

}  // namespace idl
