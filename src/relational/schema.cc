#include "relational/schema.h"

#include "common/str_util.h"

namespace idl {

std::string_view ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kBool:
      return "bool";
    case ColumnType::kInt:
      return "int";
    case ColumnType::kDouble:
      return "double";
    case ColumnType::kString:
      return "string";
    case ColumnType::kDate:
      return "date";
  }
  return "unknown";
}

Result<ColumnType> TypeOfValue(const Value& v) {
  switch (v.kind()) {
    case ValueKind::kBool:
      return ColumnType::kBool;
    case ValueKind::kInt:
      return ColumnType::kInt;
    case ValueKind::kDouble:
      return ColumnType::kDouble;
    case ValueKind::kString:
      return ColumnType::kString;
    case ValueKind::kDate:
      return ColumnType::kDate;
    default:
      return TypeError(StrCat("no column type for a ",
                              ValueKindName(v.kind()), " value"));
  }
}

bool ValueFitsType(const Value& v, ColumnType type) {
  if (v.is_null()) return true;
  switch (type) {
    case ColumnType::kBool:
      return v.is_bool();
    case ColumnType::kInt:
      return v.is_int();
    case ColumnType::kDouble:
      return v.is_number();
    case ColumnType::kString:
      return v.is_string();
    case ColumnType::kDate:
      return v.is_date();
  }
  return false;
}

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

int Schema::FindColumn(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Status Schema::AddColumn(Column column) {
  if (HasColumn(column.name)) {
    return AlreadyExists(StrCat("column '", column.name, "'"));
  }
  columns_.push_back(std::move(column));
  return Status::Ok();
}

Status Schema::DropColumn(std::string_view name) {
  int i = FindColumn(name);
  if (i < 0) return NotFound(StrCat("column '", name, "'"));
  columns_.erase(columns_.begin() + i);
  return Status::Ok();
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(columns_.size());
  for (const auto& c : columns_) {
    parts.push_back(StrCat(c.name, ":", ColumnTypeName(c.type)));
  }
  return StrCat("(", Join(parts, ", "), ")");
}

bool operator==(const Schema& a, const Schema& b) {
  if (a.columns_.size() != b.columns_.size()) return false;
  for (size_t i = 0; i < a.columns_.size(); ++i) {
    if (a.columns_[i].name != b.columns_[i].name ||
        a.columns_[i].type != b.columns_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace idl
