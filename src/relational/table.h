// Table: heap-organized relational storage with optional single-column hash
// indexes and schema evolution (add/drop column — needed because removing a
// stock from the chwab schema *is* a DDL operation, §7.1's rmStk).

#ifndef IDL_RELATIONAL_TABLE_H_
#define IDL_RELATIONAL_TABLE_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "relational/row.h"
#include "relational/schema.h"

namespace idl {

class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t NumRows() const { return rows_.size(); }
  const std::vector<Row>& rows() const { return rows_; }

  // Validates arity and column types.
  Status Insert(Row row);

  // Deletes rows matching `pred`; returns the count.
  size_t DeleteWhere(const std::function<bool(const Row&)>& pred);

  // In-place update: applies `fn` to matching rows; returns the count.
  size_t UpdateWhere(const std::function<bool(const Row&)>& pred,
                     const std::function<void(Row*)>& fn);

  // Schema evolution. AddColumn fills existing rows with null.
  Status AddColumn(Column column);
  Status DropColumn(std::string_view name);

  // Hash index on one column. Indexes are maintained by Insert/DeleteWhere/
  // UpdateWhere/AddColumn/DropColumn.
  Status CreateIndex(std::string_view column);
  bool HasIndex(std::string_view column) const;
  // Row indexes whose `column` equals `key` (uses the index; the column must
  // be indexed).
  Result<std::vector<size_t>> Probe(std::string_view column,
                                    const Value& key) const;

 private:
  void RebuildIndexes();

  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
  // column name -> (value hash -> row indexes)
  std::unordered_map<std::string,
                     std::unordered_multimap<uint64_t, size_t>>
      indexes_;
};

}  // namespace idl

#endif  // IDL_RELATIONAL_TABLE_H_
