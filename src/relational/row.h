// Row: one tuple of a relational table. Cells are atom Values positionally
// aligned with the table's schema.

#ifndef IDL_RELATIONAL_ROW_H_
#define IDL_RELATIONAL_ROW_H_

#include <vector>

#include "object/value.h"

namespace idl {

struct Row {
  std::vector<Value> cells;

  Row() = default;
  explicit Row(std::vector<Value> c) : cells(std::move(c)) {}

  friend bool operator==(const Row& a, const Row& b) {
    return a.cells == b.cells;
  }
};

}  // namespace idl

#endif  // IDL_RELATIONAL_ROW_H_
