// ColumnarRelation: flat relations as per-attribute column vectors.
//
// The nested object model (object/value.h) stores a relation as a set of
// tuples — pointer-heavy, one allocation per cell, one hash per equality.
// The overwhelmingly common relation in this system is *flat*: every
// element a tuple over the same attribute set, every field an atom. For
// those, this module stores each attribute as one typed vector (int64,
// double, bool, date day-number, interned string id — with a Value-typed
// spill column for mixed-kind attributes), so the vectorized kernels in
// eval/vector_exec.h can select and join over contiguous arrays without
// touching a Value per tuple.
//
// Contracts (docs/COLUMNAR.md):
//  * FromSet succeeds exactly when the set is flat (IsFlat); row r of the
//    columnar form is element r of the set — order is preserved, and
//    ToNested() rebuilds a set equal to (and element-ordered like) the
//    original.
//  * Cell predicates reproduce the matcher's atomic semantics bit for bit:
//    null satisfies no relop, numbers compare across int/double, `!=` holds
//    across incompatible kinds, everything else is unordered
//    (eval/matcher.cc EvalRelOp).
//  * Equality probes hash numbers by their double value (with -0.0 folded
//    onto +0.0) exactly like the nested SetIndexCache, so the two
//    substrates agree on which rows an index probe finds.
//  * A ColumnarRelation is immutable after construction and safe to share
//    across threads: the lazy per-column hash indexes are built under a
//    mutex and published with release/acquire atomics, so concurrent
//    readers (server epochs share column pages across sessions) never
//    race. The `stress`-labelled suites re-check this under TSan.

#ifndef IDL_RELATIONAL_COLUMNAR_H_
#define IDL_RELATIONAL_COLUMNAR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/interner.h"
#include "object/value.h"
#include "syntax/ast.h"

namespace idl {

// The normalized cell hash shared by the nested SetIndexCache and the
// columnar indexes: numbers hash by double value (so `=50` probes find 50.0
// cells, matching EvalRelOp's cross-kind numeric equality), with -0.0
// folded onto +0.0 (equal under every relop, distinct bit patterns).
uint64_t NormalizedCellHash(const Value& v);

enum class ColumnKind : uint8_t {
  kInt,     // int64 cells
  kDouble,  // double cells
  kBool,
  kString,  // interned symbol ids
  kDate,    // proleptic day numbers
  kMixed,   // mixed atom kinds: exact Values
};

class ColumnarRelation {
 public:
  struct Column {
    std::string name;
    ColumnKind kind = ColumnKind::kMixed;
    // Exactly one payload vector is populated, per `kind`.
    std::vector<int64_t> ints;    // kInt
    std::vector<double> reals;    // kDouble
    std::vector<uint8_t> bools;   // kBool
    std::vector<uint32_t> syms;   // kString (ids into the relation interner)
    std::vector<int64_t> dates;   // kDate (Date::DayNumber)
    std::vector<Value> mixed;     // kMixed
    // Validity: empty when the column has no nulls, else one byte per row
    // (1 = present). Null cells hold a zero payload slot.
    std::vector<uint8_t> valid;

    bool IsNull(uint32_t row) const {
      return !valid.empty() && valid[row] == 0;
    }
  };

  // True when every element is a tuple over the same attribute names with
  // every field an atom (nulls allowed). The empty set is flat.
  static bool IsFlat(const Value& set);

  // Builds the columnar form, or returns nullptr when `set` is not a flat
  // set. Row order is element order.
  static std::shared_ptr<const ColumnarRelation> FromSet(const Value& set);

  ~ColumnarRelation();
  ColumnarRelation(const ColumnarRelation&) = delete;
  ColumnarRelation& operator=(const ColumnarRelation&) = delete;

  size_t num_rows() const { return num_rows_; }
  size_t num_cols() const { return cols_.size(); }
  const std::vector<Column>& columns() const { return cols_; }
  // Column position for `attr`, or -1 when the relation has no such
  // attribute (then no element has it: the relation is flat).
  int FindColumn(std::string_view attr) const;

  // The cell as a Value (materializes strings; used to bind variables).
  Value CellValue(size_t col, uint32_t row) const;

  // Rebuilds the nested set: equal to the source set, same element order.
  Value ToNested() const;

  // Matcher-equivalent atomic predicate on one cell (EvalRelOp semantics:
  // null cells satisfy nothing, numeric comparison crosses int/double,
  // `!=` is true across incompatible kinds).
  bool CellSatisfies(size_t col, uint32_t row, RelOp op,
                     const Value& operand) const;

  // Selection kernel: keeps the rows of `*sel` satisfying `op operand` on
  // `col` (order preserved; no Value is materialized for typed columns).
  void Filter(size_t col, RelOp op, const Value& operand,
              std::vector<uint32_t>* sel) const;

  // Equality-probe kernel: appends to `*out` (cleared first) the rows whose
  // `col` cell equals `operand` under EvalRelOp, in ascending row order.
  // Uses the lazy per-column hash index; `built` (optional) reports whether
  // this probe built it. Thread-safe.
  void ProbeEq(size_t col, const Value& operand, std::vector<uint32_t>* out,
               bool* built = nullptr) const;

  // All rows, ascending (the identity selection vector).
  void AllRows(std::vector<uint32_t>* sel) const;

  // Distinct-value estimate for `col` from the lazy hash index: the bucket
  // count when the index has already been built (by a prior probe), else 0
  // (unknown — the planner falls back to a default selectivity rather than
  // forcing an index build at plan time). Thread-safe.
  size_t DistinctIfIndexed(size_t col) const;

 private:
  // element hash (normalized) -> rows in ascending order.
  struct ColumnIndex {
    std::unordered_map<uint64_t, std::vector<uint32_t>> buckets;
  };

  ColumnarRelation() = default;

  uint64_t CellHash(size_t col, uint32_t row) const;
  const ColumnIndex& EnsureIndex(size_t col, bool* built) const;

  size_t num_rows_ = 0;
  std::vector<Column> cols_;
  StringInterner syms_;                 // shared by every kString column
  std::vector<uint64_t> sym_hashes_;    // Value::String hash per symbol id
  // Lazy per-column hash indexes (see class comment for the publication
  // protocol).
  mutable std::mutex index_mu_;
  mutable std::vector<std::atomic<ColumnIndex*>> indexes_;
};

// ColumnarStore: the column pages of one epoch universe (src/server).
//
// Built at epoch publication over every flat `db.rel` set; pages are
// refcounted (shared_ptr) and *reused* from the previous epoch whenever a
// relation is unchanged — element order included, since row order is
// emission order — so publishing an epoch that touched one relation shares
// every other relation's columns instead of re-building them. Readers find
// pages by set address (stable: the store lives next to the universe it
// indexes inside the epoch and must not outlive it).
class ColumnarStore {
 public:
  // Builds pages for every flat relation set of `universe` (a tuple of
  // databases, each a tuple of relations). `previous` (may be null) donates
  // pages for relations whose content and element order are unchanged.
  static std::shared_ptr<const ColumnarStore> Build(
      const Value& universe, const ColumnarStore* previous);

  // The page for the set at `addr`, or nullptr.
  std::shared_ptr<const ColumnarRelation> Find(const void* addr) const;

  size_t pages() const { return by_path_.size(); }
  size_t shared_with_previous() const { return shared_; }

 private:
  struct Entry {
    const Value* source = nullptr;  // the set inside this epoch's universe
    std::shared_ptr<const ColumnarRelation> page;
  };
  std::unordered_map<const void*, std::shared_ptr<const ColumnarRelation>>
      by_addr_;
  std::unordered_map<std::string, Entry> by_path_;  // "db.rel" -> page
  size_t shared_ = 0;
};

}  // namespace idl

#endif  // IDL_RELATIONAL_COLUMNAR_H_
