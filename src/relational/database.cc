#include "relational/database.h"

#include "common/str_util.h"

namespace idl {

Result<Table*> RelationalDatabase::CreateTable(std::string table_name,
                                               Schema schema) {
  if (tables_.contains(table_name)) {
    return AlreadyExists(StrCat("table '", table_name, "' in ", name_));
  }
  auto table = std::make_unique<Table>(table_name, std::move(schema));
  Table* raw = table.get();
  tables_.emplace(std::move(table_name), std::move(table));
  return raw;
}

Status RelationalDatabase::DropTable(std::string_view table_name) {
  auto it = tables_.find(table_name);
  if (it == tables_.end()) {
    return NotFound(StrCat("table '", table_name, "' in ", name_));
  }
  tables_.erase(it);
  return Status::Ok();
}

Table* RelationalDatabase::FindTable(std::string_view table_name) {
  auto it = tables_.find(table_name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* RelationalDatabase::FindTable(std::string_view table_name) const {
  auto it = tables_.find(table_name);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> RelationalDatabase::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, table] : tables_) out.push_back(name);
  return out;
}

}  // namespace idl
