#include "relational/adapter.h"

#include <map>

#include "common/str_util.h"

namespace idl {

Value LiftRows(const Schema& schema, const std::vector<Row>& rows) {
  Value relation = Value::EmptySet();
  for (const auto& row : rows) {
    Value tuple = Value::EmptyTuple();
    for (size_t c = 0; c < schema.size(); ++c) {
      if (row.cells[c].is_null()) continue;  // omit nulls (see header)
      tuple.SetField(schema.column(c).name, row.cells[c]);
    }
    relation.Insert(std::move(tuple));
  }
  return relation;
}

Value LiftTable(const Table& table) {
  return LiftRows(table.schema(), table.rows());
}

Value LiftDatabase(const RelationalDatabase& db) {
  Value out = Value::EmptyTuple();
  for (const auto& name : db.TableNames()) {
    out.SetField(name, LiftTable(*db.FindTable(name)));
  }
  return out;
}

Result<Table> LowerTable(std::string name, const Value& relation) {
  if (!relation.is_set()) {
    return TypeError(StrCat("relation '", name, "' is not a set object"));
  }
  // Infer the schema: union of attribute names; the type of the first
  // non-null atom wins (later mismatches are a type error).
  std::map<std::string, ColumnType> types;
  std::vector<std::string> order;
  for (const auto& element : relation.elements()) {
    if (!element.is_tuple()) {
      return TypeError(
          StrCat("relation '", name, "' contains a non-tuple element"));
    }
    for (const auto& field : element.fields()) {
      if (field.value.is_tuple() || field.value.is_set()) {
        return TypeError(StrCat("attribute '", field.name, "' of relation '",
                                name, "' holds a non-atomic object"));
      }
      auto it = types.find(field.name);
      if (it == types.end()) {
        order.push_back(field.name);
        if (field.value.is_null()) {
          types.emplace(field.name, ColumnType::kString);  // provisional
        } else {
          IDL_ASSIGN_OR_RETURN(ColumnType t, TypeOfValue(field.value));
          types.emplace(field.name, t);
        }
      } else if (!field.value.is_null() &&
                 !ValueFitsType(field.value, it->second)) {
        // Re-derive: maybe the provisional type was from a null.
        IDL_ASSIGN_OR_RETURN(ColumnType t, TypeOfValue(field.value));
        if (it->second == ColumnType::kString && t != ColumnType::kString) {
          it->second = t;  // upgrade a provisional string
        } else if (it->second == ColumnType::kInt &&
                   t == ColumnType::kDouble) {
          it->second = ColumnType::kDouble;  // widen
        } else if (!(it->second == ColumnType::kDouble &&
                     t == ColumnType::kInt)) {
          return TypeError(StrCat("attribute '", field.name, "' of relation '",
                                  name, "' mixes ", ColumnTypeName(it->second),
                                  " and ", ColumnTypeName(t)));
        }
      }
    }
  }

  Schema schema;
  for (const auto& col : order) {
    IDL_RETURN_IF_ERROR(schema.AddColumn(Column{col, types[col]}));
  }
  Table out(std::move(name), schema);
  for (const auto& element : relation.elements()) {
    Row row;
    row.cells.reserve(schema.size());
    for (const auto& col : order) {
      const Value* v = element.FindField(col);
      row.cells.push_back(v == nullptr ? Value::Null() : *v);
    }
    IDL_RETURN_IF_ERROR(out.Insert(std::move(row)));
  }
  return out;
}

Result<RelationalDatabase> LowerDatabase(std::string name,
                                         const Value& db_object) {
  if (!db_object.is_tuple()) {
    return TypeError(StrCat("database '", name, "' is not a tuple object"));
  }
  RelationalDatabase db(std::move(name));
  for (const auto& field : db_object.fields()) {
    IDL_ASSIGN_OR_RETURN(Table table, LowerTable(field.name, field.value));
    IDL_ASSIGN_OR_RETURN(Table * slot,
                         db.CreateTable(field.name, table.schema()));
    for (const auto& row : table.rows()) {
      IDL_RETURN_IF_ERROR(slot->Insert(row));
    }
  }
  return db;
}

}  // namespace idl
