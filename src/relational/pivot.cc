#include "relational/pivot.h"

#include <algorithm>
#include <map>

#include "common/str_util.h"
#include "object/value_io.h"

namespace idl {

Result<Table> Pivot(const Table& in, std::string_view key_column,
                    std::string_view name_column,
                    std::string_view value_column) {
  int kc = in.schema().FindColumn(key_column);
  int nc = in.schema().FindColumn(name_column);
  int vc = in.schema().FindColumn(value_column);
  if (kc < 0 || nc < 0 || vc < 0) {
    return NotFound("pivot: key/name/value column missing");
  }

  // Pass 1: discover the output schema from the data (this is the step a
  // first-order system cannot fold into the query itself).
  std::vector<std::string> names;
  for (const auto& row : in.rows()) {
    const Value& name = row.cells[nc];
    if (!name.is_string()) {
      return TypeError(StrCat("pivot: name column holds non-string value ",
                              ToString(name)));
    }
    if (std::find(names.begin(), names.end(), name.as_string()) ==
        names.end()) {
      names.push_back(name.as_string());
    }
  }
  std::sort(names.begin(), names.end());

  Schema schema;
  IDL_RETURN_IF_ERROR(schema.AddColumn(in.schema().column(kc)));
  for (const auto& name : names) {
    IDL_RETURN_IF_ERROR(
        schema.AddColumn(Column{name, in.schema().column(vc).type}));
  }

  // Pass 2: fill.
  std::map<std::string, size_t> name_slot;
  for (size_t i = 0; i < names.size(); ++i) name_slot[names[i]] = i + 1;

  Table out(StrCat(in.name(), "_pivot"), schema);
  // Key order: first-seen.
  std::vector<Row> rows;
  std::map<std::string, size_t> key_slot;  // ToString(key) -> row index
  for (const auto& row : in.rows()) {
    std::string key_repr = ToString(row.cells[kc]);
    auto [it, inserted] = key_slot.try_emplace(key_repr, rows.size());
    if (inserted) {
      Row fresh;
      fresh.cells.assign(schema.size(), Value::Null());
      fresh.cells[0] = row.cells[kc];
      rows.push_back(std::move(fresh));
    }
    rows[it->second].cells[name_slot[row.cells[nc].as_string()]] =
        row.cells[vc];
  }
  for (auto& row : rows) {
    IDL_RETURN_IF_ERROR(out.Insert(std::move(row)));
  }
  return out;
}

Result<Table> Unpivot(const Table& in, std::string_view key_column,
                      std::string_view name_out, std::string_view value_out) {
  int kc = in.schema().FindColumn(key_column);
  if (kc < 0) return NotFound("unpivot: key column missing");

  // The value type is the common type of the non-key columns.
  ColumnType value_type = ColumnType::kDouble;
  bool first = true;
  for (size_t i = 0; i < in.schema().size(); ++i) {
    if (static_cast<int>(i) == kc) continue;
    if (first) {
      value_type = in.schema().column(i).type;
      first = false;
    } else if (in.schema().column(i).type != value_type) {
      return TypeError("unpivot: non-key columns have mixed types");
    }
  }

  Schema schema;
  IDL_RETURN_IF_ERROR(schema.AddColumn(in.schema().column(kc)));
  IDL_RETURN_IF_ERROR(
      schema.AddColumn(Column{std::string(name_out), ColumnType::kString}));
  IDL_RETURN_IF_ERROR(
      schema.AddColumn(Column{std::string(value_out), value_type}));

  Table out(StrCat(in.name(), "_unpivot"), schema);
  for (const auto& row : in.rows()) {
    for (size_t i = 0; i < in.schema().size(); ++i) {
      if (static_cast<int>(i) == kc) continue;
      if (row.cells[i].is_null()) continue;
      Row fresh;
      fresh.cells = {row.cells[kc], Value::String(in.schema().column(i).name),
                     row.cells[i]};
      IDL_RETURN_IF_ERROR(out.Insert(std::move(fresh)));
    }
  }
  return out;
}

}  // namespace idl
