// First-order conjunctive query engine over a relational database — the
// Datalog/MSQL-class baseline the paper argues is insufficient for schematic
// discrepancies. Relation and attribute names are *fixed constants* here; a
// query that logically quantifies over stocks must be expanded into one
// FoQuery per relation or attribute by the caller (see
// bench/bench_baseline_expansion.cc), which is exactly the pre-IDL state of
// the art this library measures against.

#ifndef IDL_RELATIONAL_FO_ENGINE_H_
#define IDL_RELATIONAL_FO_ENGINE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "relational/algebra.h"
#include "relational/database.h"

namespace idl {

// One body atom: relation(col1=Var1 | const, ...), optionally negated.
struct FoAtom {
  std::string relation;
  struct Arg {
    std::string column;
    // Exactly one of var/constant is used.
    std::string var;   // empty means constant
    Value constant;
    RelOp op = RelOp::kEq;  // constants may use any relop; vars join on '='
  };
  std::vector<Arg> args;
  bool negated = false;
};

struct FoQuery {
  std::vector<FoAtom> atoms;
  // Output variables (the head); empty means boolean.
  std::vector<std::string> projection;
};

struct FoStats {
  uint64_t rows_scanned = 0;
  uint64_t queries_run = 0;
};

// Evaluates by left-to-right nested-loop join with sideways information
// passing (same strategy as the IDL matcher, for a fair comparison).
// The result schema has one string/typed column per projection variable.
Result<ResultSet> ExecuteFoQuery(const RelationalDatabase& db,
                                 const FoQuery& query,
                                 FoStats* stats = nullptr);

// Single-relation selection with the relation's *full* schema:
// σ_{restrictions}(relation). This is the unit of work a federation site
// executes for a shipped first-order subgoal (src/federation): the gateway
// pushes the subgoal's constant comparisons down and pulls back only the
// matching rows, every column intact, so the rows lift losslessly back into
// the object model. `restrictions` are constant-only FoAtom args (var must
// be empty). A restriction naming a column the relation lacks yields an
// *empty* result, not an error — under the adapter's null semantics no row
// of that relation can have the attribute, which is exactly what the IDL
// matcher concludes. A missing relation is kNotFound (the caller decides
// whether that means "skip" — MSQL semantics — or a hard failure). Null
// cells never satisfy a restriction, matching both algebra::Select and the
// matcher's treatment of absent attributes.
Result<ResultSet> ExecuteFoSelect(const RelationalDatabase& db,
                                  const std::string& relation,
                                  const std::vector<FoAtom::Arg>& restrictions,
                                  FoStats* stats = nullptr);

}  // namespace idl

#endif  // IDL_RELATIONAL_FO_ENGINE_H_
