#include "relational/msql.h"

#include <unordered_map>

#include "common/str_util.h"

namespace idl {

Result<MultiQueryResult> BroadcastQuery(
    const std::vector<const RelationalDatabase*>& members,
    const FoQuery& query) {
  MultiQueryResult out;
  IDL_RETURN_IF_ERROR(
      out.results.schema.AddColumn(Column{"db", ColumnType::kString}));
  bool schema_done = false;

  std::unordered_map<uint64_t, std::vector<size_t>> seen;
  auto dedup_append = [&](Row row) {
    uint64_t h = 0x9e37;
    for (const auto& v : row.cells) h = h * 1099511628211ULL ^ v.Hash();
    auto& bucket = seen[h];
    for (size_t i : bucket) {
      if (out.results.rows[i] == row) return;
    }
    bucket.push_back(out.results.rows.size());
    out.results.rows.push_back(std::move(row));
  };

  for (const RelationalDatabase* member : members) {
    Result<ResultSet> rs = ExecuteFoQuery(*member, query, &out.stats);
    if (!rs.ok()) {
      // MSQL semantics: members lacking the template's schema are skipped.
      out.skipped.push_back(member->name());
      continue;
    }
    if (!schema_done) {
      for (const auto& col : rs->schema.columns()) {
        IDL_RETURN_IF_ERROR(out.results.schema.AddColumn(col));
      }
      schema_done = true;
    }
    for (const auto& row : rs->rows) {
      Row prefixed;
      prefixed.cells.reserve(row.cells.size() + 1);
      prefixed.cells.push_back(Value::String(member->name()));
      for (const auto& cell : row.cells) prefixed.cells.push_back(cell);
      dedup_append(std::move(prefixed));
    }
  }
  return out;
}

}  // namespace idl
