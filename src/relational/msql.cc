#include "relational/msql.h"

#include "common/str_util.h"

namespace idl {

Status AppendBroadcastRows(std::string_view member, const ResultSet& rows,
                           MultiQueryResult* out) {
  if (out->results.schema.size() == 0) {
    IDL_RETURN_IF_ERROR(
        out->results.schema.AddColumn(Column{"db", ColumnType::kString}));
  }
  // The first answering member fixes the template's output schema.
  if (out->results.schema.size() == 1) {
    for (const auto& col : rows.schema.columns()) {
      IDL_RETURN_IF_ERROR(out->results.schema.AddColumn(col));
    }
  }
  for (const auto& row : rows.rows) {
    Row prefixed;
    prefixed.cells.reserve(row.cells.size() + 1);
    prefixed.cells.push_back(Value::String(std::string(member)));
    for (const auto& cell : row.cells) prefixed.cells.push_back(cell);

    uint64_t h = 0x9e37;
    for (const auto& v : prefixed.cells) h = h * 1099511628211ULL ^ v.Hash();
    auto& bucket = out->dedup_index[h];
    bool duplicate = false;
    for (size_t i : bucket) {
      if (out->results.rows[i] == prefixed) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    bucket.push_back(out->results.rows.size());
    out->results.rows.push_back(std::move(prefixed));
  }
  return Status::Ok();
}

Result<MultiQueryResult> BroadcastQuery(
    const std::vector<const RelationalDatabase*>& members,
    const FoQuery& query) {
  MultiQueryResult out;
  IDL_RETURN_IF_ERROR(
      out.results.schema.AddColumn(Column{"db", ColumnType::kString}));

  for (const RelationalDatabase* member : members) {
    Result<ResultSet> rs = ExecuteFoQuery(*member, query, &out.stats);
    if (!rs.ok()) {
      // MSQL semantics: members lacking the template's schema are skipped.
      out.skipped.push_back(member->name());
      continue;
    }
    IDL_RETURN_IF_ERROR(AppendBroadcastRows(member->name(), *rs, &out));
  }
  return out;
}

}  // namespace idl
