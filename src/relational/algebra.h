// Relational algebra operators over materialized result sets. This is the
// first-order query machinery a 1991 relational system offers — the baseline
// whose limitations (fixed relation and attribute names) motivate IDL.

#ifndef IDL_RELATIONAL_ALGEBRA_H_
#define IDL_RELATIONAL_ALGEBRA_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/table.h"
#include "syntax/ast.h"

namespace idl {

struct ResultSet {
  Schema schema;
  std::vector<Row> rows;

  // The column values for `name` (empty if absent).
  std::vector<Value> Column(std::string_view name) const;
};

// Copies all rows of `table`.
ResultSet ScanAll(const Table& table);

// σ: keeps rows where `column` `op` `operand` holds (null never matches).
Result<ResultSet> Select(const ResultSet& in, std::string_view column,
                         RelOp op, const Value& operand);

// σ with an arbitrary predicate.
ResultSet SelectWhere(const ResultSet& in,
                      const std::function<bool(const Row&)>& pred);

// π: keeps `columns` in the given order, deduplicating rows.
Result<ResultSet> Project(const ResultSet& in,
                          const std::vector<std::string>& columns);

// ⋈: hash equi-join on left.`left_col` = right.`right_col`. Output schema is
// left's columns followed by right's (right join column dropped; other name
// clashes are prefixed with "r_").
Result<ResultSet> HashJoin(const ResultSet& left, const ResultSet& right,
                           std::string_view left_col,
                           std::string_view right_col);

// ∪ (set union; schemas must match).
Result<ResultSet> Union(const ResultSet& a, const ResultSet& b);

enum class AggFn : uint8_t { kCount, kSum, kMin, kMax, kAvg };

struct AggSpec {
  AggFn fn = AggFn::kCount;
  std::string column;  // ignored for kCount
  std::string as;      // output column name
};

// γ: groups by `key_columns` and computes the aggregates.
Result<ResultSet> GroupBy(const ResultSet& in,
                          const std::vector<std::string>& key_columns,
                          const std::vector<AggSpec>& aggs);

}  // namespace idl

#endif  // IDL_RELATIONAL_ALGEBRA_H_
