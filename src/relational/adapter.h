// Adapter: two-way mapping between relational databases and the IDL object
// model (paper §3's "Modeling Multiple Relational Databases").
//
// Lift:  a database becomes a tuple of relations; each relation a set of
//        tuples; each row a tuple of named atoms. Null cells are *omitted*
//        from the lifted tuple (the object model's null semantics make an
//        absent attribute and a null attribute indistinguishable to queries,
//        and omission is what lets heterogeneous chwab rows arise).
// Lower: reconstructs a relational database from a universe database object,
//        inferring each relation's schema as the union of attribute names
//        with types taken from the first non-null occurrence. Used to write
//        IDL updates back to the substrate.

#ifndef IDL_RELATIONAL_ADAPTER_H_
#define IDL_RELATIONAL_ADAPTER_H_

#include "common/result.h"
#include "object/value.h"
#include "relational/database.h"

namespace idl {

// Database -> universe database object (a tuple of relation sets).
Value LiftDatabase(const RelationalDatabase& db);

// Table -> relation set object.
Value LiftTable(const Table& table);

// Rows (with their schema) -> relation set object, same null-omission
// semantics as LiftTable. Used to lift shipped subgoal answers (a ResultSet
// carrying a site relation's full schema, see relational/fo_engine.h and
// src/federation) back into the object model.
Value LiftRows(const Schema& schema, const std::vector<Row>& rows);

// Universe database object -> relational database. `name` names the result.
Result<RelationalDatabase> LowerDatabase(std::string name,
                                         const Value& db_object);

// Relation set object -> table (schema inferred).
Result<Table> LowerTable(std::string name, const Value& relation);

}  // namespace idl

#endif  // IDL_RELATIONAL_ADAPTER_H_
