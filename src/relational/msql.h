// MSQL-style multidatabase broadcasting (Litwin's MSQL, [Li89], which the
// paper says IDL subsumes). MSQL's core device is the *multiple query*: one
// first-order query template sent to a list of databases, answers unioned,
// with the originating database name added as a column. That handles
// multiple databases with the *same* schema — it does not touch schematic
// discrepancies (the template still names fixed relations and attributes),
// which is precisely the gap IDL fills. Implemented here as the baseline
// that makes the subsumption claim testable:
//   * broadcasting works and equals the IDL formulation on name-aligned
//     schemas (tests);
//   * against chwab/ource-style discrepancies it still needs one template
//     per schema element, like the plain first-order expansion.

#ifndef IDL_RELATIONAL_MSQL_H_
#define IDL_RELATIONAL_MSQL_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "relational/algebra.h"
#include "relational/database.h"
#include "relational/fo_engine.h"

namespace idl {

struct MultiQueryResult {
  // Schema: "db" column (string) followed by the template's projection.
  ResultSet results;
  // Databases whose evaluation failed (e.g. the template's relation is
  // absent there); MSQL semantics skips them rather than failing the
  // multiquery.
  std::vector<std::string> skipped;
  FoStats stats;
  // Internal: row-hash index used to union member answers incrementally.
  std::unordered_map<uint64_t, std::vector<size_t>> dedup_index;
};

// Runs `query` against every database in `members`, unions the answers and
// prefixes each row with the member's name.
Result<MultiQueryResult> BroadcastQuery(
    const std::vector<const RelationalDatabase*>& members,
    const FoQuery& query);

// One member's contribution to a multiquery: prefixes every row with the
// member's name, fixes the output schema from the first answering member,
// and unions (set semantics). Exposed so callers that obtain member answers
// through another transport — the federation gateway executes the template
// on each autonomous site (src/federation) — can reuse MSQL's merge
// semantics instead of reimplementing them.
Status AppendBroadcastRows(std::string_view member, const ResultSet& rows,
                           MultiQueryResult* out);

}  // namespace idl

#endif  // IDL_RELATIONAL_MSQL_H_
