#include "relational/table.h"

#include "common/str_util.h"

namespace idl {

Status Table::Insert(Row row) {
  if (row.cells.size() != schema_.size()) {
    return InvalidArgument(StrCat("row arity ", row.cells.size(),
                                  " does not match schema arity ",
                                  schema_.size(), " of table ", name_));
  }
  for (size_t i = 0; i < row.cells.size(); ++i) {
    if (!ValueFitsType(row.cells[i], schema_.column(i).type)) {
      return TypeError(StrCat("value for column '", schema_.column(i).name,
                              "' of table ", name_, " is not a ",
                              ColumnTypeName(schema_.column(i).type)));
    }
  }
  size_t row_index = rows_.size();
  for (auto& [col, index] : indexes_) {
    int c = schema_.FindColumn(col);
    index.emplace(row.cells[c].Hash(), row_index);
  }
  rows_.push_back(std::move(row));
  return Status::Ok();
}

size_t Table::DeleteWhere(const std::function<bool(const Row&)>& pred) {
  size_t before = rows_.size();
  std::vector<Row> kept;
  kept.reserve(rows_.size());
  for (auto& row : rows_) {
    if (!pred(row)) kept.push_back(std::move(row));
  }
  rows_ = std::move(kept);
  if (rows_.size() != before) RebuildIndexes();
  return before - rows_.size();
}

size_t Table::UpdateWhere(const std::function<bool(const Row&)>& pred,
                          const std::function<void(Row*)>& fn) {
  size_t count = 0;
  for (auto& row : rows_) {
    if (pred(row)) {
      fn(&row);
      ++count;
    }
  }
  if (count > 0) RebuildIndexes();
  return count;
}

Status Table::AddColumn(Column column) {
  IDL_RETURN_IF_ERROR(schema_.AddColumn(std::move(column)));
  for (auto& row : rows_) row.cells.push_back(Value::Null());
  return Status::Ok();
}

Status Table::DropColumn(std::string_view name) {
  int c = schema_.FindColumn(name);
  if (c < 0) return NotFound(StrCat("column '", name, "' in table ", name_));
  IDL_RETURN_IF_ERROR(schema_.DropColumn(name));
  for (auto& row : rows_) row.cells.erase(row.cells.begin() + c);
  indexes_.erase(std::string(name));
  RebuildIndexes();
  return Status::Ok();
}

Status Table::CreateIndex(std::string_view column) {
  int c = schema_.FindColumn(column);
  if (c < 0) return NotFound(StrCat("column '", column, "' in table ", name_));
  auto [it, inserted] = indexes_.try_emplace(std::string(column));
  if (!inserted) return Status::Ok();  // already indexed
  for (size_t i = 0; i < rows_.size(); ++i) {
    it->second.emplace(rows_[i].cells[c].Hash(), i);
  }
  return Status::Ok();
}

bool Table::HasIndex(std::string_view column) const {
  return indexes_.contains(std::string(column));
}

Result<std::vector<size_t>> Table::Probe(std::string_view column,
                                         const Value& key) const {
  auto it = indexes_.find(std::string(column));
  if (it == indexes_.end()) {
    return FailedPrecondition(
        StrCat("column '", column, "' of table ", name_, " is not indexed"));
  }
  int c = schema_.FindColumn(column);
  std::vector<size_t> out;
  auto [lo, hi] = it->second.equal_range(key.Hash());
  for (auto i = lo; i != hi; ++i) {
    if (rows_[i->second].cells[c] == key) out.push_back(i->second);
  }
  return out;
}

void Table::RebuildIndexes() {
  for (auto& [col, index] : indexes_) {
    index.clear();
    int c = schema_.FindColumn(col);
    for (size_t i = 0; i < rows_.size(); ++i) {
      index.emplace(rows_[i].cells[c].Hash(), i);
    }
  }
}

}  // namespace idl
