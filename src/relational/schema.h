// Relational schema: typed, named columns.
//
// The relational layer is the substrate under each multidatabase member: a
// conventional 1991-style relational engine with typed columns, which the
// adapter lifts into the IDL object model.

#ifndef IDL_RELATIONAL_SCHEMA_H_
#define IDL_RELATIONAL_SCHEMA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "object/value.h"

namespace idl {

enum class ColumnType : uint8_t { kBool, kInt, kDouble, kString, kDate };

std::string_view ColumnTypeName(ColumnType type);

// The column type a value conforms to; error for null/tuple/set.
Result<ColumnType> TypeOfValue(const Value& v);

// True if `v` may be stored in a column of type `type` (null is allowed in
// any column; ints widen into double columns).
bool ValueFitsType(const Value& v, ColumnType type);

struct Column {
  std::string name;
  ColumnType type = ColumnType::kString;
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  // -1 if absent.
  int FindColumn(std::string_view name) const;
  bool HasColumn(std::string_view name) const { return FindColumn(name) >= 0; }

  const std::vector<Column>& columns() const { return columns_; }
  size_t size() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  Column* mutable_column(size_t i) { return &columns_[i]; }

  Status AddColumn(Column column);
  Status DropColumn(std::string_view name);

  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b);

 private:
  std::vector<Column> columns_;
};

}  // namespace idl

#endif  // IDL_RELATIONAL_SCHEMA_H_
