#include "relational/fo_engine.h"

#include <map>
#include <unordered_map>

#include "common/str_util.h"
#include "eval/matcher.h"

namespace idl {

namespace {

struct Frame {
  const Table* table;
  std::vector<int> arg_cols;  // column index per atom arg
};

class FoEvaluator {
 public:
  FoEvaluator(const RelationalDatabase& db, const FoQuery& query,
              FoStats* stats)
      : db_(db), query_(query), stats_(stats) {}

  Result<ResultSet> Run() {
    frames_.reserve(query_.atoms.size());
    for (const auto& atom : query_.atoms) {
      const Table* table = db_.FindTable(atom.relation);
      if (table == nullptr) {
        return NotFound(StrCat("relation '", atom.relation, "' in ",
                               db_.name()));
      }
      Frame frame{table, {}};
      for (const auto& arg : atom.args) {
        int c = table->schema().FindColumn(arg.column);
        if (c < 0) {
          return NotFound(StrCat("column '", arg.column, "' of '",
                                 atom.relation, "'"));
        }
        frame.arg_cols.push_back(c);
      }
      frames_.push_back(std::move(frame));
    }

    ResultSet out;
    // Output schema: typed from first binding seen; provisional string.
    for (const auto& var : query_.projection) {
      Status st =
          out.schema.AddColumn(Column{var, ColumnType::kString});
      IDL_RETURN_IF_ERROR(st);
    }

    std::map<std::string, Value> bindings;
    IDL_RETURN_IF_ERROR(Step(0, &bindings, &out));
    if (stats_ != nullptr) ++stats_->queries_run;
    // Correct the column types from the data.
    for (size_t c = 0; c < out.schema.size(); ++c) {
      for (const auto& row : out.rows) {
        if (!row.cells[c].is_null()) {
          Result<ColumnType> t = TypeOfValue(row.cells[c]);
          if (t.ok()) out.schema.mutable_column(c)->type = *t;
          break;
        }
      }
    }
    return out;
  }

 private:
  Status Step(size_t depth, std::map<std::string, Value>* bindings,
              ResultSet* out) {
    if (depth == query_.atoms.size()) {
      Row row;
      row.cells.reserve(query_.projection.size());
      for (const auto& var : query_.projection) {
        auto it = bindings->find(var);
        row.cells.push_back(it == bindings->end() ? Value::Null()
                                                  : it->second);
      }
      // Dedup.
      uint64_t h = 0x9e37;
      for (const auto& v : row.cells) h = h * 1099511628211ULL ^ v.Hash();
      auto& bucket = seen_[h];
      for (size_t i : bucket) {
        if (out->rows[i] == row) return Status::Ok();
      }
      bucket.push_back(out->rows.size());
      out->rows.push_back(std::move(row));
      return Status::Ok();
    }

    const FoAtom& atom = query_.atoms[depth];
    const Frame& frame = frames_[depth];

    if (atom.negated) {
      // Safe negation: all variables must already be bound.
      bool witness = false;
      for (const auto& row : frame.table->rows()) {
        if (stats_ != nullptr) ++stats_->rows_scanned;
        if (RowMatches(atom, frame, row, *bindings, nullptr)) {
          witness = true;
          break;
        }
      }
      if (witness) return Status::Ok();
      return Step(depth + 1, bindings, out);
    }

    for (const auto& row : frame.table->rows()) {
      if (stats_ != nullptr) ++stats_->rows_scanned;
      std::vector<std::pair<std::string, Value>> new_bindings;
      if (!RowMatches(atom, frame, row, *bindings, &new_bindings)) continue;
      for (const auto& [var, v] : new_bindings) bindings->emplace(var, v);
      IDL_RETURN_IF_ERROR(Step(depth + 1, bindings, out));
      for (const auto& [var, v] : new_bindings) bindings->erase(var);
    }
    return Status::Ok();
  }

  // True if `row` satisfies `atom` under `bindings`; records fresh variable
  // bindings in `out` when non-null (negated probes pass null and require
  // full boundness of comparisons that matter).
  bool RowMatches(const FoAtom& atom, const Frame& frame, const Row& row,
                  const std::map<std::string, Value>& bindings,
                  std::vector<std::pair<std::string, Value>>* out) {
    std::vector<std::pair<std::string, Value>> fresh;
    for (size_t a = 0; a < atom.args.size(); ++a) {
      const FoAtom::Arg& arg = atom.args[a];
      const Value& cell = row.cells[frame.arg_cols[a]];
      if (arg.var.empty()) {
        if (!Matcher::EvalRelOp(arg.op, cell, arg.constant)) return false;
        continue;
      }
      auto it = bindings.find(arg.var);
      const Value* bound = it == bindings.end() ? nullptr : &it->second;
      if (bound == nullptr) {
        for (const auto& [var, v] : fresh) {
          if (var == arg.var) {
            bound = &v;
            break;
          }
        }
      }
      if (bound != nullptr) {
        if (!Matcher::EvalRelOp(RelOp::kEq, cell, *bound)) return false;
      } else {
        if (cell.is_null()) return false;
        fresh.emplace_back(arg.var, cell);
      }
    }
    if (out != nullptr) *out = std::move(fresh);
    return true;
  }

  const RelationalDatabase& db_;
  const FoQuery& query_;
  FoStats* stats_;
  std::vector<Frame> frames_;
  std::unordered_map<uint64_t, std::vector<size_t>> seen_;
};

}  // namespace

Result<ResultSet> ExecuteFoQuery(const RelationalDatabase& db,
                                 const FoQuery& query, FoStats* stats) {
  return FoEvaluator(db, query, stats).Run();
}

Result<ResultSet> ExecuteFoSelect(const RelationalDatabase& db,
                                  const std::string& relation,
                                  const std::vector<FoAtom::Arg>& restrictions,
                                  FoStats* stats) {
  const Table* table = db.FindTable(relation);
  if (table == nullptr) {
    return NotFound(StrCat("relation '", relation, "' in ", db.name()));
  }
  ResultSet out;
  out.schema = table->schema();
  if (stats != nullptr) ++stats->queries_run;

  std::vector<int> cols;
  cols.reserve(restrictions.size());
  for (const auto& arg : restrictions) {
    if (!arg.var.empty()) {
      return InvalidArgument(
          StrCat("shipped restriction on '", arg.column,
                 "' must be constant, got variable ", arg.var));
    }
    int c = table->schema().FindColumn(arg.column);
    // No such column: no row of this relation has the attribute, so the
    // selection is empty (see header).
    if (c < 0) return out;
    cols.push_back(c);
  }
  for (const auto& row : table->rows()) {
    if (stats != nullptr) ++stats->rows_scanned;
    bool match = true;
    for (size_t a = 0; a < restrictions.size(); ++a) {
      const Value& cell = row.cells[cols[a]];
      if (cell.is_null() ||
          !Matcher::EvalRelOp(restrictions[a].op, cell,
                              restrictions[a].constant)) {
        match = false;
        break;
      }
    }
    if (match) out.rows.push_back(row);
  }
  return out;
}

}  // namespace idl
