#include "relational/algebra.h"

#include <unordered_map>

#include "common/str_util.h"
#include "eval/matcher.h"

namespace idl {

std::vector<Value> ResultSet::Column(std::string_view name) const {
  std::vector<Value> out;
  int c = schema.FindColumn(name);
  if (c < 0) return out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(row.cells[c]);
  return out;
}

ResultSet ScanAll(const Table& table) {
  ResultSet out;
  out.schema = table.schema();
  out.rows = table.rows();
  return out;
}

Result<ResultSet> Select(const ResultSet& in, std::string_view column,
                         RelOp op, const Value& operand) {
  int c = in.schema.FindColumn(column);
  if (c < 0) return NotFound(StrCat("column '", column, "'"));
  ResultSet out;
  out.schema = in.schema;
  for (const auto& row : in.rows) {
    if (Matcher::EvalRelOp(op, row.cells[c], operand)) out.rows.push_back(row);
  }
  return out;
}

ResultSet SelectWhere(const ResultSet& in,
                      const std::function<bool(const Row&)>& pred) {
  ResultSet out;
  out.schema = in.schema;
  for (const auto& row : in.rows) {
    if (pred(row)) out.rows.push_back(row);
  }
  return out;
}

namespace {

uint64_t RowHash(const Row& row) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const auto& v : row.cells) h = h * 1099511628211ULL ^ v.Hash();
  return h;
}

// Appends `row` unless an equal row exists (hash buckets + deep compare).
void DedupAppend(std::unordered_map<uint64_t, std::vector<size_t>>* seen,
                 std::vector<Row>* rows, Row row) {
  uint64_t h = RowHash(row);
  auto& bucket = (*seen)[h];
  for (size_t i : bucket) {
    if ((*rows)[i] == row) return;
  }
  bucket.push_back(rows->size());
  rows->push_back(std::move(row));
}

}  // namespace

Result<ResultSet> Project(const ResultSet& in,
                          const std::vector<std::string>& columns) {
  ResultSet out;
  std::vector<int> indices;
  for (const auto& name : columns) {
    int c = in.schema.FindColumn(name);
    if (c < 0) return NotFound(StrCat("column '", name, "'"));
    indices.push_back(c);
    IDL_RETURN_IF_ERROR(out.schema.AddColumn(in.schema.column(c)));
  }
  std::unordered_map<uint64_t, std::vector<size_t>> seen;
  for (const auto& row : in.rows) {
    Row projected;
    projected.cells.reserve(indices.size());
    for (int c : indices) projected.cells.push_back(row.cells[c]);
    DedupAppend(&seen, &out.rows, std::move(projected));
  }
  return out;
}

Result<ResultSet> HashJoin(const ResultSet& left, const ResultSet& right,
                           std::string_view left_col,
                           std::string_view right_col) {
  int lc = left.schema.FindColumn(left_col);
  int rc = right.schema.FindColumn(right_col);
  if (lc < 0) return NotFound(StrCat("left column '", left_col, "'"));
  if (rc < 0) return NotFound(StrCat("right column '", right_col, "'"));

  ResultSet out;
  out.schema = left.schema;
  std::vector<int> right_keep;
  for (size_t i = 0; i < right.schema.size(); ++i) {
    if (static_cast<int>(i) == rc) continue;
    right_keep.push_back(static_cast<int>(i));
    Column col = right.schema.column(i);
    if (out.schema.HasColumn(col.name)) col.name = StrCat("r_", col.name);
    IDL_RETURN_IF_ERROR(out.schema.AddColumn(std::move(col)));
  }

  // Build on the smaller side conceptually; for clarity build on right.
  std::unordered_multimap<uint64_t, size_t> build;
  for (size_t i = 0; i < right.rows.size(); ++i) {
    build.emplace(right.rows[i].cells[rc].Hash(), i);
  }
  for (const auto& lrow : left.rows) {
    const Value& key = lrow.cells[lc];
    if (key.is_null()) continue;  // nulls never join
    auto [lo, hi] = build.equal_range(key.Hash());
    for (auto it = lo; it != hi; ++it) {
      const Row& rrow = right.rows[it->second];
      if (!(rrow.cells[rc] == key)) continue;
      Row joined = lrow;
      for (int c : right_keep) joined.cells.push_back(rrow.cells[c]);
      out.rows.push_back(std::move(joined));
    }
  }
  return out;
}

Result<ResultSet> Union(const ResultSet& a, const ResultSet& b) {
  if (!(a.schema == b.schema)) {
    return InvalidArgument(StrCat("union schema mismatch: ",
                                  a.schema.ToString(), " vs ",
                                  b.schema.ToString()));
  }
  ResultSet out;
  out.schema = a.schema;
  std::unordered_map<uint64_t, std::vector<size_t>> seen;
  for (const auto& row : a.rows) DedupAppend(&seen, &out.rows, row);
  for (const auto& row : b.rows) DedupAppend(&seen, &out.rows, row);
  return out;
}

Result<ResultSet> GroupBy(const ResultSet& in,
                          const std::vector<std::string>& key_columns,
                          const std::vector<AggSpec>& aggs) {
  std::vector<int> keys;
  for (const auto& name : key_columns) {
    int c = in.schema.FindColumn(name);
    if (c < 0) return NotFound(StrCat("column '", name, "'"));
    keys.push_back(c);
  }
  std::vector<int> agg_cols;
  for (const auto& spec : aggs) {
    if (spec.fn == AggFn::kCount) {
      agg_cols.push_back(-1);
      continue;
    }
    int c = in.schema.FindColumn(spec.column);
    if (c < 0) return NotFound(StrCat("column '", spec.column, "'"));
    agg_cols.push_back(c);
  }

  struct Acc {
    std::vector<Value> key;
    std::vector<double> sum;
    std::vector<Value> min, max;
    std::vector<int64_t> count;
  };
  std::unordered_map<uint64_t, std::vector<Acc>> groups;

  for (const auto& row : in.rows) {
    std::vector<Value> key;
    key.reserve(keys.size());
    uint64_t h = 0x9e37;
    for (int c : keys) {
      h = h * 1099511628211ULL ^ row.cells[c].Hash();
      key.push_back(row.cells[c]);
    }
    auto& bucket = groups[h];
    Acc* acc = nullptr;
    for (auto& a : bucket) {
      if (a.key == key) {
        acc = &a;
        break;
      }
    }
    if (acc == nullptr) {
      bucket.push_back(Acc{std::move(key),
                           std::vector<double>(aggs.size(), 0),
                           std::vector<Value>(aggs.size()),
                           std::vector<Value>(aggs.size()),
                           std::vector<int64_t>(aggs.size(), 0)});
      acc = &bucket.back();
    }
    for (size_t a = 0; a < aggs.size(); ++a) {
      const AggSpec& spec = aggs[a];
      if (spec.fn == AggFn::kCount) {
        ++acc->count[a];
        continue;
      }
      const Value& v = row.cells[agg_cols[a]];
      if (v.is_null()) continue;
      ++acc->count[a];
      if (v.is_number()) acc->sum[a] += v.as_double();
      if (acc->min[a].is_null() ||
          Matcher::EvalRelOp(RelOp::kLt, v, acc->min[a])) {
        acc->min[a] = v;
      }
      if (acc->max[a].is_null() ||
          Matcher::EvalRelOp(RelOp::kGt, v, acc->max[a])) {
        acc->max[a] = v;
      }
    }
  }

  ResultSet out;
  for (int c : keys) IDL_RETURN_IF_ERROR(out.schema.AddColumn(in.schema.column(c)));
  for (size_t a = 0; a < aggs.size(); ++a) {
    ColumnType type = ColumnType::kDouble;
    if (aggs[a].fn == AggFn::kCount) type = ColumnType::kInt;
    if ((aggs[a].fn == AggFn::kMin || aggs[a].fn == AggFn::kMax) &&
        agg_cols[a] >= 0) {
      type = in.schema.column(agg_cols[a]).type;
    }
    IDL_RETURN_IF_ERROR(out.schema.AddColumn(Column{aggs[a].as, type}));
  }
  for (auto& [h, bucket] : groups) {
    for (auto& acc : bucket) {
      Row row;
      row.cells = acc.key;
      for (size_t a = 0; a < aggs.size(); ++a) {
        switch (aggs[a].fn) {
          case AggFn::kCount:
            row.cells.push_back(Value::Int(acc.count[a]));
            break;
          case AggFn::kSum:
            row.cells.push_back(Value::Real(acc.sum[a]));
            break;
          case AggFn::kAvg:
            row.cells.push_back(acc.count[a] == 0
                                    ? Value::Null()
                                    : Value::Real(acc.sum[a] / acc.count[a]));
            break;
          case AggFn::kMin:
            row.cells.push_back(acc.min[a]);
            break;
          case AggFn::kMax:
            row.cells.push_back(acc.max[a]);
            break;
        }
      }
      out.rows.push_back(std::move(row));
    }
  }
  return out;
}

}  // namespace idl
