#include "durability/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/metrics.h"
#include "common/str_util.h"
#include "durability/crc32.h"

namespace idl {

namespace {

constexpr char kMagic[8] = {'I', 'D', 'L', 'W', 'A', 'L', '1', '\n'};
constexpr uint32_t kVersion = 1;
constexpr size_t kFileHeaderSize = 8 + 4 + 4;   // magic, version, crc
constexpr size_t kRecordHeaderSize = 8 + 8 + 1 + 4 + 4;  // ..., header_crc
constexpr size_t kCrcSize = 4;

struct WalMetrics {
  Counter* appends;
  Counter* bytes;
};

// Registered lazily on first WAL use so in-memory-only runs (and their
// golden metric snapshots) never list the wal.* instruments.
const WalMetrics& Metrics() {
  static const WalMetrics m = {
      MetricsRegistry::Global().counter("wal.appends"),
      MetricsRegistry::Global().counter("wal.bytes"),
  };
  return m;
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t GetU32(std::string_view in, size_t at) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(in[at + i]))
         << (8 * i);
  }
  return v;
}

uint64_t GetU64(std::string_view in, size_t at) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(in[at + i]))
         << (8 * i);
  }
  return v;
}

std::string FileHeaderBytes() {
  std::string out(kMagic, sizeof(kMagic));
  PutU32(&out, kVersion);
  PutU32(&out, Crc32(out));
  return out;
}

// "wal.log" from "/some/dir/wal.log" — positioned errors carry the file
// name, not the caller's directory layout.
std::string_view BaseName(std::string_view path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string_view::npos ? path : path.substr(slash + 1);
}

// One record's on-disk bytes.
std::string EncodeRecord(const WalRecord& record) {
  std::string payload;
  PutU32(&payload, static_cast<uint32_t>(record.name.size()));
  payload += record.name;
  payload += record.body;

  std::string out;
  PutU64(&out, record.lsn);
  PutU64(&out, record.epoch);
  out.push_back(static_cast<char>(record.type));
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  PutU32(&out, Crc32(out));  // header crc over the 21 bytes so far
  out += payload;
  PutU32(&out, Crc32(payload));
  return out;
}

}  // namespace

const char* WalRecordTypeName(WalRecordType type) {
  switch (type) {
    case WalRecordType::kCommit:
      return "commit";
    case WalRecordType::kDefineRule:
      return "define-rule";
    case WalRecordType::kRegisterDatabase:
      return "register-database";
    case WalRecordType::kDefineProgram:
      return "define-program";
  }
  return "unknown";
}

const char* CrashPointName(CrashPoint point) {
  switch (point) {
    case CrashPoint::kBeforeAppend:
      return "before-append";
    case CrashPoint::kMidAppend:
      return "mid-append";
    case CrashPoint::kAfterAppend:
      return "after-append";
    case CrashPoint::kMidFsync:
      return "mid-fsync";
    case CrashPoint::kAfterFsync:
      return "after-fsync";
    case CrashPoint::kBeforeCheckpoint:
      return "before-checkpoint";
    case CrashPoint::kMidCheckpointWrite:
      return "mid-checkpoint-write";
    case CrashPoint::kAfterCheckpointWrite:
      return "after-checkpoint-write";
    case CrashPoint::kAfterCheckpointRename:
      return "after-checkpoint-rename";
    case CrashPoint::kAfterWalReset:
      return "after-wal-reset";
  }
  return "unknown";
}

const std::vector<CrashPoint>& AllCrashPoints() {
  static const std::vector<CrashPoint> kAll = {
      CrashPoint::kBeforeAppend,          CrashPoint::kMidAppend,
      CrashPoint::kAfterAppend,           CrashPoint::kMidFsync,
      CrashPoint::kAfterFsync,            CrashPoint::kBeforeCheckpoint,
      CrashPoint::kMidCheckpointWrite,    CrashPoint::kAfterCheckpointWrite,
      CrashPoint::kAfterCheckpointRename, CrashPoint::kAfterWalReset,
  };
  return kAll;
}

bool ParseCrashPointName(std::string_view name, CrashPoint* point) {
  for (CrashPoint p : AllCrashPoints()) {
    if (name == CrashPointName(p)) {
      *point = p;
      return true;
    }
  }
  return false;
}

bool CrashPointRecordDurable(CrashPoint point) {
  switch (point) {
    case CrashPoint::kBeforeAppend:
    case CrashPoint::kMidAppend:
      return false;
    // From kAfterAppend on, the record's bytes are complete in the file (a
    // simulated kill loses only process memory, not written bytes), and the
    // checkpoint points all fire after the triggering record's append.
    case CrashPoint::kAfterAppend:
    case CrashPoint::kMidFsync:
    case CrashPoint::kAfterFsync:
    case CrashPoint::kBeforeCheckpoint:
    case CrashPoint::kMidCheckpointWrite:
    case CrashPoint::kAfterCheckpointWrite:
    case CrashPoint::kAfterCheckpointRename:
    case CrashPoint::kAfterWalReset:
      return true;
  }
  return true;
}

Wal::Wal(std::string path, int fd, uint64_t next_lsn,
         const WalOptions& options)
    : path_(std::move(path)),
      fd_(fd),
      next_lsn_(next_lsn),
      options_(options) {}

Wal::~Wal() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<Wal>> Wal::Create(const std::string& path,
                                         uint64_t next_lsn,
                                         const WalOptions& options) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Internal(StrCat("open for write failed: ", std::strerror(errno)))
        .WithContext(std::string(BaseName(path)));
  }
  auto wal =
      std::unique_ptr<Wal>(new Wal(path, fd, next_lsn, options));
  IDL_RETURN_IF_ERROR(wal->WriteAll(FileHeaderBytes()));
  IDL_RETURN_IF_ERROR(wal->Sync());
  return wal;
}

Result<std::unique_ptr<Wal>> Wal::OpenForAppend(const std::string& path,
                                                uint64_t next_lsn,
                                                const WalOptions& options) {
  int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) {
    return Internal(StrCat("open for append failed: ", std::strerror(errno)))
        .WithContext(std::string(BaseName(path)));
  }
  return std::unique_ptr<Wal>(new Wal(path, fd, next_lsn, options));
}

Status Wal::Poison(Status status) {
  poison_ = status;
  return status;
}

Status Wal::Crash(CrashPoint point) {
  if (options_.crash_hook && options_.crash_hook(point)) {
    return Poison(
        Unavailable(StrCat("crash injected at ", CrashPointName(point))));
  }
  return Status::Ok();
}

Status Wal::WriteAll(std::string_view bytes) {
  size_t done = 0;
  while (done < bytes.size()) {
    ssize_t n = ::write(fd_, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Poison(
          Internal(StrCat("write failed: ", std::strerror(errno)))
              .WithContext(std::string(BaseName(path_))));
    }
    done += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status Wal::Sync() {
  if (!options_.fsync) return Status::Ok();
  if (::fsync(fd_) != 0) {
    return Poison(Internal(StrCat("fsync failed: ", std::strerror(errno)))
                      .WithContext(std::string(BaseName(path_))));
  }
  return Status::Ok();
}

Status Wal::Append(WalRecordType type, std::string_view name,
                   std::string_view body, uint64_t epoch) {
  if (!poison_.ok()) {
    return poison_.WithContext("wal is dead");
  }
  WalRecord record;
  record.lsn = next_lsn_;
  record.epoch = epoch;
  record.type = type;
  record.name = std::string(name);
  record.body = std::string(body);
  std::string bytes = EncodeRecord(record);

  IDL_RETURN_IF_ERROR(Crash(CrashPoint::kBeforeAppend));
  if (options_.crash_hook && options_.crash_hook(CrashPoint::kMidAppend)) {
    // The torn write a real kill produces: a strict prefix of the record
    // (header plus half the payload) reaches the file, then the process
    // dies. Recovery must truncate exactly this back off.
    size_t torn = kRecordHeaderSize + (bytes.size() - kRecordHeaderSize) / 2;
    Status written = WriteAll(std::string_view(bytes).substr(0, torn));
    Status crash = Poison(Unavailable(
        StrCat("crash injected at ", CrashPointName(CrashPoint::kMidAppend))));
    return written.ok() ? crash : written;
  }
  IDL_RETURN_IF_ERROR(WriteAll(bytes));
  IDL_RETURN_IF_ERROR(Crash(CrashPoint::kAfterAppend));
  IDL_RETURN_IF_ERROR(Crash(CrashPoint::kMidFsync));
  IDL_RETURN_IF_ERROR(Sync());
  IDL_RETURN_IF_ERROR(Crash(CrashPoint::kAfterFsync));
  ++next_lsn_;
  Metrics().appends->Increment();
  Metrics().bytes->Increment(bytes.size());
  return Status::Ok();
}

Status Wal::Reset() {
  if (!poison_.ok()) {
    return poison_.WithContext("wal is dead");
  }
  const std::string tmp = path_ + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Poison(
        Internal(StrCat("open for write failed: ", std::strerror(errno)))
            .WithContext(std::string(BaseName(tmp))));
  }
  std::string header = FileHeaderBytes();
  size_t done = 0;
  while (done < header.size()) {
    ssize_t n = ::write(fd, header.data() + done, header.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Poison(
          Internal(StrCat("write failed: ", std::strerror(errno)))
              .WithContext(std::string(BaseName(tmp))));
    }
    done += static_cast<size_t>(n);
  }
  if (options_.fsync && ::fsync(fd) != 0) {
    ::close(fd);
    return Poison(Internal(StrCat("fsync failed: ", std::strerror(errno)))
                      .WithContext(std::string(BaseName(tmp))));
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path_.c_str()) != 0) {
    return Poison(Internal(StrCat("rename failed: ", std::strerror(errno)))
                      .WithContext(std::string(BaseName(path_))));
  }
  // Reopen the (fresh) log for appending; the old fd points at the
  // unlinked previous file.
  ::close(fd_);
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND);
  if (fd_ < 0) {
    return Poison(
        Internal(StrCat("open for append failed: ", std::strerror(errno)))
            .WithContext(std::string(BaseName(path_))));
  }
  return Status::Ok();
}

Result<WalReadResult> ReadWal(const std::string& path,
                              bool repair_torn_tail) {
  const std::string file(BaseName(path));
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    return NotFound(StrCat(file, ": cannot open"));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string data = buffer.str();

  if (data.size() < kFileHeaderSize) {
    return DataLoss(
        StrCat(FileOffsetContext(file, 0), ": truncated file header (",
               data.size(), " bytes, need ", kFileHeaderSize, ")"));
  }
  if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return DataLoss(StrCat(FileOffsetContext(file, 0), ": bad magic"));
  }
  if (GetU32(data, 8) != kVersion) {
    return DataLoss(StrCat(FileOffsetContext(file, 8),
                           ": unsupported version ", GetU32(data, 8)));
  }
  if (GetU32(data, 12) !=
      Crc32(std::string_view(data).substr(0, kFileHeaderSize - 4))) {
    return DataLoss(
        StrCat(FileOffsetContext(file, 12), ": file header checksum mismatch"));
  }

  WalReadResult out;
  uint64_t prev_lsn = 0;
  size_t pos = kFileHeaderSize;
  while (pos < data.size()) {
    const size_t record_at = pos;
    if (data.size() - pos < kRecordHeaderSize) {
      // Torn header: the file ends inside a record header. Only the final
      // write can tear, so this is the tail.
      ++out.torn_tail_truncations;
      break;
    }
    std::string_view header =
        std::string_view(data).substr(pos, kRecordHeaderSize);
    uint32_t header_crc = GetU32(data, pos + 21);
    if (header_crc != Crc32(header.substr(0, 21))) {
      return DataLoss(StrCat(FileOffsetContext(file, record_at),
                             ": record header checksum mismatch"));
    }
    WalRecord record;
    record.lsn = GetU64(data, pos);
    record.epoch = GetU64(data, pos + 8);
    uint8_t raw_type = static_cast<unsigned char>(data[pos + 16]);
    uint32_t payload_len = GetU32(data, pos + 17);
    pos += kRecordHeaderSize;
    if (data.size() - pos < payload_len + kCrcSize) {
      // Torn payload (header intact, so payload_len is trustworthy).
      ++out.torn_tail_truncations;
      pos = record_at;
      break;
    }
    std::string_view payload = std::string_view(data).substr(pos, payload_len);
    uint32_t payload_crc = GetU32(data, pos + payload_len);
    if (payload_crc != Crc32(payload)) {
      return DataLoss(StrCat(FileOffsetContext(file, record_at),
                             ": checksum mismatch"));
    }
    pos += payload_len + kCrcSize;
    if (raw_type < 1 || raw_type > 4) {
      return DataLoss(StrCat(FileOffsetContext(file, record_at),
                             ": unknown record type ", raw_type));
    }
    record.type = static_cast<WalRecordType>(raw_type);
    if (record.lsn <= prev_lsn) {
      return DataLoss(StrCat(FileOffsetContext(file, record_at),
                             ": non-monotonic lsn ", record.lsn, " after ",
                             prev_lsn));
    }
    prev_lsn = record.lsn;
    if (payload_len < 4) {
      return DataLoss(StrCat(FileOffsetContext(file, record_at),
                             ": payload too short (", payload_len, ")"));
    }
    uint32_t name_len = GetU32(payload, 0);
    if (name_len > payload_len - 4) {
      return DataLoss(StrCat(FileOffsetContext(file, record_at),
                             ": name length ", name_len,
                             " exceeds payload"));
    }
    record.name = std::string(payload.substr(4, name_len));
    record.body = std::string(payload.substr(4 + name_len));
    out.records.push_back(std::move(record));
  }
  out.next_lsn = prev_lsn + 1;

  if (out.torn_tail_truncations > 0 && repair_torn_tail) {
    if (::truncate(path.c_str(), static_cast<off_t>(pos)) != 0) {
      return Internal(StrCat("truncate failed: ", std::strerror(errno)))
          .WithContext(FileOffsetContext(file, pos));
    }
  }
  return out;
}

}  // namespace idl
