// Write-ahead log of the server's committed state changes.
//
// One append-only file (`wal.log`) per durability directory. The server's
// single-writer commit queue appends one record per applied state change —
// update-request commits, online rule definitions, database registrations,
// program definitions — *before* the resulting epoch is published, so a
// record in the log is exactly a change the server acknowledged (or was
// about to acknowledge when it died). Recovery replays the tail through the
// ordinary session commit path (docs/DURABILITY.md has the protocol).
//
// On-disk format (all integers little-endian, fixed width):
//
//   file header   "IDLWAL1\n" magic (8) | u32 version | u32 crc(magic+ver)
//   record        u64 lsn | u64 epoch | u8 type | u32 payload_len
//                 | u32 header_crc   — CRC-32 of the 21 header bytes
//                 | payload bytes
//                 | u32 payload_crc  — CRC-32 of the payload
//
// The header CRC is what makes corruption detection total: the reader
// validates it *before* trusting payload_len, so a bit flip anywhere in a
// complete record — lsn, type, length field, payload, either CRC — fails
// validation rather than sending the reader off the rails. The resulting
// taxonomy at read time:
//
//   * file ends mid-header or mid-payload  -> torn tail (the one write a
//     real crash can tear); with repair_torn_tail the file is truncated at
//     the last complete record and reading continues — the in-flight change
//     was never acknowledged, losing it is correct.
//   * complete record, either CRC wrong    -> kDataLoss with the byte
//     offset ("wal.log:1042: checksum mismatch"), torn or not: a complete
//     record never has a bad CRC except by corruption, and recovery must
//     halt rather than silently drop acknowledged commits.
//
// Records carry their LSN explicitly (they are skipped at replay when a
// snapshot already covers them) and the epoch id their commit published
// (so a recovered server resumes epoch numbering where the dead one
// stopped). Thread-compatibility: one writer (the commit thread, under the
// server's session mutex); readers only ever see closed files.

#ifndef IDL_DURABILITY_WAL_H_
#define IDL_DURABILITY_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "durability/crash_point.h"

namespace idl {

enum class WalRecordType : uint8_t {
  kCommit = 1,            // body = the update request text
  kDefineRule = 2,        // body = the rule text
  kRegisterDatabase = 3,  // name = database name, body = value_io literal
  kDefineProgram = 4,     // body = the program clause text
};

const char* WalRecordTypeName(WalRecordType type);

struct WalRecord {
  uint64_t lsn = 0;
  // The epoch id this change published (0 when it published none — e.g. a
  // rule defined before the first epoch, or a program definition).
  uint64_t epoch = 0;
  WalRecordType type = WalRecordType::kCommit;
  std::string name;  // only kRegisterDatabase uses it
  std::string body;
};

struct WalOptions {
  // fsync after every append and checkpoint step. Turning this off trades
  // the power-failure guarantee for throughput (bench_wal measures both);
  // the *process*-crash guarantee is unaffected — written bytes survive a
  // kill either way.
  bool fsync = true;
  // Test-only crash injection (durability/crash_point.h).
  CrashHook crash_hook;
};

// The append half. Obtained via Create (fresh log) or OpenForAppend (after
// recovery read the tail). After any failed append — injected crash or real
// I/O error — the log is *dead*: every later call returns the original
// failure, mirroring the fail-stop behaviour of a process that lost its
// log (the server surfaces this as commit failures; docs/DURABILITY.md).
class Wal {
 public:
  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  // Creates `path` with a fresh header, truncating any previous content.
  // First record will be `next_lsn`.
  static Result<std::unique_ptr<Wal>> Create(const std::string& path,
                                             uint64_t next_lsn,
                                             const WalOptions& options);

  // Opens an existing log for appending. `next_lsn` is one past the last
  // valid record (ReadWal reports it); the file must already be repaired.
  static Result<std::unique_ptr<Wal>> OpenForAppend(const std::string& path,
                                                    uint64_t next_lsn,
                                                    const WalOptions& options);

  // Appends one record (the lsn is assigned here: next_lsn()). Durable —
  // bytes written and, per options.fsync, synced — when OK is returned.
  Status Append(WalRecordType type, std::string_view name,
                std::string_view body, uint64_t epoch);

  // Atomically replaces the log with a fresh one whose records start at
  // next_lsn() (called after a snapshot covered everything before it):
  // write `wal.log.tmp` with a new header, fsync, rename over the log.
  // Crash-safe: a kill between the snapshot rename and this reset leaves
  // stale records in the log, which replay skips by LSN.
  Status Reset();

  uint64_t next_lsn() const { return next_lsn_; }
  // LSN of the most recently appended record; 0 if none yet.
  uint64_t last_lsn() const { return next_lsn_ == 0 ? 0 : next_lsn_ - 1; }

  // Non-OK once a failed append/reset killed the log (sticky).
  const Status& poisoned() const { return poison_; }

 private:
  Wal(std::string path, int fd, uint64_t next_lsn, const WalOptions& options);

  // Consults the crash hook; on injection marks the log dead and returns
  // the injected-crash status.
  Status Crash(CrashPoint point);
  Status WriteAll(std::string_view bytes);
  Status Sync();
  Status Poison(Status status);  // records + returns the failure

  std::string path_;
  int fd_ = -1;
  uint64_t next_lsn_ = 1;
  WalOptions options_;
  Status poison_;
};

// What ReadWal found.
struct WalReadResult {
  std::vector<WalRecord> records;
  uint64_t next_lsn = 1;  // one past the last valid record
  // 1 when a torn final record was dropped (and, with repair_torn_tail,
  // truncated away); 0 otherwise.
  size_t torn_tail_truncations = 0;
};

// Reads and validates every record of the log at `path`. A torn tail is
// tolerated (dropped; truncated in place when `repair_torn_tail`, so the
// log can be reopened for append); a complete record failing either CRC, a
// bad file header, or a non-monotonic LSN is kDataLoss positioned at the
// failing byte offset.
Result<WalReadResult> ReadWal(const std::string& path, bool repair_torn_tail);

}  // namespace idl

#endif  // IDL_DURABILITY_WAL_H_
