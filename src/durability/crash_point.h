// Crash-point injection for the durability layer.
//
// Every I/O step of the WAL and the snapshot writer consults an optional
// hook before proceeding. When the hook returns true the layer simulates a
// process death at exactly that step: it leaves the files in the state a
// real kill would (nothing written, a torn record prefix, an un-renamed
// snapshot temp file, an un-truncated log, ...), marks itself dead so every
// later operation fails, and unwinds with kUnavailable carrying the point
// name. The crash-injection differential suite
// (tests/durability_crash_test.cc) drives schema-evolution traces, kills at
// every point in turn, recovers from the on-disk state, and asserts the
// recovered server is Value-identical to an uncrashed shadow session — the
// durability counterpart of PR 3's governor interrupt harness.
//
// Production code never installs a hook; the null check is the entire cost.

#ifndef IDL_DURABILITY_CRASH_POINT_H_
#define IDL_DURABILITY_CRASH_POINT_H_

#include <functional>
#include <string_view>
#include <vector>

namespace idl {

enum class CrashPoint {
  // WAL append steps, in order.
  kBeforeAppend,          // nothing of the record written
  kMidAppend,             // a strict byte prefix written: the torn tail
  kAfterAppend,           // record bytes complete, fsync not yet issued
  kMidFsync,              // inside the fsync (bytes are in the file)
  kAfterFsync,            // append fully durable
  // Snapshot checkpoint steps, in order.
  kBeforeCheckpoint,      // nothing of the snapshot written
  kMidCheckpointWrite,    // a byte prefix of the temp file written
  kAfterCheckpointWrite,  // temp file complete + fsynced, not renamed
  kAfterCheckpointRename, // snapshot live, WAL not yet reset
  kAfterWalReset,         // fresh WAL installed, old snapshots not pruned
};

// "before-append", "mid-append", ... (the token carried in the injected
// kUnavailable message: "crash injected at mid-append").
const char* CrashPointName(CrashPoint point);

// Every point, in the order declared above (the crash harness sweeps it).
const std::vector<CrashPoint>& AllCrashPoints();

// Inverse of CrashPointName ("mid-append" -> kMidAppend); false on unknown
// names (the `% crash-at:` script directive rejects typos through this).
bool ParseCrashPointName(std::string_view name, CrashPoint* point);

// True when a crash at `point` leaves the record (or checkpoint trigger)
// that was in flight fully readable on disk: recovery will replay it even
// though the caller saw an error. The differential harness uses this to
// pick which shadow prefix the recovered state must equal.
bool CrashPointRecordDurable(CrashPoint point);

// Returns true to inject a crash at this point. Called on the single writer
// thread only.
using CrashHook = std::function<bool(CrashPoint)>;

}  // namespace idl

#endif  // IDL_DURABILITY_CRASH_POINT_H_
