// CRC-32 (the IEEE 802.3 polynomial, reflected: 0xEDB88320) over byte
// ranges. This is the integrity check of every durable artifact the server
// writes (docs/DURABILITY.md): WAL record headers and payloads, and
// snapshot payloads, each carry a CRC computed here, so a single flipped
// bit anywhere in a complete record is detected at recovery and surfaced as
// a positioned kDataLoss error instead of silently replayed.
//
// Table-driven, one table shared process-wide; no external dependency (the
// container bakes in no zlib guarantee). ~1 GB/s — the WAL's appends are
// bounded by the serialization and fsync next to it, not by this.

#ifndef IDL_DURABILITY_CRC32_H_
#define IDL_DURABILITY_CRC32_H_

#include <cstdint>
#include <string_view>

namespace idl {

// CRC-32 of `data`, optionally continuing from a previous value (pass the
// prior result as `seed` to checksum a logically contiguous byte sequence
// written in pieces).
uint32_t Crc32(std::string_view data, uint32_t seed = 0);

}  // namespace idl

#endif  // IDL_DURABILITY_CRC32_H_
