#include "durability/crc32.h"

#include <array>

namespace idl {

namespace {

std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data, uint32_t seed) {
  static const std::array<uint32_t, 256> kTable = MakeTable();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (char ch : data) {
    c = kTable[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace idl
