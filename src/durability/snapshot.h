// Snapshot checkpoints: the WAL's truncation points.
//
// A snapshot is one self-contained file holding everything the server needs
// to rebuild its session without the log: the registered base databases
// (each serialized through value_io — the same round-trip ExportDatabase
// rests on), the rule and program texts in definition order, the LSN of the
// last WAL record the snapshot covers, and the next epoch id. Recovery
// loads the newest snapshot, replays only WAL records with a later LSN, and
// rematerializes the views from the rules (derived state is never
// persisted — it is a pure function of base + rules, docs/DURABILITY.md).
//
// On-disk format: "IDLSNAP1" magic | u32 version | u32 payload_len
// | payload | u32 crc(payload), with the payload a length-prefixed
// section list (all integers little-endian):
//
//   u64 last_lsn | u64 next_epoch_id
//   u32 n_databases | n * (str name, str value_literal)
//   u32 n_rules     | n * str
//   u32 n_programs  | n * str            (str = u32 length + bytes)
//
// Written crash-safe: the payload goes to `<name>.tmp`, is fsynced, and is
// renamed to `snap.<lsn, 12 digits>.idls` — a reader never sees a partial
// snapshot under the final name, so a complete snapshot with a bad CRC is
// corruption (kDataLoss, positioned), never a torn write. Temp files are
// skipped (and cleaned) at recovery; older snapshots are pruned after a new
// one lands.

#ifndef IDL_DURABILITY_SNAPSHOT_H_
#define IDL_DURABILITY_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "durability/crash_point.h"
#include "durability/wal.h"

namespace idl {

struct SnapshotData {
  uint64_t last_lsn = 0;       // WAL records with lsn <= this are covered
  uint64_t next_epoch_id = 1;  // epoch numbering resumes here
  // (name, value_io literal) per registered database, registration order.
  std::vector<std::pair<std::string, std::string>> databases;
  std::vector<std::string> rules;     // definition order
  std::vector<std::string> programs;  // definition order
};

// "snap.000000000042.idls" for lsn 42.
std::string SnapshotFileName(uint64_t last_lsn);

// Inverse of SnapshotFileName; false for temp files and foreign names.
bool ParseSnapshotFileName(std::string_view name, uint64_t* lsn);

// Writes `data` into `dir` crash-safely (tmp + fsync + rename), consulting
// the crash hook at each step, and prunes older snapshot files on success.
Status WriteSnapshot(const std::string& dir, const SnapshotData& data,
                     const WalOptions& options);

// Parses and validates one snapshot file. kDataLoss (positioned) on any
// checksum or structural mismatch.
Result<SnapshotData> ReadSnapshot(const std::string& path);

// The newest snapshot in `dir` by filename LSN: (path, lsn), or lsn 0 with
// an empty path when none exists. Ignores temp files and foreign names.
struct LatestSnapshot {
  std::string path;  // empty when none
  uint64_t lsn = 0;
};
Result<LatestSnapshot> FindLatestSnapshot(const std::string& dir);

}  // namespace idl

#endif  // IDL_DURABILITY_SNAPSHOT_H_
