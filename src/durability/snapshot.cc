#include "durability/snapshot.h"

#include <dirent.h>
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/str_util.h"
#include "durability/crc32.h"

namespace idl {

namespace {

constexpr char kMagic[8] = {'I', 'D', 'L', 'S', 'N', 'A', 'P', '1'};
constexpr uint32_t kVersion = 1;
constexpr size_t kFileHeaderSize = 8 + 4 + 4;  // magic, version, payload_len

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutStr(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

std::string_view BaseName(std::string_view path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string_view::npos ? path : path.substr(slash + 1);
}

// Sequential reader over the validated payload; every getter bounds-checks
// and reports the absolute file offset of the failure.
class PayloadReader {
 public:
  PayloadReader(std::string_view payload, std::string file)
      : payload_(payload), file_(std::move(file)) {}

  Status GetU32(uint32_t* v) {
    IDL_RETURN_IF_ERROR(Need(4));
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(static_cast<unsigned char>(payload_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 4;
    return Status::Ok();
  }

  Status GetU64(uint64_t* v) {
    IDL_RETURN_IF_ERROR(Need(8));
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(static_cast<unsigned char>(payload_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 8;
    return Status::Ok();
  }

  Status GetStr(std::string* s) {
    uint32_t len = 0;
    IDL_RETURN_IF_ERROR(GetU32(&len));
    IDL_RETURN_IF_ERROR(Need(len));
    *s = std::string(payload_.substr(pos_, len));
    pos_ += len;
    return Status::Ok();
  }

  Status AtEnd() const {
    if (pos_ != payload_.size()) {
      return DataLoss(StrCat(FileOffsetContext(file_, kFileHeaderSize + pos_),
                             ": trailing bytes after snapshot payload"));
    }
    return Status::Ok();
  }

 private:
  Status Need(size_t n) const {
    if (payload_.size() - pos_ < n) {
      return DataLoss(StrCat(FileOffsetContext(file_, kFileHeaderSize + pos_),
                             ": snapshot payload truncated"));
    }
    return Status::Ok();
  }

  std::string_view payload_;
  std::string file_;
  size_t pos_ = 0;
};

std::string EncodeSnapshot(const SnapshotData& data) {
  std::string payload;
  PutU64(&payload, data.last_lsn);
  PutU64(&payload, data.next_epoch_id);
  PutU32(&payload, static_cast<uint32_t>(data.databases.size()));
  for (const auto& [name, literal] : data.databases) {
    PutStr(&payload, name);
    PutStr(&payload, literal);
  }
  PutU32(&payload, static_cast<uint32_t>(data.rules.size()));
  for (const std::string& rule : data.rules) PutStr(&payload, rule);
  PutU32(&payload, static_cast<uint32_t>(data.programs.size()));
  for (const std::string& program : data.programs) PutStr(&payload, program);

  std::string out(kMagic, sizeof(kMagic));
  PutU32(&out, kVersion);
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  out += payload;
  PutU32(&out, Crc32(payload));
  return out;
}

// Deletes every snapshot file in `dir` older than `keep_lsn`, plus stale
// temp files from interrupted checkpoints. Best-effort: pruning failures
// cost disk space, not correctness.
void PruneSnapshots(const std::string& dir, uint64_t keep_lsn) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  std::vector<std::string> doomed;
  while (struct dirent* entry = ::readdir(d)) {
    std::string_view name = entry->d_name;
    if (name.size() > 4 && name.substr(name.size() - 4) == ".tmp") {
      doomed.emplace_back(name);
      continue;
    }
    uint64_t lsn = 0;
    if (ParseSnapshotFileName(name, &lsn) && lsn < keep_lsn) {
      doomed.emplace_back(name);
    }
  }
  ::closedir(d);
  for (const std::string& name : doomed) {
    ::unlink(StrCat(dir, "/", name).c_str());
  }
}

}  // namespace

std::string SnapshotFileName(uint64_t last_lsn) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "snap.%012llu.idls",
                static_cast<unsigned long long>(last_lsn));
  return buf;
}

bool ParseSnapshotFileName(std::string_view name, uint64_t* lsn) {
  if (name.size() != 22 || name.substr(0, 5) != "snap." ||
      name.substr(17) != ".idls") {
    return false;
  }
  uint64_t v = 0;
  for (char c : name.substr(5, 12)) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *lsn = v;
  return true;
}

Status WriteSnapshot(const std::string& dir, const SnapshotData& data,
                     const WalOptions& options) {
  auto crash = [&](CrashPoint point) -> Status {
    if (options.crash_hook && options.crash_hook(point)) {
      return Unavailable(StrCat("crash injected at ", CrashPointName(point)));
    }
    return Status::Ok();
  };

  IDL_RETURN_IF_ERROR(crash(CrashPoint::kBeforeCheckpoint));

  const std::string bytes = EncodeSnapshot(data);
  const std::string final_name = SnapshotFileName(data.last_lsn);
  const std::string tmp_path = StrCat(dir, "/", final_name, ".tmp");
  const std::string final_path = StrCat(dir, "/", final_name);

  int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Internal(StrCat("open for write failed: ", std::strerror(errno)))
        .WithContext(std::string(BaseName(tmp_path)));
  }
  auto write_all = [&](std::string_view chunk) -> Status {
    size_t done = 0;
    while (done < chunk.size()) {
      ssize_t n = ::write(fd, chunk.data() + done, chunk.size() - done);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Internal(StrCat("write failed: ", std::strerror(errno)))
            .WithContext(std::string(BaseName(tmp_path)));
      }
      done += static_cast<size_t>(n);
    }
    return Status::Ok();
  };

  if (options.crash_hook &&
      options.crash_hook(CrashPoint::kMidCheckpointWrite)) {
    // A real kill mid-checkpoint leaves a partial temp file and nothing
    // else; recovery ignores (and deletes) it.
    Status written = write_all(std::string_view(bytes).substr(0, bytes.size() / 2));
    ::close(fd);
    if (!written.ok()) return written;
    return Unavailable(StrCat("crash injected at ",
                              CrashPointName(CrashPoint::kMidCheckpointWrite)));
  }
  Status written = write_all(bytes);
  if (!written.ok()) {
    ::close(fd);
    return written;
  }
  if (options.fsync && ::fsync(fd) != 0) {
    Status st = Internal(StrCat("fsync failed: ", std::strerror(errno)))
                    .WithContext(std::string(BaseName(tmp_path)));
    ::close(fd);
    return st;
  }
  ::close(fd);
  IDL_RETURN_IF_ERROR(crash(CrashPoint::kAfterCheckpointWrite));

  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    return Internal(StrCat("rename failed: ", std::strerror(errno)))
        .WithContext(std::string(BaseName(final_path)));
  }
  IDL_RETURN_IF_ERROR(crash(CrashPoint::kAfterCheckpointRename));

  PruneSnapshots(dir, data.last_lsn);
  return Status::Ok();
}

Result<SnapshotData> ReadSnapshot(const std::string& path) {
  const std::string file(BaseName(path));
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    return NotFound(StrCat(file, ": cannot open"));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string data = buffer.str();

  if (data.size() < kFileHeaderSize) {
    return DataLoss(
        StrCat(FileOffsetContext(file, 0), ": truncated snapshot header (",
               data.size(), " bytes, need ", kFileHeaderSize, ")"));
  }
  if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return DataLoss(StrCat(FileOffsetContext(file, 0), ": bad magic"));
  }
  uint32_t version = 0;
  for (int i = 0; i < 4; ++i) {
    version |= static_cast<uint32_t>(static_cast<unsigned char>(data[8 + i]))
               << (8 * i);
  }
  if (version != kVersion) {
    return DataLoss(
        StrCat(FileOffsetContext(file, 8), ": unsupported version ", version));
  }
  uint32_t payload_len = 0;
  for (int i = 0; i < 4; ++i) {
    payload_len |=
        static_cast<uint32_t>(static_cast<unsigned char>(data[12 + i]))
        << (8 * i);
  }
  // A renamed snapshot was complete when it went live (tmp + fsync +
  // rename), so a short or checksum-failing file is corruption, not a torn
  // write — no torn-tail tolerance here.
  if (data.size() != kFileHeaderSize + static_cast<size_t>(payload_len) + 4) {
    return DataLoss(StrCat(FileOffsetContext(file, 12),
                           ": payload length ", payload_len, " vs ",
                           data.size() - kFileHeaderSize - 4, " on disk"));
  }
  std::string_view payload =
      std::string_view(data).substr(kFileHeaderSize, payload_len);
  uint32_t crc = 0;
  for (int i = 0; i < 4; ++i) {
    crc |= static_cast<uint32_t>(static_cast<unsigned char>(
               data[kFileHeaderSize + payload_len + i]))
           << (8 * i);
  }
  if (crc != Crc32(payload)) {
    return DataLoss(StrCat(FileOffsetContext(file, kFileHeaderSize + payload_len),
                           ": checksum mismatch"));
  }

  SnapshotData out;
  PayloadReader reader(payload, file);
  IDL_RETURN_IF_ERROR(reader.GetU64(&out.last_lsn));
  IDL_RETURN_IF_ERROR(reader.GetU64(&out.next_epoch_id));
  uint32_t count = 0;
  IDL_RETURN_IF_ERROR(reader.GetU32(&count));
  out.databases.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string name, literal;
    IDL_RETURN_IF_ERROR(reader.GetStr(&name));
    IDL_RETURN_IF_ERROR(reader.GetStr(&literal));
    out.databases.emplace_back(std::move(name), std::move(literal));
  }
  IDL_RETURN_IF_ERROR(reader.GetU32(&count));
  out.rules.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    IDL_RETURN_IF_ERROR(reader.GetStr(&out.rules.emplace_back()));
  }
  IDL_RETURN_IF_ERROR(reader.GetU32(&count));
  out.programs.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    IDL_RETURN_IF_ERROR(reader.GetStr(&out.programs.emplace_back()));
  }
  IDL_RETURN_IF_ERROR(reader.AtEnd());
  return out;
}

Result<LatestSnapshot> FindLatestSnapshot(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return NotFound(
        StrCat("cannot open durability directory: ", std::strerror(errno)))
        .WithContext(dir);
  }
  LatestSnapshot best;
  while (struct dirent* entry = ::readdir(d)) {
    uint64_t lsn = 0;
    if (!ParseSnapshotFileName(entry->d_name, &lsn)) continue;
    if (best.path.empty() || lsn > best.lsn) {
      best.lsn = lsn;
      best.path = StrCat(dir, "/", entry->d_name);
    }
  }
  ::closedir(d);
  return best;
}

}  // namespace idl
