// Multi-tenant schematic-discrepancy workload generator.
//
// N tenants each store the *same* logical relation — facts of the form
// (tenant, entity, key, value) — under an independently drawn schematic
// discrepancy style (§2's taxonomy, generalized beyond the paper's fixed
// stock example):
//
//   kValue      r(ent, key, val)            entities as data values
//   kAttribute  w(key, e0, e1, ...)         entities as attribute names
//   kRelation   e0(key, val), e1(...)       entities as relation names
//   kNested     e0(k0=v, ...), ...          two-level: entities as relation
//                                           names AND keys as attribute
//                                           names (Figure 1 at both levels)
//   kMixed      a per-entity mixture of the three single-level styles
//                                           inside one tenant
//
// A tenant may additionally be *name-discrepant* (§6's relaxation): entity
// tokens are mangled to "m_<entity>" and a map(from, to) relation records
// the correspondence, so its unification rules join through the mapping.
//
// The generator emits, mechanically from the drawn styles:
//   * the tenant databases (BuildUniverse),
//   * the higher-order unification rules deriving the canonical unified
//     relation .u.p(.tn, .ent, .key, .val) — one rule per style per tenant,
//     guarded so the four style rules coexist (style flips mid-trace need
//     no rule changes) — plus, optionally, two Figure-1-style customized
//     re-exposures with higher-order heads: .roll.<ent>(.tn, .key, .val)
//     (relation-position head variable) and .wide.<tenant>(.key, .<ent>=V)
//     (relation- AND attribute-position head variables),
//   * the expected unified/customized relations computed directly from the
//     logical facts (the oracle — it never goes near the evaluator).
//
// GenerateEvolutionTrace mutates the logical state step by step — upserts,
// deletions, whole entities appearing and disappearing, tenants *flipping
// discrepancy style mid-stream* — and expresses every step as plain IDL
// update requests (UniverseDelta-compatible: each request maps to the
// session's insert/dirty delta shapes), with the oracle re-snapshotted
// after each step. Everything is a pure function of the seed (common/rng.h)
// so any universe or trace reproduces exactly from its spec string.

#ifndef IDL_WORKLOAD_DISCREPANCY_GEN_H_
#define IDL_WORKLOAD_DISCREPANCY_GEN_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "object/value.h"

namespace idl {

enum class DiscrepancyStyle : uint8_t {
  kValue,      // entities as data values in r(ent, key, val)
  kAttribute,  // entities as attribute names in w(key, ...)
  kRelation,   // entities as relation names: e(key, val)
  kNested,     // entities as relations AND keys as attributes: e(k=v)
  kMixed,      // per-entity mixture of the three single-level styles
};

// "value", "attr", "rel", "nested", "mixed".
const char* DiscrepancyStyleName(DiscrepancyStyle style);

struct DiscrepancyConfig {
  size_t num_tenants = 3;
  size_t num_entities = 4;
  size_t num_keys = 3;
  uint64_t seed = 1;
  // Probability that a (tenant, entity, key) cell holds a fact initially.
  double fact_density = 0.75;
  // Probability that a tenant is name-discrepant (entity tokens mangled,
  // rules join through its map relation).
  double mangle_rate = 0.35;
  // Also derive the .roll.<ent> / .wide.<tenant> customized views.
  bool customized_views = true;
  // When non-empty, tenant i gets pinned_styles[i % size] instead of a
  // random draw (demo scripts pin styles so transcripts are readable).
  std::vector<DiscrepancyStyle> pinned_styles;
};

// One tenant's generated state. `facts` maps (entity index, key index) to
// the stored value; the relation/attribute bookkeeping mirrors exactly what
// exists in the tenant's database object so the trace generator can emit
// creation requests before first use and never reference a dropped slot.
struct DiscrepancyTenant {
  std::string name;         // database name: t0, t1, ...
  DiscrepancyStyle style = DiscrepancyStyle::kValue;
  bool mangled = false;
  // Per-entity placement; equals `style` everywhere except kMixed, where
  // each entity draws one of the three single-level styles.
  std::vector<DiscrepancyStyle> entity_style;
  std::map<std::pair<size_t, size_t>, int64_t> facts;
  // Relation slots currently present in the database tuple (r, w, map,
  // entity tokens).
  std::set<std::string> relations;
  // Key indexes that have a row in `w` (rows survive attribute deletion).
  std::set<size_t> attr_rows;
};

struct DiscrepancyUniverse {
  DiscrepancyConfig config;
  std::vector<std::string> entities;  // e0, e1, ...
  std::vector<std::string> keys;      // k0, k1, ...
  std::vector<DiscrepancyTenant> tenants;

  // The entity's token inside this tenant's schema ("m_<entity>" when the
  // tenant is name-discrepant).
  std::string EntityToken(const DiscrepancyTenant& tenant, size_t e) const;
  // The single-level style governing where (tenant, entity) facts live.
  DiscrepancyStyle EffectiveStyle(const DiscrepancyTenant& tenant,
                                  size_t e) const;

  // One tenant's database object, rebuilt from the logical state.
  Value BuildTenantDatabase(const DiscrepancyTenant& tenant) const;
  // All tenant databases as a universe tuple (field per tenant).
  Value BuildUniverse() const;

  // The mechanically derived higher-order rules: per tenant, one rule per
  // single-level style (all four coexist under identifier guards), joined
  // through map(from, to) for name-discrepant tenants; plus the customized
  // .roll / .wide views when configured.
  std::vector<std::string> UnificationRules() const;

  // Oracles, computed from `facts` alone.
  Value ExpectedUnified() const;  // the .u.p relation (a set)
  Value ExpectedRoll() const;     // the .roll database object (a tuple)
  Value ExpectedWide() const;     // the .wide database object (a tuple)
};

DiscrepancyUniverse GenerateDiscrepancyUniverse(
    const DiscrepancyConfig& config);

// ---- Schema-evolution traces ------------------------------------------------

struct EvolutionStep {
  std::string description;            // e.g. "t2: flip attr -> nested"
  std::vector<std::string> requests;  // IDL update requests, in order
  // Oracle snapshots after this step's requests are applied.
  Value expected_unified;
  Value expected_roll;
  Value expected_wide;
};

struct EvolutionTrace {
  std::vector<EvolutionStep> steps;
  // Total update requests across all steps.
  size_t TotalRequests() const;
};

// Draws `num_steps` mutation steps (upserts, deletes, entity removal,
// mid-stream style flips), advancing `universe`'s logical state in place.
// Applying each step's requests to a session holding the previous state
// yields the next; the oracle snapshots pin the unified view after each.
EvolutionTrace GenerateEvolutionTrace(DiscrepancyUniverse& universe,
                                      size_t num_steps, uint64_t salt);

// ---- Workload specs (idl_shell --workload=..., "% workload:" directive) -----

// Canonical textual form:
//   "seed=7 tenants=3 entities=4 keys=3 density=0.75 mangle=0.35 views=1"
// with an optional "styles=value+attr+..." pin. Parse also accepts the
// "<seed>,<tenants>" shorthand and any subset of the key=value fields
// (missing fields keep their defaults).
Result<DiscrepancyConfig> ParseWorkloadSpec(std::string_view spec);
std::string FormatWorkloadSpec(const DiscrepancyConfig& config);

}  // namespace idl

#endif  // IDL_WORKLOAD_DISCREPANCY_GEN_H_
