// The exact toy instance behind the paper's worked examples, so tests can
// assert the answers the prose claims.
//
// Stocks and prices (four March 1985 trading days):
//            3/1/85  3/2/85  3/3/85  3/4/85
//   hp        55      62      50      70     (all-time high 70 on 3/4)
//   ibm      140     155     149     160
//   sun       18      19     205      21     (closed above 200 once)
// All three schemas carry the same data. With name mappings enabled, chwab
// uses c_hp/c_ibm/c_sun and ource uses o_hp/o_ibm/o_sun, with mapCE and
// mapOE relations in a fourth database `maps`.

#ifndef IDL_WORKLOAD_PAPER_UNIVERSE_H_
#define IDL_WORKLOAD_PAPER_UNIVERSE_H_

#include <string>
#include <vector>

#include "object/date.h"
#include "object/value.h"

namespace idl {

struct PaperUniverse {
  Value universe;
  std::vector<std::string> stocks;  // hp, ibm, sun
  std::vector<Date> dates;          // 3/1/85 .. 3/4/85
  std::vector<std::vector<int>> price;  // price[stock][day], whole dollars
};

PaperUniverse MakePaperUniverse(bool with_name_mappings = false);

// The rules of §6 that unify the three schemas into dbI.p and re-expose it
// as dbE (euter shape), dbC (chwab shape), dbO (ource shape). When
// `with_name_mappings` is set, the dbI rules join through mapCE/mapOE.
std::vector<std::string> PaperViewRules(bool with_name_mappings = false);

// The update programs of §7.1 (delStk, rmStk, insStk) and the §7.2
// view-update programs for dbE.r.
std::vector<std::string> PaperUpdatePrograms();

}  // namespace idl

#endif  // IDL_WORKLOAD_PAPER_UNIVERSE_H_
