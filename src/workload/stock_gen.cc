#include "workload/stock_gen.h"

#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "relational/adapter.h"

namespace idl {

namespace {

double RoundCents(double v) { return std::round(v * 100.0) / 100.0; }

Schema EuterSchema() {
  return Schema({Column{"date", ColumnType::kDate},
                 Column{"stkCode", ColumnType::kString},
                 Column{"clsPrice", ColumnType::kDouble}});
}

Schema OurceSchema() {
  return Schema({Column{"date", ColumnType::kDate},
                 Column{"clsPrice", ColumnType::kDouble}});
}

}  // namespace

const std::string& StockWorkload::ChwabName(size_t s) const {
  return chwab_names[s];
}

const std::string& StockWorkload::OurceName(size_t s) const {
  return ource_names[s];
}

double StockWorkload::ChwabPrice(size_t s, size_t d) const {
  double o = chwab_override[s][d];
  return std::isnan(o) ? price[s][d] : o;
}

StockWorkload GenerateStockWorkload(const StockWorkloadConfig& config) {
  StockWorkload w;
  w.config = config;
  Rng rng(config.seed);

  w.stocks.reserve(config.num_stocks);
  for (size_t s = 0; s < config.num_stocks; ++s) {
    w.stocks.push_back(StrCat("stk", s));
  }
  w.chwab_names = w.stocks;
  w.ource_names = w.stocks;
  if (config.name_discrepancies) {
    for (size_t s = 0; s < config.num_stocks; ++s) {
      w.chwab_names[s] = StrCat("c_", w.stocks[s]);
      w.ource_names[s] = StrCat("o_", w.stocks[s]);
    }
  }

  Date start(1985, 3, 1);
  w.dates.reserve(config.num_days);
  for (size_t d = 0; d < config.num_days; ++d) {
    w.dates.push_back(Date::FromDayNumber(start.DayNumber() +
                                          static_cast<int64_t>(d)));
  }

  w.price.assign(config.num_stocks, std::vector<double>(config.num_days, 0));
  w.chwab_override.assign(
      config.num_stocks,
      std::vector<double>(config.num_days,
                          std::numeric_limits<double>::quiet_NaN()));
  for (size_t s = 0; s < config.num_stocks; ++s) {
    // Base prices span $10..$390 so threshold queries (e.g. >200) select a
    // stable fraction of stocks.
    double p = 10.0 + 380.0 * rng.NextDouble();
    for (size_t d = 0; d < config.num_days; ++d) {
      p *= 1.0 + (rng.NextDouble() - 0.5) * 0.04;  // ±2% daily move
      if (p < 1.0) p = 1.0;
      w.price[s][d] = RoundCents(p);
      if (config.discrepancy_rate > 0 &&
          rng.NextDouble() < config.discrepancy_rate) {
        w.chwab_override[s][d] = RoundCents(p + 0.5);
      }
    }
  }
  return w;
}

RelationalDatabase BuildEuterDatabase(const StockWorkload& w) {
  RelationalDatabase db("euter");
  Table* r = *db.CreateTable("r", EuterSchema());
  for (size_t s = 0; s < w.stocks.size(); ++s) {
    for (size_t d = 0; d < w.dates.size(); ++d) {
      IDL_CHECK(r->Insert(Row({Value::Of(w.dates[d]),
                               Value::String(w.stocks[s]),
                               Value::Real(w.price[s][d])}))
                    .ok());
    }
  }
  return db;
}

RelationalDatabase BuildChwabDatabase(const StockWorkload& w) {
  RelationalDatabase db("chwab");
  std::vector<Column> columns;
  columns.push_back(Column{"date", ColumnType::kDate});
  for (size_t s = 0; s < w.stocks.size(); ++s) {
    columns.push_back(Column{w.ChwabName(s), ColumnType::kDouble});
  }
  Table* r = *db.CreateTable("r", Schema(std::move(columns)));
  for (size_t d = 0; d < w.dates.size(); ++d) {
    Row row;
    row.cells.reserve(w.stocks.size() + 1);
    row.cells.push_back(Value::Of(w.dates[d]));
    for (size_t s = 0; s < w.stocks.size(); ++s) {
      row.cells.push_back(Value::Real(w.ChwabPrice(s, d)));
    }
    IDL_CHECK(r->Insert(std::move(row)).ok());
  }
  return db;
}

RelationalDatabase BuildOurceDatabase(const StockWorkload& w) {
  RelationalDatabase db("ource");
  for (size_t s = 0; s < w.stocks.size(); ++s) {
    Table* t = *db.CreateTable(w.OurceName(s), OurceSchema());
    for (size_t d = 0; d < w.dates.size(); ++d) {
      IDL_CHECK(t->Insert(Row({Value::Of(w.dates[d]),
                               Value::Real(w.price[s][d])}))
                    .ok());
    }
  }
  return db;
}

RelationalDatabase BuildMapsDatabase(const StockWorkload& w) {
  RelationalDatabase db("maps");
  Schema map_schema({Column{"from", ColumnType::kString},
                     Column{"to", ColumnType::kString}});
  Table* ce = *db.CreateTable("mapCE", map_schema);
  Table* oe = *db.CreateTable("mapOE", map_schema);
  if (w.config.name_discrepancies) {
    for (size_t s = 0; s < w.stocks.size(); ++s) {
      IDL_CHECK(ce->Insert(Row({Value::String(w.ChwabName(s)),
                                Value::String(w.stocks[s])}))
                    .ok());
      IDL_CHECK(oe->Insert(Row({Value::String(w.OurceName(s)),
                                Value::String(w.stocks[s])}))
                    .ok());
    }
  }
  return db;
}

Value BuildStockUniverse(const StockWorkload& w) {
  Value universe = Value::EmptyTuple();
  RelationalDatabase euter = BuildEuterDatabase(w);
  RelationalDatabase chwab = BuildChwabDatabase(w);
  RelationalDatabase ource = BuildOurceDatabase(w);
  universe.SetField("euter", LiftDatabase(euter));
  universe.SetField("chwab", LiftDatabase(chwab));
  universe.SetField("ource", LiftDatabase(ource));
  if (w.config.name_discrepancies) {
    RelationalDatabase maps = BuildMapsDatabase(w);
    universe.SetField("maps", LiftDatabase(maps));
  }
  return universe;
}

}  // namespace idl
