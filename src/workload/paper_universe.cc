#include "workload/paper_universe.h"

#include "common/logging.h"
#include "common/str_util.h"
#include "object/builder.h"

namespace idl {

PaperUniverse MakePaperUniverse(bool with_name_mappings) {
  PaperUniverse p;
  p.stocks = {"hp", "ibm", "sun"};
  p.dates = {Date(1985, 3, 1), Date(1985, 3, 2), Date(1985, 3, 3),
             Date(1985, 3, 4)};
  p.price = {
      {55, 62, 50, 70},     // hp: all-time high 70 on 3/4; above 60 twice
      {140, 155, 149, 160},  // ibm
      {18, 19, 205, 21},     // sun: closed above 200 once
  };

  auto chwab_name = [&](size_t s) {
    return with_name_mappings ? StrCat("c_", p.stocks[s]) : p.stocks[s];
  };
  auto ource_name = [&](size_t s) {
    return with_name_mappings ? StrCat("o_", p.stocks[s]) : p.stocks[s];
  };

  // euter: r(date, stkCode, clsPrice).
  Value euter_r = Value::EmptySet();
  for (size_t s = 0; s < p.stocks.size(); ++s) {
    for (size_t d = 0; d < p.dates.size(); ++d) {
      euter_r.Insert(MakeTuple({{"date", Value::Of(p.dates[d])},
                                {"stkCode", Value::String(p.stocks[s])},
                                {"clsPrice", Value::Int(p.price[s][d])}}));
    }
  }

  // chwab: r(date, <stock>...).
  Value chwab_r = Value::EmptySet();
  for (size_t d = 0; d < p.dates.size(); ++d) {
    Value row = Value::EmptyTuple();
    row.SetField("date", Value::Of(p.dates[d]));
    for (size_t s = 0; s < p.stocks.size(); ++s) {
      row.SetField(chwab_name(s), Value::Int(p.price[s][d]));
    }
    chwab_r.Insert(std::move(row));
  }

  // ource: <stock>(date, clsPrice).
  Value ource = Value::EmptyTuple();
  for (size_t s = 0; s < p.stocks.size(); ++s) {
    Value rel = Value::EmptySet();
    for (size_t d = 0; d < p.dates.size(); ++d) {
      rel.Insert(MakeTuple({{"date", Value::Of(p.dates[d])},
                            {"clsPrice", Value::Int(p.price[s][d])}}));
    }
    ource.SetField(ource_name(s), std::move(rel));
  }

  p.universe = Value::EmptyTuple();
  p.universe.SetField("euter",
                      MakeTuple({{"r", std::move(euter_r)}}));
  p.universe.SetField("chwab",
                      MakeTuple({{"r", std::move(chwab_r)}}));
  p.universe.SetField("ource", std::move(ource));

  if (with_name_mappings) {
    Value map_ce = Value::EmptySet();
    Value map_oe = Value::EmptySet();
    for (size_t s = 0; s < p.stocks.size(); ++s) {
      map_ce.Insert(MakeTuple({{"from", Value::String(chwab_name(s))},
                               {"to", Value::String(p.stocks[s])}}));
      map_oe.Insert(MakeTuple({{"from", Value::String(ource_name(s))},
                               {"to", Value::String(p.stocks[s])}}));
    }
    p.universe.SetField("maps", MakeTuple({{"mapCE", std::move(map_ce)},
                                           {"mapOE", std::move(map_oe)}}));
  }
  return p;
}

std::vector<std::string> PaperViewRules(bool with_name_mappings) {
  std::vector<std::string> rules;
  // §6: the unified view dbI.p over the three schemas. The `S != date`
  // guard keeps the higher-order variable off chwab's date attribute
  // (footnote 7 licenses guards).
  rules.push_back(
      ".dbI.p(.date=D, .stk=S, .clsPrice=P) <- "
      ".euter.r(.date=D, .stkCode=S, .clsPrice=P)");
  if (with_name_mappings) {
    rules.push_back(
        ".dbI.p(.date=D, .stk=S, .clsPrice=P) <- "
        ".chwab.r(.date=D, .SC=P), SC != date, "
        ".maps.mapCE(.from=SC, .to=S)");
    rules.push_back(
        ".dbI.p(.date=D, .stk=S, .clsPrice=P) <- "
        ".ource.SO(.date=D, .clsPrice=P), .maps.mapOE(.from=SO, .to=S)");
  } else {
    rules.push_back(
        ".dbI.p(.date=D, .stk=S, .clsPrice=P) <- "
        ".chwab.r(.date=D, .S=P), S != date");
    rules.push_back(
        ".dbI.p(.date=D, .stk=S, .clsPrice=P) <- "
        ".ource.S(.date=D, .clsPrice=P)");
  }
  // §6: customized views — dbE (euter shape), dbC (chwab shape, higher-order
  // variable in an attribute position of the head), dbO (ource shape,
  // higher-order variable in the relation position: a data-dependent number
  // of relations).
  rules.push_back(
      ".dbE.r(.date=D, .stkCode=S, .clsPrice=P) <- "
      ".dbI.p(.date=D, .stk=S, .clsPrice=P)");
  rules.push_back(
      ".dbC.r(.date=D, .S=P) <- .dbI.p(.date=D, .stk=S, .clsPrice=P)");
  rules.push_back(
      ".dbO.S(.date=D, .clsPrice=P) <- .dbI.p(.date=D, .stk=S, .clsPrice=P)");
  return rules;
}

std::vector<std::string> PaperUpdatePrograms() {
  return {
      // §7.1 delStk: delete the closing price of a stock on a date. Partial
      // bindings work: omitting the date deletes every date, omitting the
      // stock deletes every stock.
      ".dbU.delStk(.stk=S, .date=D) -> .euter.r-(.stkCode=S, .date=D)",
      ".dbU.delStk(.stk=S, .date=D) -> "
      ".chwab.r(.S), S != date, .chwab.r(.date=D, .S-=X)",
      ".dbU.delStk(.stk=S, .date=D) -> .ource.S, .ource.S-(.date=D)",

      // §7.1 rmStk: remove a stock entirely — data in euter, an *attribute*
      // in chwab, a *relation* in ource (metadata updates).
      ".dbU.rmStk(.stk=S) -> .euter.r-(.stkCode=S)",
      ".dbU.rmStk(.stk=S) -> .chwab.r(.S), S != date, .chwab.r(-.S)",
      ".dbU.rmStk(.stk=S) -> .ource.S, .ource-.S",

      // addStk: create the schema elements a brand-new stock needs (chwab
      // column, ource relation); euter needs none.
      ".dbU.addStk(.stk=S) -> .chwab.r(+.S)",
      ".dbU.addStk(.stk=S) -> .ource+.S",

      // §7.1 insStk: insert a closing price. All three parameters feed '+'
      // expressions, so the binding signature requires them all.
      ".dbU.insStk(.stk=S, .date=D, .price=P) -> "
      ".euter.r+(.date=D, .stkCode=S, .clsPrice=P)",
      ".dbU.insStk(.stk=S, .date=D, .price=P) -> .chwab.r(.date=D, +.S=P)",
      ".dbU.insStk(.stk=S, .date=D, .price=P) -> "
      ".ource.S+(.date=D, .clsPrice=P)",

      // §7.2: view updatability for the dbE customized view, built by
      // *reusing* the base programs.
      ".dbE.r+(.date=D, .stkCode=S, .clsPrice=P) -> "
      ".dbU.insStk(.stk=S, .date=D, .price=P)",
      ".dbE.r-(.date=D, .stkCode=S) -> .dbU.delStk(.stk=S, .date=D)",
  };
}

}  // namespace idl
