#include "workload/discrepancy_gen.h"

#include <algorithm>
#include <cstdlib>

#include "common/rng.h"
#include "common/str_util.h"
#include "object/builder.h"

namespace idl {
namespace {

// Relation names with fixed meanings inside every tenant schema; entity
// tokens never collide with them (entities are e0.., mangled m_e0..).
constexpr const char* kValueRel = "r";
constexpr const char* kAttrRel = "w";
constexpr const char* kMapRel = "map";

// The three single-level placements a kMixed tenant draws per entity.
constexpr DiscrepancyStyle kSingleLevel[] = {
    DiscrepancyStyle::kValue,
    DiscrepancyStyle::kAttribute,
    DiscrepancyStyle::kRelation,
};

std::string TenantName(size_t t) { return StrCat("t", t); }

}  // namespace

const char* DiscrepancyStyleName(DiscrepancyStyle style) {
  switch (style) {
    case DiscrepancyStyle::kValue:
      return "value";
    case DiscrepancyStyle::kAttribute:
      return "attr";
    case DiscrepancyStyle::kRelation:
      return "rel";
    case DiscrepancyStyle::kNested:
      return "nested";
    case DiscrepancyStyle::kMixed:
      return "mixed";
  }
  return "?";
}

std::string DiscrepancyUniverse::EntityToken(const DiscrepancyTenant& tenant,
                                             size_t e) const {
  return tenant.mangled ? StrCat("m_", entities[e]) : entities[e];
}

DiscrepancyStyle DiscrepancyUniverse::EffectiveStyle(
    const DiscrepancyTenant& tenant, size_t e) const {
  return tenant.style == DiscrepancyStyle::kMixed ? tenant.entity_style[e]
                                                  : tenant.style;
}

Value DiscrepancyUniverse::BuildTenantDatabase(
    const DiscrepancyTenant& tenant) const {
  Value db = Value::EmptyTuple();
  for (const std::string& rel : tenant.relations) {
    if (rel == kValueRel) {
      Value set = Value::EmptySet();
      for (const auto& [cell, val] : tenant.facts) {
        if (EffectiveStyle(tenant, cell.first) != DiscrepancyStyle::kValue) {
          continue;
        }
        set.Insert(MakeTuple({{"ent", Value::String(
                                          EntityToken(tenant, cell.first))},
                              {"key", Value::String(keys[cell.second])},
                              {"val", Value::Int(val)}}));
      }
      db.SetField(kValueRel, std::move(set));
    } else if (rel == kAttrRel) {
      Value set = Value::EmptySet();
      for (size_t k : tenant.attr_rows) {
        Value row = Value::EmptyTuple();
        row.SetField("key", Value::String(keys[k]));
        for (const auto& [cell, val] : tenant.facts) {
          if (cell.second != k) continue;
          if (EffectiveStyle(tenant, cell.first) !=
              DiscrepancyStyle::kAttribute) {
            continue;
          }
          row.SetField(EntityToken(tenant, cell.first), Value::Int(val));
        }
        set.Insert(std::move(row));
      }
      db.SetField(kAttrRel, std::move(set));
    } else if (rel == kMapRel) {
      Value set = Value::EmptySet();
      for (size_t e = 0; e < entities.size(); ++e) {
        set.Insert(MakeTuple({{"from", Value::String(StrCat("m_",
                                                            entities[e]))},
                              {"to", Value::String(entities[e])}}));
      }
      db.SetField(kMapRel, std::move(set));
    } else {
      // An entity relation (kRelation or kNested placement).
      size_t entity = entities.size();
      for (size_t e = 0; e < entities.size(); ++e) {
        if (EntityToken(tenant, e) == rel) {
          entity = e;
          break;
        }
      }
      Value set = Value::EmptySet();
      if (entity < entities.size()) {
        const bool nested =
            EffectiveStyle(tenant, entity) == DiscrepancyStyle::kNested;
        for (const auto& [cell, val] : tenant.facts) {
          if (cell.first != entity) continue;
          if (nested) {
            Value row = Value::EmptyTuple();
            row.SetField(keys[cell.second], Value::Int(val));
            set.Insert(std::move(row));
          } else {
            set.Insert(
                MakeTuple({{"key", Value::String(keys[cell.second])},
                           {"val", Value::Int(val)}}));
          }
        }
      }
      db.SetField(rel, std::move(set));
    }
  }
  return db;
}

Value DiscrepancyUniverse::BuildUniverse() const {
  Value universe = Value::EmptyTuple();
  for (const auto& tenant : tenants) {
    universe.SetField(tenant.name, BuildTenantDatabase(tenant));
  }
  return universe;
}

std::vector<std::string> DiscrepancyUniverse::UnificationRules() const {
  std::vector<std::string> rules;
  for (const auto& tenant : tenants) {
    const std::string head =
        StrCat(".u.p(.tn=", tenant.name, ", .ent=E, .key=K, .val=V) <- ");
    const std::string& t = tenant.name;
    if (!tenant.mangled) {
      // One rule per single-level style. The identifier guards keep the
      // four bodies disjoint over any mixture of placements, so a tenant
      // can flip style mid-trace without touching the rule set.
      rules.push_back(
          StrCat(head, ".", t, ".r(.ent=E, .key=K, .val=V)"));
      rules.push_back(StrCat(head, ".", t, ".w(.key=K, .E=V), E != key"));
      rules.push_back(StrCat(head, ".", t,
                             ".E(.key=K, .val=V), E != r, E != w, "
                             "E != map"));
      rules.push_back(StrCat(head, ".", t,
                             ".E(.K=V), E != r, E != w, E != map, "
                             "K != key, K != val"));
    } else {
      // Name-discrepant tenant: the stored token M resolves to the
      // canonical entity through map(from, to) (§6's relaxation). The
      // M != map guard matters: without it the map relation's own tuples
      // (.from=m_x, .to=x) would satisfy the two-level body.
      const std::string join =
          StrCat(", .", t, ".map(.from=M, .to=E)");
      rules.push_back(StrCat(head, ".", t,
                             ".r(.ent=M, .key=K, .val=V)", join));
      rules.push_back(StrCat(head, ".", t, ".w(.key=K, .M=V), M != key",
                             join));
      rules.push_back(StrCat(head, ".", t,
                             ".M(.key=K, .val=V), M != r, M != w, "
                             "M != map", join));
      rules.push_back(StrCat(head, ".", t,
                             ".M(.K=V), M != r, M != w, M != map, "
                             "K != key, K != val", join));
    }
  }
  if (config.customized_views) {
    // Figure-1-style re-exposures of the unified relation with
    // higher-order heads: entities back into relation position (.roll.E)
    // and tenants into relation position with entities as attributes
    // (.wide.<tenant>).
    rules.push_back(
        ".roll.E(.tn=T, .key=K, .val=V) <- "
        ".u.p(.tn=T, .ent=E, .key=K, .val=V)");
    rules.push_back(
        ".wide.T(.key=K, .E=V) <- .u.p(.tn=T, .ent=E, .key=K, .val=V)");
  }
  return rules;
}

Value DiscrepancyUniverse::ExpectedUnified() const {
  Value set = Value::EmptySet();
  for (const auto& tenant : tenants) {
    for (const auto& [cell, val] : tenant.facts) {
      set.Insert(MakeTuple({{"tn", Value::String(tenant.name)},
                            {"ent", Value::String(entities[cell.first])},
                            {"key", Value::String(keys[cell.second])},
                            {"val", Value::Int(val)}}));
    }
  }
  return set;
}

Value DiscrepancyUniverse::ExpectedRoll() const {
  Value db = Value::EmptyTuple();
  for (const auto& tenant : tenants) {
    for (const auto& [cell, val] : tenant.facts) {
      Value* rel = db.MutableField(entities[cell.first]);
      if (rel == nullptr) {
        db.SetField(entities[cell.first], Value::EmptySet());
        rel = db.MutableField(entities[cell.first]);
      }
      rel->Insert(MakeTuple({{"tn", Value::String(tenant.name)},
                             {"key", Value::String(keys[cell.second])},
                             {"val", Value::Int(val)}}));
    }
  }
  return db;
}

Value DiscrepancyUniverse::ExpectedWide() const {
  Value db = Value::EmptyTuple();
  for (const auto& tenant : tenants) {
    if (tenant.facts.empty()) continue;
    // One row per key that carries at least one fact, entity attributes
    // merged in (exactly what consistency-extension gives the .wide rule).
    std::map<size_t, Value> rows;
    for (const auto& [cell, val] : tenant.facts) {
      auto it = rows.find(cell.second);
      if (it == rows.end()) {
        Value row = Value::EmptyTuple();
        row.SetField("key", Value::String(keys[cell.second]));
        it = rows.emplace(cell.second, std::move(row)).first;
      }
      it->second.SetField(entities[cell.first], Value::Int(val));
    }
    Value set = Value::EmptySet();
    for (auto& [k, row] : rows) set.Insert(std::move(row));
    db.SetField(tenant.name, std::move(set));
  }
  return db;
}

namespace {

// (Re)derives the relation/attr-row bookkeeping implied by the tenant's
// current style and facts — what BuildTenantDatabase will emit, and the
// state a style flip rebuilds to.
void InitTenantSlots(const DiscrepancyUniverse& u, DiscrepancyTenant* t) {
  t->relations.clear();
  t->attr_rows.clear();
  if (t->style == DiscrepancyStyle::kValue ||
      t->style == DiscrepancyStyle::kMixed) {
    t->relations.insert(kValueRel);
  }
  if (t->style == DiscrepancyStyle::kAttribute ||
      t->style == DiscrepancyStyle::kMixed) {
    t->relations.insert(kAttrRel);
  }
  if (t->mangled) t->relations.insert(kMapRel);
  for (const auto& [cell, val] : t->facts) {
    switch (u.EffectiveStyle(*t, cell.first)) {
      case DiscrepancyStyle::kAttribute:
        t->attr_rows.insert(cell.second);
        break;
      case DiscrepancyStyle::kRelation:
      case DiscrepancyStyle::kNested:
        t->relations.insert(u.EntityToken(*t, cell.first));
        break;
      default:
        break;
    }
  }
}

}  // namespace

DiscrepancyUniverse GenerateDiscrepancyUniverse(
    const DiscrepancyConfig& config) {
  DiscrepancyUniverse u;
  u.config = config;
  for (size_t e = 0; e < config.num_entities; ++e) {
    u.entities.push_back(StrCat("e", e));
  }
  for (size_t k = 0; k < config.num_keys; ++k) {
    u.keys.push_back(StrCat("k", k));
  }
  Rng rng(config.seed);
  for (size_t t = 0; t < config.num_tenants; ++t) {
    DiscrepancyTenant tenant;
    tenant.name = TenantName(t);
    // Fixed draw order (style, mangle, per-entity styles, facts) — the
    // seed-stability test pins byte-identical output, so any reordering
    // here is a breaking change.
    if (!config.pinned_styles.empty()) {
      tenant.style = config.pinned_styles[t % config.pinned_styles.size()];
      rng.Next();  // keep the stream aligned with the unpinned draw
    } else {
      tenant.style = static_cast<DiscrepancyStyle>(rng.Below(5));
    }
    tenant.mangled = rng.NextDouble() < config.mangle_rate;
    tenant.entity_style.resize(config.num_entities, tenant.style);
    for (size_t e = 0; e < config.num_entities; ++e) {
      uint64_t draw = rng.Below(3);
      if (tenant.style == DiscrepancyStyle::kMixed) {
        tenant.entity_style[e] = kSingleLevel[draw];
      }
    }
    for (size_t e = 0; e < config.num_entities; ++e) {
      for (size_t k = 0; k < config.num_keys; ++k) {
        double draw = rng.NextDouble();
        int64_t val = rng.Range(1, 999);
        if (draw < config.fact_density) tenant.facts[{e, k}] = val;
      }
    }
    InitTenantSlots(u, &tenant);
    u.tenants.push_back(std::move(tenant));
  }
  return u;
}

// ---- Evolution traces -------------------------------------------------------

size_t EvolutionTrace::TotalRequests() const {
  size_t n = 0;
  for (const auto& step : steps) n += step.requests.size();
  return n;
}

namespace {

// Emits the requests that store fact (e, k) = val under the tenant's
// current placement, creating missing slots first. Assumes the cell is
// currently empty (upserts delete first).
void EmitInsert(const DiscrepancyUniverse& u, DiscrepancyTenant* t, size_t e,
                size_t k, int64_t val, std::vector<std::string>* out) {
  const std::string token = u.EntityToken(*t, e);
  const std::string& key = u.keys[k];
  switch (u.EffectiveStyle(*t, e)) {
    case DiscrepancyStyle::kValue:
      out->push_back(StrCat("?.", t->name, ".r+(.ent=", token, ", .key=",
                            key, ", .val=", val, ")"));
      break;
    case DiscrepancyStyle::kAttribute:
      if (t->attr_rows.insert(k).second) {
        out->push_back(StrCat("?.", t->name, ".w+(.key=", key, ", .", token,
                              "=", val, ")"));
      } else {
        out->push_back(StrCat("?.", t->name, ".w(.key=", key, ", +.", token,
                              "=", val, ")"));
      }
      break;
    case DiscrepancyStyle::kRelation:
      if (t->relations.insert(token).second) {
        out->push_back(StrCat("?.", t->name, "+.", token));
      }
      out->push_back(StrCat("?.", t->name, ".", token, "+(.key=", key,
                            ", .val=", val, ")"));
      break;
    case DiscrepancyStyle::kNested:
      if (t->relations.insert(token).second) {
        out->push_back(StrCat("?.", t->name, "+.", token));
      }
      out->push_back(StrCat("?.", t->name, ".", token, "+(.", key, "=", val,
                            ")"));
      break;
    case DiscrepancyStyle::kMixed:
      break;  // unreachable: EffectiveStyle never returns kMixed
  }
  t->facts[{e, k}] = val;
}

// Emits the request that removes the existing fact (e, k). Slots (w rows,
// entity relations) deliberately survive empty — schemas outlive their
// data, and empty slots exercise the no-match paths.
void EmitDelete(const DiscrepancyUniverse& u, DiscrepancyTenant* t, size_t e,
                size_t k, std::vector<std::string>* out) {
  const std::string token = u.EntityToken(*t, e);
  const std::string& key = u.keys[k];
  const int64_t val = t->facts.at({e, k});
  switch (u.EffectiveStyle(*t, e)) {
    case DiscrepancyStyle::kValue:
      out->push_back(StrCat("?.", t->name, ".r-(.ent=", token, ", .key=",
                            key, ")"));
      break;
    case DiscrepancyStyle::kAttribute:
      out->push_back(
          StrCat("?.", t->name, ".w(.key=", key, ", -.", token, ")"));
      break;
    case DiscrepancyStyle::kRelation:
      out->push_back(
          StrCat("?.", t->name, ".", token, "-(.key=", key, ")"));
      break;
    case DiscrepancyStyle::kNested:
      out->push_back(
          StrCat("?.", t->name, ".", token, "-(.", key, "=", val, ")"));
      break;
    case DiscrepancyStyle::kMixed:
      break;  // unreachable
  }
  t->facts.erase({e, k});
}

// Removes every fact of entity `e` with one request where the placement
// allows it, dropping the entity's relation slot entirely for the
// relation-name styles (relations disappear mid-trace).
void EmitRemoveEntity(const DiscrepancyUniverse& u, DiscrepancyTenant* t,
                      size_t e, std::vector<std::string>* out) {
  const std::string token = u.EntityToken(*t, e);
  switch (u.EffectiveStyle(*t, e)) {
    case DiscrepancyStyle::kValue:
      out->push_back(StrCat("?.", t->name, ".r-(.ent=", token, ")"));
      break;
    case DiscrepancyStyle::kAttribute:
      out->push_back(StrCat("?.", t->name, ".w(-.", token, ")"));
      break;
    case DiscrepancyStyle::kRelation:
    case DiscrepancyStyle::kNested:
      if (t->relations.erase(token) > 0) {
        out->push_back(StrCat("?.", t->name, "-.", token));
      }
      break;
    case DiscrepancyStyle::kMixed:
      break;  // unreachable
  }
  for (size_t k = 0; k < u.keys.size(); ++k) t->facts.erase({e, k});
}

// Re-encodes the whole tenant under `next`: drop every data slot, then
// rebuild the same facts under the new placement. The unified view must
// not move — representation independence is the paper's core claim, and
// the differential sweep checks it at every intermediate request too.
void EmitFlip(const DiscrepancyUniverse& u, DiscrepancyTenant* t,
              DiscrepancyStyle next, Rng* rng,
              std::vector<std::string>* out) {
  for (const std::string& rel : t->relations) {
    if (rel == kMapRel) continue;  // the name mapping outlives the schema
    out->push_back(StrCat("?.", t->name, "-.", rel));
  }
  auto facts = t->facts;
  t->style = next;
  t->entity_style.assign(u.entities.size(), next);
  for (size_t e = 0; e < u.entities.size(); ++e) {
    uint64_t draw = rng->Below(3);  // drawn unconditionally: stream stays
    if (next == DiscrepancyStyle::kMixed) {  // aligned across flip targets
      t->entity_style[e] = kSingleLevel[draw];
    }
  }
  t->facts.clear();
  t->relations.clear();
  t->attr_rows.clear();
  if (t->mangled) t->relations.insert(kMapRel);
  if (next == DiscrepancyStyle::kValue || next == DiscrepancyStyle::kMixed) {
    t->relations.insert(kValueRel);
    out->push_back(StrCat("?.", t->name, "+.r"));
  }
  if (next == DiscrepancyStyle::kAttribute ||
      next == DiscrepancyStyle::kMixed) {
    t->relations.insert(kAttrRel);
    out->push_back(StrCat("?.", t->name, "+.w"));
  }
  for (const auto& [cell, val] : facts) {
    EmitInsert(u, t, cell.first, cell.second, val, out);
  }
}

}  // namespace

EvolutionTrace GenerateEvolutionTrace(DiscrepancyUniverse& universe,
                                      size_t num_steps, uint64_t salt) {
  EvolutionTrace trace;
  Rng rng(universe.config.seed ^ salt ^ 0x7ace5eedULL);
  for (size_t s = 0; s < num_steps; ++s) {
    EvolutionStep step;
    DiscrepancyTenant& t =
        universe.tenants[rng.Below(universe.tenants.size())];
    uint64_t op = rng.Below(100);
    size_t e = rng.Below(universe.entities.size());
    size_t k = rng.Below(universe.keys.size());
    int64_t val = rng.Range(1, 999);
    if (op >= 95) {
      // Style flip: draw a different style than the current one.
      DiscrepancyStyle next =
          static_cast<DiscrepancyStyle>(rng.Below(5));
      if (next == t.style) {
        next = static_cast<DiscrepancyStyle>(
            (static_cast<uint8_t>(next) + 1) % 5);
      }
      step.description = StrCat(t.name, ": flip ",
                                DiscrepancyStyleName(t.style), " -> ",
                                DiscrepancyStyleName(next));
      EmitFlip(universe, &t, next, &rng, &step.requests);
    } else if (op >= 80) {
      // Remove a whole entity (fall back to upsert when it has no facts).
      size_t chosen = universe.entities.size();
      for (size_t probe = 0; probe < universe.entities.size(); ++probe) {
        size_t cand = (e + probe) % universe.entities.size();
        for (size_t kk = 0; kk < universe.keys.size(); ++kk) {
          if (t.facts.count({cand, kk}) > 0) {
            chosen = cand;
            break;
          }
        }
        if (chosen < universe.entities.size()) break;
      }
      if (chosen < universe.entities.size()) {
        step.description =
            StrCat(t.name, ": remove entity ", universe.entities[chosen]);
        EmitRemoveEntity(universe, &t, chosen, &step.requests);
      } else {
        step.description = StrCat(t.name, ": insert ",
                                  universe.entities[e], "/",
                                  universe.keys[k]);
        EmitInsert(universe, &t, e, k, val, &step.requests);
      }
    } else if (op >= 55) {
      // Delete one fact (fall back to insert when the cell is empty).
      if (t.facts.count({e, k}) > 0) {
        step.description = StrCat(t.name, ": delete ",
                                  universe.entities[e], "/",
                                  universe.keys[k]);
        EmitDelete(universe, &t, e, k, &step.requests);
      } else {
        step.description = StrCat(t.name, ": insert ",
                                  universe.entities[e], "/",
                                  universe.keys[k]);
        EmitInsert(universe, &t, e, k, val, &step.requests);
      }
    } else {
      // Upsert: rewrite in place when present (a dirty delta), plain
      // insert otherwise. Attribute placement rewrites with a single
      // tuple-plus request; the others delete then insert.
      if (t.facts.count({e, k}) > 0 &&
          universe.EffectiveStyle(t, e) != DiscrepancyStyle::kAttribute) {
        EmitDelete(universe, &t, e, k, &step.requests);
      }
      step.description = StrCat(t.name, ": upsert ", universe.entities[e],
                                "/", universe.keys[k]);
      EmitInsert(universe, &t, e, k, val, &step.requests);
    }
    step.expected_unified = universe.ExpectedUnified();
    step.expected_roll = universe.ExpectedRoll();
    step.expected_wide = universe.ExpectedWide();
    trace.steps.push_back(std::move(step));
  }
  return trace;
}

// ---- Workload specs ---------------------------------------------------------

namespace {

Result<DiscrepancyStyle> ParseStyle(std::string_view name) {
  for (uint8_t s = 0; s <= static_cast<uint8_t>(DiscrepancyStyle::kMixed);
       ++s) {
    auto style = static_cast<DiscrepancyStyle>(s);
    if (name == DiscrepancyStyleName(style)) return style;
  }
  return InvalidArgument(StrCat("unknown discrepancy style '", name, "'"));
}

}  // namespace

Result<DiscrepancyConfig> ParseWorkloadSpec(std::string_view spec) {
  DiscrepancyConfig config;
  std::vector<std::string> parts;
  std::string token;
  for (char c : spec) {
    if (c == ' ' || c == ',' || c == '\t') {
      if (!token.empty()) parts.push_back(std::move(token));
      token.clear();
    } else {
      token.push_back(c);
    }
  }
  if (!token.empty()) parts.push_back(std::move(token));
  if (parts.empty()) return InvalidArgument("empty workload spec");

  // "<seed>,<tenants>" shorthand: bare integers in order.
  size_t bare = 0;
  for (const std::string& part : parts) {
    if (part.find('=') != std::string::npos) break;
    ++bare;
  }
  if (bare > 2) {
    return InvalidArgument(
        StrCat("workload spec '", spec,
               "': at most two bare values (seed, tenants)"));
  }
  for (size_t i = 0; i < parts.size(); ++i) {
    const std::string& part = parts[i];
    size_t eq = part.find('=');
    if (eq == std::string::npos) {
      char* end = nullptr;
      uint64_t v = std::strtoull(part.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') {
        return InvalidArgument(
            StrCat("workload spec: '", part, "' is not an integer"));
      }
      if (i == 0) {
        config.seed = v;
      } else {
        config.num_tenants = v;
      }
      continue;
    }
    std::string key = part.substr(0, eq);
    std::string value = part.substr(eq + 1);
    if (value.empty()) {
      return InvalidArgument(StrCat("workload spec: empty value for '", key,
                                    "'"));
    }
    if (key == "styles") {
      config.pinned_styles.clear();
      std::string name;
      for (char c : StrCat(value, "+")) {
        if (c == '+' || c == '|') {
          if (name.empty()) continue;
          IDL_ASSIGN_OR_RETURN(DiscrepancyStyle style, ParseStyle(name));
          config.pinned_styles.push_back(style);
          name.clear();
        } else {
          name.push_back(c);
        }
      }
      if (config.pinned_styles.empty()) {
        return InvalidArgument("workload spec: styles= lists no styles");
      }
      continue;
    }
    char* end = nullptr;
    double v = std::strtod(value.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return InvalidArgument(
          StrCat("workload spec: '", value, "' is not a number"));
    }
    if (key == "seed") {
      config.seed = static_cast<uint64_t>(v);
    } else if (key == "tenants") {
      config.num_tenants = static_cast<size_t>(v);
    } else if (key == "entities") {
      config.num_entities = static_cast<size_t>(v);
    } else if (key == "keys") {
      config.num_keys = static_cast<size_t>(v);
    } else if (key == "density") {
      config.fact_density = v;
    } else if (key == "mangle") {
      config.mangle_rate = v;
    } else if (key == "views") {
      config.customized_views = v != 0;
    } else {
      return InvalidArgument(StrCat("workload spec: unknown field '", key,
                                    "'"));
    }
  }
  if (config.num_tenants == 0 || config.num_entities == 0 ||
      config.num_keys == 0) {
    return InvalidArgument(
        "workload spec: tenants, entities and keys must be positive");
  }
  return config;
}

std::string FormatWorkloadSpec(const DiscrepancyConfig& config) {
  std::string spec =
      StrCat("seed=", config.seed, " tenants=", config.num_tenants,
             " entities=", config.num_entities, " keys=", config.num_keys,
             " density=", config.fact_density, " mangle=",
             config.mangle_rate, " views=", config.customized_views ? 1 : 0);
  if (!config.pinned_styles.empty()) {
    spec += " styles=";
    for (size_t i = 0; i < config.pinned_styles.size(); ++i) {
      if (i > 0) spec += "+";
      spec += DiscrepancyStyleName(config.pinned_styles[i]);
    }
  }
  return spec;
}

}  // namespace idl
