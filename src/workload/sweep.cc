#include "workload/sweep.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <utility>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "federation/gateway.h"
#include "federation/site.h"
#include "idl/session.h"
#include "object/builder.h"
#include "object/value_io.h"

namespace idl {

std::string ModePoint::Label() const {
  std::string label = strategy == EvalStrategy::kNaive ? "naive"
                      : parallelism == 1               ? "semi"
                                                       : "semi-par";
  label += maintenance == MaintenanceMode::kIncremental ? "/inc" : "/remat";
  label += federated ? (faulty ? "/fed+faults" : "/fed") : "/direct";
  label += governed ? "/gov" : "/plain";
  if (planner == PlannerMode::kCostBased) label += "/plan";
  return label;
}

std::vector<ModePoint> FullModeLattice() {
  std::vector<ModePoint> modes;
  struct StrategyPoint {
    EvalStrategy strategy;
    size_t parallelism;
  };
  const StrategyPoint strategies[] = {
      {EvalStrategy::kNaive, 1},
      {EvalStrategy::kSemiNaive, 1},
      {EvalStrategy::kSemiNaive, 0},
  };
  for (const auto& sp : strategies) {
    for (MaintenanceMode maintenance :
         {MaintenanceMode::kRematerialize, MaintenanceMode::kIncremental}) {
      for (bool federated : {false, true}) {
        for (bool governed : {false, true}) {
          ModePoint mode;
          mode.strategy = sp.strategy;
          mode.parallelism = sp.parallelism;
          mode.maintenance = maintenance;
          mode.federated = federated;
          mode.faulty = federated;
          mode.governed = governed;
          mode.substrate = sp.strategy == EvalStrategy::kNaive
                               ? EvalSubstrate::kNested
                               : EvalSubstrate::kColumnar;
          modes.push_back(mode);
          // Cost-planned variant of every semi-naive point: the planner's
          // byte-identity contract gets cross-checked against the whole
          // lattice. The naive oracle points stay written-order.
          if (sp.strategy == EvalStrategy::kSemiNaive) {
            mode.planner = PlannerMode::kCostBased;
            modes.push_back(mode);
          }
        }
      }
    }
  }
  return modes;
}

std::string FormatSweepReport(const SweepReport& report) {
  return StrCat("sweep: universes=", report.universes, " traces=",
                report.traces, " steps=", report.steps, " requests=",
                report.requests, " modes=", report.modes, " comparisons=",
                report.comparisons, " fallbacks=", report.fallbacks,
                " mismatches=", report.mismatches.size(), "\n");
}

namespace {

// Never-binding budgets for the governed lattice points: the governor's
// checkpoints and accounting run on every request, but no legitimate
// workload in this sweep approaches the limits. Wall-clock budgets are
// deliberately absent (flaky under sanitizers and load).
void ApplyGenerousBudgets(EvalOptions* options) {
  options->max_passes = 100000;
  options->max_derivations = 500u * 1000 * 1000;
  options->max_universe_cells = 500u * 1000 * 1000;
}

// One engine configuration replaying the scenario.
struct ModeRunner {
  ModePoint mode;
  Session session;
  std::shared_ptr<Gateway> gateway;
  std::vector<SimulatedRemoteSite*> sites;  // owned by the gateway
  EvalOptions request_options;
  Rng fault_rng{0};

  // Schedules a transient outage at a seeded-random site. One failure per
  // injection point: FailNext budgets accumulate, and two consecutive
  // injection points can land before the next site request drains them, so
  // the worst-case pending budget (2) must stay below the gateway's retry
  // budget (3) or an injected fault would turn into a real one.
  void InjectFault() {
    if (!mode.faulty || sites.empty()) return;
    sites[fault_rng.Below(sites.size())]->FailNext(1);
  }
};

// Oracle normalization: views that lost all their rows may survive as
// empty relation slots (maintenance deletes elements; a rematerialization
// never creates the slot) — the sweep's cross-mode comparison covers the
// engine's own consistency, and the oracle compares *facts*, so empty
// relations and empty databases are dropped on both sides.
Value NormalizeDb(const Value* db) {
  Value out = Value::EmptyTuple();
  if (db == nullptr || !db->is_tuple()) return out;
  for (const auto& field : db->fields()) {
    if (field.value.is_set() && field.value.SetSize() == 0) continue;
    out.SetField(field.name, field.value);
  }
  return out;
}

Value NormalizeRel(const Value& universe, const char* db, const char* rel) {
  const Value* d = universe.FindField(db);
  const Value* r = d == nullptr ? nullptr : d->FindField(rel);
  return r == nullptr ? Value::EmptySet() : *r;
}

struct CheckCounters {
  size_t steps = 0;
  size_t requests = 0;
  size_t comparisons = 0;
  uint64_t fallbacks = 0;
};

// Runs one generated scenario through every mode in lockstep. Returns ""
// when every comparison held, else a description of the first divergence.
std::string CheckScenario(const DiscrepancyConfig& config, size_t trace_steps,
                          uint64_t trace_salt,
                          const std::vector<ModePoint>& modes, bool inject,
                          CheckCounters* counters) {
  DiscrepancyUniverse universe = GenerateDiscrepancyUniverse(config);
  const std::vector<std::string> rules = universe.UnificationRules();

  std::vector<std::unique_ptr<ModeRunner>> runners;
  for (const ModePoint& mode : modes) {
    auto runner = std::make_unique<ModeRunner>();
    runner->mode = mode;
    runner->fault_rng = Rng(config.seed ^ 0xfa017ULL);
    EvalOptions materialize;
    materialize.strategy = mode.strategy;
    materialize.materialize_parallelism = mode.parallelism;
    materialize.maintenance = mode.maintenance;
    materialize.substrate = mode.substrate;
    materialize.planner = mode.planner;
    runner->request_options.substrate = mode.substrate;
    runner->request_options.planner = mode.planner;
    if (mode.governed) {
      ApplyGenerousBudgets(&materialize);
      ApplyGenerousBudgets(&runner->request_options);
    }
    runner->session.set_materialize_options(materialize);
    if (mode.federated) {
      Gateway::Options gopt;
      gopt.backoff_ms = 0;  // retries without sleeps
      runner->gateway = std::make_shared<Gateway>(gopt);
      for (const auto& tenant : universe.tenants) {
        auto site = std::make_shared<SimulatedRemoteSite>(
            std::make_unique<LocalSite>(
                tenant.name, universe.BuildTenantDatabase(tenant)));
        runner->sites.push_back(site.get());
        Status st = runner->gateway->AddSite(std::move(site));
        if (!st.ok()) return StrCat(mode.Label(), ": ", st.ToString());
      }
      Status st = runner->session.ConnectGateway(runner->gateway);
      if (!st.ok()) return StrCat(mode.Label(), ": ", st.ToString());
    } else {
      for (const auto& tenant : universe.tenants) {
        Status st = runner->session.RegisterDatabase(
            tenant.name, universe.BuildTenantDatabase(tenant));
        if (!st.ok()) return StrCat(mode.Label(), ": ", st.ToString());
      }
    }
    Status st = runner->session.DefineRules(rules);
    if (!st.ok()) return StrCat(mode.Label(), ": ", st.ToString());
    runners.push_back(std::move(runner));
  }

  // Compares every runner's merged universe to the reference's, and the
  // reference's derived views to the oracle when snapshots are given.
  auto compare = [&](const std::string& when, const Value* exp_unified,
                     const Value* exp_roll,
                     const Value* exp_wide) -> std::string {
    std::vector<Value> snaps;
    for (auto& runner : runners) {
      runner->InjectFault();
      auto u = runner->session.universe();
      if (!u.ok()) {
        return StrCat(runner->mode.Label(), " failed ", when, ": ",
                      u.status().ToString());
      }
      snaps.push_back(**u);
    }
    if (inject) {
      // Testing seam: corrupt the last snapshot's unified view so the
      // comparison below must fire.
      Value* u = snaps.back().MutableField("u");
      if (u == nullptr) {
        snaps.back().SetField("u", Value::EmptyTuple());
        u = snaps.back().MutableField("u");
      }
      Value* p = u->MutableField("p");
      if (p == nullptr || !p->is_set()) {
        u->SetField("p", Value::EmptySet());
        p = u->MutableField("p");
      }
      p->Insert(MakeTuple({{"tn", Value::String("zz")},
                           {"ent", Value::String("zz")},
                           {"key", Value::String("zz")},
                           {"val", Value::Int(0)}}));
    }
    for (size_t i = 1; i < snaps.size(); ++i) {
      ++counters->comparisons;
      if (!(snaps[i] == snaps[0])) {
        return StrCat(runners[i]->mode.Label(), " diverges from ",
                      runners[0]->mode.Label(), " ", when);
      }
    }
    if (exp_unified != nullptr &&
        !(NormalizeRel(snaps[0], "u", "p") == *exp_unified)) {
      return StrCat("unified view disagrees with the oracle ", when);
    }
    if (config.customized_views && exp_roll != nullptr) {
      const Value roll = NormalizeDb(snaps[0].FindField("roll"));
      const Value wide = NormalizeDb(snaps[0].FindField("wide"));
      if (!(roll == NormalizeDb(exp_roll))) {
        return StrCat("roll view disagrees with the oracle ", when);
      }
      if (exp_wide != nullptr && !(wide == NormalizeDb(exp_wide))) {
        return StrCat("wide view disagrees with the oracle ", when);
      }
    }
    return "";
  };

  const Value unified = universe.ExpectedUnified();
  const Value roll = universe.ExpectedRoll();
  const Value wide = universe.ExpectedWide();
  std::string mismatch =
      compare("after initial materialization", &unified, &roll, &wide);
  if (!mismatch.empty()) return mismatch;

  if (trace_steps > 0) {
    EvolutionTrace trace =
        GenerateEvolutionTrace(universe, trace_steps, trace_salt);
    for (size_t s = 0; s < trace.steps.size(); ++s) {
      const EvolutionStep& step = trace.steps[s];
      ++counters->steps;
      for (size_t r = 0; r < step.requests.size(); ++r) {
        const std::string& request = step.requests[r];
        ++counters->requests;
        for (auto& runner : runners) {
          runner->InjectFault();
          auto result =
              runner->session.Update(request, runner->request_options);
          if (!result.ok()) {
            return StrCat(runner->mode.Label(), " rejected '", request,
                          "' (step ", s + 1, ": ", step.description,
                          "): ", result.status().ToString());
          }
        }
        const bool last = r + 1 == step.requests.size();
        // Mid-step the logical state is in transit (a flip has dropped
        // but not yet rebuilt its slots), so the oracle only applies at
        // the step boundary; cross-mode equality must hold at every
        // request.
        mismatch = compare(
            StrCat("after '", request, "' (step ", s + 1, ": ",
                   step.description, ")"),
            last ? &step.expected_unified : nullptr,
            last ? &step.expected_roll : nullptr,
            last ? &step.expected_wide : nullptr);
        if (!mismatch.empty()) return mismatch;
      }
    }
  }

  for (auto& runner : runners) {
    if (runner->mode.strategy != EvalStrategy::kSemiNaive) continue;
    if (runner->mode.maintenance != MaintenanceMode::kIncremental) continue;
    if (runner->mode.federated) continue;
    if (const Materialized* m = runner->session.last_materialization()) {
      counters->fallbacks += m->maintenance.fallbacks;
    }
  }
  return "";
}

}  // namespace

SweepReport RunDifferentialSweep(const std::vector<DiscrepancyConfig>& configs,
                                 const SweepOptions& options) {
  SweepReport report;
  const std::vector<ModePoint> modes =
      options.modes.empty() ? FullModeLattice() : options.modes;
  report.modes = modes.size();
  MetricsRegistry& metrics = MetricsRegistry::Global();
  for (const DiscrepancyConfig& config : configs) {
    ++report.universes;
    metrics.counter("workload.sweep_universes")->Increment();
    if (options.trace_steps > 0) ++report.traces;
    CheckCounters counters;
    std::string mismatch = CheckScenario(
        config, options.trace_steps, options.trace_salt, modes,
        options.inject_mismatch_for_testing, &counters);
    report.steps += counters.steps;
    report.requests += counters.requests;
    report.comparisons += counters.comparisons;
    report.fallbacks += counters.fallbacks;
    metrics.counter("workload.sweep_comparisons")
        ->Increment(counters.comparisons);
    if (mismatch.empty()) continue;
    metrics.counter("workload.sweep_mismatches")->Increment();
    report.mismatches.push_back(
        StrCat("[", FormatWorkloadSpec(config), "] ", mismatch));
    if (options.shrink_on_mismatch) {
      ShrinkResult shrunk =
          ShrinkMismatch(config, options.trace_steps, options);
      auto path = WriteReproArtifact(shrunk, options.artifact_dir);
      if (path.ok()) report.repro_paths.push_back(*path);
    }
  }
  return report;
}

// ---- Shrinker ---------------------------------------------------------------

ShrinkResult ShrinkMismatch(const DiscrepancyConfig& config,
                            size_t trace_steps, const SweepOptions& options) {
  const std::vector<ModePoint> modes =
      options.modes.empty() ? FullModeLattice() : options.modes;
  ShrinkResult best;
  best.config = config;
  best.trace_steps = trace_steps;
  auto reproduces = [&](const DiscrepancyConfig& c,
                        size_t steps) -> std::string {
    CheckCounters counters;
    return CheckScenario(c, steps, options.trace_salt, modes,
                         options.inject_mismatch_for_testing, &counters);
  };
  best.mismatch = reproduces(best.config, best.trace_steps);

  // Greedy descent: try each reduction; keep any that still reproduces,
  // and restart from the smaller scenario until nothing shrinks.
  bool reduced = true;
  while (reduced && !best.mismatch.empty()) {
    reduced = false;
    std::vector<std::pair<DiscrepancyConfig, size_t>> candidates;
    auto with = [&](auto mutate) {
      DiscrepancyConfig c = best.config;
      size_t steps = best.trace_steps;
      mutate(&c, &steps);
      candidates.emplace_back(std::move(c), steps);
    };
    if (best.config.num_tenants > 1) {
      with([](DiscrepancyConfig* c, size_t*) {
        c->num_tenants /= 2;
      });
      with([](DiscrepancyConfig* c, size_t*) { --c->num_tenants; });
    }
    if (best.config.num_entities > 1) {
      with([](DiscrepancyConfig* c, size_t*) { c->num_entities /= 2; });
      with([](DiscrepancyConfig* c, size_t*) { --c->num_entities; });
    }
    if (best.config.num_keys > 1) {
      with([](DiscrepancyConfig* c, size_t*) { c->num_keys /= 2; });
      with([](DiscrepancyConfig* c, size_t*) { --c->num_keys; });
    }
    if (best.trace_steps > 0) {
      with([](DiscrepancyConfig*, size_t* steps) { *steps /= 2; });
      with([](DiscrepancyConfig*, size_t* steps) { --*steps; });
    }
    if (best.config.mangle_rate > 0) {
      with([](DiscrepancyConfig* c, size_t*) { c->mangle_rate = 0; });
    }
    if (best.config.customized_views) {
      with([](DiscrepancyConfig* c, size_t*) {
        c->customized_views = false;
      });
    }
    for (auto& [candidate, steps] : candidates) {
      std::string mismatch = reproduces(candidate, steps);
      if (mismatch.empty()) continue;
      best.config = candidate;
      best.trace_steps = steps;
      best.mismatch = std::move(mismatch);
      reduced = true;
      break;
    }
  }
  best.script = BuildReproScript(best.config, best.trace_steps,
                                 options.trace_salt, best.mismatch);
  return best;
}

std::string BuildReproScript(const DiscrepancyConfig& config,
                             size_t trace_steps, uint64_t trace_salt,
                             const std::string& mismatch) {
  DiscrepancyUniverse universe = GenerateDiscrepancyUniverse(config);
  std::string script =
      StrCat("% Minimized repro from the workload differential sweep.\n",
             "% mismatch: ", mismatch.empty() ? "(none)" : mismatch, "\n",
             "% Replays standalone: idl_shell <this file>, or load the\n",
             "% scenario interactively with --workload=\"",
             FormatWorkloadSpec(config), "\".\n",
             "% workload: ", FormatWorkloadSpec(config), "\n\n");
  if (trace_steps > 0) {
    EvolutionTrace trace =
        GenerateEvolutionTrace(universe, trace_steps, trace_salt);
    for (const EvolutionStep& step : trace.steps) {
      script += StrCat("% step: ", step.description, "\n");
      for (const std::string& request : step.requests) {
        script += StrCat(request, ";\n");
      }
    }
    script += "\n";
  }
  script += "?.u.p(.tn=T, .ent=E, .key=K, .val=V);\n";
  script += StrCat("% expected unified relation: ",
                   ToString(universe.ExpectedUnified()), "\n");
  return script;
}

Result<std::string> WriteReproArtifact(const ShrinkResult& shrunk,
                                       const std::string& artifact_dir) {
  namespace fs = std::filesystem;
  fs::path dir;
  if (!artifact_dir.empty()) {
    dir = artifact_dir;
  } else if (const char* env = std::getenv("IDL_WORKLOAD_ARTIFACT_DIR")) {
    dir = env;
  } else {
    dir = fs::temp_directory_path();
  }
  std::error_code ec;
  fs::create_directories(dir, ec);  // best effort; open reports failure
  fs::path path =
      dir / StrCat("workload_repro_seed", shrunk.config.seed, ".idl");
  std::ofstream out(path);
  if (!out.good()) {
    return Internal(StrCat("cannot write repro artifact ", path.string()));
  }
  out << shrunk.script;
  out.close();
  MetricsRegistry::Global().counter("workload.repro_artifacts")->Increment();
  return path.string();
}

}  // namespace idl
