// Synthetic stock-market workload generator (the paper's running example at
// scale). One price history is emitted under all three schematically
// discrepant schemas:
//   euter:  r(date, stkCode, clsPrice)      — stocks as values
//   chwab:  r(date, stk1, stk2, ...)        — stocks as attributes
//   ource:  stk1(date, clsPrice), stk2(...) — stocks as relations
// Prices follow a deterministic bounded random walk (seeded), so tests and
// benches are reproducible. Optional knobs inject value discrepancies (for
// the pnew reconciliation experiment, V4) and name discrepancies with
// mapCE/mapOE mapping relations (§6's relaxation, V5).

#ifndef IDL_WORKLOAD_STOCK_GEN_H_
#define IDL_WORKLOAD_STOCK_GEN_H_

#include <string>
#include <vector>

#include "object/date.h"
#include "object/value.h"
#include "relational/database.h"

namespace idl {

struct StockWorkloadConfig {
  size_t num_stocks = 10;
  size_t num_days = 30;
  uint64_t seed = 42;
  // Fraction of (stock, day) cells whose chwab price differs from euter's
  // (injected value discrepancies).
  double discrepancy_rate = 0.0;
  // If true, chwab attribute names are "c_<stock>" and ource relation names
  // are "o_<stock>", and mapping relations are generated.
  bool name_discrepancies = false;
};

struct StockWorkload {
  StockWorkloadConfig config;
  std::vector<std::string> stocks;  // canonical (euter) stock codes
  std::vector<Date> dates;
  // price[s][d], rounded to cents.
  std::vector<std::vector<double>> price;
  // chwab's price where it differs from euter's (same shape; NaN = agrees).
  std::vector<std::vector<double>> chwab_override;

  const std::string& ChwabName(size_t s) const;
  const std::string& OurceName(size_t s) const;
  double ChwabPrice(size_t s, size_t d) const;

  std::vector<std::string> chwab_names;  // == stocks unless name_discrepancies
  std::vector<std::string> ource_names;
};

StockWorkload GenerateStockWorkload(const StockWorkloadConfig& config);

// Substrate databases.
RelationalDatabase BuildEuterDatabase(const StockWorkload& w);
RelationalDatabase BuildChwabDatabase(const StockWorkload& w);
RelationalDatabase BuildOurceDatabase(const StockWorkload& w);
// The name-mapping database holding mapCE(from,to) and mapOE(from,to); empty
// relations when the workload has no name discrepancies.
RelationalDatabase BuildMapsDatabase(const StockWorkload& w);

// The full universe tuple: euter, chwab, ource (+ maps when the workload has
// name discrepancies), lifted through the relational adapter.
Value BuildStockUniverse(const StockWorkload& w);

}  // namespace idl

#endif  // IDL_WORKLOAD_STOCK_GEN_H_
