// Cross-mode differential sweep over generated discrepancy workloads.
//
// A ModePoint is one configuration of the engine's mode lattice:
//
//   strategy     naive | semi-naive serial | semi-naive parallel
//   maintenance  rematerialize | incremental
//   federation   direct (databases registered in-process) | gateway
//                (every tenant behind a SimulatedRemoteSite with injected
//                transient faults, absorbed by the gateway's retries)
//   governor     ungoverned | generous pass/derivation budgets on every
//                request and materialization (counters run, limits never
//                bind — wall-clock budgets would be flaky under sanitizers)
//   planner      written order | cost-based (semi-naive points only: the
//                cost-based planner must be byte-identical to written
//                order, so every semi-naive point gets a "/plan" variant
//                cross-checked against the whole lattice)
//
// FullModeLattice() enumerates the 3 x 2 x 2 x 2 = 24 base points plus a
// cost-planned variant of each of the 16 semi-naive points (40 total); the
// first is the reference (naive / rematerialize / direct / ungoverned — the
// oracle strategy evaluating from scratch with no federation or governor in
// the loop).
//
// RunDifferentialSweep drives every generated universe (and optionally an
// evolution trace) through all modes in lockstep: after the initial
// materialization and again after *every* update request, all sessions'
// merged universes must be byte-identical (Value equality) to the
// reference's, and at every step boundary the reference's unified and
// customized views must equal the generator's oracle. Any divergence is
// reported, and — unless disabled — handed to the shrinker, which
// minimizes the (config, trace) pair dimension by dimension while the
// mismatch reproduces, then writes a standalone .idl repro script (a
// "% workload:" spec plus the literal requests) as a test artifact.

#ifndef IDL_WORKLOAD_SWEEP_H_
#define IDL_WORKLOAD_SWEEP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "eval/query.h"
#include "workload/discrepancy_gen.h"

namespace idl {

struct ModePoint {
  EvalStrategy strategy = EvalStrategy::kSemiNaive;
  // EvalOptions::materialize_parallelism (1 = serial, 0 = auto).
  size_t parallelism = 1;
  MaintenanceMode maintenance = MaintenanceMode::kIncremental;
  // Tenants behind a federation gateway (SimulatedRemoteSite per tenant)
  // instead of locally registered databases.
  bool federated = false;
  // Schedule transient site faults before every step (federated only);
  // the gateway's retries must absorb them without changing any answer.
  bool faulty = false;
  // Generous (never-binding) governor budgets on requests and
  // materializations.
  bool governed = false;
  // Evaluation substrate (eval/query.h). FullModeLattice runs the naive
  // strategy points — including the reference — on the tuple-at-a-time
  // kNested oracle, so every sweep cross-checks the columnar kernels
  // against it on all five discrepancy styles.
  EvalSubstrate substrate = EvalSubstrate::kColumnar;
  // Conjunct-ordering planner (eval/query.h). FullModeLattice adds a
  // kCostBased variant of every semi-naive point, so each sweep proves the
  // planner answer-identical across maintenance, federation and governor
  // modes.
  PlannerMode planner = PlannerMode::kWrittenOrder;

  // "semi-par/inc/fed+faults/gov/plan" — stable, locked by
  // explain_format_test ("/plan" appended only under kCostBased, so the 24
  // base labels are unchanged).
  std::string Label() const;
};

// The full 40-point lattice (24 base + 16 cost-planned semi-naive
// variants); [0] is the reference mode.
std::vector<ModePoint> FullModeLattice();

struct SweepOptions {
  // Modes to run (empty = FullModeLattice()). [0] is the reference.
  std::vector<ModePoint> modes;
  // Evolution-trace steps per universe (0 = static universes only).
  size_t trace_steps = 0;
  // Salt mixed into the trace RNG (distinct sweeps over the same configs).
  uint64_t trace_salt = 0;
  // Minimize mismatches and write repro artifacts.
  bool shrink_on_mismatch = true;
  // Where repro scripts land ("" = $IDL_WORKLOAD_ARTIFACT_DIR, falling
  // back to the system temp directory).
  std::string artifact_dir;
  // Testing seam: corrupt the last mode's unified-view snapshot at every
  // comparison point, so the detect -> shrink -> artifact pipeline runs
  // end-to-end against a guaranteed mismatch.
  bool inject_mismatch_for_testing = false;
};

struct SweepReport {
  size_t universes = 0;
  size_t traces = 0;
  size_t steps = 0;     // evolution steps replayed
  size_t requests = 0;  // update requests applied (per mode)
  size_t modes = 0;
  size_t comparisons = 0;  // cross-mode universe comparisons
  // Incremental-maintenance fallbacks observed in non-federated
  // semi-naive/incremental modes (federated resyncs may legitimately
  // rebuild). The tier-1 sweep asserts this stays zero.
  uint64_t fallbacks = 0;
  std::vector<std::string> mismatches;
  std::vector<std::string> repro_paths;  // shrunk artifacts, one per mismatch

  bool ok() const { return mismatches.empty(); }
};

SweepReport RunDifferentialSweep(const std::vector<DiscrepancyConfig>& configs,
                                 const SweepOptions& options);

// One line, locked by tests/explain_format_test.cc:
//   "sweep: universes=50 traces=10 steps=80 requests=212 modes=24
//    comparisons=12345 fallbacks=0 mismatches=0\n"
std::string FormatSweepReport(const SweepReport& report);

// ---- Shrinker ---------------------------------------------------------------

struct ShrinkResult {
  DiscrepancyConfig config;  // minimized
  size_t trace_steps = 0;    // minimized
  std::string mismatch;      // description from the minimized reproduction
  std::string script;        // standalone .idl repro
};

// Re-runs (config, trace_steps) through options.modes, then greedily
// shrinks tenants / entities / keys / steps / mangling / views while the
// mismatch keeps reproducing. Precondition: the input pair mismatches.
ShrinkResult ShrinkMismatch(const DiscrepancyConfig& config,
                            size_t trace_steps, const SweepOptions& options);

// The standalone repro script for a (possibly shrunk) scenario: the
// workload spec directive, the trace's literal update requests, and a
// final query over the unified view.
std::string BuildReproScript(const DiscrepancyConfig& config,
                             size_t trace_steps, uint64_t trace_salt,
                             const std::string& mismatch);

// Writes the shrink result's script into `artifact_dir` (see
// SweepOptions::artifact_dir for the fallbacks); returns the path.
Result<std::string> WriteReproArtifact(const ShrinkResult& shrunk,
                                       const std::string& artifact_dir);

}  // namespace idl

#endif  // IDL_WORKLOAD_SWEEP_H_
