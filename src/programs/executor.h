// Top-down execution of update programs (paper §7.1) and view-update
// dispatch (§7.2).
//
// A call binds the named arguments to the clause's parameter variables and
// executes each clause body left to right: pure query conjuncts extend the
// current substitutions, update conjuncts mutate the universe per
// substitution, and conjuncts whose constant path names a registered program
// are nested calls. Execution returns success or failure plus the update
// counts; arguments may be partially bound (delStk with no date deletes all
// dates) except for the program's required parameters.

#ifndef IDL_PROGRAMS_EXECUTOR_H_
#define IDL_PROGRAMS_EXECUTOR_H_

#include <map>
#include <set>
#include <string>

#include "common/governor.h"
#include "common/result.h"
#include "eval/explain.h"
#include "object/value.h"
#include "programs/program.h"
#include "update/applier.h"

namespace idl {

struct CallResult {
  // Clauses whose body ran to completion with at least one substitution.
  size_t clauses_succeeded = 0;
  size_t clauses_total = 0;
  UpdateCounts counts;
};

class ProgramExecutor {
 public:
  // `touched_roots`, if non-null, accumulates the top-level database names
  // the executed updates may have mutated (CollectUpdateRoots semantics) —
  // the federation write-back path uses it to decide which sites to push.
  // `governor`, if non-null, is polled per executed conjunct (and flows into
  // the per-substitution update applier); the session snapshots the universe
  // before a governed call, so an abort mid-program rolls back cleanly.
  // `delta`, if non-null, records every universe mutation the program makes
  // (UpdateApplier::set_delta semantics) for incremental view maintenance.
  ProgramExecutor(const ProgramRegistry* registry, Value* universe,
                  EvalStats* stats = nullptr,
                  std::set<std::string>* touched_roots = nullptr,
                  const ResourceGovernor* governor = nullptr,
                  UniverseDelta* delta = nullptr)
      : registry_(registry),
        universe_(universe),
        stats_(stats),
        touched_roots_(touched_roots),
        governor_(governor),
        delta_(delta) {}

  // Calls `path` (e.g. "dbU.delStk") with named arguments. `view_op` selects
  // a view-update program (`p+`/`p-`); kNone selects an ordinary program.
  Result<CallResult> Call(const std::string& path, UpdateOp view_op,
                          const std::map<std::string, Value>& args);

  // Executes one conjunct of a body under the given substitutions,
  // producing the next substitutions; dispatches nested program calls.
  Status ExecuteConjunct(const Expr& conjunct,
                         const std::vector<Substitution>& in,
                         std::vector<Substitution>* out, CallResult* result);

 private:
  Result<CallResult> CallDef(const ProgramDef& def,
                             const std::map<std::string, Value>& args);

  // Evaluates a call conjunct's parameter tuple under `sigma` into named
  // arguments; parameters whose term is an unbound variable are omitted
  // (partial binding).
  Status EvalCallArgs(const Expr* param_set, const Substitution& sigma,
                      std::map<std::string, Value>* args);

  const ProgramRegistry* registry_;
  Value* universe_;
  EvalStats* stats_;
  std::set<std::string>* touched_roots_;
  const ResourceGovernor* governor_;
  UniverseDelta* delta_ = nullptr;
  EvalStats local_stats_;
  int depth_ = 0;
};

}  // namespace idl

#endif  // IDL_PROGRAMS_EXECUTOR_H_
