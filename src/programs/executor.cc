#include "programs/executor.h"

#include "common/str_util.h"
#include "common/trace.h"
#include "eval/matcher.h"
#include "syntax/printer.h"

namespace idl {

namespace {
// Programs are non-recursive, so depth is bounded by the program count;
// this is a defensive backstop.
constexpr int kMaxCallDepth = 64;
}  // namespace

Result<CallResult> ProgramExecutor::Call(
    const std::string& path, UpdateOp view_op,
    const std::map<std::string, Value>& args) {
  const ProgramDef* def = registry_->Find(ProgramKey{path, view_op});
  if (def == nullptr) {
    return NotFound(StrCat("no update program ",
                           ProgramKey{path, view_op}.ToString(),
                           " is registered"));
  }
  return CallDef(*def, args);
}

Result<CallResult> ProgramExecutor::CallDef(
    const ProgramDef& def, const std::map<std::string, Value>& args) {
  // Nested calls nest their spans naturally via the per-thread span stack.
  TraceSpan span("program.call", StrCat("key=", def.key.ToString()));
  if (++depth_ > kMaxCallDepth) {
    --depth_;
    return Internal("program call depth exceeded");
  }
  if (stats_ == nullptr) stats_ = &local_stats_;

  CallResult result;
  // Binding-signature validation (§7.1): required parameters must be bound.
  for (const auto& p : def.required_params) {
    if (!args.contains(p)) {
      --depth_;
      return Unsafe(StrCat("call to ", def.key.ToString(),
                           " requires parameter '", p,
                           "' (it feeds a '+' expression)"));
    }
  }

  for (const auto& clause : def.clauses) {
    ++result.clauses_total;
    // Seed the substitution from the arguments.
    Substitution seed;
    for (const auto& param : clause.params) {
      auto it = args.find(param.attr);
      if (it != args.end()) seed.Bind(param.var, it->second);
    }
    std::vector<Substitution> bindings;
    bindings.push_back(std::move(seed));

    bool failed = false;
    for (const auto& conjunct : clause.body) {
      std::vector<Substitution> next;
      Status st = ExecuteConjunct(*conjunct, bindings, &next, &result);
      if (!st.ok()) {
        --depth_;
        return st.WithContext(StrCat("in ", def.key.ToString(), " clause '",
                                     clause.source, "'"));
      }
      DedupSubstitutions(&next);
      bindings = std::move(next);
      if (bindings.empty()) {
        failed = true;
        break;
      }
    }
    if (!failed) ++result.clauses_succeeded;
  }
  --depth_;
  return result;
}

Status ProgramExecutor::ExecuteConjunct(const Expr& conjunct,
                                        const std::vector<Substitution>& in,
                                        std::vector<Substitution>* out,
                                        CallResult* result) {
  if (governor_ != nullptr) IDL_RETURN_IF_ERROR(governor_->Checkpoint());
  // Nested program call?
  ProgramKey key;
  if (registry_->MatchCall(conjunct, &key)) {
    std::string path;
    UpdateOp op;
    const Expr* param_set;
    DecomposeCallShape(conjunct, &path, &op, &param_set);
    for (const auto& sigma : in) {
      std::map<std::string, Value> args;
      IDL_RETURN_IF_ERROR(EvalCallArgs(param_set, sigma, &args));
      const ProgramDef* def = registry_->Find(key);
      IDL_ASSIGN_OR_RETURN(CallResult nested, CallDef(*def, args));
      result->counts += nested.counts;
      // A nested call that ran keeps the caller's substitution alive.
      out->push_back(sigma);
    }
    return Status::Ok();
  }

  if (conjunct.IsPureQuery()) {
    Matcher matcher(stats_ ? stats_ : &local_stats_);
    for (const auto& sigma : in) {
      if (governor_ != nullptr) IDL_RETURN_IF_ERROR(governor_->Checkpoint());
      Substitution working = sigma;
      Result<bool> r = matcher.Match(*universe_, conjunct, &working,
                                     [&](const Substitution& s) {
                                       out->push_back(s);
                                       return true;
                                     });
      if (!r.ok()) return r.status();
    }
    return Status::Ok();
  }

  UpdateApplier applier(stats_ ? stats_ : &local_stats_, &result->counts,
                        governor_);
  applier.set_delta(delta_);
  for (const auto& sigma : in) {
    if (touched_roots_ != nullptr) {
      CollectUpdateRoots(conjunct, sigma, touched_roots_);
    }
    IDL_RETURN_IF_ERROR(applier.ApplyConjunct(universe_, conjunct, sigma, out));
  }
  return Status::Ok();
}

Status ProgramExecutor::EvalCallArgs(const Expr* param_set,
                                     const Substitution& sigma,
                                     std::map<std::string, Value>* args) {
  if (param_set == nullptr || param_set->set_inner == nullptr) {
    return Status::Ok();
  }
  const Expr& inner = *param_set->set_inner;
  if (inner.kind == Expr::Kind::kEpsilon) return Status::Ok();
  if (inner.kind != Expr::Kind::kTuple) {
    return InvalidArgument("program call arguments must be .name=value pairs");
  }
  for (const auto& item : inner.items) {
    if (item.attr_is_var || item.expr == nullptr ||
        item.expr->kind != Expr::Kind::kAtomic ||
        item.expr->relop != RelOp::kEq) {
      return InvalidArgument(
          "program call arguments must be .name=value pairs");
    }
    const Term& term = item.expr->term;
    if (term.kind == Term::Kind::kVar && sigma.Lookup(term.var) == nullptr) {
      continue;  // unbound argument: omitted (partial binding is allowed)
    }
    IDL_ASSIGN_OR_RETURN(Value v, Matcher::EvalTerm(term, sigma));
    (*args)[item.attr] = std::move(v);
  }
  return Status::Ok();
}

}  // namespace idl
