#include "programs/program.h"

#include <algorithm>

#include "common/str_util.h"

namespace idl {

std::string ProgramKey::ToString() const {
  std::string out = path;
  if (view_op == UpdateOp::kInsert) out += '+';
  if (view_op == UpdateOp::kDelete) out += '-';
  return out;
}

bool DecomposeCallShape(const Expr& conjunct, std::string* path,
                        UpdateOp* op, const Expr** param_set) {
  *path = "";
  *op = UpdateOp::kNone;
  *param_set = nullptr;
  const Expr* cur = &conjunct;
  if (cur->negated) return false;
  while (true) {
    if (cur->kind != Expr::Kind::kTuple || cur->items.size() != 1) {
      return false;
    }
    const TupleItem& item = cur->items[0];
    if (item.attr_is_var || item.update != UpdateOp::kNone) return false;
    if (!path->empty()) *path += '.';
    *path += item.attr;
    if (item.expr == nullptr) return true;  // bare path, no parameters
    if (item.expr->kind == Expr::Kind::kTuple) {
      if (item.expr->negated) return false;
      cur = item.expr.get();
      continue;
    }
    if (item.expr->kind == Expr::Kind::kSet && !item.expr->negated) {
      *op = item.expr->update;
      *param_set = item.expr.get();
      return true;
    }
    return false;
  }
}

Status ProgramRegistry::Register(ProgramClause clause) {
  if (clause.name_path.empty()) {
    return InvalidArgument("update program clause has an empty name");
  }
  ProgramKey key{Join(clause.name_path, "."), clause.view_op};

  // Non-recursion check (§7.1): adding this clause must not let `key` reach
  // itself through the call graph. Insert the key first (possibly as an
  // empty placeholder) so that calls *to* this program from previously
  // registered clauses resolve during the check.
  bool existed = programs_.contains(key);
  ProgramDef& def = programs_[key];
  def.key = key;
  for (const ProgramKey& callee : CalledPrograms(clause)) {
    if (Reaches(callee, key)) {
      if (!existed) programs_.erase(key);
      if (callee.path == key.path && callee.view_op == key.view_op) {
        return Unsafe(StrCat("update program ", key.ToString(),
                             " calls itself (recursion is disallowed)"));
      }
      return Unsafe(StrCat("registering ", key.ToString(), " -> ",
                           callee.ToString(),
                           " would create a recursive call cycle"));
    }
  }

  Result<ClauseInfo> info_or = AnalyzeClause(clause);
  if (!info_or.ok()) {
    if (!existed) programs_.erase(key);
    return info_or.status();
  }
  const ClauseInfo& info = *info_or;
  for (const auto& p : info.required_params) {
    if (std::find(def.required_params.begin(), def.required_params.end(),
                  p) == def.required_params.end()) {
      def.required_params.push_back(p);
    }
  }
  def.clauses.push_back(std::move(clause));
  return Status::Ok();
}

const ProgramDef* ProgramRegistry::Find(const ProgramKey& key) const {
  auto it = programs_.find(key);
  return it == programs_.end() ? nullptr : &it->second;
}

bool ProgramRegistry::MatchCall(const Expr& conjunct, ProgramKey* key) const {
  std::string path;
  UpdateOp op;
  const Expr* params;
  if (!DecomposeCallShape(conjunct, &path, &op, &params)) return false;
  ProgramKey candidate{path, op};
  if (programs_.contains(candidate)) {
    *key = candidate;
    return true;
  }
  return false;
}

std::vector<ProgramKey> ProgramRegistry::CalledPrograms(
    const ProgramClause& clause) const {
  std::vector<ProgramKey> out;
  for (const auto& conjunct : clause.body) {
    std::string path;
    UpdateOp op;
    const Expr* params;
    if (DecomposeCallShape(*conjunct, &path, &op, &params)) {
      ProgramKey key{path, op};
      if (programs_.contains(key)) out.push_back(key);
    }
  }
  return out;
}

bool ProgramRegistry::Reaches(const ProgramKey& from,
                              const ProgramKey& to) const {
  if (from.path == to.path && from.view_op == to.view_op) return true;
  const ProgramDef* def = Find(from);
  if (def == nullptr) return false;
  for (const auto& clause : def->clauses) {
    for (const ProgramKey& next : CalledPrograms(clause)) {
      if (Reaches(next, to)) return true;
    }
  }
  return false;
}

}  // namespace idl
