// Update programs (paper §7.1): named, parameterized collections of update
// and query expressions, defined by `head -> body` clauses. A program may
// have several clauses (delStk has one per database); a call executes all of
// them in definition order. Programs may call other programs, but never
// recursively (enforced at registration), which is what licenses the
// top-down semantics.
//
// View-update programs (§7.2) are update programs whose head carries a '+'
// or '-' between the view name and the parameter tuple: `.dbX.p+(...) -> …`.
// They state the administrator's chosen translation of a view update into
// base updates.

#ifndef IDL_PROGRAMS_PROGRAM_H_
#define IDL_PROGRAMS_PROGRAM_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "syntax/analysis.h"
#include "syntax/ast.h"

namespace idl {

// Registry key: the dotted name path plus the view-update op.
struct ProgramKey {
  std::string path;  // "dbU.delStk"
  UpdateOp view_op = UpdateOp::kNone;

  friend bool operator<(const ProgramKey& a, const ProgramKey& b) {
    if (a.path != b.path) return a.path < b.path;
    return static_cast<int>(a.view_op) < static_cast<int>(b.view_op);
  }
  std::string ToString() const;
};

struct ProgramDef {
  ProgramKey key;
  std::vector<ProgramClause> clauses;
  // Union of the clauses' required parameters (binding signature, §7.1):
  // parameters that occur in '+' expressions and must be bound by the call.
  std::vector<std::string> required_params;
};

class ProgramRegistry {
 public:
  // Adds a clause (creating the program if new). Rejects clauses that would
  // make the call graph cyclic.
  Status Register(ProgramClause clause);

  // nullptr if unknown.
  const ProgramDef* Find(const ProgramKey& key) const;

  // True if a body conjunct's constant path prefix names a program; used by
  // the executor to distinguish program calls from base updates. Fills
  // `key` with the longest matching prefix.
  bool MatchCall(const Expr& conjunct, ProgramKey* key) const;

  const std::map<ProgramKey, ProgramDef>& programs() const {
    return programs_;
  }

 private:
  // Program keys called (directly) from `clause`'s body.
  std::vector<ProgramKey> CalledPrograms(const ProgramClause& clause) const;
  // True if `from` can reach `to` through the call graph.
  bool Reaches(const ProgramKey& from, const ProgramKey& to) const;

  std::map<ProgramKey, ProgramDef> programs_;
};

// Decomposes a conjunct of the form `.a.b.c[±](.x=…, …)` into its constant
// dotted prefix, the op on the final set expression (kNone when absent) and
// the parameter set expression (nullptr when the path has no parentheses).
// Returns false for conjuncts that are not shaped like that (e.g. contain
// variables in the path).
bool DecomposeCallShape(const Expr& conjunct, std::string* path,
                        UpdateOp* op, const Expr** param_set);

}  // namespace idl

#endif  // IDL_PROGRAMS_PROGRAM_H_
