// Rule analysis for higher-order views (paper §6).
//
// A rule `head <- body` derives facts into the universe. The head is a
// simple tuple expression; a *higher-order view* has a variable in the head's
// database or relation position, so the set of relations it defines is data
// dependent (dbO defines one relation per stock).

#ifndef IDL_VIEWS_RULE_H_
#define IDL_VIEWS_RULE_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "syntax/ast.h"

namespace idl {

// A (database, relation) reference; nullopt means "data dependent"
// (a higher-order variable occupies that position).
struct RelRef {
  std::optional<std::string> db;
  std::optional<std::string> rel;

  // Whether two references can denote the same relation (wildcards overlap
  // with everything).
  bool Overlaps(const RelRef& other) const;

  std::string ToString() const;
};

// What a rule's head can define.
Result<RelRef> HeadTarget(const Rule& rule);

// What a rule's body reads: one entry per top-level conjunct, with
// `negative` set when the conjunct is negated or contains inner negation
// (conservative for stratification).
struct BodyRead {
  RelRef ref;
  bool negative = false;
};
Result<std::vector<BodyRead>> BodyReads(const Rule& rule);

// Per-conjunct classification, index-aligned with rule.body (unlike
// BodyReads, which drops guard conjuncts). The semi-naive engine uses it to
// decide which conjuncts a delta restriction may be applied to: positive
// universe readers only — guards read nothing, and negated conjuncts must
// see the full universe (stratification already guarantees they never read
// the stratum being computed).
struct ConjunctClass {
  bool reads_universe = false;  // false: pure guard (atomic comparison)
  bool negative = false;        // negated or containing inner negation
  RelRef ref;                   // meaningful only when reads_universe
};
Result<std::vector<ConjunctClass>> ClassifyBody(const Rule& rule);

}  // namespace idl

#endif  // IDL_VIEWS_RULE_H_
