#include "views/rule.h"

#include "common/str_util.h"
#include "syntax/analysis.h"
#include "syntax/printer.h"

namespace idl {

bool RelRef::Overlaps(const RelRef& other) const {
  if (db.has_value() && other.db.has_value() && *db != *other.db) return false;
  if (rel.has_value() && other.rel.has_value() && *rel != *other.rel) {
    return false;
  }
  return true;
}

std::string RelRef::ToString() const {
  return StrCat(db.has_value() ? *db : "*", ".",
                rel.has_value() ? *rel : "*");
}

namespace {

// Extracts the (db, rel) prefix of a universe tuple expression.
Result<RelRef> ExtractRef(const Expr& expr) {
  RelRef ref;
  if (expr.kind != Expr::Kind::kTuple || expr.items.size() != 1) {
    return InvalidArgument(
        StrCat("expected a path expression on the universe: ",
               ToString(expr)));
  }
  const TupleItem& db_item = expr.items[0];
  if (!db_item.attr_is_var) ref.db = db_item.attr;
  if (db_item.expr != nullptr && db_item.expr->kind == Expr::Kind::kTuple &&
      db_item.expr->items.size() >= 1) {
    const TupleItem& rel_item = db_item.expr->items[0];
    if (!rel_item.attr_is_var) ref.rel = rel_item.attr;
  }
  return ref;
}

}  // namespace

Result<RelRef> HeadTarget(const Rule& rule) {
  IDL_RETURN_IF_ERROR(ValidateRule(rule));
  return ExtractRef(*rule.head);
}

Result<std::vector<ConjunctClass>> ClassifyBody(const Rule& rule) {
  std::vector<ConjunctClass> out;
  out.reserve(rule.body.size());
  for (const auto& conjunct : rule.body) {
    ConjunctClass c;
    // Atomic conjuncts (pure comparisons between bound variables) read
    // nothing from the universe.
    if (conjunct->kind != Expr::Kind::kAtomic) {
      c.reads_universe = true;
      IDL_ASSIGN_OR_RETURN(c.ref, ExtractRef(*conjunct));
      c.negative = ContainsNegation(*conjunct);
    }
    out.push_back(std::move(c));
  }
  return out;
}

Result<std::vector<BodyRead>> BodyReads(const Rule& rule) {
  IDL_ASSIGN_OR_RETURN(std::vector<ConjunctClass> classes,
                       ClassifyBody(rule));
  std::vector<BodyRead> out;
  for (auto& c : classes) {
    if (!c.reads_universe) continue;
    out.push_back(BodyRead{std::move(c.ref), c.negative});
  }
  return out;
}

}  // namespace idl
