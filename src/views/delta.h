// UniverseDelta: a structured description of how the base universe changed,
// precise enough for incremental view maintenance (views/engine.h
// ApplyDelta) and cheap enough to record inline in the update applier.
//
// Two granularities, chosen per mutation by the recorder:
//
//  * inserted — facts added to an existing base relation with nothing
//    removed or rewritten. Kept as a *delta universe* (tuple db → tuple rel
//    → set of the new facts), the same shape the semi-naive engine's pass
//    deltas use, so insertions can seed delta-restricted propagation
//    directly.
//  * dirty — "db" / "db.rel" paths whose content changed in any other way
//    (deletes, in-place rewrites, attribute churn, replica swaps). A dirty
//    relation forces delete-and-rederive of the strata that depend on it.
//  * whole — the change could not be attributed to any path (an update
//    applied to the universe root itself); only a full rematerialization is
//    safe.
//
// Deltas merge: the session accumulates one UniverseDelta across all base
// mutations between two materializations and hands it to ApplyDelta in one
// piece.

#ifndef IDL_VIEWS_DELTA_H_
#define IDL_VIEWS_DELTA_H_

#include <string>
#include <vector>

#include "object/value.h"
#include "views/rule.h"

namespace idl {

struct UniverseDelta {
  // Pure insertions, in delta-universe shape: tuple of databases, each a
  // tuple of relations, each a set of the newly inserted facts. Null when
  // there are none.
  Value inserted = Value::Null();
  // Sorted, unique "db" or "db.rel" paths changed in a non-insert way.
  std::vector<std::string> dirty;
  // The change could not be attributed to any database path.
  bool whole = false;

  bool empty() const {
    return !whole && dirty.empty() && inserted.is_null();
  }
  void Clear() {
    inserted = Value::Null();
    dirty.clear();
    whole = false;
  }
  void MarkWhole() {
    Clear();
    whole = true;
  }

  // Records `fact` as inserted into relation `rel` of database `db`.
  void AddInsert(std::string_view db, std::string_view rel, Value fact);

  // Records that the object at `path` (components from the universe root)
  // changed in a way that is not a pure relation insert. The path is
  // truncated to "db.rel" granularity; an empty path marks the whole
  // universe.
  void AddDirty(const std::vector<std::string>& path);

  // Records a freshly created object at `path` (an attribute that did not
  // exist before). Set-valued relations become per-fact inserts; a
  // database-level tuple decomposes into its relations; anything else is
  // recorded dirty (conservative).
  void AddCreatedObject(const std::vector<std::string>& path,
                        const Value& object);

  // Folds `other` into this delta (set union of inserts and dirty paths;
  // whole is sticky).
  void MergeFrom(UniverseDelta other);

  // The (db, rel) references of `inserted` — always concrete.
  std::vector<RelRef> InsertedRefs() const;
  // The references of `dirty`; a db-level path yields a relation wildcard.
  std::vector<RelRef> DirtyRefs() const;
};

// The RelRef of a recorded "db" or "db.rel" path (db-level paths get a
// relation wildcard, which Overlaps() treats conservatively).
RelRef PathToRef(const std::string& path);

// Deep-merges a delta-universe tree into a universe: tuples merge field by
// field (creating missing fields), set elements are inserted (deduplicated),
// non-null atoms overwrite. Mirrors what the update applier's pure inserts
// did to the base universe, so ApplyDelta can replay them on the
// materialized one.
void MergeUniverse(Value* into, const Value& from);

}  // namespace idl

#endif  // IDL_VIEWS_DELTA_H_
