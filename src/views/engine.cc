#include "views/engine.h"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <iterator>
#include <memory>
#include <string_view>
#include <unordered_map>

#include "common/metrics.h"
#include "common/str_util.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "eval/index.h"
#include "eval/matcher.h"
#include "eval/query.h"
#include "eval/substitution.h"
#include "planner/planner.h"
#include "relational/columnar.h"
#include "syntax/analysis.h"
#include "syntax/printer.h"

namespace idl {

namespace {

const Expr& EpsilonExpr() {
  static const Expr& kEpsilon = *new Expr();
  return kEpsilon;
}

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

double CpuMsSince(int64_t start_ns) {
  return static_cast<double>(ThreadCpuNs() - start_ns) / 1e6;
}

// Folds one enumeration's planner outcome into a rule's timing row. Plan
// time is its own EXPLAIN ANALYZE phase, so the caller must subtract
// info.plan_ms from the wall time it attributes to enumeration.
void FoldPlanInfo(const PlanInfo& info, RuleTimingStats* timing) {
  timing->plan_ms += info.plan_ms;
  if (!info.planned) return;
  timing->planned = true;
  timing->plan_fell_back |= info.fell_back;
  timing->plan_est_rows += info.est_rows;
  timing->plan_actual_rows += info.actual_rows;
  if (timing->plan_summary.empty()) timing->plan_summary = info.summary;
}

// Rolls one finished materialization's aggregates into the process metrics.
// Called once per run (full or maintenance wave set) so the per-derivation
// hot paths stay metric-free.
void BumpEngineMetrics(const Materialized& m, const EvalStats& run_stats) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  static Counter* runs = registry.counter("engine.materializations");
  static Counter* passes = registry.counter("engine.fixpoint_passes");
  static Counter* facts = registry.counter("engine.facts_derived");
  static Counter* changes = registry.counter("engine.changes");
  static Counter* par = registry.counter("engine.parallel_tasks");
  static Histogram* wall = registry.histogram("engine.materialize_ms");
  runs->Increment();
  passes->Increment(static_cast<uint64_t>(m.fixpoint_passes));
  facts->Increment(m.facts_derived);
  changes->Increment(m.changes);
  par->Increment(m.parallel_tasks);
  wall->Observe(m.wall_ms);
  run_stats.BumpMetrics();
}

// Resolves an attribute name in a head item: constant, or a variable the
// body bound to a string. The view aliases storage owned by the rule or the
// substitution, both of which outlive the head write.
Result<std::string_view> GroundName(const TupleItem& item,
                                    const Substitution& sigma) {
  if (!item.attr_is_var) return std::string_view(item.attr);
  const Value* bound = sigma.Lookup(item.attr);
  if (bound == nullptr) {
    return Internal(StrCat("head variable ", item.attr,
                           " unbound (ValidateRule should have caught this)"));
  }
  if (!bound->is_string()) {
    return TypeError(StrCat("head variable ", item.attr,
                            " bound to a non-name object; it cannot be used "
                            "as an attribute name"));
  }
  return std::string_view(bound->as_string());
}

// True if `v` can be mutated to satisfy `expr` without contradicting any of
// its existing content (absent attributes may be added, null slots may be
// filled).
Result<bool> CanAbsorb(const Value& v, const Expr& expr,
                       const Substitution& sigma) {
  switch (expr.kind) {
    case Expr::Kind::kEpsilon:
      return true;
    case Expr::Kind::kAtomic: {
      if (v.is_null()) return true;
      if (v.is_tuple() || v.is_set()) return false;
      IDL_ASSIGN_OR_RETURN(Value operand,
                           Matcher::EvalTerm(expr.term, sigma));
      return Matcher::EvalRelOp(RelOp::kEq, v, operand);
    }
    case Expr::Kind::kTuple: {
      if (v.is_null()) return true;
      if (!v.is_tuple()) return false;
      for (const auto& item : expr.items) {
        IDL_ASSIGN_OR_RETURN(std::string_view attr, GroundName(item, sigma));
        const Value* field = v.FindField(attr);
        if (field == nullptr) continue;  // addable
        IDL_ASSIGN_OR_RETURN(
            bool ok, CanAbsorb(*field, item.expr ? *item.expr : EpsilonExpr(),
                               sigma));
        if (!ok) return false;
      }
      return true;
    }
    case Expr::Kind::kSet:
      return v.is_null() || v.is_set();  // can always insert
  }
  return false;
}

Counter* AbsorbBatchedCounter() {
  static Counter* c =
      MetricsRegistry::Global().counter("columnar.absorb_batched");
  return c;
}
Counter* AbsorbIndexBuildsCounter() {
  static Counter* c =
      MetricsRegistry::Global().counter("columnar.absorb_index_builds");
  return c;
}

class HeadWriter {
 public:
  explicit HeadWriter(Materialized* out) : out_(out) {}

  // Columnar substrate: maintain a per-set absorb index so the set case
  // probes a handful of candidate elements instead of scanning the whole
  // relation per derived fact (docs/COLUMNAR.md). The batch path visits
  // candidates in ascending element order and verifies each with the exact
  // scan predicate, so the element it picks — and therefore the universe it
  // produces — is byte-identical to the scan's.
  void EnableBatchAbsorb() { batch_enabled_ = true; }

  // §6's recursive MakeTrue, with absorb-before-insert at sets. When `delta`
  // is non-null it mirrors `slot`: every change is recorded into it — a set
  // gains the new/extended element, an atom the new value, a tuple the
  // touched attribute path — so the next semi-naive pass can match rule
  // bodies against just the facts this pass produced. Nested sets inside a
  // set element are covered by recording the whole element at the outer set.
  Status MakeTrue(Value* slot, const Expr& expr, const Substitution& sigma,
                  Value* delta) {
    return MakeTrueImpl(slot, expr, sigma, delta, batch_enabled_);
  }

 private:
  // Absorb candidates for one tracked relation set, keyed by one probe
  // attribute of its flat inner tuple. An element can satisfy the probe
  // item only if its probe field hash-matches the operand (`by_probe`), is
  // absent/null (`fillable`), or the element is null outright (`always`) —
  // everything else fails the scan's flat check at that item, so skipping
  // it cannot change which element absorbs first.
  struct AbsorbIndex {
    std::string probe_attr;
    // NormalizedCellHash(probe field) -> element index, non-null atom fields.
    std::unordered_multimap<uint64_t, uint32_t> by_probe;
    std::vector<uint32_t> fillable;  // probe field absent or null; ascending
    std::vector<uint32_t> always;    // null elements; ascending
    size_t synced_size = 0;          // set size the lists describe
  };

  static void ClassifyElement(const Value& e, std::string_view attr,
                              uint32_t i, AbsorbIndex* st) {
    if (e.is_null()) {
      st->always.push_back(i);
      return;
    }
    if (!e.is_tuple()) return;  // an atom/set element never absorbs a tuple
    const Value* f = e.FindField(attr);
    if (f == nullptr || f->is_null()) {
      st->fillable.push_back(i);
      return;
    }
    if (f->is_tuple() || f->is_set()) return;  // never equals an atom operand
    st->by_probe.emplace(NormalizedCellHash(*f), i);
  }

  static void RebuildAbsorbIndex(const Value& set, std::string_view attr,
                                 AbsorbIndex* st) {
    AbsorbIndexBuildsCounter()->Increment();
    st->probe_attr.assign(attr);
    st->by_probe.clear();
    st->fillable.clear();
    st->always.clear();
    const auto& elems = set.elements();
    st->by_probe.reserve(elems.size());
    for (uint32_t i = 0; i < elems.size(); ++i) {
      ClassifyElement(elems[i], attr, i, st);
    }
    st->synced_size = elems.size();
  }

  static void EraseAscending(std::vector<uint32_t>* v, uint32_t i) {
    auto it = std::lower_bound(v->begin(), v->end(), i);
    if (it != v->end() && *it == i) v->erase(it);
  }

  // `batch` means this slot sits on the head path at or above the first set
  // (the level absorb indexes track). Below that — inside set elements —
  // structural edits cannot move a tracked set, so recursion drops the flag
  // and skips both index maintenance and invalidation.
  Status MakeTrueImpl(Value* slot, const Expr& expr, const Substitution& sigma,
                      Value* delta, bool batch) {
    switch (expr.kind) {
      case Expr::Kind::kEpsilon:
        return Status::Ok();
      case Expr::Kind::kAtomic: {
        IDL_ASSIGN_OR_RETURN(Value v, Matcher::EvalTerm(expr.term, sigma));
        if (slot->is_null() || !Matcher::EvalRelOp(RelOp::kEq, *slot, v)) {
          if (delta != nullptr) {
            *delta = v;
            ++out_->delta_size;
          }
          // Overwriting a non-null path slot can destroy a tracked set.
          if (batch && !slot->is_null()) absorb_states_.clear();
          *slot = std::move(v);
          ++out_->changes;
        }
        return Status::Ok();
      }
      case Expr::Kind::kTuple: {
        if (slot->is_null()) {
          *slot = Value::EmptyTuple();
          ++out_->changes;
        }
        if (!slot->is_tuple()) {
          return TypeError(
              StrCat("cannot make a tuple expression true on a ",
                     ValueKindName(slot->kind()), " object"));
        }
        if (delta != nullptr && !delta->is_tuple()) {
          *delta = Value::EmptyTuple();
        }
        for (const auto& item : expr.items) {
          IDL_ASSIGN_OR_RETURN(std::string_view attr, GroundName(item, sigma));
          if (slot->FindField(attr) == nullptr) {
            // Inserting a field shifts this tuple's later fields in memory;
            // any tracked set stored there has moved.
            if (batch) absorb_states_.clear();
            slot->SetField(attr, Value::Null());
            ++out_->changes;
          }
          Value* field = slot->MutableField(attr);
          Value* delta_field = nullptr;
          if (delta != nullptr) {
            if (delta->FindField(attr) == nullptr) {
              delta->SetField(attr, Value::Null());
            }
            delta_field = delta->MutableField(attr);
          }
          IDL_RETURN_IF_ERROR(MakeTrueImpl(
              field, item.expr ? *item.expr : EpsilonExpr(), sigma,
              delta_field, batch));
        }
        return Status::Ok();
      }
      case Expr::Kind::kSet: {
        if (slot->is_null()) {
          *slot = Value::EmptySet();
          ++out_->changes;
        }
        if (!slot->is_set()) {
          return TypeError(StrCat("cannot make a set expression true on a ",
                                  ValueKindName(slot->kind()), " object"));
        }
        if (delta != nullptr && !delta->is_set()) *delta = Value::EmptySet();
        const Expr& inner = expr.set_inner ? *expr.set_inner : EpsilonExpr();
        // Build the element this fact would create, with a scratch counter
        // (candidate construction is not a universe change).
        Value candidate;
        {
          Materialized scratch;
          HeadWriter sub(&scratch);
          IDL_RETURN_IF_ERROR(sub.MakeTrue(&candidate, inner, sigma,
                                           nullptr));
        }
        // (1) Exactly present already: nothing to do (hash lookup — this is
        // the common case on fixpoint re-derivation).
        if (slot->Contains(candidate)) return Status::Ok();
        // (2) Extend a consistent element (the absorb step that folds
        // per-stock facts into chwab's one-tuple-per-date shape). An element
        // that satisfies the expression outright is absorbable with zero
        // changes, which also keeps the fixpoint monotone.
        //
        // The scan visits every element, so for the common flat-tuple head
        // the probe (resolved names + evaluated `=` operands) is built once
        // here instead of once per element inside CanAbsorb — on large
        // derived relations this loop dominates materialization cost.
        struct ProbeItem {
          std::string_view attr;
          Value operand;     // meaningful only when constrained
          bool constrained;  // false: ε item, no demand on an existing field
        };
        std::vector<ProbeItem> probe;
        bool flat = inner.kind == Expr::Kind::kTuple;
        if (flat) {
          probe.reserve(inner.items.size());
          for (const auto& item : inner.items) {
            IDL_ASSIGN_OR_RETURN(std::string_view attr,
                                 GroundName(item, sigma));
            const Expr* ie = item.expr.get();
            if (ie == nullptr || ie->kind == Expr::Kind::kEpsilon) {
              probe.push_back({attr, Value::Null(), false});
            } else if (ie->kind == Expr::Kind::kAtomic) {
              IDL_ASSIGN_OR_RETURN(Value operand,
                                   Matcher::EvalTerm(ie->term, sigma));
              probe.push_back({attr, std::move(operand), true});
            } else {
              flat = false;  // nested tuple/set item: generic walk below
              break;
            }
          }
        }
        // Mirrors CanAbsorb(e, inner, sigma) for a flat tuple probe. Both
        // the scan below and the batch path verify candidates with exactly
        // this predicate.
        auto flat_ok = [&](const Value& e) {
          if (e.is_null()) return true;
          if (!e.is_tuple()) return false;
          for (const auto& p : probe) {
            const Value* f = e.FindField(p.attr);
            if (f == nullptr) continue;    // addable
            if (!p.constrained) continue;  // ε accepts any field
            if (f->is_null()) continue;    // fillable
            if (f->is_tuple() || f->is_set() ||
                !Matcher::EvalRelOp(RelOp::kEq, *f, p.operand)) {
              return false;
            }
          }
          return true;
        };
        // Absorbs into element i and maintains the delta; shared by both
        // paths. Sets *rehashed when the caller must not touch indexes
        // (RehashSet/RehashElement already ran).
        auto absorb_into = [&](size_t i, bool* changed,
                               bool* removed_dup) -> Status {
          uint64_t before = out_->changes;
          uint64_t old_hash = slot->elements()[i].Hash();
          Value* element = slot->MutableElement(i);
          IDL_RETURN_IF_ERROR(
              MakeTrueImpl(element, inner, sigma, nullptr, false));
          *changed = out_->changes != before;
          *removed_dup = false;
          if (*changed) {
            if (delta != nullptr && delta->Insert(*element)) {
              ++out_->delta_size;
            }
            *removed_dup = slot->RehashElement(i, old_hash);
          }
          return Status::Ok();
        };

        // Batch absorb (columnar substrate): probe the absorb index on the
        // first ground-named constrained item instead of scanning. Candidate
        // order is ascending, verification is `flat_ok` — scan-identical.
        int probe_at = -1;
        if (batch && flat) {
          for (size_t k = 0; k < probe.size(); ++k) {
            if (probe[k].constrained && !inner.items[k].attr_is_var) {
              probe_at = static_cast<int>(k);
              break;
            }
          }
        }
        if (probe_at >= 0) {
          AbsorbBatchedCounter()->Increment();
          std::string_view pattr = probe[probe_at].attr;
          const Value& operand = probe[probe_at].operand;
          AbsorbIndex& st = absorb_states_[slot];
          if (st.probe_attr != pattr || st.synced_size != slot->SetSize()) {
            RebuildAbsorbIndex(*slot, pattr, &st);
          }
          std::vector<uint32_t> bucket;
          if (!operand.is_null() && !operand.is_tuple() && !operand.is_set()) {
            auto [lo, hi] = st.by_probe.equal_range(NormalizedCellHash(operand));
            for (auto it = lo; it != hi; ++it) bucket.push_back(it->second);
            std::sort(bucket.begin(), bucket.end());
          }
          enum class Src { kAlways, kFillable, kBucket };
          size_t ia = 0, ib = 0, ic = 0;
          while (true) {
            uint32_t i = UINT32_MAX;
            Src src = Src::kAlways;
            if (ia < st.always.size()) {
              i = st.always[ia];
            }
            if (ib < st.fillable.size() && st.fillable[ib] < i) {
              i = st.fillable[ib];
              src = Src::kFillable;
            }
            if (ic < bucket.size() && bucket[ic] < i) {
              i = bucket[ic];
              src = Src::kBucket;
            }
            if (i == UINT32_MAX) break;
            switch (src) {
              case Src::kAlways: ++ia; break;
              case Src::kFillable: ++ib; break;
              case Src::kBucket: ++ic; break;
            }
            if (!flat_ok(slot->elements()[i])) continue;
            bool changed = false, removed_dup = false;
            IDL_RETURN_IF_ERROR(absorb_into(i, &changed, &removed_dup));
            if (!changed) return Status::Ok();
            if (removed_dup) {
              // Indices past the removed duplicate shifted; the size check
              // forces a rebuild on the next write to this set.
              st.synced_size = 0;
              return Status::Ok();
            }
            // Reclassify i: a bucket hit's probe field already equaled the
            // operand, so the absorb left it (and its hash entry) alone.
            if (src != Src::kBucket) {
              if (src == Src::kAlways) {
                EraseAscending(&st.always, i);
              } else {
                EraseAscending(&st.fillable, i);
              }
              ClassifyElement(slot->elements()[i], pattr, i, &st);
            }
            return Status::Ok();
          }
          if (delta != nullptr && delta->Insert(candidate)) {
            ++out_->delta_size;
          }
          slot->Insert(std::move(candidate));
          ++out_->changes;
          ClassifyElement(slot->elements()[slot->SetSize() - 1], pattr,
                          static_cast<uint32_t>(slot->SetSize() - 1), &st);
          st.synced_size = slot->SetSize();
          return Status::Ok();
        }
        // Scan path mutates the set without maintaining its absorb index.
        if (batch) absorb_states_.erase(slot);
        for (size_t i = 0; i < slot->SetSize(); ++i) {
          const Value& e = slot->elements()[i];
          bool ok;
          if (flat) {
            ok = flat_ok(e);
          } else {
            IDL_ASSIGN_OR_RETURN(ok, CanAbsorb(e, inner, sigma));
          }
          if (ok) {
            uint64_t before = out_->changes;
            Value* element = slot->MutableElement(i);
            IDL_RETURN_IF_ERROR(
                MakeTrueImpl(element, inner, sigma, nullptr, false));
            if (out_->changes != before) {
              if (delta != nullptr && delta->Insert(*element)) {
                ++out_->delta_size;
              }
              slot->RehashSet();
            }
            return Status::Ok();
          }
        }
        // (3) Insert the fresh element.
        if (delta != nullptr && delta->Insert(candidate)) {
          ++out_->delta_size;
        }
        slot->Insert(std::move(candidate));
        ++out_->changes;
        return Status::Ok();
      }
    }
    return Internal("unreachable expression kind");
  }

  Materialized* out_;
  bool batch_enabled_ = false;
  // Keyed by set address; entries are valid only while head-path structure
  // is stable — any armed structural edit clears the map (see MakeTrueImpl).
  std::unordered_map<const Value*, AbsorbIndex> absorb_states_;
};

// Records a processed body substitution: derived-path bookkeeping plus the
// head write (shared by both strategies). Charges the governor one
// derivation step plus one cell per universe change the head write makes.
Status ProcessSubstitution(const Rule& rule, const Substitution& sigma,
                           HeadWriter* writer, Materialized* m,
                           std::vector<std::string>* derived, Value* delta,
                           const ResourceGovernor* governor) {
  if (governor != nullptr) {
    IDL_RETURN_IF_ERROR(governor->ChargeDerivations(1));
  }
  const uint64_t changes_before = m->changes;
  ++m->facts_derived;
  const TupleItem& db_item = rule.head->items[0];
  IDL_ASSIGN_OR_RETURN(std::string_view db, GroundName(db_item, sigma));
  std::string path(db);
  if (db_item.expr != nullptr && db_item.expr->kind == Expr::Kind::kTuple &&
      !db_item.expr->items.empty()) {
    IDL_ASSIGN_OR_RETURN(std::string_view rel,
                         GroundName(db_item.expr->items[0], sigma));
    path += ".";
    path += rel;
  }
  derived->push_back(std::move(path));

  Status st = writer->MakeTrue(&m->universe, *rule.head, sigma, delta);
  if (!st.ok()) {
    return st.WithContext(StrCat("deriving head of '", rule.source, "'"));
  }
  if (governor != nullptr && m->changes != changes_before) {
    IDL_RETURN_IF_ERROR(governor->ChargeCells(m->changes - changes_before));
  }
  return Status::Ok();
}

// Seeds the cell account with the base universe's size; the budget then
// bounds base plus everything derivation adds. The O(universe) walk is paid
// only when a cell budget is actually set.
Status ChargeBaseCells(const Value& base, const ResourceGovernor* governor) {
  if (governor == nullptr || governor->limits().max_universe_cells == 0) {
    return Status::Ok();
  }
  return governor->ChargeCells(CountCells(base));
}

void FinishDerivedPaths(std::vector<std::string> derived, Materialized* m) {
  std::sort(derived.begin(), derived.end());
  derived.erase(std::unique(derived.begin(), derived.end()), derived.end());
  m->derived_paths = std::move(derived);
}

// ---- kNaive: the original strategy, kept verbatim as the test oracle -------

Result<Materialized> MaterializeNaive(const std::vector<Rule>& rules,
                                      const Value& base,
                                      const EvalOptions& options,
                                      EvalStats* stats,
                                      const ResourceGovernor* governor) {
  TraceSpan mat_span("materialize",
                     StrCat("strategy=naive rules=", rules.size()));
  auto mat_start = std::chrono::steady_clock::now();
  Materialized m;
  m.universe = base;
  IDL_RETURN_IF_ERROR(ChargeBaseCells(base, governor));

  IDL_ASSIGN_OR_RETURN(Stratification strat, Stratify(rules));
  std::vector<std::vector<size_t>> by_stratum(
      static_cast<size_t>(std::max(strat.num_strata, 0)));
  for (size_t i = 0; i < rules.size(); ++i) {
    by_stratum[strat.stratum[i]].push_back(i);
  }

  std::vector<std::string> derived;
  HeadWriter writer(&m);
  EvalStats run_stats;  // this run only; merged into *stats at the end

  for (int s = 0; s < strat.num_strata; ++s) {
    bool recursive = strat.stratum_recursive[s];
    TraceSpan stratum_span(
        "stratum", StrCat("level=", s, " rules=", by_stratum[s].size(),
                          recursive ? " recursive" : ""));
    auto start = std::chrono::steady_clock::now();
    int64_t cpu_start = ThreadCpuNs();
    StratumStats row;
    row.stratum = s;
    row.rules = static_cast<int>(by_stratum[s].size());
    row.recursive = recursive;
    row.rule_timings.resize(by_stratum[s].size());
    for (size_t k = 0; k < by_stratum[s].size(); ++k) {
      RuleTimingStats& timing = row.rule_timings[k];
      timing.rule = static_cast<int>(by_stratum[s][k]);
      Result<RelRef> head = HeadTarget(rules[by_stratum[s][k]]);
      timing.head = head.ok() ? head->ToString() : "?";
    }
    while (true) {
      if (governor != nullptr) IDL_RETURN_IF_ERROR(governor->ChargePass());
      uint64_t changes_before = m.changes;
      for (size_t k = 0; k < by_stratum[s].size(); ++k) {
        const size_t rule_index = by_stratum[s][k];
        const Rule& rule = rules[rule_index];
        RuleTimingStats& timing = row.rule_timings[k];
        if (governor != nullptr) IDL_RETURN_IF_ERROR(governor->Checkpoint());
        // Materialize the body bindings *before* writing any head instance
        // (the body reads the same universe the head writes).
        auto enum_start = std::chrono::steady_clock::now();
        std::vector<Substitution> sigmas;
        std::vector<ConjunctSource> sources;
        sources.reserve(rule.body.size());
        for (const auto& conjunct : rule.body) {
          sources.push_back(ConjunctSource{conjunct.get(), &m.universe});
        }
        PlanInfo pinfo;
        Result<bool> r = EnumerateBindingsOver(
            sources, options, &run_stats, nullptr,
            [&](const Substitution& sigma) {
              sigmas.push_back(sigma);
              return true;
            },
            governor, &pinfo);
        if (!r.ok()) {
          return r.status().WithContext(
              StrCat("evaluating body of '", rule.source, "'"));
        }
        FoldPlanInfo(pinfo, &timing);
        timing.enumerate_ms += MsSince(enum_start) - pinfo.plan_ms;
        ++timing.passes;
        timing.substitutions += sigmas.size();
        row.substitutions += sigmas.size();
        auto write_start = std::chrono::steady_clock::now();
        for (const auto& sigma : sigmas) {
          IDL_RETURN_IF_ERROR(ProcessSubstitution(rule, sigma, &writer, &m,
                                                  &derived, nullptr,
                                                  governor));
        }
        timing.write_ms += MsSince(write_start);
      }
      ++m.fixpoint_passes;
      ++row.passes;
      if (!recursive || m.changes == changes_before) break;
    }
    row.wall_ms = MsSince(start);
    row.cpu_ms = CpuMsSince(cpu_start);
    m.cpu_ms += row.cpu_ms;
    m.stratum_stats.push_back(row);
  }

  FinishDerivedPaths(std::move(derived), &m);
  m.wall_ms = MsSince(mat_start);
  if (stats != nullptr) *stats += run_stats;
  BumpEngineMetrics(m, run_stats);
  return m;
}

// ---- kSemiNaive: delta-driven fixpoint with parallel rule evaluation -------
//
// The per-level wave is shared between full materialization and incremental
// maintenance (ViewEngine::ApplyDelta): SemiNaiveContext carries everything
// a wave needs, RunLevelWave runs one level to fixpoint.

struct SemiNaiveContext {
  const std::vector<Rule>* rules = nullptr;
  Stratification strat;
  std::vector<std::vector<size_t>> by_level;        // rule indexes per level
  std::vector<RelRef> heads;                        // per rule
  std::vector<std::vector<ConjunctClass>> classes;  // per rule
  EvalOptions options;
  const ResourceGovernor* governor = nullptr;
  // Worker pool: the calling thread always participates (slot 0), so
  // parallelism P means P-1 pool threads. One persistent index cache per
  // worker slot, invalidated by the generation counter, which every
  // universe mutation outside a wave's own write phase must bump too.
  std::unique_ptr<ThreadPool> pool;
  std::vector<std::unique_ptr<SetIndexCache>> caches;
  uint64_t generation = 1;
  EvalStats mat_stats;               // this run only (merged by the caller)
  std::vector<std::string> derived;  // path per processed substitution
  Materialized* m = nullptr;
};

Status InitSemiNaive(const std::vector<Rule>& rules,
                     const EvalOptions& options,
                     const ResourceGovernor* governor, Materialized* m,
                     SemiNaiveContext* ctx) {
  ctx->rules = &rules;
  IDL_ASSIGN_OR_RETURN(ctx->strat, Stratify(rules));
  const size_t n = rules.size();
  ctx->by_level.assign(
      static_cast<size_t>(std::max(ctx->strat.num_levels, 0)), {});
  for (size_t i = 0; i < n; ++i) {
    ctx->by_level[ctx->strat.level[i]].push_back(i);
  }
  ctx->heads.resize(n);
  ctx->classes.resize(n);
  for (size_t i = 0; i < n; ++i) {
    IDL_ASSIGN_OR_RETURN(ctx->heads[i], HeadTarget(rules[i]));
    IDL_ASSIGN_OR_RETURN(ctx->classes[i], ClassifyBody(rules[i]));
  }
  ctx->options = options;
  ctx->governor = governor;
  ctx->m = m;
  size_t parallelism = options.materialize_parallelism == 0
                           ? ThreadPool::DefaultWorkers() + 1
                           : options.materialize_parallelism;
  if (parallelism > 1) {
    ctx->pool = std::make_unique<ThreadPool>(parallelism - 1);
  }
  const size_t num_slots = ctx->pool != nullptr ? ctx->pool->num_slots() : 1;
  ctx->caches.reserve(num_slots);
  for (size_t s = 0; s < num_slots; ++s) {
    ctx->caches.push_back(
        std::make_unique<SetIndexCache>(options.index_min_set_size));
  }
  return Status::Ok();
}

// The new-slice of ctx->derived since `from`, sorted and deduplicated.
std::vector<std::string> SortedUniqueSlice(const std::vector<std::string>& v,
                                           size_t from) {
  std::vector<std::string> out(v.begin() + static_cast<ptrdiff_t>(from),
                               v.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

// Merges sorted-unique `add` into sorted-unique `*into`.
void MergeSortedUnique(std::vector<std::string>* into,
                       const std::vector<std::string>& add) {
  std::vector<std::string> merged;
  merged.reserve(into->size() + add.size());
  std::set_union(into->begin(), into->end(), add.begin(), add.end(),
                 std::back_inserter(merged));
  *into = std::move(merged);
}

// Runs one evaluation level to fixpoint over ctx->m->universe.
//
// Full mode (`seed` null): pass 0 enumerates every rule body over the whole
// universe; later passes restrict delta-eligible conjuncts to the previous
// pass's delta — the original semi-naive wave.
//
// Seeded mode (`seed` non-null, incremental maintenance): every pass is
// delta-restricted. Pass 0's delta is `*seed` — the facts newly present in
// the universe, in delta-universe shape — and rules none of whose conjuncts
// can touch the seed or a same-level head are skipped outright (their
// output is already in the universe).
//
// When `accumulate` is non-null every fact the wave derives is also merged
// into it, so a maintenance caller can seed the next level with this one's
// output.
Result<StratumStats> RunLevelWave(SemiNaiveContext* ctx, int level,
                                  const Value* seed,
                                  const std::vector<RelRef>* seed_refs,
                                  Value* accumulate) {
  const std::vector<Rule>& rules = *ctx->rules;
  const std::vector<size_t>& level_rules = ctx->by_level[level];
  const bool recursive = ctx->strat.level_recursive[level];
  const EvalOptions& options = ctx->options;
  const ResourceGovernor* governor = ctx->governor;
  Materialized& m = *ctx->m;
  HeadWriter writer(&m);
  if (options.substrate == EvalSubstrate::kColumnar) {
    writer.EnableBatchAbsorb();
  }
  TraceSpan wave_span(
      "stratum", StrCat("level=", level, " rules=", level_rules.size(),
                        recursive ? " recursive" : "",
                        seed != nullptr ? " seeded" : ""));
  auto start = std::chrono::steady_clock::now();
  StratumStats row;
  row.stratum = level;
  row.rules = static_cast<int>(level_rules.size());
  row.recursive = recursive;
  row.rule_timings.resize(level_rules.size());
  for (size_t k = 0; k < level_rules.size(); ++k) {
    row.rule_timings[k].rule = static_cast<int>(level_rules[k]);
    row.rule_timings[k].head = ctx->heads[level_rules[k]].ToString();
  }
  uint64_t delta_before_level = m.delta_size;

  // Body positions eligible for delta restriction: positive universe
  // readers that may overlap a head defined in this level — or, in seeded
  // mode, a seed relation. (Same-level heads a rule can actually read are
  // its own SCC's — anything else would be a cross-SCC dependency and sit
  // at a lower level — so this conservative test only ever adds redundant
  // variants, never misses.)
  std::vector<std::vector<size_t>> delta_positions(level_rules.size());
  for (size_t k = 0; k < level_rules.size(); ++k) {
    const auto& body = ctx->classes[level_rules[k]];
    for (size_t pos = 0; pos < body.size(); ++pos) {
      if (!body[pos].reads_universe || body[pos].negative) continue;
      bool eligible = false;
      for (size_t other : level_rules) {
        if (body[pos].ref.Overlaps(ctx->heads[other])) {
          eligible = true;
          break;
        }
      }
      if (!eligible && seed_refs != nullptr) {
        for (const RelRef& ref : *seed_refs) {
          if (body[pos].ref.Overlaps(ref)) {
            eligible = true;
            break;
          }
        }
      }
      if (eligible) delta_positions[k].push_back(pos);
    }
  }

  Value delta;  // facts derived by the previous pass (or the seed)
  if (seed != nullptr) delta = *seed;
  std::vector<uint64_t> cumulative(level_rules.size(), 0);
  int pass = 0;
  while (true) {
    if (governor != nullptr) IDL_RETURN_IF_ERROR(governor->ChargePass());
    const bool use_delta = seed != nullptr || pass > 0;

    // Rules whose body cannot touch the delta are settled after pass 0:
    // their inputs live in lower (final) levels. A naive pass would have
    // replayed their whole output again.
    std::vector<size_t> active;
    for (size_t k = 0; k < level_rules.size(); ++k) {
      if (!use_delta || !delta_positions[k].empty()) {
        active.push_back(k);
      } else {
        row.substitutions_skipped += cumulative[k];
      }
    }

    TraceSpan pass_span("pass",
                        StrCat("pass=", row.passes, " active=", active.size()));

    // ---- enumeration phase: the universe is immutable, so rule bodies
    // evaluate concurrently; each task gets its own result slot, stats,
    // and per-worker index cache. Phase timings land in the task's own
    // slot (thread-safe) and are folded into the rule timings by the
    // sequential collection loop below.
    struct TaskResult {
      std::vector<Substitution> sigmas;
      Status status = Status::Ok();
      EvalStats stats;
      PlanInfo plan;  // merged across this task's delta variants
      double enum_wall_ms = 0.0;
      double enum_cpu_ms = 0.0;
    };
    std::vector<TaskResult> results(active.size());
    const bool run_parallel = ctx->pool != nullptr && active.size() > 1;
    if (run_parallel) {
      // Pre-compute every lazily-cached structural hash while still
      // single-threaded: concurrent readers must not race on the caches.
      m.universe.Hash();
      if (!delta.is_null()) delta.Hash();
    }
    auto run_task = [&](size_t t, size_t slot) {
      TaskResult& out = results[t];
      const size_t k = active[t];
      const Rule& rule = rules[level_rules[k]];
      auto enum_start = std::chrono::steady_clock::now();
      int64_t enum_cpu_start = ThreadCpuNs();
      SetIndexCache* cache = ctx->caches[slot].get();
      cache->EnsureGeneration(ctx->generation);
      auto collect = [&](const Substitution& sigma) {
        out.sigmas.push_back(sigma);
        return true;
      };
      std::vector<ConjunctSource> sources;
      sources.reserve(rule.body.size());
      for (const auto& conjunct : rule.body) {
        sources.push_back(ConjunctSource{conjunct.get(), &m.universe});
      }
      if (!use_delta) {
        Result<bool> r =
            EnumerateBindingsOver(sources, options, &out.stats, cache,
                                  collect, governor, &out.plan);
        if (!r.ok()) out.status = r.status();
      } else {
        // One variant per delta-eligible conjunct: that conjunct reads
        // the delta, the rest the full universe. The union over variants
        // covers every substitution whose body touches a new fact.
        for (size_t pos : delta_positions[k]) {
          sources[pos].universe = &delta;
          Result<bool> r =
              EnumerateBindingsOver(sources, options, &out.stats, cache,
                                    collect, governor, &out.plan);
          sources[pos].universe = &m.universe;
          if (!r.ok()) {
            out.status = r.status();
            break;
          }
        }
        DedupSubstitutions(&out.sigmas);
      }
      if (!out.status.ok()) {
        out.status = out.status.WithContext(
            StrCat("evaluating body of '", rule.source, "'"));
      }
      out.enum_wall_ms = MsSince(enum_start);
      out.enum_cpu_ms = CpuMsSince(enum_cpu_start);
    };
    {
      TraceSpan enum_span(
          "enumerate", StrCat("tasks=", active.size(),
                              run_parallel ? " parallel" : ""));
      if (run_parallel) {
        ctx->pool->ParallelFor(active.size(), run_task);
        row.parallel_tasks += active.size();
      } else {
        for (size_t t = 0; t < active.size(); ++t) run_task(t, 0);
      }
    }
    for (size_t t = 0; t < active.size(); ++t) {
      IDL_RETURN_IF_ERROR(results[t].status);
      ctx->mat_stats += results[t].stats;
      RuleTimingStats& timing = row.rule_timings[active[t]];
      ++timing.passes;
      FoldPlanInfo(results[t].plan, &timing);
      timing.enumerate_ms += results[t].enum_wall_ms - results[t].plan.plan_ms;
      row.cpu_ms += results[t].enum_cpu_ms;
    }

    // ---- write phase: sequential, in rule order, so results do not
    // depend on thread count. Changes are recorded into the next delta.
    TraceSpan write_span("write");
    int64_t write_cpu_start = ThreadCpuNs();
    Value next_delta;
    uint64_t changes_before = m.changes;
    for (size_t t = 0; t < active.size(); ++t) {
      if (governor != nullptr) IDL_RETURN_IF_ERROR(governor->Checkpoint());
      const size_t k = active[t];
      const Rule& rule = rules[level_rules[k]];
      RuleTimingStats& timing = row.rule_timings[k];
      auto write_start = std::chrono::steady_clock::now();
      row.substitutions += results[t].sigmas.size();
      timing.substitutions += results[t].sigmas.size();
      if (use_delta && cumulative[k] > results[t].sigmas.size()) {
        // A naive pass would have re-enumerated (at least) everything this
        // rule derived so far; the delta variants only replayed these.
        row.substitutions_skipped +=
            cumulative[k] - results[t].sigmas.size();
      }
      cumulative[k] += results[t].sigmas.size();
      for (const auto& sigma : results[t].sigmas) {
        IDL_RETURN_IF_ERROR(ProcessSubstitution(rule, sigma, &writer, &m,
                                                &ctx->derived, &next_delta,
                                                governor));
      }
      timing.write_ms += MsSince(write_start);
    }
    row.cpu_ms += CpuMsSince(write_cpu_start);
    ++m.fixpoint_passes;
    ++row.passes;
    const bool changed = m.changes != changes_before;
    if (changed) ++ctx->generation;
    if (accumulate != nullptr && !next_delta.is_null()) {
      MergeUniverse(accumulate, next_delta);
    }
    if (!recursive || !changed) break;
    delta = std::move(next_delta);
    ++pass;
  }

  row.delta_facts = m.delta_size - delta_before_level;
  row.wall_ms = MsSince(start);
  return row;
}

Result<Materialized> MaterializeSemiNaive(const std::vector<Rule>& rules,
                                          const Value& base,
                                          const EvalOptions& options,
                                          EvalStats* stats,
                                          const ResourceGovernor* governor) {
  TraceSpan mat_span("materialize",
                     StrCat("strategy=semi-naive rules=", rules.size()));
  auto mat_start = std::chrono::steady_clock::now();
  Materialized m;
  m.universe = base;
  IDL_RETURN_IF_ERROR(ChargeBaseCells(base, governor));

  SemiNaiveContext ctx;
  IDL_RETURN_IF_ERROR(InitSemiNaive(rules, options, governor, &m, &ctx));
  m.level_written.assign(ctx.by_level.size(), {});

  for (int level = 0; level < static_cast<int>(ctx.by_level.size());
       ++level) {
    size_t derived_before = ctx.derived.size();
    IDL_ASSIGN_OR_RETURN(
        StratumStats row, RunLevelWave(&ctx, level, nullptr, nullptr,
                                       nullptr));
    m.level_written[level] = SortedUniqueSlice(ctx.derived, derived_before);
    m.substitutions_skipped += row.substitutions_skipped;
    m.parallel_tasks += row.parallel_tasks;
    m.cpu_ms += row.cpu_ms;
    m.stratum_stats.push_back(row);
  }

  m.indexes_reused = ctx.mat_stats.indexes_reused;
  if (stats != nullptr) *stats += ctx.mat_stats;
  FinishDerivedPaths(std::move(ctx.derived), &m);
  m.wall_ms = MsSince(mat_start);
  BumpEngineMetrics(m, ctx.mat_stats);
  return m;
}

// ---- Incremental maintenance helpers (ViewEngine::ApplyDelta) --------------

bool OverlapsAny(const RelRef& ref, const std::vector<RelRef>& refs) {
  for (const auto& r : refs) {
    if (ref.Overlaps(r)) return true;
  }
  return false;
}

// Whether the level must re-run under the dirty set: a body conjunct
// (positive or negative) reads a dirty relation, a concrete head may write
// one, or the level's recorded outputs overlap one (the rebuild dropped
// them). Higher-order heads are deliberately absent from the static check:
// their targets are data-dependent, so only the recorded outputs and body
// reads decide — a HO stratum stays skipped unless a relation it read or
// wrote changed.
bool LevelAffected(const SemiNaiveContext& ctx, size_t level,
                   const std::vector<RelRef>& dirty,
                   const std::vector<std::string>& old_written) {
  for (size_t rule_index : ctx.by_level[level]) {
    for (const auto& c : ctx.classes[rule_index]) {
      if (c.reads_universe && OverlapsAny(c.ref, dirty)) return true;
    }
    const RelRef& head = ctx.heads[rule_index];
    if (head.db.has_value() && head.rel.has_value() &&
        OverlapsAny(head, dirty)) {
      return true;
    }
  }
  for (const auto& path : old_written) {
    if (OverlapsAny(PathToRef(path), dirty)) return true;
  }
  return false;
}

// True when every head's fold into its relation is order-independent, so a
// seeded wave (which derives new facts against retained state) reaches the
// same content a from-scratch rematerialization (which interleaves them
// with re-derivations of the old facts) would. The absorb step (HeadWriter
// case 2) folds a candidate into the first consistent element it scans —
// order-dependent as soon as candidates can be *partial* relative to each
// other, because then which element each candidate lands in depends on
// arrival order. Absorb degenerates to exact-duplicate detection — and the
// fold commutes — when every candidate of a relation carries the same fully
// constrained attribute set. Conservatively that requires of every head:
//  * a flat tuple inner with constant attribute names (a higher-order
//    *attribute* yields one-attribute partial tuples — the chwab shape —
//    though a higher-order *relation name* is fine: attributes stay fixed
//    within each relation the head lands in);
//  * every item an un-negated `=`-constrained atomic (an ε or relational
//    item absorbs into nearly anything);
//  * heads that can share a relation agreeing on the attribute set;
//  * no head writing into a relation the base holds (base rows carry
//    attribute sets the rules cannot see, and fold differently depending
//    on which derived facts reached them first).
bool AbsorbOrderIndependent(const SemiNaiveContext& ctx,
                            const Value& base_after) {
  const std::vector<Rule>& rules = *ctx.rules;
  std::vector<std::vector<std::string>> attrs(rules.size());
  for (size_t i = 0; i < rules.size(); ++i) {
    const RelRef& head = ctx.heads[i];
    if (!head.db.has_value()) return false;
    const Value* base_db = base_after.FindField(*head.db);
    if (base_db != nullptr &&
        (!head.rel.has_value() || !base_db->is_tuple() ||
         base_db->FindField(*head.rel) != nullptr)) {
      return false;
    }
    const Expr& root = *rules[i].head;
    if (root.kind != Expr::Kind::kTuple || root.items.size() != 1 ||
        root.items[0].expr == nullptr ||
        root.items[0].expr->kind != Expr::Kind::kTuple ||
        root.items[0].expr->items.size() != 1) {
      return false;
    }
    const Expr* rel_expr = root.items[0].expr->items[0].expr.get();
    if (rel_expr == nullptr || rel_expr->kind != Expr::Kind::kSet ||
        rel_expr->set_inner == nullptr ||
        rel_expr->set_inner->kind != Expr::Kind::kTuple) {
      return false;
    }
    for (const TupleItem& item : rel_expr->set_inner->items) {
      if (item.attr_is_var || item.is_guard() || item.expr == nullptr ||
          item.expr->kind != Expr::Kind::kAtomic ||
          item.expr->relop != RelOp::kEq || item.expr->negated) {
        return false;
      }
      attrs[i].push_back(item.attr);
    }
    std::sort(attrs[i].begin(), attrs[i].end());
  }
  for (size_t i = 0; i < rules.size(); ++i) {
    for (size_t j = i + 1; j < rules.size(); ++j) {
      if (ctx.heads[i].Overlaps(ctx.heads[j]) && attrs[i] != attrs[j]) {
        return false;
      }
    }
  }
  return true;
}

// True when pure-insert propagation is sound: no rule ever wrote into an
// inserted relation (a rematerialization could absorb-fold old facts into
// the new tuples differently), and no negated body conjunct can read the
// insertion closure (insertions would then retract derived facts). The
// closure grows level by level with the heads of levels whose bodies it
// reaches; a higher-order head widens it to everything (conservative).
bool InsertionMonotone(
    const SemiNaiveContext& ctx,
    const std::vector<std::vector<std::string>>& level_written,
    const std::vector<RelRef>& inserted) {
  for (const auto& written : level_written) {
    for (const auto& path : written) {
      if (OverlapsAny(PathToRef(path), inserted)) return false;
    }
  }
  std::vector<RelRef> growing = inserted;
  bool wildcard = false;
  for (size_t level = 0; level < ctx.by_level.size(); ++level) {
    bool reached = false;
    for (size_t rule_index : ctx.by_level[level]) {
      for (const auto& c : ctx.classes[rule_index]) {
        if (!c.reads_universe) continue;
        if (!wildcard && !OverlapsAny(c.ref, growing)) continue;
        if (c.negative) return false;
        reached = true;
      }
    }
    if (!reached) continue;
    for (size_t rule_index : ctx.by_level[level]) {
      const RelRef& head = ctx.heads[rule_index];
      if (head.db.has_value() && head.rel.has_value()) {
        growing.push_back(head);
      } else {
        wildcard = true;
      }
    }
  }
  return true;
}

// Copies the "db[.rel]" subtree of `from` into `to`, creating the database
// tuple when the path was rule-created and absent from the base.
void CopyPath(const Value& from, const std::string& path, Value* to) {
  size_t dot = path.find('.');
  std::string_view db = dot == std::string::npos
                            ? std::string_view(path)
                            : std::string_view(path).substr(0, dot);
  const Value* src_db = from.FindField(db);
  if (src_db == nullptr) return;
  if (dot == std::string::npos) {
    to->SetField(db, *src_db);
    return;
  }
  std::string_view rel = std::string_view(path).substr(dot + 1);
  const Value* src_rel = src_db->FindField(rel);
  if (src_rel == nullptr) return;
  Value* dst_db = to->MutableField(db);
  if (dst_db == nullptr) {
    to->SetField(db, Value::EmptyTuple());
    dst_db = to->MutableField(db);
  }
  if (!dst_db->is_tuple()) return;  // shape conflict: keep the base value
  dst_db->SetField(rel, *src_rel);
}

// The insertion path: mirror the inserted facts into the retained universe,
// then run a seeded wave over each level whose rules can read the growing
// insertion closure. Facts each wave derives extend the seed for the levels
// above it.
Status ApplyInsertions(SemiNaiveContext* ctx, const Value& inserted_tree,
                       std::vector<RelRef> seed_refs) {
  Materialized& m = *ctx->m;
  if (ctx->governor != nullptr &&
      ctx->governor->limits().max_universe_cells > 0) {
    IDL_RETURN_IF_ERROR(
        ctx->governor->ChargeCells(CountCells(inserted_tree)));
  }
  MergeUniverse(&m.universe, inserted_tree);
  ++ctx->generation;
  Value seed = inserted_tree;  // grows with each level's derivations
  for (size_t level = 0; level < ctx->by_level.size(); ++level) {
    bool affected = false;
    for (size_t rule_index : ctx->by_level[level]) {
      for (const auto& c : ctx->classes[rule_index]) {
        if (c.reads_universe && !c.negative &&
            OverlapsAny(c.ref, seed_refs)) {
          affected = true;
          break;
        }
      }
      if (affected) break;
    }
    if (!affected) {
      ++m.maintenance.strata_skipped;
      continue;
    }
    size_t derived_before = ctx->derived.size();
    IDL_ASSIGN_OR_RETURN(
        StratumStats row,
        RunLevelWave(ctx, static_cast<int>(level), &seed, &seed_refs,
                     &seed));
    m.maintenance.rederived += row.substitutions;
    ++m.maintenance.strata_rederived;
    std::vector<std::string> new_paths =
        SortedUniqueSlice(ctx->derived, derived_before);
    for (const auto& path : new_paths) seed_refs.push_back(PathToRef(path));
    MergeSortedUnique(&m.level_written[level], new_paths);
    MergeSortedUnique(&m.derived_paths, new_paths);
  }
  return Status::Ok();
}

// The delete-and-rederive path: rebuild from the new base, re-run only the
// levels the dirty closure reaches, and copy every other level's output
// relations verbatim from the old materialization (exact, because any
// co-writer of a dirty relation is itself in the closure).
Status DeleteAndRederive(SemiNaiveContext* ctx, const Value& base_after,
                         std::vector<RelRef> dirty) {
  Materialized& m = *ctx->m;
  const size_t num_levels = ctx->by_level.size();

  // Plan: close the affected set over recorded outputs. A level whose old
  // outputs overlap the dirty closure must re-run (the rebuild drops its
  // contributions), and its outputs dirty their readers — which includes
  // lower-level co-writers of the same relation, hence the fixpoint.
  std::vector<bool> affected(num_levels, false);
  bool grew = true;
  while (grew) {
    grew = false;
    for (size_t level = 0; level < num_levels; ++level) {
      if (affected[level]) continue;
      if (!LevelAffected(*ctx, level, dirty, m.level_written[level])) {
        continue;
      }
      affected[level] = true;
      for (const auto& path : m.level_written[level]) {
        dirty.push_back(PathToRef(path));
      }
      grew = true;
    }
  }

  Value old_universe = std::move(m.universe);
  m.universe = base_after;
  IDL_RETURN_IF_ERROR(ChargeBaseCells(m.universe, ctx->governor));
  ++ctx->generation;
  for (size_t level = 0; level < num_levels; ++level) {
    // Re-check against the live dirty set: an affected wave below may have
    // written paths the plan did not know about (higher-order heads).
    if (!affected[level] &&
        LevelAffected(*ctx, level, dirty, m.level_written[level])) {
      affected[level] = true;
      for (const auto& path : m.level_written[level]) {
        dirty.push_back(PathToRef(path));
      }
    }
    if (!affected[level]) {
      for (const auto& path : m.level_written[level]) {
        CopyPath(old_universe, path, &m.universe);
      }
      if (!m.level_written[level].empty()) ++ctx->generation;
      ++m.maintenance.strata_skipped;
      continue;
    }
    size_t derived_before = ctx->derived.size();
    IDL_ASSIGN_OR_RETURN(
        StratumStats row,
        RunLevelWave(ctx, static_cast<int>(level), nullptr, nullptr,
                     nullptr));
    m.maintenance.rederived += row.substitutions;
    ++m.maintenance.strata_rederived;
    m.level_written[level] = SortedUniqueSlice(ctx->derived, derived_before);
    for (const auto& path : m.level_written[level]) {
      dirty.push_back(PathToRef(path));
    }
  }

  std::vector<std::string> all;
  for (const auto& written : m.level_written) {
    all.insert(all.end(), written.begin(), written.end());
  }
  FinishDerivedPaths(std::move(all), &m);
  return Status::Ok();
}

}  // namespace

std::string Materialized::Explain() const {
  std::string out =
      StrCat(FormatStratumStats(stratum_stats), "facts=", facts_derived,
             " changes=", changes, " passes=", fixpoint_passes,
             " delta=", delta_size, " skipped=", substitutions_skipped,
             " idxreused=", indexes_reused, " par=", parallel_tasks, "\n");
  if (maintenance.deltas_applied > 0 || maintenance.fallbacks > 0) {
    out += FormatMaintenanceStats(maintenance);
  }
  if (!governor.empty()) out += governor;
  if (!federation.empty()) out += federation;
  return out;
}

std::string Materialized::ExplainAnalyze(bool mask_timings) const {
  return FormatAnalyze(stratum_stats, wall_ms, cpu_ms, mask_timings);
}

Value Materialized::SnapshotUniverse() const {
  Value snapshot = universe;
  snapshot.WarmHashCaches();
  return snapshot;
}

Status ViewEngine::AddRule(Rule rule) {
  IDL_RETURN_IF_ERROR(ValidateRule(rule));
  rules_.push_back(std::move(rule));
  // Check stratifiability of the whole program eagerly so the error points
  // at the offending rule.
  Result<Stratification> s = Stratify(rules_);
  if (!s.ok()) {
    Status err = s.status().WithContext(
        StrCat("adding rule '", rules_.back().source, "'"));
    rules_.pop_back();
    return err;
  }
  return Status::Ok();
}

Result<Materialized> ViewEngine::Materialize(const Value& base,
                                             EvalStats* stats) const {
  return Materialize(base, EvalOptions(), stats);
}

Result<Materialized> ViewEngine::Materialize(const Value& base,
                                             const EvalOptions& options,
                                             EvalStats* stats,
                                             const ResourceGovernor* governor)
    const {
  EvalStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  Result<Materialized> r =
      options.strategy == EvalStrategy::kNaive
          ? MaterializeNaive(rules_, base, options, stats, governor)
          : MaterializeSemiNaive(rules_, base, options, stats, governor);
  if (r.ok() && governor != nullptr) {
    r->governor = FormatGovernorUsage(governor->Usage(), governor->limits());
  }
  return r;
}

Status ViewEngine::ApplyDelta(Materialized* m, const Value& base_after,
                              const UniverseDelta& delta,
                              const EvalOptions& options, EvalStats* stats,
                              const ResourceGovernor* governor) const {
  if (delta.whole) {
    return FailedPrecondition(
        "delta covers the whole universe; rematerialize");
  }
  if (delta.empty()) {
    ++m->maintenance.deltas_applied;
    return Status::Ok();
  }
  SemiNaiveContext ctx;
  IDL_RETURN_IF_ERROR(InitSemiNaive(rules_, options, governor, m, &ctx));
  if (m->level_written.size() != ctx.by_level.size()) {
    return FailedPrecondition(
        "materialization carries no maintenance state for this rule set; "
        "rematerialize");
  }

  std::vector<RelRef> inserted_refs = delta.InsertedRefs();
  std::vector<RelRef> dirty = delta.DirtyRefs();
  bool insert_only = dirty.empty() && !inserted_refs.empty();
  if (insert_only &&
      (!InsertionMonotone(ctx, m->level_written, inserted_refs) ||
       !AbsorbOrderIndependent(ctx, base_after))) {
    insert_only = false;  // reroute the insertions through delete-and-rederive
  }

  const uint64_t rederived_before = m->maintenance.rederived;
  Status st;
  {
    TraceSpan span("apply_delta",
                   insert_only ? "path=insert_propagation"
                               : "path=delete_and_rederive");
    if (insert_only) {
      st = ApplyInsertions(&ctx, delta.inserted, std::move(inserted_refs));
    } else {
      for (const RelRef& ref : inserted_refs) dirty.push_back(ref);
      st = DeleteAndRederive(&ctx, base_after, std::move(dirty));
    }
  }
  if (!st.ok()) return st;
  ++m->maintenance.deltas_applied;
  m->indexes_reused = ctx.mat_stats.indexes_reused;
  if (stats != nullptr) *stats += ctx.mat_stats;

  MetricsRegistry& registry = MetricsRegistry::Global();
  static Counter* inserts =
      registry.counter("engine.deltas.insert_propagated");
  static Counter* rederives =
      registry.counter("engine.deltas.delete_and_rederive");
  static Counter* rederived =
      registry.counter("engine.maintenance_rederived");
  (insert_only ? inserts : rederives)->Increment();
  rederived->Increment(m->maintenance.rederived - rederived_before);
  ctx.mat_stats.BumpMetrics();
  return Status::Ok();
}

}  // namespace idl
