#include "views/engine.h"

#include <algorithm>

#include "common/str_util.h"
#include "eval/matcher.h"
#include "eval/query.h"
#include "eval/substitution.h"
#include "syntax/analysis.h"
#include "syntax/printer.h"

namespace idl {

namespace {

const Expr& EpsilonExpr() {
  static const Expr& kEpsilon = *new Expr();
  return kEpsilon;
}

// Resolves an attribute name in a head item: constant, or a variable the
// body bound to a string.
Result<std::string> GroundName(const TupleItem& item,
                               const Substitution& sigma) {
  if (!item.attr_is_var) return item.attr;
  const Value* bound = sigma.Lookup(item.attr);
  if (bound == nullptr) {
    return Internal(StrCat("head variable ", item.attr,
                           " unbound (ValidateRule should have caught this)"));
  }
  if (!bound->is_string()) {
    return TypeError(StrCat("head variable ", item.attr,
                            " bound to a non-name object; it cannot be used "
                            "as an attribute name"));
  }
  return bound->as_string();
}

// True if `v` can be mutated to satisfy `expr` without contradicting any of
// its existing content (absent attributes may be added, null slots may be
// filled).
Result<bool> CanAbsorb(const Value& v, const Expr& expr,
                       const Substitution& sigma) {
  switch (expr.kind) {
    case Expr::Kind::kEpsilon:
      return true;
    case Expr::Kind::kAtomic: {
      if (v.is_null()) return true;
      if (v.is_tuple() || v.is_set()) return false;
      IDL_ASSIGN_OR_RETURN(Value operand,
                           Matcher::EvalTerm(expr.term, sigma));
      return Matcher::EvalRelOp(RelOp::kEq, v, operand);
    }
    case Expr::Kind::kTuple: {
      if (v.is_null()) return true;
      if (!v.is_tuple()) return false;
      for (const auto& item : expr.items) {
        IDL_ASSIGN_OR_RETURN(std::string attr, GroundName(item, sigma));
        const Value* field = v.FindField(attr);
        if (field == nullptr) continue;  // addable
        IDL_ASSIGN_OR_RETURN(
            bool ok, CanAbsorb(*field, item.expr ? *item.expr : EpsilonExpr(),
                               sigma));
        if (!ok) return false;
      }
      return true;
    }
    case Expr::Kind::kSet:
      return v.is_null() || v.is_set();  // can always insert
  }
  return false;
}

class HeadWriter {
 public:
  HeadWriter(EvalStats* stats, Materialized* out) : stats_(stats), out_(out) {}

  // §6's recursive MakeTrue, with absorb-before-insert at sets.
  Status MakeTrue(Value* slot, const Expr& expr, const Substitution& sigma) {
    switch (expr.kind) {
      case Expr::Kind::kEpsilon:
        return Status::Ok();
      case Expr::Kind::kAtomic: {
        IDL_ASSIGN_OR_RETURN(Value v, Matcher::EvalTerm(expr.term, sigma));
        if (slot->is_null() || !Matcher::EvalRelOp(RelOp::kEq, *slot, v)) {
          *slot = std::move(v);
          ++out_->changes;
        }
        return Status::Ok();
      }
      case Expr::Kind::kTuple: {
        if (slot->is_null()) {
          *slot = Value::EmptyTuple();
          ++out_->changes;
        }
        if (!slot->is_tuple()) {
          return TypeError(
              StrCat("cannot make a tuple expression true on a ",
                     ValueKindName(slot->kind()), " object"));
        }
        for (const auto& item : expr.items) {
          IDL_ASSIGN_OR_RETURN(std::string attr, GroundName(item, sigma));
          if (slot->FindField(attr) == nullptr) {
            slot->SetField(attr, Value::Null());
            ++out_->changes;
          }
          Value* field = slot->MutableField(attr);
          IDL_RETURN_IF_ERROR(MakeTrue(
              field, item.expr ? *item.expr : EpsilonExpr(), sigma));
        }
        return Status::Ok();
      }
      case Expr::Kind::kSet: {
        if (slot->is_null()) {
          *slot = Value::EmptySet();
          ++out_->changes;
        }
        if (!slot->is_set()) {
          return TypeError(StrCat("cannot make a set expression true on a ",
                                  ValueKindName(slot->kind()), " object"));
        }
        const Expr& inner = expr.set_inner ? *expr.set_inner : EpsilonExpr();
        // Build the element this fact would create, with a scratch counter
        // (candidate construction is not a universe change).
        Value candidate;
        {
          Materialized scratch;
          HeadWriter sub(stats_, &scratch);
          IDL_RETURN_IF_ERROR(sub.MakeTrue(&candidate, inner, sigma));
        }
        // (1) Exactly present already: nothing to do (hash lookup — this is
        // the common case on fixpoint re-derivation).
        if (slot->Contains(candidate)) return Status::Ok();
        // (2) Extend a consistent element (the absorb step that folds
        // per-stock facts into chwab's one-tuple-per-date shape). An element
        // that satisfies the expression outright is absorbable with zero
        // changes, which also keeps the fixpoint monotone.
        for (size_t i = 0; i < slot->SetSize(); ++i) {
          IDL_ASSIGN_OR_RETURN(bool ok,
                               CanAbsorb(slot->elements()[i], inner, sigma));
          if (ok) {
            uint64_t before = out_->changes;
            Value* element = slot->MutableElement(i);
            IDL_RETURN_IF_ERROR(MakeTrue(element, inner, sigma));
            if (out_->changes != before) slot->RehashSet();
            return Status::Ok();
          }
        }
        // (3) Insert the fresh element.
        slot->Insert(std::move(candidate));
        ++out_->changes;
        return Status::Ok();
      }
    }
    return Internal("unreachable expression kind");
  }

 private:
  EvalStats* stats_;
  Materialized* out_;
};

}  // namespace

Status ViewEngine::AddRule(Rule rule) {
  IDL_RETURN_IF_ERROR(ValidateRule(rule));
  rules_.push_back(std::move(rule));
  // Check stratifiability of the whole program eagerly so the error points
  // at the offending rule.
  Result<Stratification> s = Stratify(rules_);
  if (!s.ok()) {
    Status err = s.status().WithContext(
        StrCat("adding rule '", rules_.back().source, "'"));
    rules_.pop_back();
    return err;
  }
  return Status::Ok();
}

Result<Materialized> ViewEngine::Materialize(const Value& base,
                                             EvalStats* stats) const {
  EvalStats local_stats;
  if (stats == nullptr) stats = &local_stats;

  Materialized m;
  m.universe = base;

  IDL_ASSIGN_OR_RETURN(Stratification strat, Stratify(rules_));
  std::vector<std::vector<size_t>> by_stratum(
      static_cast<size_t>(std::max(strat.num_strata, 0)));
  for (size_t i = 0; i < rules_.size(); ++i) {
    by_stratum[strat.stratum[i]].push_back(i);
  }

  std::vector<std::string> derived;
  HeadWriter writer(stats, &m);

  for (int s = 0; s < strat.num_strata; ++s) {
    bool recursive = strat.stratum_recursive[s];
    while (true) {
      uint64_t changes_before = m.changes;
      for (size_t rule_index : by_stratum[s]) {
        const Rule& rule = rules_[rule_index];
        // Materialize the body bindings *before* writing any head instance
        // (the body reads the same universe the head writes).
        std::vector<Substitution> sigmas;
        Result<bool> r = EnumerateBindings(
            m.universe, rule.body, EvalOptions(), stats,
            [&](const Substitution& sigma) {
              sigmas.push_back(sigma);
              return true;
            });
        if (!r.ok()) {
          return r.status().WithContext(
              StrCat("evaluating body of '", rule.source, "'"));
        }
        for (const auto& sigma : sigmas) {
          ++m.facts_derived;
          // Record the derived db.rel path.
          const TupleItem& db_item = rule.head->items[0];
          IDL_ASSIGN_OR_RETURN(std::string db, GroundName(db_item, sigma));
          std::string path = db;
          if (db_item.expr != nullptr &&
              db_item.expr->kind == Expr::Kind::kTuple &&
              !db_item.expr->items.empty()) {
            IDL_ASSIGN_OR_RETURN(
                std::string rel, GroundName(db_item.expr->items[0], sigma));
            path += ".";
            path += rel;
          }
          derived.push_back(std::move(path));

          Status st = writer.MakeTrue(&m.universe, *rule.head, sigma);
          if (!st.ok()) {
            return st.WithContext(
                StrCat("deriving head of '", rule.source, "'"));
          }
        }
      }
      ++m.fixpoint_passes;
      if (!recursive || m.changes == changes_before) break;
    }
  }

  std::sort(derived.begin(), derived.end());
  derived.erase(std::unique(derived.begin(), derived.end()), derived.end());
  m.derived_paths = std::move(derived);
  return m;
}

}  // namespace idl
