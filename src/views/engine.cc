#include "views/engine.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <string_view>

#include "common/str_util.h"
#include "common/thread_pool.h"
#include "eval/index.h"
#include "eval/matcher.h"
#include "eval/query.h"
#include "eval/substitution.h"
#include "syntax/analysis.h"
#include "syntax/printer.h"

namespace idl {

namespace {

const Expr& EpsilonExpr() {
  static const Expr& kEpsilon = *new Expr();
  return kEpsilon;
}

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Resolves an attribute name in a head item: constant, or a variable the
// body bound to a string. The view aliases storage owned by the rule or the
// substitution, both of which outlive the head write.
Result<std::string_view> GroundName(const TupleItem& item,
                                    const Substitution& sigma) {
  if (!item.attr_is_var) return std::string_view(item.attr);
  const Value* bound = sigma.Lookup(item.attr);
  if (bound == nullptr) {
    return Internal(StrCat("head variable ", item.attr,
                           " unbound (ValidateRule should have caught this)"));
  }
  if (!bound->is_string()) {
    return TypeError(StrCat("head variable ", item.attr,
                            " bound to a non-name object; it cannot be used "
                            "as an attribute name"));
  }
  return std::string_view(bound->as_string());
}

// True if `v` can be mutated to satisfy `expr` without contradicting any of
// its existing content (absent attributes may be added, null slots may be
// filled).
Result<bool> CanAbsorb(const Value& v, const Expr& expr,
                       const Substitution& sigma) {
  switch (expr.kind) {
    case Expr::Kind::kEpsilon:
      return true;
    case Expr::Kind::kAtomic: {
      if (v.is_null()) return true;
      if (v.is_tuple() || v.is_set()) return false;
      IDL_ASSIGN_OR_RETURN(Value operand,
                           Matcher::EvalTerm(expr.term, sigma));
      return Matcher::EvalRelOp(RelOp::kEq, v, operand);
    }
    case Expr::Kind::kTuple: {
      if (v.is_null()) return true;
      if (!v.is_tuple()) return false;
      for (const auto& item : expr.items) {
        IDL_ASSIGN_OR_RETURN(std::string_view attr, GroundName(item, sigma));
        const Value* field = v.FindField(attr);
        if (field == nullptr) continue;  // addable
        IDL_ASSIGN_OR_RETURN(
            bool ok, CanAbsorb(*field, item.expr ? *item.expr : EpsilonExpr(),
                               sigma));
        if (!ok) return false;
      }
      return true;
    }
    case Expr::Kind::kSet:
      return v.is_null() || v.is_set();  // can always insert
  }
  return false;
}

class HeadWriter {
 public:
  explicit HeadWriter(Materialized* out) : out_(out) {}

  // §6's recursive MakeTrue, with absorb-before-insert at sets. When `delta`
  // is non-null it mirrors `slot`: every change is recorded into it — a set
  // gains the new/extended element, an atom the new value, a tuple the
  // touched attribute path — so the next semi-naive pass can match rule
  // bodies against just the facts this pass produced. Nested sets inside a
  // set element are covered by recording the whole element at the outer set.
  Status MakeTrue(Value* slot, const Expr& expr, const Substitution& sigma,
                  Value* delta) {
    switch (expr.kind) {
      case Expr::Kind::kEpsilon:
        return Status::Ok();
      case Expr::Kind::kAtomic: {
        IDL_ASSIGN_OR_RETURN(Value v, Matcher::EvalTerm(expr.term, sigma));
        if (slot->is_null() || !Matcher::EvalRelOp(RelOp::kEq, *slot, v)) {
          if (delta != nullptr) {
            *delta = v;
            ++out_->delta_size;
          }
          *slot = std::move(v);
          ++out_->changes;
        }
        return Status::Ok();
      }
      case Expr::Kind::kTuple: {
        if (slot->is_null()) {
          *slot = Value::EmptyTuple();
          ++out_->changes;
        }
        if (!slot->is_tuple()) {
          return TypeError(
              StrCat("cannot make a tuple expression true on a ",
                     ValueKindName(slot->kind()), " object"));
        }
        if (delta != nullptr && !delta->is_tuple()) {
          *delta = Value::EmptyTuple();
        }
        for (const auto& item : expr.items) {
          IDL_ASSIGN_OR_RETURN(std::string_view attr, GroundName(item, sigma));
          if (slot->FindField(attr) == nullptr) {
            slot->SetField(attr, Value::Null());
            ++out_->changes;
          }
          Value* field = slot->MutableField(attr);
          Value* delta_field = nullptr;
          if (delta != nullptr) {
            if (delta->FindField(attr) == nullptr) {
              delta->SetField(attr, Value::Null());
            }
            delta_field = delta->MutableField(attr);
          }
          IDL_RETURN_IF_ERROR(MakeTrue(
              field, item.expr ? *item.expr : EpsilonExpr(), sigma,
              delta_field));
        }
        return Status::Ok();
      }
      case Expr::Kind::kSet: {
        if (slot->is_null()) {
          *slot = Value::EmptySet();
          ++out_->changes;
        }
        if (!slot->is_set()) {
          return TypeError(StrCat("cannot make a set expression true on a ",
                                  ValueKindName(slot->kind()), " object"));
        }
        if (delta != nullptr && !delta->is_set()) *delta = Value::EmptySet();
        const Expr& inner = expr.set_inner ? *expr.set_inner : EpsilonExpr();
        // Build the element this fact would create, with a scratch counter
        // (candidate construction is not a universe change).
        Value candidate;
        {
          Materialized scratch;
          HeadWriter sub(&scratch);
          IDL_RETURN_IF_ERROR(sub.MakeTrue(&candidate, inner, sigma,
                                           nullptr));
        }
        // (1) Exactly present already: nothing to do (hash lookup — this is
        // the common case on fixpoint re-derivation).
        if (slot->Contains(candidate)) return Status::Ok();
        // (2) Extend a consistent element (the absorb step that folds
        // per-stock facts into chwab's one-tuple-per-date shape). An element
        // that satisfies the expression outright is absorbable with zero
        // changes, which also keeps the fixpoint monotone.
        //
        // The scan visits every element, so for the common flat-tuple head
        // the probe (resolved names + evaluated `=` operands) is built once
        // here instead of once per element inside CanAbsorb — on large
        // derived relations this loop dominates materialization cost.
        struct ProbeItem {
          std::string_view attr;
          Value operand;     // meaningful only when constrained
          bool constrained;  // false: ε item, no demand on an existing field
        };
        std::vector<ProbeItem> probe;
        bool flat = inner.kind == Expr::Kind::kTuple;
        if (flat) {
          probe.reserve(inner.items.size());
          for (const auto& item : inner.items) {
            IDL_ASSIGN_OR_RETURN(std::string_view attr,
                                 GroundName(item, sigma));
            const Expr* ie = item.expr.get();
            if (ie == nullptr || ie->kind == Expr::Kind::kEpsilon) {
              probe.push_back({attr, Value::Null(), false});
            } else if (ie->kind == Expr::Kind::kAtomic) {
              IDL_ASSIGN_OR_RETURN(Value operand,
                                   Matcher::EvalTerm(ie->term, sigma));
              probe.push_back({attr, std::move(operand), true});
            } else {
              flat = false;  // nested tuple/set item: generic walk below
              break;
            }
          }
        }
        for (size_t i = 0; i < slot->SetSize(); ++i) {
          const Value& e = slot->elements()[i];
          bool ok;
          if (flat) {
            // Mirrors CanAbsorb(e, inner, sigma) for a flat tuple probe.
            if (e.is_null()) {
              ok = true;
            } else if (!e.is_tuple()) {
              ok = false;
            } else {
              ok = true;
              for (const auto& p : probe) {
                const Value* f = e.FindField(p.attr);
                if (f == nullptr) continue;   // addable
                if (!p.constrained) continue;  // ε accepts any field
                if (f->is_null()) continue;    // fillable
                if (f->is_tuple() || f->is_set() ||
                    !Matcher::EvalRelOp(RelOp::kEq, *f, p.operand)) {
                  ok = false;
                  break;
                }
              }
            }
          } else {
            IDL_ASSIGN_OR_RETURN(ok, CanAbsorb(e, inner, sigma));
          }
          if (ok) {
            uint64_t before = out_->changes;
            Value* element = slot->MutableElement(i);
            IDL_RETURN_IF_ERROR(MakeTrue(element, inner, sigma, nullptr));
            if (out_->changes != before) {
              if (delta != nullptr && delta->Insert(*element)) {
                ++out_->delta_size;
              }
              slot->RehashSet();
            }
            return Status::Ok();
          }
        }
        // (3) Insert the fresh element.
        if (delta != nullptr && delta->Insert(candidate)) {
          ++out_->delta_size;
        }
        slot->Insert(std::move(candidate));
        ++out_->changes;
        return Status::Ok();
      }
    }
    return Internal("unreachable expression kind");
  }

 private:
  Materialized* out_;
};

// Records a processed body substitution: derived-path bookkeeping plus the
// head write (shared by both strategies). Charges the governor one
// derivation step plus one cell per universe change the head write makes.
Status ProcessSubstitution(const Rule& rule, const Substitution& sigma,
                           HeadWriter* writer, Materialized* m,
                           std::vector<std::string>* derived, Value* delta,
                           const ResourceGovernor* governor) {
  if (governor != nullptr) {
    IDL_RETURN_IF_ERROR(governor->ChargeDerivations(1));
  }
  const uint64_t changes_before = m->changes;
  ++m->facts_derived;
  const TupleItem& db_item = rule.head->items[0];
  IDL_ASSIGN_OR_RETURN(std::string_view db, GroundName(db_item, sigma));
  std::string path(db);
  if (db_item.expr != nullptr && db_item.expr->kind == Expr::Kind::kTuple &&
      !db_item.expr->items.empty()) {
    IDL_ASSIGN_OR_RETURN(std::string_view rel,
                         GroundName(db_item.expr->items[0], sigma));
    path += ".";
    path += rel;
  }
  derived->push_back(std::move(path));

  Status st = writer->MakeTrue(&m->universe, *rule.head, sigma, delta);
  if (!st.ok()) {
    return st.WithContext(StrCat("deriving head of '", rule.source, "'"));
  }
  if (governor != nullptr && m->changes != changes_before) {
    IDL_RETURN_IF_ERROR(governor->ChargeCells(m->changes - changes_before));
  }
  return Status::Ok();
}

// Seeds the cell account with the base universe's size; the budget then
// bounds base plus everything derivation adds. The O(universe) walk is paid
// only when a cell budget is actually set.
Status ChargeBaseCells(const Value& base, const ResourceGovernor* governor) {
  if (governor == nullptr || governor->limits().max_universe_cells == 0) {
    return Status::Ok();
  }
  return governor->ChargeCells(CountCells(base));
}

void FinishDerivedPaths(std::vector<std::string> derived, Materialized* m) {
  std::sort(derived.begin(), derived.end());
  derived.erase(std::unique(derived.begin(), derived.end()), derived.end());
  m->derived_paths = std::move(derived);
}

// ---- kNaive: the original strategy, kept verbatim as the test oracle -------

Result<Materialized> MaterializeNaive(const std::vector<Rule>& rules,
                                      const Value& base,
                                      const EvalOptions& options,
                                      EvalStats* stats,
                                      const ResourceGovernor* governor) {
  Materialized m;
  m.universe = base;
  IDL_RETURN_IF_ERROR(ChargeBaseCells(base, governor));

  IDL_ASSIGN_OR_RETURN(Stratification strat, Stratify(rules));
  std::vector<std::vector<size_t>> by_stratum(
      static_cast<size_t>(std::max(strat.num_strata, 0)));
  for (size_t i = 0; i < rules.size(); ++i) {
    by_stratum[strat.stratum[i]].push_back(i);
  }

  std::vector<std::string> derived;
  HeadWriter writer(&m);

  for (int s = 0; s < strat.num_strata; ++s) {
    bool recursive = strat.stratum_recursive[s];
    auto start = std::chrono::steady_clock::now();
    StratumStats row;
    row.stratum = s;
    row.rules = static_cast<int>(by_stratum[s].size());
    row.recursive = recursive;
    while (true) {
      if (governor != nullptr) IDL_RETURN_IF_ERROR(governor->ChargePass());
      uint64_t changes_before = m.changes;
      for (size_t rule_index : by_stratum[s]) {
        const Rule& rule = rules[rule_index];
        if (governor != nullptr) IDL_RETURN_IF_ERROR(governor->Checkpoint());
        // Materialize the body bindings *before* writing any head instance
        // (the body reads the same universe the head writes).
        std::vector<Substitution> sigmas;
        Result<bool> r = EnumerateBindings(
            m.universe, rule.body, options, stats,
            [&](const Substitution& sigma) {
              sigmas.push_back(sigma);
              return true;
            },
            governor);
        if (!r.ok()) {
          return r.status().WithContext(
              StrCat("evaluating body of '", rule.source, "'"));
        }
        row.substitutions += sigmas.size();
        for (const auto& sigma : sigmas) {
          IDL_RETURN_IF_ERROR(ProcessSubstitution(rule, sigma, &writer, &m,
                                                  &derived, nullptr,
                                                  governor));
        }
      }
      ++m.fixpoint_passes;
      ++row.passes;
      if (!recursive || m.changes == changes_before) break;
    }
    row.wall_ms = MsSince(start);
    m.stratum_stats.push_back(row);
  }

  FinishDerivedPaths(std::move(derived), &m);
  return m;
}

// ---- kSemiNaive: delta-driven fixpoint with parallel rule evaluation -------

Result<Materialized> MaterializeSemiNaive(const std::vector<Rule>& rules,
                                          const Value& base,
                                          const EvalOptions& options,
                                          EvalStats* stats,
                                          const ResourceGovernor* governor) {
  Materialized m;
  m.universe = base;
  IDL_RETURN_IF_ERROR(ChargeBaseCells(base, governor));

  IDL_ASSIGN_OR_RETURN(Stratification strat, Stratify(rules));
  const size_t n = rules.size();
  std::vector<std::vector<size_t>> by_level(
      static_cast<size_t>(std::max(strat.num_levels, 0)));
  for (size_t i = 0; i < n; ++i) by_level[strat.level[i]].push_back(i);

  std::vector<RelRef> heads(n);
  std::vector<std::vector<ConjunctClass>> classes(n);
  for (size_t i = 0; i < n; ++i) {
    IDL_ASSIGN_OR_RETURN(heads[i], HeadTarget(rules[i]));
    IDL_ASSIGN_OR_RETURN(classes[i], ClassifyBody(rules[i]));
  }

  // Worker pool: the calling thread always participates (slot 0), so
  // parallelism P means P-1 pool threads.
  size_t parallelism = options.materialize_parallelism == 0
                           ? ThreadPool::DefaultWorkers() + 1
                           : options.materialize_parallelism;
  std::unique_ptr<ThreadPool> pool;
  if (parallelism > 1) pool = std::make_unique<ThreadPool>(parallelism - 1);
  const size_t num_slots = pool != nullptr ? pool->num_slots() : 1;

  // One persistent index cache per worker slot, generation-invalidated.
  std::vector<std::unique_ptr<SetIndexCache>> caches;
  caches.reserve(num_slots);
  for (size_t s = 0; s < num_slots; ++s) {
    caches.push_back(
        std::make_unique<SetIndexCache>(options.index_min_set_size));
  }
  uint64_t generation = 1;

  EvalStats mat_stats;  // this materialization only (merged into *stats)
  std::vector<std::string> derived;
  HeadWriter writer(&m);

  for (int level = 0; level < strat.num_levels; ++level) {
    const std::vector<size_t>& level_rules = by_level[level];
    const bool recursive = strat.level_recursive[level];
    auto start = std::chrono::steady_clock::now();
    StratumStats row;
    row.stratum = level;
    row.rules = static_cast<int>(level_rules.size());
    row.recursive = recursive;
    uint64_t delta_before_level = m.delta_size;

    // Body positions eligible for delta restriction: positive universe
    // readers that may overlap a head defined in this level. (Same-level
    // heads a rule can actually read are its own SCC's — anything else
    // would be a cross-SCC dependency and sit at a lower level — so this
    // conservative test only ever adds redundant variants, never misses.)
    std::vector<std::vector<size_t>> delta_positions(level_rules.size());
    for (size_t k = 0; k < level_rules.size(); ++k) {
      const auto& body = classes[level_rules[k]];
      for (size_t pos = 0; pos < body.size(); ++pos) {
        if (!body[pos].reads_universe || body[pos].negative) continue;
        for (size_t other : level_rules) {
          if (body[pos].ref.Overlaps(heads[other])) {
            delta_positions[k].push_back(pos);
            break;
          }
        }
      }
    }

    Value delta;  // facts derived by the previous pass (null before pass 1)
    std::vector<uint64_t> cumulative(level_rules.size(), 0);
    int pass = 0;
    while (true) {
      if (governor != nullptr) IDL_RETURN_IF_ERROR(governor->ChargePass());
      const bool use_delta = pass > 0;

      // Rules whose body cannot touch the delta are settled after pass 0:
      // their inputs live in lower (final) levels. A naive pass would have
      // replayed their whole output again.
      std::vector<size_t> active;
      for (size_t k = 0; k < level_rules.size(); ++k) {
        if (!use_delta || !delta_positions[k].empty()) {
          active.push_back(k);
        } else {
          row.substitutions_skipped += cumulative[k];
        }
      }

      // ---- enumeration phase: the universe is immutable, so rule bodies
      // evaluate concurrently; each task gets its own result slot, stats,
      // and per-worker index cache.
      struct TaskResult {
        std::vector<Substitution> sigmas;
        Status status = Status::Ok();
        EvalStats stats;
      };
      std::vector<TaskResult> results(active.size());
      const bool run_parallel = pool != nullptr && active.size() > 1;
      if (run_parallel) {
        // Pre-compute every lazily-cached structural hash while still
        // single-threaded: concurrent readers must not race on the caches.
        m.universe.Hash();
        if (!delta.is_null()) delta.Hash();
      }
      auto run_task = [&](size_t t, size_t slot) {
        TaskResult& out = results[t];
        const size_t k = active[t];
        const Rule& rule = rules[level_rules[k]];
        SetIndexCache* cache = caches[slot].get();
        cache->EnsureGeneration(generation);
        auto collect = [&](const Substitution& sigma) {
          out.sigmas.push_back(sigma);
          return true;
        };
        std::vector<ConjunctSource> sources;
        sources.reserve(rule.body.size());
        for (const auto& conjunct : rule.body) {
          sources.push_back(ConjunctSource{conjunct.get(), &m.universe});
        }
        if (!use_delta) {
          Result<bool> r =
              EnumerateBindingsOver(sources, options, &out.stats, cache,
                                    collect, governor);
          if (!r.ok()) out.status = r.status();
        } else {
          // One variant per delta-eligible conjunct: that conjunct reads
          // the delta, the rest the full universe. The union over variants
          // covers every substitution whose body touches a new fact.
          for (size_t pos : delta_positions[k]) {
            sources[pos].universe = &delta;
            Result<bool> r =
                EnumerateBindingsOver(sources, options, &out.stats, cache,
                                      collect, governor);
            sources[pos].universe = &m.universe;
            if (!r.ok()) {
              out.status = r.status();
              break;
            }
          }
          DedupSubstitutions(&out.sigmas);
        }
        if (!out.status.ok()) {
          out.status = out.status.WithContext(
              StrCat("evaluating body of '", rule.source, "'"));
        }
      };
      if (run_parallel) {
        pool->ParallelFor(active.size(), run_task);
        row.parallel_tasks += active.size();
      } else {
        for (size_t t = 0; t < active.size(); ++t) run_task(t, 0);
      }
      for (size_t t = 0; t < active.size(); ++t) {
        IDL_RETURN_IF_ERROR(results[t].status);
        mat_stats += results[t].stats;
      }

      // ---- write phase: sequential, in rule order, so results do not
      // depend on thread count. Changes are recorded into the next delta.
      Value next_delta;
      uint64_t changes_before = m.changes;
      for (size_t t = 0; t < active.size(); ++t) {
        if (governor != nullptr) IDL_RETURN_IF_ERROR(governor->Checkpoint());
        const size_t k = active[t];
        const Rule& rule = rules[level_rules[k]];
        row.substitutions += results[t].sigmas.size();
        if (use_delta && cumulative[k] > results[t].sigmas.size()) {
          // A naive pass would have re-enumerated (at least) everything this
          // rule derived so far; the delta variants only replayed these.
          row.substitutions_skipped +=
              cumulative[k] - results[t].sigmas.size();
        }
        cumulative[k] += results[t].sigmas.size();
        for (const auto& sigma : results[t].sigmas) {
          IDL_RETURN_IF_ERROR(ProcessSubstitution(rule, sigma, &writer, &m,
                                                  &derived, &next_delta,
                                                  governor));
        }
      }
      ++m.fixpoint_passes;
      ++row.passes;
      const bool changed = m.changes != changes_before;
      if (changed) ++generation;
      if (!recursive || !changed) break;
      delta = std::move(next_delta);
      ++pass;
    }

    row.delta_facts = m.delta_size - delta_before_level;
    row.wall_ms = MsSince(start);
    m.substitutions_skipped += row.substitutions_skipped;
    m.parallel_tasks += row.parallel_tasks;
    m.stratum_stats.push_back(row);
  }

  m.indexes_reused = mat_stats.indexes_reused;
  if (stats != nullptr) *stats += mat_stats;
  FinishDerivedPaths(std::move(derived), &m);
  return m;
}

}  // namespace

std::string Materialized::Explain() const {
  std::string out =
      StrCat(FormatStratumStats(stratum_stats), "facts=", facts_derived,
             " changes=", changes, " passes=", fixpoint_passes,
             " delta=", delta_size, " skipped=", substitutions_skipped,
             " idxreused=", indexes_reused, " par=", parallel_tasks, "\n");
  if (!governor.empty()) out += governor;
  if (!federation.empty()) out += federation;
  return out;
}

Status ViewEngine::AddRule(Rule rule) {
  IDL_RETURN_IF_ERROR(ValidateRule(rule));
  rules_.push_back(std::move(rule));
  // Check stratifiability of the whole program eagerly so the error points
  // at the offending rule.
  Result<Stratification> s = Stratify(rules_);
  if (!s.ok()) {
    Status err = s.status().WithContext(
        StrCat("adding rule '", rules_.back().source, "'"));
    rules_.pop_back();
    return err;
  }
  return Status::Ok();
}

Result<Materialized> ViewEngine::Materialize(const Value& base,
                                             EvalStats* stats) const {
  return Materialize(base, EvalOptions(), stats);
}

Result<Materialized> ViewEngine::Materialize(const Value& base,
                                             const EvalOptions& options,
                                             EvalStats* stats,
                                             const ResourceGovernor* governor)
    const {
  EvalStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  Result<Materialized> r =
      options.strategy == EvalStrategy::kNaive
          ? MaterializeNaive(rules_, base, options, stats, governor)
          : MaterializeSemiNaive(rules_, base, options, stats, governor);
  if (r.ok() && governor != nullptr) {
    r->governor = FormatGovernorUsage(governor->Usage(), governor->limits());
  }
  return r;
}

}  // namespace idl
