#include "views/delta.h"

#include <algorithm>

#include "common/str_util.h"

namespace idl {

namespace {

// Inserts `path` into the sorted unique vector `dirty`.
void InsertSorted(std::vector<std::string>* dirty, std::string path) {
  auto it = std::lower_bound(dirty->begin(), dirty->end(), path);
  if (it == dirty->end() || *it != path) dirty->insert(it, std::move(path));
}

}  // namespace

void UniverseDelta::AddInsert(std::string_view db, std::string_view rel,
                              Value fact) {
  if (whole) return;
  if (!inserted.is_tuple()) inserted = Value::EmptyTuple();
  Value* db_slot = inserted.MutableField(db);
  if (db_slot == nullptr) {
    inserted.SetField(db, Value::EmptyTuple());
    db_slot = inserted.MutableField(db);
  }
  Value* rel_slot = db_slot->MutableField(rel);
  if (rel_slot == nullptr) {
    db_slot->SetField(rel, Value::EmptySet());
    rel_slot = db_slot->MutableField(rel);
  }
  rel_slot->Insert(std::move(fact));
}

void UniverseDelta::AddDirty(const std::vector<std::string>& path) {
  if (whole) return;
  if (path.empty()) {
    MarkWhole();
    return;
  }
  std::string truncated = path[0];
  if (path.size() > 1) {
    truncated += ".";
    truncated += path[1];
  }
  InsertSorted(&dirty, std::move(truncated));
}

void UniverseDelta::AddCreatedObject(const std::vector<std::string>& path,
                                     const Value& object) {
  if (whole) return;
  if (path.size() == 2 && object.is_set()) {
    for (const auto& fact : object.elements()) {
      AddInsert(path[0], path[1], fact);
    }
    return;
  }
  if (path.size() == 1 && object.is_tuple()) {
    bool all_sets = true;
    for (const auto& field : object.fields()) {
      if (!field.value.is_set()) {
        all_sets = false;
        break;
      }
    }
    if (all_sets) {
      for (const auto& field : object.fields()) {
        for (const auto& fact : field.value.elements()) {
          AddInsert(path[0], field.name, fact);
        }
      }
      return;
    }
  }
  AddDirty(path);
}

void UniverseDelta::MergeFrom(UniverseDelta other) {
  if (whole) return;
  if (other.whole) {
    MarkWhole();
    return;
  }
  if (!other.inserted.is_null()) {
    if (inserted.is_null()) {
      inserted = std::move(other.inserted);
    } else {
      MergeUniverse(&inserted, other.inserted);
    }
  }
  for (auto& path : other.dirty) InsertSorted(&dirty, std::move(path));
}

std::vector<RelRef> UniverseDelta::InsertedRefs() const {
  std::vector<RelRef> refs;
  if (!inserted.is_tuple()) return refs;
  for (const auto& db : inserted.fields()) {
    if (!db.value.is_tuple()) continue;
    for (const auto& rel : db.value.fields()) {
      refs.push_back(RelRef{db.name, rel.name});
    }
  }
  return refs;
}

std::vector<RelRef> UniverseDelta::DirtyRefs() const {
  std::vector<RelRef> refs;
  refs.reserve(dirty.size());
  for (const auto& path : dirty) refs.push_back(PathToRef(path));
  return refs;
}

RelRef PathToRef(const std::string& path) {
  size_t dot = path.find('.');
  if (dot == std::string::npos) return RelRef{path, std::nullopt};
  return RelRef{path.substr(0, dot), path.substr(dot + 1)};
}

void MergeUniverse(Value* into, const Value& from) {
  if (from.is_null()) return;
  if (from.is_tuple()) {
    if (into->is_null()) *into = Value::EmptyTuple();
    if (!into->is_tuple()) {
      *into = from;
      return;
    }
    for (const auto& field : from.fields()) {
      Value* slot = into->MutableField(field.name);
      if (slot == nullptr) {
        into->SetField(field.name, field.value);
      } else {
        MergeUniverse(slot, field.value);
      }
    }
    return;
  }
  if (from.is_set()) {
    if (into->is_null()) *into = Value::EmptySet();
    if (!into->is_set()) {
      *into = from;
      return;
    }
    for (const auto& element : from.elements()) into->Insert(element);
    return;
  }
  *into = from;  // atom: the new value wins
}

}  // namespace idl
