// View engine: materializes derived views into the universe (paper §6).
//
// For each grounding substitution σ satisfying a rule body, the head instance
// (head)σ is "made true" in the universe via the recursive definition of §6:
//   MakeTrue(.a exp, o)  — create attribute a if absent, recurse on o.a
//   MakeTrue((exp), s)   — ensure some element of s satisfies exp
//   MakeTrue(=c, o)      — the object becomes c
// Making `(exp)` true prefers, in order: (1) an element already satisfying
// exp (no-op), (2) *extending* an element that is consistent with exp
// (absent attributes are added), (3) inserting a fresh element. Choice (2)
// is what folds per-stock facts into chwab's one-tuple-per-date shape, while
// a contradicting value (a price discrepancy) still yields a second tuple —
// exactly the behaviour §6 describes ("both prices are in the user's view").
//
// Two fixpoint strategies (EvalOptions::strategy):
//
//  * kNaive — strata (SCCs) in topological order; every pass of a recursive
//    stratum re-enumerates every rule body over the whole universe. Simple,
//    and kept as the oracle for tests/differential_engine_test.cc.
//
//  * kSemiNaive (default) — rules are grouped into topological *levels*
//    (independent SCCs of equal depth merged into one wave). Each pass
//    first enumerates all rule bodies read-only — concurrently on a thread
//    pool when materialize_parallelism allows — then writes all heads
//    sequentially in rule order, recording every change into a *delta
//    universe*. Passes after the first replace, one at a time, each body
//    conjunct that may read this level's heads with the delta universe, so
//    only substitutions touching a newly derived fact are re-derived.
//    Per-worker SetIndexCaches persist across rules and passes, invalidated
//    by a universe generation counter bumped on change (eval/index.h).
//
// Both strategies write heads in rule order with identical per-rule
// substitution enumeration order, so for non-recursive programs the results
// are bit-identical; for recursive programs they converge to the same
// fixpoint (set equality) whenever derivations are confluent, which the
// differential harness checks on the whole paper corpus.
//
// A kSemiNaive materialization additionally retains per-level maintenance
// state (Materialized::level_written) so ApplyDelta can bring it up to date
// after a base change without re-running the whole fixpoint — insertions by
// seeded semi-naive propagation, everything else by delete-and-rederive
// restricted to the affected levels (docs/INCREMENTAL.md).

#ifndef IDL_VIEWS_ENGINE_H_
#define IDL_VIEWS_ENGINE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "eval/explain.h"
#include "eval/query.h"
#include "object/value.h"
#include "syntax/ast.h"
#include "views/delta.h"
#include "views/stratify.h"

namespace idl {

struct Materialized {
  // Base universe plus all derived facts.
  Value universe;
  // "db.rel" paths created by rules (sorted, unique) — the derived relations,
  // used by the session to route updates on views to update programs.
  std::vector<std::string> derived_paths;
  uint64_t facts_derived = 0;  // satisfying body substitutions processed
  uint64_t changes = 0;        // MakeTrue calls that changed the universe
  int fixpoint_passes = 0;     // total rule-evaluation passes across strata

  // Semi-naive observability (all zero under kNaive except stratum_stats).
  uint64_t delta_size = 0;             // facts recorded into pass deltas
  uint64_t substitutions_skipped = 0;  // replays avoided vs naive (estimate)
  uint64_t indexes_reused = 0;         // index probes served without a build
  uint64_t parallel_tasks = 0;         // rule evaluations run on pool threads
  std::vector<StratumStats> stratum_stats;  // one row per evaluation wave

  // End-to-end timings of the materialization (stratification + every
  // wave). cpu_ms is the sum of the waves' attributed CPU (see
  // StratumStats::cpu_ms); wall_ms is one clock around the whole run, so
  // the per-stratum walls sum to slightly under it (the remainder is
  // stratification, classification and pool setup).
  double wall_ms = 0.0;
  double cpu_ms = 0.0;

  // ---- Incremental-maintenance state (views/delta.h, ApplyDelta) -----------
  // Per evaluation level (kSemiNaive only): the concrete "db"/"db.rel" paths
  // the level's rules actually wrote, recorded from derivations. For
  // higher-order heads the static target is data-dependent, which is exactly
  // why ApplyDelta's affectedness test consults these recorded paths instead
  // of head references: a HO stratum only invalidates when a relation it
  // *read* or *wrote* changed. Empty under kNaive, which therefore never
  // maintains incrementally.
  std::vector<std::vector<std::string>> level_written;
  // Maintenance counters accumulated across ApplyDelta calls (and fallback
  // rematerializations, which the session carries over).
  MaintenanceStats maintenance;

  // Per-site federation counter table (Gateway::Explain), set by the session
  // when the materialized universe was assembled through a gateway. Empty
  // for purely local sessions.
  std::string federation;

  // Governor section (FormatGovernorUsage: passes, derivations, peak cells,
  // time remaining at completion, abort reason), set when the
  // materialization ran under a ResourceGovernor. Empty otherwise.
  std::string governor;

  // Human-readable per-stratum table (FormatStratumStats) plus a summary
  // line — the `explain` view of a materialization. Ends with the governor
  // section and the federation table when present.
  std::string Explain() const;

  // The EXPLAIN ANALYZE view: FormatAnalyze over stratum_stats — per-rule
  // and per-stratum phase timings checked against wall_ms/cpu_ms. Masked
  // timings (every cell "-") for byte-stable golden transcripts.
  std::string ExplainAnalyze(bool mask_timings = false) const;

  // A deep copy of `universe` with every node's hash cache pre-computed:
  // the snapshot handoff for epoch publication (src/server). The returned
  // value is safe to share read-only across threads, and because the caches
  // are warm, steady-state readers never even write the relaxed-atomic hash
  // slots (object/value.h, "Thread safety").
  Value SnapshotUniverse() const;
};

class ViewEngine {
 public:
  // Validates and adds a rule. Stratification is (re)checked lazily at
  // Materialize time.
  Status AddRule(Rule rule);

  const std::vector<Rule>& rules() const { return rules_; }
  void Clear() { rules_.clear(); }

  // Evaluates all rules against `base`, stratum by stratum, iterating each
  // recursive stratum to fixpoint. Strategy and parallelism come from
  // `options` (EvalOptions() means semi-naive, auto parallelism).
  //
  // `governor`, when non-null, is polled per fixpoint pass, per rule batch,
  // and per derivation (including inside thread-pool workers): a cancelled
  // or out-of-budget materialization returns the governor's abort status
  // and publishes nothing — derivation happens in a scratch copy of `base`,
  // so the caller's universe is untouched (strong exception safety).
  Result<Materialized> Materialize(const Value& base,
                                   EvalStats* stats = nullptr) const;
  Result<Materialized> Materialize(const Value& base,
                                   const EvalOptions& options,
                                   EvalStats* stats = nullptr,
                                   const ResourceGovernor* governor =
                                       nullptr) const;

  // Incrementally updates `m` — a kSemiNaive Materialize result over the
  // base universe *before* the change — to equal Materialize(base_after),
  // where `base_after` differs from that base exactly as `delta` describes.
  //
  //  * Pure insertions (delta.dirty empty) are mirrored into the retained
  //    universe and propagated semi-naively: each level runs only if a body
  //    conjunct can read the insertion closure, with pass 0 already
  //    delta-restricted to the seed.
  //  * Anything else takes the delete-and-rederive path: the universe is
  //    rebuilt from `base_after`, levels whose body reads, concrete head,
  //    or recorded outputs overlap the dirty closure re-run their full
  //    wave, and every other level's output relations are copied over
  //    verbatim from the old materialization.
  //
  // The insertion path additionally reroutes to delete-and-rederive when a
  // rule writes into an inserted relation (absorb folding could diverge) or
  // when the insertion closure reaches a negated body conjunct (insertions
  // are then non-monotone).
  //
  // Returns kFailedPrecondition when `m` carries no usable maintenance
  // state (kNaive result, rule set changed, whole-universe delta) — the
  // caller should fall back to a full rematerialization. Any other error
  // (governor aborts included) leaves `m` in an unspecified state: discard
  // it and rematerialize from the pristine base (the session does).
  Status ApplyDelta(Materialized* m, const Value& base_after,
                    const UniverseDelta& delta, const EvalOptions& options,
                    EvalStats* stats = nullptr,
                    const ResourceGovernor* governor = nullptr) const;

 private:
  std::vector<Rule> rules_;
};

}  // namespace idl

#endif  // IDL_VIEWS_ENGINE_H_
