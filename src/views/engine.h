// View engine: materializes derived views into the universe (paper §6).
//
// For each grounding substitution σ satisfying a rule body, the head instance
// (head)σ is "made true" in the universe via the recursive definition of §6:
//   MakeTrue(.a exp, o)  — create attribute a if absent, recurse on o.a
//   MakeTrue((exp), s)   — ensure some element of s satisfies exp
//   MakeTrue(=c, o)      — the object becomes c
// Making `(exp)` true prefers, in order: (1) an element already satisfying
// exp (no-op), (2) *extending* an element that is consistent with exp
// (absent attributes are added), (3) inserting a fresh element. Choice (2)
// is what folds per-stock facts into chwab's one-tuple-per-date shape, while
// a contradicting value (a price discrepancy) still yields a second tuple —
// exactly the behaviour §6 describes ("both prices are in the user's view").
//
// Two fixpoint strategies (EvalOptions::strategy):
//
//  * kNaive — strata (SCCs) in topological order; every pass of a recursive
//    stratum re-enumerates every rule body over the whole universe. Simple,
//    and kept as the oracle for tests/differential_engine_test.cc.
//
//  * kSemiNaive (default) — rules are grouped into topological *levels*
//    (independent SCCs of equal depth merged into one wave). Each pass
//    first enumerates all rule bodies read-only — concurrently on a thread
//    pool when materialize_parallelism allows — then writes all heads
//    sequentially in rule order, recording every change into a *delta
//    universe*. Passes after the first replace, one at a time, each body
//    conjunct that may read this level's heads with the delta universe, so
//    only substitutions touching a newly derived fact are re-derived.
//    Per-worker SetIndexCaches persist across rules and passes, invalidated
//    by a universe generation counter bumped on change (eval/index.h).
//
// Both strategies write heads in rule order with identical per-rule
// substitution enumeration order, so for non-recursive programs the results
// are bit-identical; for recursive programs they converge to the same
// fixpoint (set equality) whenever derivations are confluent, which the
// differential harness checks on the whole paper corpus.

#ifndef IDL_VIEWS_ENGINE_H_
#define IDL_VIEWS_ENGINE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "eval/explain.h"
#include "eval/query.h"
#include "object/value.h"
#include "syntax/ast.h"
#include "views/stratify.h"

namespace idl {

struct Materialized {
  // Base universe plus all derived facts.
  Value universe;
  // "db.rel" paths created by rules (sorted, unique) — the derived relations,
  // used by the session to route updates on views to update programs.
  std::vector<std::string> derived_paths;
  uint64_t facts_derived = 0;  // satisfying body substitutions processed
  uint64_t changes = 0;        // MakeTrue calls that changed the universe
  int fixpoint_passes = 0;     // total rule-evaluation passes across strata

  // Semi-naive observability (all zero under kNaive except stratum_stats).
  uint64_t delta_size = 0;             // facts recorded into pass deltas
  uint64_t substitutions_skipped = 0;  // replays avoided vs naive (estimate)
  uint64_t indexes_reused = 0;         // index probes served without a build
  uint64_t parallel_tasks = 0;         // rule evaluations run on pool threads
  std::vector<StratumStats> stratum_stats;  // one row per evaluation wave

  // Per-site federation counter table (Gateway::Explain), set by the session
  // when the materialized universe was assembled through a gateway. Empty
  // for purely local sessions.
  std::string federation;

  // Governor section (FormatGovernorUsage: passes, derivations, peak cells,
  // time remaining at completion, abort reason), set when the
  // materialization ran under a ResourceGovernor. Empty otherwise.
  std::string governor;

  // Human-readable per-stratum table (FormatStratumStats) plus a summary
  // line — the `explain` view of a materialization. Ends with the governor
  // section and the federation table when present.
  std::string Explain() const;
};

class ViewEngine {
 public:
  // Validates and adds a rule. Stratification is (re)checked lazily at
  // Materialize time.
  Status AddRule(Rule rule);

  const std::vector<Rule>& rules() const { return rules_; }
  void Clear() { rules_.clear(); }

  // Evaluates all rules against `base`, stratum by stratum, iterating each
  // recursive stratum to fixpoint. Strategy and parallelism come from
  // `options` (EvalOptions() means semi-naive, auto parallelism).
  //
  // `governor`, when non-null, is polled per fixpoint pass, per rule batch,
  // and per derivation (including inside thread-pool workers): a cancelled
  // or out-of-budget materialization returns the governor's abort status
  // and publishes nothing — derivation happens in a scratch copy of `base`,
  // so the caller's universe is untouched (strong exception safety).
  Result<Materialized> Materialize(const Value& base,
                                   EvalStats* stats = nullptr) const;
  Result<Materialized> Materialize(const Value& base,
                                   const EvalOptions& options,
                                   EvalStats* stats = nullptr,
                                   const ResourceGovernor* governor =
                                       nullptr) const;

 private:
  std::vector<Rule> rules_;
};

}  // namespace idl

#endif  // IDL_VIEWS_ENGINE_H_
