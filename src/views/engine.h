// View engine: materializes derived views into the universe (paper §6).
//
// For each grounding substitution σ satisfying a rule body, the head instance
// (head)σ is "made true" in the universe via the recursive definition of §6:
//   MakeTrue(.a exp, o)  — create attribute a if absent, recurse on o.a
//   MakeTrue((exp), s)   — ensure some element of s satisfies exp
//   MakeTrue(=c, o)      — the object becomes c
// Making `(exp)` true prefers, in order: (1) an element already satisfying
// exp (no-op), (2) *extending* an element that is consistent with exp
// (absent attributes are added), (3) inserting a fresh element. Choice (2)
// is what folds per-stock facts into chwab's one-tuple-per-date shape, while
// a contradicting value (a price discrepancy) still yields a second tuple —
// exactly the behaviour §6 describes ("both prices are in the user's view").

#ifndef IDL_VIEWS_ENGINE_H_
#define IDL_VIEWS_ENGINE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "eval/explain.h"
#include "object/value.h"
#include "syntax/ast.h"
#include "views/stratify.h"

namespace idl {

struct Materialized {
  // Base universe plus all derived facts.
  Value universe;
  // "db.rel" paths created by rules (sorted, unique) — the derived relations,
  // used by the session to route updates on views to update programs.
  std::vector<std::string> derived_paths;
  uint64_t facts_derived = 0;  // satisfying body substitutions processed
  uint64_t changes = 0;        // MakeTrue calls that changed the universe
  int fixpoint_passes = 0;     // total rule-evaluation passes across strata
};

class ViewEngine {
 public:
  // Validates and adds a rule. Stratification is (re)checked lazily at
  // Materialize time.
  Status AddRule(Rule rule);

  const std::vector<Rule>& rules() const { return rules_; }
  void Clear() { rules_.clear(); }

  // Evaluates all rules against `base`, stratum by stratum, iterating each
  // recursive stratum to fixpoint.
  Result<Materialized> Materialize(const Value& base,
                                   EvalStats* stats = nullptr) const;

 private:
  std::vector<Rule> rules_;
};

}  // namespace idl

#endif  // IDL_VIEWS_ENGINE_H_
