#include "views/stratify.h"

#include <algorithm>

#include "common/str_util.h"

namespace idl {

namespace {

// Tarjan SCC over the rule dependency graph.
class SccFinder {
 public:
  explicit SccFinder(const std::vector<std::vector<size_t>>& adjacency)
      : adj_(adjacency),
        index_(adjacency.size(), -1),
        low_(adjacency.size(), 0),
        on_stack_(adjacency.size(), false),
        component_(adjacency.size(), -1) {}

  // component ids are in *reverse* topological order (Tarjan property):
  // if u -> v and comp(u) != comp(v) then comp(u) > comp(v).
  std::vector<int> Run() {
    for (size_t v = 0; v < adj_.size(); ++v) {
      if (index_[v] < 0) Strongconnect(v);
    }
    return component_;
  }

  int num_components() const { return next_component_; }

 private:
  void Strongconnect(size_t v) {
    index_[v] = low_[v] = next_index_++;
    stack_.push_back(v);
    on_stack_[v] = true;
    for (size_t w : adj_[v]) {
      if (index_[w] < 0) {
        Strongconnect(w);
        low_[v] = std::min(low_[v], low_[w]);
      } else if (on_stack_[w]) {
        low_[v] = std::min(low_[v], index_[w]);
      }
    }
    if (low_[v] == index_[v]) {
      while (true) {
        size_t w = stack_.back();
        stack_.pop_back();
        on_stack_[w] = false;
        component_[w] = next_component_;
        if (w == v) break;
      }
      ++next_component_;
    }
  }

  const std::vector<std::vector<size_t>>& adj_;
  std::vector<int> index_, low_;
  std::vector<bool> on_stack_;
  std::vector<int> component_;
  std::vector<size_t> stack_;
  int next_index_ = 0;
  int next_component_ = 0;
};

}  // namespace

Result<Stratification> Stratify(const std::vector<Rule>& rules) {
  const size_t n = rules.size();
  std::vector<RelRef> heads(n);
  std::vector<std::vector<BodyRead>> reads(n);
  for (size_t i = 0; i < n; ++i) {
    IDL_ASSIGN_OR_RETURN(heads[i], HeadTarget(rules[i]));
    IDL_ASSIGN_OR_RETURN(reads[i], BodyReads(rules[i]));
  }

  // Edges: i -> j when rule i's body may read what rule j's head defines.
  struct Edge {
    size_t from, to;
    bool negative;
  };
  std::vector<Edge> edges;
  std::vector<std::vector<size_t>> adjacency(n);
  for (size_t i = 0; i < n; ++i) {
    for (const auto& read : reads[i]) {
      for (size_t j = 0; j < n; ++j) {
        if (read.ref.Overlaps(heads[j])) {
          edges.push_back(Edge{i, j, read.negative});
          adjacency[i].push_back(j);
        }
      }
    }
  }

  // Condense to SCCs; Tarjan component ids are reverse-topological, so
  // dependencies get *smaller* ids — evaluating components in increasing id
  // order evaluates dependencies first.
  SccFinder finder(adjacency);
  std::vector<int> component = finder.Run();
  int groups = finder.num_components();

  // A negative edge inside one SCC is recursion through negation (§6
  // requires stratified definitions).
  for (const auto& e : edges) {
    if (e.negative && component[e.from] == component[e.to]) {
      return Unsafe(StrCat(
          "view rules are not stratified: recursion through negation "
          "between '",
          rules[e.from].source, "' and '", rules[e.to].source, "'"));
    }
  }

  Stratification result;
  result.stratum.assign(n, 0);
  for (size_t i = 0; i < n; ++i) result.stratum[i] = component[i];
  result.num_strata = groups;

  // A component needs fixpoint iteration iff it contains an internal edge
  // (self-loop or a genuine cycle).
  result.stratum_recursive.assign(static_cast<size_t>(groups), false);
  for (const auto& e : edges) {
    if (component[e.from] == component[e.to]) {
      result.stratum_recursive[component[e.from]] = true;
    }
  }

  // Condensation levels: depth of each SCC in the dependency DAG. Cross
  // edges always point from a larger component id to a smaller one (reverse
  // topological ids), so one ascending sweep sees every dependency's final
  // level before it is used.
  std::vector<std::vector<int>> comp_deps(static_cast<size_t>(groups));
  for (const auto& e : edges) {
    if (component[e.from] != component[e.to]) {
      comp_deps[component[e.from]].push_back(component[e.to]);
    }
  }
  std::vector<int> comp_level(static_cast<size_t>(groups), 0);
  for (int c = 0; c < groups; ++c) {
    for (int dep : comp_deps[c]) {
      comp_level[c] = std::max(comp_level[c], comp_level[dep] + 1);
    }
    result.num_levels = std::max(result.num_levels, comp_level[c] + 1);
  }
  result.level.assign(n, 0);
  for (size_t i = 0; i < n; ++i) result.level[i] = comp_level[component[i]];
  result.level_recursive.assign(static_cast<size_t>(result.num_levels),
                                false);
  for (int c = 0; c < groups; ++c) {
    if (result.stratum_recursive[c]) {
      result.level_recursive[comp_level[c]] = true;
    }
  }
  return result;
}

}  // namespace idl
