// Stratification of view rules (paper §6: "This requires the definition of
// the view to be stratified", with formal semantics deferred to [KLK90]).
//
// Rule A depends on rule B if A's body may read a relation B's head may
// define (higher-order positions overlap with everything). The dependency
// graph is condensed into strongly connected components evaluated in
// topological order; a component containing a negative edge is recursion
// through negation and is rejected. Only genuinely cyclic components need
// fixpoint iteration — straight-line view stacks evaluate in one pass each.

#ifndef IDL_VIEWS_STRATIFY_H_
#define IDL_VIEWS_STRATIFY_H_

#include <vector>

#include "common/result.h"
#include "syntax/ast.h"
#include "views/rule.h"

namespace idl {

struct Stratification {
  // stratum[i] is the evaluation group (SCC id) of rules[i]; groups are
  // dense from 0 and topologically ordered (dependencies first).
  std::vector<int> stratum;
  int num_strata = 0;
  // True if the group contains an internal dependency edge (the fixpoint
  // must iterate to convergence; otherwise a single pass suffices).
  std::vector<bool> stratum_recursive;

  // Parallel-friendly grouping: level[i] is the topological depth of
  // rules[i]'s SCC in the condensation DAG (dependencies strictly lower).
  // Rules at the same level never read each other's heads unless they share
  // an SCC, so the semi-naive engine evaluates one level as a single wave:
  // all bodies enumerated (possibly concurrently) against the universe as of
  // the end of the previous wave, then all heads written in rule order.
  std::vector<int> level;
  int num_levels = 0;
  // True if the level contains a recursive SCC (the wave must iterate).
  std::vector<bool> level_recursive;
};

Result<Stratification> Stratify(const std::vector<Rule>& rules);

}  // namespace idl

#endif  // IDL_VIEWS_STRATIFY_H_
