#include "catalog/catalog.h"

#include <map>

#include "common/str_util.h"
#include "object/builder.h"

namespace idl {

Value BuildCatalog(const Value& universe) {
  Value databases = Value::EmptySet();
  Value relations = Value::EmptySet();
  Value attributes = Value::EmptySet();

  if (universe.is_tuple()) {
    for (const auto& db : universe.fields()) {
      if (!db.value.is_tuple()) continue;
      databases.Insert(MakeTuple({{"db", Value::String(db.name)}}));
      for (const auto& rel : db.value.fields()) {
        if (!rel.value.is_set()) continue;
        // Attribute union + first-seen kind across (possibly heterogeneous)
        // elements.
        std::map<std::string, std::string> attrs;
        for (const auto& element : rel.value.elements()) {
          if (!element.is_tuple()) continue;
          for (const auto& field : element.fields()) {
            auto it = attrs.find(field.name);
            if (it == attrs.end()) {
              attrs.emplace(field.name,
                            field.value.is_null()
                                ? ""
                                : std::string(ValueKindName(field.value.kind())));
            } else if (it->second.empty() && !field.value.is_null()) {
              it->second = ValueKindName(field.value.kind());
            }
          }
        }
        relations.Insert(MakeTuple(
            {{"db", Value::String(db.name)},
             {"rel", Value::String(rel.name)},
             {"arity", Value::Int(static_cast<int64_t>(attrs.size()))},
             {"cardinality",
              Value::Int(static_cast<int64_t>(rel.value.SetSize()))}}));
        for (const auto& [attr, kind] : attrs) {
          attributes.Insert(
              MakeTuple({{"db", Value::String(db.name)},
                         {"rel", Value::String(rel.name)},
                         {"attr", Value::String(attr)},
                         {"kind", Value::String(
                                      kind.empty() ? "null" : kind)}}));
        }
      }
    }
  }

  return MakeTuple({{"databases", std::move(databases)},
                    {"relations", std::move(relations)},
                    {"attributes", std::move(attributes)}});
}

Result<Value> WithCatalog(const Value& universe, std::string_view name) {
  if (!universe.is_tuple()) {
    return TypeError("universe must be a tuple of databases");
  }
  if (universe.HasField(name)) {
    return AlreadyExists(StrCat("database '", name, "'"));
  }
  Value out = universe;
  out.SetField(name, BuildCatalog(universe));
  return out;
}

}  // namespace idl
