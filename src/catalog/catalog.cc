#include "catalog/catalog.h"

#include <map>

#include "common/str_util.h"
#include "object/builder.h"

namespace idl {

Value BuildCatalog(const Value& universe) {
  Value databases = Value::EmptySet();
  Value relations = Value::EmptySet();
  Value attributes = Value::EmptySet();

  if (universe.is_tuple()) {
    for (const auto& db : universe.fields()) {
      if (!db.value.is_tuple()) continue;
      databases.Insert(MakeTuple({{"db", Value::String(db.name)}}));
      for (const auto& rel : db.value.fields()) {
        if (!rel.value.is_set()) continue;
        // Attribute union + first-seen kind across (possibly heterogeneous)
        // elements.
        std::map<std::string, std::string> attrs;
        for (const auto& element : rel.value.elements()) {
          if (!element.is_tuple()) continue;
          for (const auto& field : element.fields()) {
            auto it = attrs.find(field.name);
            if (it == attrs.end()) {
              attrs.emplace(field.name,
                            field.value.is_null()
                                ? ""
                                : std::string(ValueKindName(field.value.kind())));
            } else if (it->second.empty() && !field.value.is_null()) {
              it->second = ValueKindName(field.value.kind());
            }
          }
        }
        relations.Insert(MakeTuple(
            {{"db", Value::String(db.name)},
             {"rel", Value::String(rel.name)},
             {"arity", Value::Int(static_cast<int64_t>(attrs.size()))},
             {"cardinality",
              Value::Int(static_cast<int64_t>(rel.value.SetSize()))}}));
        for (const auto& [attr, kind] : attrs) {
          attributes.Insert(
              MakeTuple({{"db", Value::String(db.name)},
                         {"rel", Value::String(rel.name)},
                         {"attr", Value::String(attr)},
                         {"kind", Value::String(
                                      kind.empty() ? "null" : kind)}}));
        }
      }
    }
  }

  return MakeTuple({{"databases", std::move(databases)},
                    {"relations", std::move(relations)},
                    {"attributes", std::move(attributes)}});
}

RelationStats StatsForRelation(const Value& relation) {
  RelationStats stats;
  if (!relation.is_set()) return stats;
  stats.cardinality = relation.SetSize();
  stats.uniform = true;
  const std::vector<Value::Field>* first = nullptr;
  for (const auto& element : relation.elements()) {
    if (!element.is_tuple()) {
      stats.uniform = false;
      continue;
    }
    const auto& fields = element.fields();
    if (first == nullptr) {
      first = &fields;
      stats.arity = fields.size();
    } else if (stats.uniform) {
      if (fields.size() != first->size()) {
        stats.uniform = false;
      } else {
        for (size_t i = 0; i < fields.size(); ++i) {
          if (fields[i].name != (*first)[i].name) {
            stats.uniform = false;
            break;
          }
        }
      }
    }
    if (!stats.uniform && fields.size() > stats.arity) {
      // Heterogeneous: keep arity as an attribute-union lower bound without
      // paying for the full union (the planner only needs a fan-out guess).
      stats.arity = fields.size();
    }
  }
  if (first == nullptr) stats.uniform = relation.SetSize() == 0;
  return stats;
}

Result<Value> WithCatalog(const Value& universe, std::string_view name) {
  if (!universe.is_tuple()) {
    return TypeError("universe must be a tuple of databases");
  }
  if (universe.HasField(name)) {
    return AlreadyExists(StrCat("database '", name, "'"));
  }
  Value out = universe;
  out.SetField(name, BuildCatalog(universe));
  return out;
}

}  // namespace idl
