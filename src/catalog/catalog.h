// Catalog reification: derives a first-order-queryable catalog database
// from a universe — metadata *as data*.
//
// This serves two purposes:
//  * it is the direction §8 sketches (extending the reasoning to "other
//    schematic information such as types, keys") — the catalog carries
//    arity and inferred attribute kinds;
//  * it is the classic first-order *workaround* for metadata queries
//    (reify names into a system table, then query it with plain Datalog),
//    which bench_ablation_catalog compares against genuine higher-order
//    queries. The workaround answers "what exists" but still cannot join
//    names against data in one query, and it goes stale the moment the
//    universe changes — both measured.
//
// Shape of the derived database:
//   databases  : {(db: euter), ...}
//   relations  : {(db: euter, rel: r, arity: 3, cardinality: 12), ...}
//   attributes : {(db: euter, rel: r, attr: clsPrice, kind: "int"), ...}
// `arity` is the attribute-union size (relations may be heterogeneous);
// `kind` is the kind of the first non-null value seen.

#ifndef IDL_CATALOG_CATALOG_H_
#define IDL_CATALOG_CATALOG_H_

#include "common/result.h"
#include "object/value.h"

namespace idl {

// Builds the catalog database object for `universe`. Databases whose value
// is not a tuple, or relations that are not sets, are skipped (the catalog
// describes whatever is relationally shaped).
Value BuildCatalog(const Value& universe);

// Convenience: returns `universe` extended with the catalog under the
// database name `name` (default "cat"). Fails if the name is taken.
Result<Value> WithCatalog(const Value& universe,
                          std::string_view name = "cat");

// Plan-time statistics for one relation-shaped set, exactly as the catalog
// would describe it (the planner reads these live instead of querying a
// reified — and possibly stale — `cat` database; see src/planner).
struct RelationStats {
  size_t cardinality = 0;  // element count
  size_t arity = 0;        // attribute-union size across elements
  bool uniform = false;    // every element is a tuple with the same attrs
};
RelationStats StatsForRelation(const Value& relation);

}  // namespace idl

#endif  // IDL_CATALOG_CATALOG_H_
