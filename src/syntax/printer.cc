#include "syntax/printer.h"

#include "common/str_util.h"
#include "object/value_io.h"

namespace idl {

namespace {

void PrintTerm(const Term& t, std::string* out, bool parenthesize_arith) {
  switch (t.kind) {
    case Term::Kind::kConst:
      *out += ToString(t.constant);
      return;
    case Term::Kind::kVar:
      *out += t.var;
      return;
    case Term::Kind::kArith: {
      // Terms have no grouping syntax; print left-to-right with explicit
      // precedence preserved by construction. Mixed precedence that cannot
      // be expressed flat is rare; we print inner additions first when
      // needed (the parser never produces such trees from flat input).
      (void)parenthesize_arith;
      PrintTerm(*t.lhs, out, true);
      *out += ArithOpChar(t.op);
      PrintTerm(*t.rhs, out, true);
      return;
    }
  }
}

void PrintUpdateOp(UpdateOp op, std::string* out) {
  if (op == UpdateOp::kInsert) *out += '+';
  if (op == UpdateOp::kDelete) *out += '-';
}

void PrintExpr(const Expr& e, std::string* out) {
  if (e.negated) *out += '!';
  switch (e.kind) {
    case Expr::Kind::kEpsilon:
      return;
    case Expr::Kind::kAtomic:
      if (!e.guard_var.empty()) {
        *out += e.guard_var;
        *out += ' ';
        *out += RelOpText(e.relop);
        *out += ' ';
        PrintTerm(e.term, out, false);
        return;
      }
      PrintUpdateOp(e.update, out);
      *out += RelOpText(e.relop);
      PrintTerm(e.term, out, false);
      return;
    case Expr::Kind::kTuple: {
      bool first = true;
      for (const auto& item : e.items) {
        if (!first) *out += ", ";
        first = false;
        if (item.is_guard()) {
          PrintExpr(*item.expr, out);
          continue;
        }
        PrintUpdateOp(item.update, out);
        *out += '.';
        *out += item.attr;
        if (item.expr != nullptr && item.expr->kind != Expr::Kind::kEpsilon) {
          PrintExpr(*item.expr, out);
        }
      }
      return;
    }
    case Expr::Kind::kSet:
      PrintUpdateOp(e.update, out);
      *out += '(';
      if (e.set_inner != nullptr) PrintExpr(*e.set_inner, out);
      *out += ')';
      return;
  }
}

std::string PrintConjuncts(const std::vector<ExprPtr>& conjuncts) {
  std::string out;
  bool first = true;
  for (const auto& c : conjuncts) {
    if (!first) out += ", ";
    first = false;
    PrintExpr(*c, &out);
  }
  return out;
}

}  // namespace

std::string ToString(const Term& term) {
  std::string out;
  PrintTerm(term, &out, false);
  return out;
}

std::string ToString(const Expr& expr) {
  std::string out;
  PrintExpr(expr, &out);
  return out;
}

std::string ToString(const Query& query) {
  return StrCat("?", PrintConjuncts(query.conjuncts));
}

std::string ToString(const Rule& rule) {
  return StrCat(ToString(*rule.head), " <- ", PrintConjuncts(rule.body));
}

std::string ToString(const ProgramClause& clause) {
  std::string out;
  for (const auto& p : clause.name_path) {
    out += '.';
    out += p;
  }
  out += '(';
  bool first = true;
  for (const auto& param : clause.params) {
    if (!first) out += ", ";
    first = false;
    out += StrCat(".", param.attr, "=", param.var);
  }
  out += ')';
  // View-update op prints between name and parameter tuple: `.dbX.p+(...)`.
  if (clause.view_op != UpdateOp::kNone) {
    // Rebuild with the op before '('.
    out = "";
    for (const auto& p : clause.name_path) {
      out += '.';
      out += p;
    }
    PrintUpdateOp(clause.view_op, &out);
    out += '(';
    first = true;
    for (const auto& param : clause.params) {
      if (!first) out += ", ";
      first = false;
      out += StrCat(".", param.attr, "=", param.var);
    }
    out += ')';
  }
  out += " -> ";
  out += PrintConjuncts(clause.body);
  return out;
}

}  // namespace idl
