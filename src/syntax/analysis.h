// Static analysis of parsed statements: safety checks (range restriction,
// simple-head validation) and binding signatures of update programs (§7.1).

#ifndef IDL_SYNTAX_ANALYSIS_H_
#define IDL_SYNTAX_ANALYSIS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "syntax/ast.h"

namespace idl {

struct QueryInfo {
  // True if any conjunct carries an update marker (an "update request", §5.1).
  bool is_update_request = false;
  // Variables whose bindings form the answer: variables occurring in a
  // positive (non-negated) context, in first-occurrence order, deduplicated.
  // Variables occurring only under negation are existential (§4.2).
  std::vector<std::string> free_vars;
};

Result<QueryInfo> AnalyzeQuery(const Query& query);

// Validates a view rule (§6): the head must be a *simple* tuple expression
// (only '=' atomic expressions, no negation, no updates), and every head
// variable must occur positively in the body. The body must be update-free.
Status ValidateRule(const Rule& rule);

struct ClauseInfo {
  // Parameters that occur inside '+' (insert) expressions in the body; a
  // call must bind all of them or the plus expressions are undefined (§7.1:
  // "if any of the argument is not given then the plus expressions are not
  // defined").
  std::vector<std::string> required_params;
};

Result<ClauseInfo> AnalyzeClause(const ProgramClause& clause);

// Collects variables occurring in positive (non-negated) context.
void CollectPositiveVars(const Expr& expr, std::vector<std::string>* out);

// True if the expression is negated or contains a negated sub-expression.
bool ContainsNegation(const Expr& expr);

}  // namespace idl

#endif  // IDL_SYNTAX_ANALYSIS_H_
