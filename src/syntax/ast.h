// Abstract syntax of IDL (paper Sections 4.1, 4.3, 5.1, 6, 7.1).
//
//   Exp    → [¬] [+|-] PExp
//   PExp   → Aexp | Texp | Sexp | ε
//   Aexp   → Relop Term
//   Term   → constant | Variable | Term (+|-|*|/) Term
//   Texp   → Item {, Item}      Item → [+|-] .Aname Exp
//   Aname  → constant | Variable          (Variable ⇒ higher-order)
//   Sexp   → ( Exp )
//
// Statements:
//   Query        ? Conjunct {, Conjunct}        (Conjunct: Exp on universe)
//   Rule         Head <- Conjunct {, Conjunct}  (derived views, §6)
//   ProgramDef   Head[+|-] -> Conjunct {, …}    (update programs, §7)
//
// The update markers of §5 are represented uniformly as Expr::update /
// TupleItem::update (insert/delete prefixes on atomic, tuple-item and set
// expressions).

#ifndef IDL_SYNTAX_AST_H_
#define IDL_SYNTAX_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "object/value.h"

namespace idl {

enum class RelOp : uint8_t { kLt, kLe, kEq, kNe, kGt, kGe };
std::string_view RelOpText(RelOp op);

enum class UpdateOp : uint8_t { kNone, kInsert, kDelete };

enum class ArithOp : uint8_t { kAdd, kSub, kMul, kDiv };
char ArithOpChar(ArithOp op);

// The operand of an atomic expression: a constant, a variable, or an
// arithmetic combination (the paper's footnote 8: `.hp = C+10`).
struct Term {
  enum class Kind : uint8_t { kConst, kVar, kArith };

  Kind kind = Kind::kConst;
  Value constant;                    // kConst
  std::string var;                   // kVar
  ArithOp op = ArithOp::kAdd;        // kArith
  std::unique_ptr<Term> lhs, rhs;    // kArith

  Term() = default;
  static Term Const(Value v);
  static Term Var(std::string name);
  static Term Arith(ArithOp op, Term lhs, Term rhs);

  Term Clone() const;
  bool IsGround() const;
  // Appends the variables in this term to `out` (with duplicates).
  void CollectVars(std::vector<std::string>* out) const;
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

// One `.Aname Exp` item of a tuple expression. `attr_is_var` marks a
// higher-order variable in the attribute position (§4.3). An item with an
// empty `attr` (and attr_is_var false) is a *guard item*: its expression is
// a guard evaluated against the bound variables, not an attribute lookup —
// this is how `(.date=D, .S=P, S != date)` parses.
struct TupleItem {
  UpdateOp update = UpdateOp::kNone;
  bool attr_is_var = false;
  std::string attr;  // attribute name, or variable name if attr_is_var
  ExprPtr expr;      // nullptr means ε (the tautological expression)

  bool is_guard() const { return attr.empty() && !attr_is_var; }
};

struct Expr {
  enum class Kind : uint8_t { kEpsilon, kAtomic, kTuple, kSet };

  Kind kind = Kind::kEpsilon;
  bool negated = false;

  // kAtomic. `update` == kInsert/kDelete makes it `+=c` / `-=c` (§5.1).
  UpdateOp update = UpdateOp::kNone;
  RelOp relop = RelOp::kEq;
  Term term;
  // kAtomic only: when non-empty, this is a *guard* `Var relop Term`
  // comparing bound variables instead of testing the context object — the
  // construct the paper uses informally in footnote 7 (`?.X.Y, X = ource`).
  std::string guard_var;

  // kTuple.
  std::vector<TupleItem> items;

  // kSet. `update` applies here too: `+(exp)` / `-(exp)`.
  ExprPtr set_inner;  // nullptr means (ε)

  static ExprPtr Epsilon();
  static ExprPtr Atomic(RelOp op, Term term, UpdateOp update = UpdateOp::kNone);
  static ExprPtr Guard(std::string var, RelOp op, Term term);
  static ExprPtr Tuple(std::vector<TupleItem> items);
  static ExprPtr Set(ExprPtr inner, UpdateOp update = UpdateOp::kNone);

  ExprPtr Clone() const;

  // True if no update markers appear anywhere in this expression.
  bool IsPureQuery() const;
  // True if some update marker appears.
  bool HasUpdate() const { return !IsPureQuery(); }
  // Appends all variables (term and higher-order) to `out`.
  void CollectVars(std::vector<std::string>* out) const;
  // True if the expression contains a variable in an attribute position.
  bool HasHigherOrderVar() const;
};

// A query / update request: `? conj1, ..., conjk` (§4.1, §5.1).
struct Query {
  std::vector<ExprPtr> conjuncts;

  Query Clone() const;
};

// A view rule: `head <- body` (§6). The head must be a simple tuple
// expression; all head variables must occur in the body.
struct Rule {
  ExprPtr head;
  std::vector<ExprPtr> body;
  std::string source;  // original text, for diagnostics

  Rule Clone() const;
};

// One clause of an update program (§7.1): `.dbU.delStk(.stk=S) -> body`,
// or a view-update program (§7.2): `.dbX.p+(...) -> body`.
struct ProgramClause {
  // Head decomposed: the constant path naming the program (e.g. dbU.delStk),
  // the view-update op (kNone for ordinary programs), and the parameter
  // tuple (attribute name -> variable).
  std::vector<std::string> name_path;
  UpdateOp view_op = UpdateOp::kNone;
  struct Param {
    std::string attr;
    std::string var;
  };
  std::vector<Param> params;

  std::vector<ExprPtr> body;
  std::string source;

  ProgramClause Clone() const;
};

// A parsed top-level statement.
struct Statement {
  enum class Kind : uint8_t { kQuery, kRule, kProgramClause };
  Kind kind = Kind::kQuery;
  Query query;            // kQuery
  Rule rule;              // kRule
  ProgramClause clause;   // kProgramClause
};

}  // namespace idl

#endif  // IDL_SYNTAX_AST_H_
