// Tokens of the IDL concrete syntax.

#ifndef IDL_SYNTAX_TOKEN_H_
#define IDL_SYNTAX_TOKEN_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "object/date.h"

namespace idl {

enum class TokenKind : uint8_t {
  kEnd = 0,
  kDot,        // .
  kComma,      // ,
  kLParen,     // (
  kRParen,     // )
  kQuestion,   // ?
  kPlus,       // +
  kMinus,      // -
  kStar,       // *
  kSlash,      // /
  kNeg,        // ¬ or !
  kSemicolon,  // ;
  kLeftArrow,  // <-
  kRightArrow, // ->
  kLt,         // <
  kLe,         // <= or ≤
  kEq,         // =
  kNe,         // != or ≠
  kGt,         // >
  kGe,         // >= or ≥
  kIdent,      // lowercase-initial word: constant / attribute / relation name
  kVariable,   // uppercase-initial word (Datalog convention)
  kInt,
  kDouble,
  kString,     // "quoted"
  kDate,       // 3/3/85
};

std::string_view TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;     // raw text (identifier/variable name, string value)
  int64_t int_value = 0;
  double double_value = 0;
  Date date_value;
  int line = 1;
  int column = 1;

  // "'hp' at 2:5".
  std::string Describe() const;
};

}  // namespace idl

#endif  // IDL_SYNTAX_TOKEN_H_
