// Lexer for the IDL concrete syntax.
//
// Notes on lexing decisions:
//  * Words starting with an uppercase letter are variables, lowercase words
//    are constants/names (the Datalog convention the paper uses).
//  * `d/d/d` digit groups lex as a single date token (the paper's 3/3/85);
//    `/` is otherwise the division operator.
//  * Both ASCII (`!`, `<=`, `>=`, `!=`) and typographic (`¬`, `≤`, `≥`, `≠`)
//    operator spellings are accepted, since the paper uses the latter.
//  * `%` starts a comment running to end of line.

#ifndef IDL_SYNTAX_LEXER_H_
#define IDL_SYNTAX_LEXER_H_

#include <string_view>
#include <vector>

#include "common/result.h"
#include "syntax/token.h"

namespace idl {

// Tokenizes `text` completely; the final token has kind kEnd.
Result<std::vector<Token>> Lex(std::string_view text);

}  // namespace idl

#endif  // IDL_SYNTAX_LEXER_H_
