#include "syntax/parser.h"

#include "common/str_util.h"
#include "syntax/lexer.h"

namespace idl {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  // ---- Entry points --------------------------------------------------------

  Result<idl::Query> ParseQueryStmt() {
    IDL_ASSIGN_OR_RETURN(idl::Query q, ParseQueryBody());
    IDL_RETURN_IF_ERROR(ExpectEnd());
    return q;
  }

  Result<idl::Rule> ParseRuleStmt() {
    IDL_ASSIGN_OR_RETURN(Statement s, ParseStatement());
    if (s.kind != Statement::Kind::kRule) {
      return ParseError("expected a rule (head <- body)");
    }
    IDL_RETURN_IF_ERROR(ExpectEnd());
    return std::move(s.rule);
  }

  Result<ProgramClause> ParseClauseStmt() {
    IDL_ASSIGN_OR_RETURN(Statement s, ParseStatement());
    if (s.kind != Statement::Kind::kProgramClause) {
      return ParseError("expected an update program clause (head -> body)");
    }
    IDL_RETURN_IF_ERROR(ExpectEnd());
    return std::move(s.clause);
  }

  Result<std::vector<Statement>> ParseStatementsList() {
    std::vector<Statement> out;
    while (true) {
      while (Check(TokenKind::kSemicolon)) Next();
      if (Check(TokenKind::kEnd)) return out;
      IDL_ASSIGN_OR_RETURN(Statement s, ParseStatement());
      out.push_back(std::move(s));
      if (!Check(TokenKind::kSemicolon) && !Check(TokenKind::kEnd)) {
        return Unexpected("';' or end of input");
      }
    }
  }

  Result<ExprPtr> ParseExprStmt() {
    // Accepts comma-joined tuple items so `.a=1, .b=2` parses as one tuple
    // expression (matching how such text reads inside parentheses).
    IDL_ASSIGN_OR_RETURN(ExprPtr e, ParseInnerExpr());
    IDL_RETURN_IF_ERROR(ExpectEnd());
    return e;
  }

 private:
  // ---- Token plumbing ------------------------------------------------------

  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }

  const Token& Next() {
    const Token& t = Peek();
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
  }

  bool Check(TokenKind kind) const { return Peek().kind == kind; }

  bool Consume(TokenKind kind) {
    if (Check(kind)) {
      Next();
      return true;
    }
    return false;
  }

  Status Unexpected(std::string_view expected) const {
    return ParseError(
        StrCat("expected ", expected, ", found ", Peek().Describe()));
  }

  // A parse error stamped with the current token position.
  Status ErrorAt(std::string_view what) const {
    return ParseError(
        StrCat(what, " (at ", Peek().line, ":", Peek().column, ")"));
  }

  Status Expect(TokenKind kind) {
    if (Consume(kind)) return Status::Ok();
    return Unexpected(TokenKindName(kind));
  }

  Status ExpectEnd() {
    if (Check(TokenKind::kEnd)) return Status::Ok();
    return Unexpected("end of input");
  }

  static bool IsRelOpToken(TokenKind k) {
    return k == TokenKind::kLt || k == TokenKind::kLe || k == TokenKind::kEq ||
           k == TokenKind::kNe || k == TokenKind::kGt || k == TokenKind::kGe;
  }

  static RelOp ToRelOp(TokenKind k) {
    switch (k) {
      case TokenKind::kLt:
        return RelOp::kLt;
      case TokenKind::kLe:
        return RelOp::kLe;
      case TokenKind::kEq:
        return RelOp::kEq;
      case TokenKind::kNe:
        return RelOp::kNe;
      case TokenKind::kGt:
        return RelOp::kGt;
      default:
        return RelOp::kGe;
    }
  }

  // True if the token at `ahead` can begin an expression.
  bool StartsExpr(size_t ahead = 0) const {
    TokenKind k = Peek(ahead).kind;
    if (k == TokenKind::kDot || k == TokenKind::kLParen ||
        k == TokenKind::kNeg || IsRelOpToken(k)) {
      return true;
    }
    if (k == TokenKind::kVariable && IsRelOpToken(Peek(ahead + 1).kind)) {
      return true;  // guard
    }
    if (k == TokenKind::kPlus || k == TokenKind::kMinus) {
      TokenKind n = Peek(ahead + 1).kind;
      return n == TokenKind::kDot || n == TokenKind::kLParen ||
             IsRelOpToken(n);
    }
    return false;
  }

  // ---- Statements ----------------------------------------------------------

  Result<Statement> ParseStatement() {
    Statement s;
    if (Check(TokenKind::kQuestion)) {
      IDL_ASSIGN_OR_RETURN(s.query, ParseQueryBody());
      s.kind = Statement::Kind::kQuery;
      return s;
    }
    // head <- body | head -> body.
    IDL_ASSIGN_OR_RETURN(ExprPtr head, ParseExpr());
    if (Consume(TokenKind::kLeftArrow)) {
      s.kind = Statement::Kind::kRule;
      s.rule.head = std::move(head);
      IDL_ASSIGN_OR_RETURN(s.rule.body, ParseConjunctList());
      return s;
    }
    if (Consume(TokenKind::kRightArrow)) {
      s.kind = Statement::Kind::kProgramClause;
      IDL_RETURN_IF_ERROR(ExtractProgramHead(*head, &s.clause));
      // A program body may be empty (no-op clause, §7.2's stubs).
      if (StartsExpr()) {
        IDL_ASSIGN_OR_RETURN(s.clause.body, ParseConjunctList());
      }
      return s;
    }
    return Unexpected("'<-' or '->' after statement head");
  }

  Result<idl::Query> ParseQueryBody() {
    IDL_RETURN_IF_ERROR(Expect(TokenKind::kQuestion));
    idl::Query q;
    IDL_ASSIGN_OR_RETURN(q.conjuncts, ParseConjunctList());
    return q;
  }

  Result<std::vector<ExprPtr>> ParseConjunctList() {
    std::vector<ExprPtr> out;
    while (true) {
      IDL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      if (e->kind == Expr::Kind::kEpsilon) {
        return Unexpected("a conjunct");
      }
      out.push_back(std::move(e));
      if (!Consume(TokenKind::kComma)) return out;
    }
  }

  // ---- Expressions ---------------------------------------------------------

  // Exp → [¬] [+|-] PExp, with the update prefix attaching to the atomic
  // expression, the set expression, or the first tuple item (left-to-right
  // precedence, §5.1).
  Result<ExprPtr> ParseExpr() {
    bool negated = Consume(TokenKind::kNeg);
    UpdateOp update = UpdateOp::kNone;
    if ((Check(TokenKind::kPlus) || Check(TokenKind::kMinus)) &&
        (Peek(1).kind == TokenKind::kDot || Peek(1).kind == TokenKind::kLParen ||
         IsRelOpToken(Peek(1).kind))) {
      update =
          Next().kind == TokenKind::kPlus ? UpdateOp::kInsert : UpdateOp::kDelete;
    }
    IDL_ASSIGN_OR_RETURN(ExprPtr e, ParsePExp(update));
    e->negated = negated;
    if (negated && e->HasUpdate()) {
      return ErrorAt("an update expression cannot be negated");
    }
    return e;
  }

  // PExp → Aexp | Texp | Sexp | Guard | ε. The update prefix (already
  // consumed by the caller) is attached here according to what PExp turns
  // out to be. A leading variable starts a guard `Var relop Term` — the
  // informal construct of the paper's footnote 7 (`?.X.Y, X = ource`).
  Result<ExprPtr> ParsePExp(UpdateOp update) {
    if (Check(TokenKind::kDot)) return ParseTupleExpr(update);
    if (Check(TokenKind::kLParen)) return ParseSetExpr(update);
    if (IsRelOpToken(Peek().kind)) return ParseAtomicExpr(update);
    if (Check(TokenKind::kVariable) && IsRelOpToken(Peek(1).kind)) {
      if (update != UpdateOp::kNone) {
        return ErrorAt("a guard cannot carry an update operator");
      }
      std::string var = Next().text;
      RelOp op = ToRelOp(Next().kind);
      IDL_ASSIGN_OR_RETURN(Term t, ParseTerm());
      return Expr::Guard(std::move(var), op, std::move(t));
    }
    if (update != UpdateOp::kNone) {
      return Unexpected("an expression after the update operator");
    }
    return Expr::Epsilon();
  }

  // Texp → .Aname Exp {, [+|-] .Aname Exp}. `first_update` is an update
  // prefix that was written before the first '.', e.g. `-.S`.
  Result<ExprPtr> ParseTupleExpr(UpdateOp first_update) {
    std::vector<TupleItem> items;
    UpdateOp pending = first_update;
    while (true) {
      IDL_RETURN_IF_ERROR(Expect(TokenKind::kDot));
      TupleItem item;
      item.update = pending;
      pending = UpdateOp::kNone;
      if (Check(TokenKind::kIdent)) {
        item.attr = Next().text;
      } else if (Check(TokenKind::kVariable)) {
        item.attr_is_var = true;
        item.attr = Next().text;
      } else {
        return Unexpected("attribute name or variable after '.'");
      }
      if (StartsExpr()) {
        IDL_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      }
      items.push_back(std::move(item));
      // Further items of this same tuple expression appear only inside
      // parentheses; at top level ',' separates conjuncts. The caller
      // distinguishes: we continue only if ',' is followed by a tuple item
      // and we were invoked from inside a set expression (see ParseSetExpr).
      break;
    }
    return Expr::Tuple(std::move(items));
  }

  // Sexp → ( Exp ). The inner expression may be a multi-item tuple
  // expression: `(.date=D, .hp=50)`.
  Result<ExprPtr> ParseSetExpr(UpdateOp update) {
    IDL_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    ExprPtr inner;
    if (Check(TokenKind::kRParen)) {
      inner = Expr::Epsilon();
    } else {
      IDL_ASSIGN_OR_RETURN(inner, ParseInnerExpr());
    }
    IDL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    return Expr::Set(std::move(inner), update);
  }

  // The expression inside parentheses: a single expression, or a
  // comma-separated sequence of tuple items (and guards) merged into one
  // tuple expression.
  Result<ExprPtr> ParseInnerExpr() {
    IDL_ASSIGN_OR_RETURN(ExprPtr first, ParseExpr());
    if (!Check(TokenKind::kComma)) return first;
    std::vector<TupleItem> items;
    IDL_RETURN_IF_ERROR(AppendInnerItems(std::move(first), &items));
    while (Consume(TokenKind::kComma)) {
      IDL_ASSIGN_OR_RETURN(ExprPtr next, ParseExpr());
      IDL_RETURN_IF_ERROR(AppendInnerItems(std::move(next), &items));
    }
    return Expr::Tuple(std::move(items));
  }

  Status AppendInnerItems(ExprPtr expr, std::vector<TupleItem>* items) {
    if (expr->kind == Expr::Kind::kTuple && !expr->negated) {
      for (auto& item : expr->items) items->push_back(std::move(item));
      return Status::Ok();
    }
    if (expr->kind == Expr::Kind::kAtomic && !expr->guard_var.empty()) {
      // Guard item: empty attribute name.
      items->push_back(TupleItem{UpdateOp::kNone, false, "", std::move(expr)});
      return Status::Ok();
    }
    return ErrorAt(
        "only tuple items and guards may be joined with ',' inside a set "
        "expression");
  }

  Result<ExprPtr> ParseAtomicExpr(UpdateOp update) {
    RelOp op = ToRelOp(Next().kind);
    IDL_ASSIGN_OR_RETURN(Term t, ParseTerm());
    return Expr::Atomic(op, std::move(t), update);
  }

  // ---- Terms (with arithmetic, footnote 8) ---------------------------------

  Result<Term> ParseTerm() {
    IDL_ASSIGN_OR_RETURN(Term lhs, ParseMulTerm());
    while (Check(TokenKind::kPlus) || Check(TokenKind::kMinus)) {
      // `,.a+...` never reaches here: '+'/'-' after a complete term is
      // arithmetic only if an operand follows.
      if (!StartsTermOperand(1)) break;
      ArithOp op = Next().kind == TokenKind::kPlus ? ArithOp::kAdd : ArithOp::kSub;
      IDL_ASSIGN_OR_RETURN(Term rhs, ParseMulTerm());
      lhs = Term::Arith(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<Term> ParseMulTerm() {
    IDL_ASSIGN_OR_RETURN(Term lhs, ParsePrimaryTerm());
    while (Check(TokenKind::kStar) || Check(TokenKind::kSlash)) {
      ArithOp op = Next().kind == TokenKind::kStar ? ArithOp::kMul : ArithOp::kDiv;
      IDL_ASSIGN_OR_RETURN(Term rhs, ParsePrimaryTerm());
      lhs = Term::Arith(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  bool StartsTermOperand(size_t ahead) const {
    switch (Peek(ahead).kind) {
      case TokenKind::kInt:
      case TokenKind::kDouble:
      case TokenKind::kString:
      case TokenKind::kDate:
      case TokenKind::kIdent:
      case TokenKind::kVariable:
        return true;
      default:
        return false;
    }
  }

  Result<Term> ParsePrimaryTerm() {
    if (Consume(TokenKind::kMinus)) {
      IDL_ASSIGN_OR_RETURN(Term t, ParsePrimaryTerm());
      return Term::Arith(ArithOp::kSub, Term::Const(Value::Int(0)),
                         std::move(t));
    }
    const Token& tok = Peek();
    switch (tok.kind) {
      case TokenKind::kInt:
        Next();
        return Term::Const(Value::Int(tok.int_value));
      case TokenKind::kDouble:
        Next();
        return Term::Const(Value::Real(tok.double_value));
      case TokenKind::kString:
        Next();
        return Term::Const(Value::String(tok.text));
      case TokenKind::kDate:
        Next();
        return Term::Const(Value::Of(tok.date_value));
      case TokenKind::kVariable:
        Next();
        return Term::Var(tok.text);
      case TokenKind::kIdent: {
        Next();
        if (tok.text == "null") return Term::Const(Value::Null());
        if (tok.text == "true") return Term::Const(Value::Bool(true));
        if (tok.text == "false") return Term::Const(Value::Bool(false));
        return Term::Const(Value::String(tok.text));
      }
      default:
        return Unexpected("a constant or variable");
    }
  }

  // ---- Program heads -------------------------------------------------------

  // Decomposes `.dbU.delStk(.stk=S, .date=D)` or `.dbX.p+(...)` into the
  // program name path, the view-update op, and the parameter list.
  Status ExtractProgramHead(const Expr& head, ProgramClause* clause) {
    const Expr* cur = &head;
    while (true) {
      if (cur->kind != Expr::Kind::kTuple || cur->items.size() != 1) {
        return ParseError(
            "program head must be a path of attribute names, e.g. "
            ".dbU.delStk(.stk=S)");
      }
      const TupleItem& item = cur->items[0];
      if (item.attr_is_var) {
        return ParseError("program head path must not contain variables");
      }
      if (item.update != UpdateOp::kNone) {
        return ParseError("program head path must not contain update markers");
      }
      clause->name_path.push_back(item.attr);
      if (item.expr == nullptr) return Status::Ok();  // no parameters
      if (item.expr->kind == Expr::Kind::kTuple) {
        cur = item.expr.get();
        continue;
      }
      if (item.expr->kind == Expr::Kind::kSet) {
        clause->view_op = item.expr->update;
        return ExtractParams(*item.expr, clause);
      }
      return ParseError("program head must end in a parameter tuple");
    }
  }

  Status ExtractParams(const Expr& set_expr, ProgramClause* clause) {
    const Expr* inner = set_expr.set_inner.get();
    if (inner == nullptr || inner->kind == Expr::Kind::kEpsilon) {
      return Status::Ok();
    }
    if (inner->kind != Expr::Kind::kTuple) {
      return ParseError("program parameters must be .name=Variable pairs");
    }
    for (const TupleItem& item : inner->items) {
      if (item.attr_is_var || item.update != UpdateOp::kNone ||
          item.expr == nullptr || item.expr->kind != Expr::Kind::kAtomic ||
          item.expr->negated || item.expr->relop != RelOp::kEq ||
          item.expr->update != UpdateOp::kNone ||
          item.expr->term.kind != Term::Kind::kVar) {
        return ParseError("program parameters must be .name=Variable pairs");
      }
      clause->params.push_back(
          ProgramClause::Param{item.attr, item.expr->term.var});
    }
    return Status::Ok();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

Result<Parser> MakeParser(std::string_view text) {
  IDL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  return Parser(std::move(tokens));
}

}  // namespace

Result<Query> ParseQuery(std::string_view text) {
  IDL_ASSIGN_OR_RETURN(Parser p, MakeParser(text));
  return p.ParseQueryStmt();
}

Result<Rule> ParseRule(std::string_view text) {
  IDL_ASSIGN_OR_RETURN(Parser p, MakeParser(text));
  IDL_ASSIGN_OR_RETURN(Rule r, p.ParseRuleStmt());
  r.source = std::string(text);
  return r;
}

Result<ProgramClause> ParseProgramClause(std::string_view text) {
  IDL_ASSIGN_OR_RETURN(Parser p, MakeParser(text));
  IDL_ASSIGN_OR_RETURN(ProgramClause c, p.ParseClauseStmt());
  c.source = std::string(text);
  return c;
}

Result<std::vector<Statement>> ParseStatements(std::string_view text) {
  IDL_ASSIGN_OR_RETURN(Parser p, MakeParser(text));
  return p.ParseStatementsList();
}

Result<ExprPtr> ParseExpression(std::string_view text) {
  IDL_ASSIGN_OR_RETURN(Parser p, MakeParser(text));
  return p.ParseExprStmt();
}

}  // namespace idl
