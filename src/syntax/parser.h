// Recursive-descent parser for IDL text.
//
// Entry points parse a whole string; errors carry line:column positions.
// Multi-statement input separates statements with ';'.

#ifndef IDL_SYNTAX_PARSER_H_
#define IDL_SYNTAX_PARSER_H_

#include <string_view>
#include <vector>

#include "common/result.h"
#include "syntax/ast.h"

namespace idl {

// `? conj1, ..., conjk` — a query or update request (§4, §5).
Result<Query> ParseQuery(std::string_view text);

// `head <- body` — a view rule (§6).
Result<Rule> ParseRule(std::string_view text);

// `head -> body` — an update program clause (§7).
Result<ProgramClause> ParseProgramClause(std::string_view text);

// A ';'-separated sequence of queries, rules and program clauses.
Result<std::vector<Statement>> ParseStatements(std::string_view text);

// A single expression (exposed for tests and tools).
Result<ExprPtr> ParseExpression(std::string_view text);

}  // namespace idl

#endif  // IDL_SYNTAX_PARSER_H_
