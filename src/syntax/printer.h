// Canonical pretty-printing of IDL syntax trees back to text.
// Printing then re-parsing yields a structurally identical tree
// (round-trip property, tested in tests/syntax_roundtrip_test.cc).

#ifndef IDL_SYNTAX_PRINTER_H_
#define IDL_SYNTAX_PRINTER_H_

#include <string>

#include "syntax/ast.h"

namespace idl {

std::string ToString(const Term& term);
std::string ToString(const Expr& expr);
std::string ToString(const Query& query);
std::string ToString(const Rule& rule);
std::string ToString(const ProgramClause& clause);

}  // namespace idl

#endif  // IDL_SYNTAX_PRINTER_H_
