#include "syntax/ast.h"

#include "common/logging.h"

namespace idl {

std::string_view RelOpText(RelOp op) {
  switch (op) {
    case RelOp::kLt:
      return "<";
    case RelOp::kLe:
      return "<=";
    case RelOp::kEq:
      return "=";
    case RelOp::kNe:
      return "!=";
    case RelOp::kGt:
      return ">";
    case RelOp::kGe:
      return ">=";
  }
  return "?";
}

char ArithOpChar(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return '+';
    case ArithOp::kSub:
      return '-';
    case ArithOp::kMul:
      return '*';
    case ArithOp::kDiv:
      return '/';
  }
  return '?';
}

Term Term::Const(Value v) {
  Term t;
  t.kind = Kind::kConst;
  t.constant = std::move(v);
  return t;
}

Term Term::Var(std::string name) {
  Term t;
  t.kind = Kind::kVar;
  t.var = std::move(name);
  return t;
}

Term Term::Arith(ArithOp op, Term lhs, Term rhs) {
  Term t;
  t.kind = Kind::kArith;
  t.op = op;
  t.lhs = std::make_unique<Term>(std::move(lhs));
  t.rhs = std::make_unique<Term>(std::move(rhs));
  return t;
}

Term Term::Clone() const {
  Term t;
  t.kind = kind;
  t.constant = constant;
  t.var = var;
  t.op = op;
  if (lhs) t.lhs = std::make_unique<Term>(lhs->Clone());
  if (rhs) t.rhs = std::make_unique<Term>(rhs->Clone());
  return t;
}

bool Term::IsGround() const {
  switch (kind) {
    case Kind::kConst:
      return true;
    case Kind::kVar:
      return false;
    case Kind::kArith:
      return lhs->IsGround() && rhs->IsGround();
  }
  return false;
}

void Term::CollectVars(std::vector<std::string>* out) const {
  switch (kind) {
    case Kind::kConst:
      return;
    case Kind::kVar:
      out->push_back(var);
      return;
    case Kind::kArith:
      lhs->CollectVars(out);
      rhs->CollectVars(out);
      return;
  }
}

ExprPtr Expr::Epsilon() {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kEpsilon;
  return e;
}

ExprPtr Expr::Atomic(RelOp op, Term term, UpdateOp update) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kAtomic;
  e->relop = op;
  e->term = std::move(term);
  e->update = update;
  return e;
}

ExprPtr Expr::Guard(std::string var, RelOp op, Term term) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kAtomic;
  e->guard_var = std::move(var);
  e->relop = op;
  e->term = std::move(term);
  return e;
}

ExprPtr Expr::Tuple(std::vector<TupleItem> items) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kTuple;
  e->items = std::move(items);
  return e;
}

ExprPtr Expr::Set(ExprPtr inner, UpdateOp update) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kSet;
  e->set_inner = std::move(inner);
  e->update = update;
  return e;
}

ExprPtr Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->negated = negated;
  e->update = update;
  e->relop = relop;
  e->term = term.Clone();
  e->guard_var = guard_var;
  e->items.reserve(items.size());
  for (const auto& item : items) {
    TupleItem copy;
    copy.update = item.update;
    copy.attr_is_var = item.attr_is_var;
    copy.attr = item.attr;
    if (item.expr) copy.expr = item.expr->Clone();
    e->items.push_back(std::move(copy));
  }
  if (set_inner) e->set_inner = set_inner->Clone();
  return e;
}

bool Expr::IsPureQuery() const {
  if (update != UpdateOp::kNone) return false;
  switch (kind) {
    case Kind::kEpsilon:
    case Kind::kAtomic:
      return true;
    case Kind::kTuple:
      for (const auto& item : items) {
        if (item.update != UpdateOp::kNone) return false;
        if (item.expr && !item.expr->IsPureQuery()) return false;
      }
      return true;
    case Kind::kSet:
      return set_inner == nullptr || set_inner->IsPureQuery();
  }
  return true;
}

void Expr::CollectVars(std::vector<std::string>* out) const {
  switch (kind) {
    case Kind::kEpsilon:
      return;
    case Kind::kAtomic:
      if (!guard_var.empty()) out->push_back(guard_var);
      term.CollectVars(out);
      return;
    case Kind::kTuple:
      for (const auto& item : items) {
        if (item.attr_is_var) out->push_back(item.attr);
        if (item.expr) item.expr->CollectVars(out);
      }
      return;
    case Kind::kSet:
      if (set_inner) set_inner->CollectVars(out);
      return;
  }
}

bool Expr::HasHigherOrderVar() const {
  switch (kind) {
    case Kind::kEpsilon:
    case Kind::kAtomic:
      return false;
    case Kind::kTuple:
      for (const auto& item : items) {
        if (item.attr_is_var) return true;
        if (item.expr && item.expr->HasHigherOrderVar()) return true;
      }
      return false;
    case Kind::kSet:
      return set_inner != nullptr && set_inner->HasHigherOrderVar();
  }
  return false;
}

Query Query::Clone() const {
  Query q;
  q.conjuncts.reserve(conjuncts.size());
  for (const auto& c : conjuncts) q.conjuncts.push_back(c->Clone());
  return q;
}

Rule Rule::Clone() const {
  Rule r;
  r.head = head->Clone();
  r.body.reserve(body.size());
  for (const auto& c : body) r.body.push_back(c->Clone());
  r.source = source;
  return r;
}

ProgramClause ProgramClause::Clone() const {
  ProgramClause c;
  c.name_path = name_path;
  c.view_op = view_op;
  c.params = params;
  c.body.reserve(body.size());
  for (const auto& e : body) c.body.push_back(e->Clone());
  c.source = source;
  return c;
}

}  // namespace idl
