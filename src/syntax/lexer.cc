#include "syntax/lexer.h"

#include <cctype>
#include <charconv>

#include "common/str_util.h"

namespace idl {

std::string_view TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd:
      return "end of input";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kQuestion:
      return "'?'";
    case TokenKind::kPlus:
      return "'+'";
    case TokenKind::kMinus:
      return "'-'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kSlash:
      return "'/'";
    case TokenKind::kNeg:
      return "negation";
    case TokenKind::kSemicolon:
      return "';'";
    case TokenKind::kLeftArrow:
      return "'<-'";
    case TokenKind::kRightArrow:
      return "'->'";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kNe:
      return "'!='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
    case TokenKind::kIdent:
      return "identifier";
    case TokenKind::kVariable:
      return "variable";
    case TokenKind::kInt:
      return "integer";
    case TokenKind::kDouble:
      return "number";
    case TokenKind::kString:
      return "string";
    case TokenKind::kDate:
      return "date";
  }
  return "token";
}

std::string Token::Describe() const {
  std::string what;
  switch (kind) {
    case TokenKind::kIdent:
    case TokenKind::kVariable:
      what = StrCat("'", text, "'");
      break;
    case TokenKind::kString:
      what = QuoteString(text);
      break;
    case TokenKind::kInt:
      what = StrCat(int_value);
      break;
    case TokenKind::kDouble:
      what = DoubleToString(double_value);
      break;
    case TokenKind::kDate:
      what = date_value.ToString();
      break;
    default:
      what = std::string(TokenKindName(kind));
  }
  return StrCat(what, " at ", line, ":", column);
}

namespace {

class LexerImpl {
 public:
  explicit LexerImpl(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (true) {
      SkipSpaceAndComments();
      Token tok;
      tok.line = line_;
      tok.column = column_;
      if (pos_ >= text_.size()) {
        tok.kind = TokenKind::kEnd;
        out.push_back(std::move(tok));
        return out;
      }
      IDL_RETURN_IF_ERROR(LexOne(&tok));
      out.push_back(std::move(tok));
    }
  }

 private:
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }

  static int HexDigit(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  }

  void Advance() {
    if (text_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  void SkipSpaceAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '%') {
        while (pos_ < text_.size() && text_[pos_] != '\n') Advance();
      } else {
        return;
      }
    }
  }

  Status ErrorHere(std::string what) {
    return ParseError(StrCat(what, " at ", line_, ":", column_));
  }

  // True if a UTF-8 multibyte sequence for `utf8` starts at pos_.
  bool ConsumeUtf8(std::string_view utf8) {
    if (text_.substr(pos_, utf8.size()) == utf8) {
      for (size_t i = 0; i < utf8.size(); ++i) ++pos_;
      column_ += 1;  // count the glyph as one column
      return true;
    }
    return false;
  }

  Status LexOne(Token* tok) {
    char c = Peek();

    // Typographic operators (UTF-8) used in the paper.
    if (ConsumeUtf8("¬")) {  // ¬
      tok->kind = TokenKind::kNeg;
      return Status::Ok();
    }
    if (ConsumeUtf8("≤")) {  // ≤
      tok->kind = TokenKind::kLe;
      return Status::Ok();
    }
    if (ConsumeUtf8("≥")) {  // ≥
      tok->kind = TokenKind::kGe;
      return Status::Ok();
    }
    if (ConsumeUtf8("≠")) {  // ≠
      tok->kind = TokenKind::kNe;
      return Status::Ok();
    }
    if (ConsumeUtf8("←")) {  // ←
      tok->kind = TokenKind::kLeftArrow;
      return Status::Ok();
    }
    if (ConsumeUtf8("→")) {  // →
      tok->kind = TokenKind::kRightArrow;
      return Status::Ok();
    }

    switch (c) {
      case '.':
        Advance();
        tok->kind = TokenKind::kDot;
        return Status::Ok();
      case ',':
        Advance();
        tok->kind = TokenKind::kComma;
        return Status::Ok();
      case '(':
        Advance();
        tok->kind = TokenKind::kLParen;
        return Status::Ok();
      case ')':
        Advance();
        tok->kind = TokenKind::kRParen;
        return Status::Ok();
      case '?':
        Advance();
        tok->kind = TokenKind::kQuestion;
        return Status::Ok();
      case ';':
        Advance();
        tok->kind = TokenKind::kSemicolon;
        return Status::Ok();
      case '+':
        Advance();
        tok->kind = TokenKind::kPlus;
        return Status::Ok();
      case '*':
        Advance();
        tok->kind = TokenKind::kStar;
        return Status::Ok();
      case '/':
        Advance();
        tok->kind = TokenKind::kSlash;
        return Status::Ok();
      case '-':
        Advance();
        if (Peek() == '>') {
          Advance();
          tok->kind = TokenKind::kRightArrow;
        } else {
          tok->kind = TokenKind::kMinus;
        }
        return Status::Ok();
      case '<':
        Advance();
        if (Peek() == '=') {
          Advance();
          tok->kind = TokenKind::kLe;
        } else if (Peek() == '-') {
          Advance();
          tok->kind = TokenKind::kLeftArrow;
        } else {
          tok->kind = TokenKind::kLt;
        }
        return Status::Ok();
      case '>':
        Advance();
        if (Peek() == '=') {
          Advance();
          tok->kind = TokenKind::kGe;
        } else {
          tok->kind = TokenKind::kGt;
        }
        return Status::Ok();
      case '=':
        Advance();
        tok->kind = TokenKind::kEq;
        return Status::Ok();
      case '!':
        Advance();
        if (Peek() == '=') {
          Advance();
          tok->kind = TokenKind::kNe;
        } else {
          tok->kind = TokenKind::kNeg;
        }
        return Status::Ok();
      case '"':
        return LexString(tok);
      default:
        break;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) return LexNumber(tok);
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return LexWord(tok);
    }
    return ErrorHere(StrCat("unexpected character '", std::string(1, c), "'"));
  }

  Status LexString(Token* tok) {
    Advance();  // opening quote
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_];
      Advance();
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          return ErrorHere("backslash at end of string literal");
        }
        char e = text_[pos_];
        Advance();
        switch (e) {
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'r':
            out += '\r';
            break;
          case '\\':
            out += '\\';
            break;
          case '"':
            out += '"';
            break;
          case 'x': {
            int value = 0;
            for (int i = 0; i < 2; ++i) {
              int digit = HexDigit(Peek());
              if (digit < 0) {
                return ErrorHere(
                    "\\x escape requires two hex digits in string literal");
              }
              value = value * 16 + digit;
              Advance();
            }
            out += static_cast<char>(value);
            break;
          }
          default:
            return ErrorHere(StrCat("unknown escape '\\",
                                    std::string(1, e),
                                    "' in string literal"));
        }
      } else {
        out += c;
      }
    }
    if (pos_ >= text_.size()) return ErrorHere("unterminated string literal");
    Advance();  // closing quote
    tok->kind = TokenKind::kString;
    tok->text = std::move(out);
    return Status::Ok();
  }

  // Lexes an integer, double, or date (d/d/d with no intervening spaces).
  Status LexNumber(Token* tok) {
    size_t start = pos_;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) Advance();

    // Date: digits '/' digits '/' digits.
    if (Peek() == '/' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
      size_t save = pos_;
      int save_line = line_, save_col = column_;
      Advance();  // '/'
      while (std::isdigit(static_cast<unsigned char>(Peek()))) Advance();
      if (Peek() == '/' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
        Advance();  // '/'
        while (std::isdigit(static_cast<unsigned char>(Peek()))) Advance();
        std::string_view text = text_.substr(start, pos_ - start);
        Result<Date> d = Date::Parse(text);
        if (!d.ok()) return d.status();
        tok->kind = TokenKind::kDate;
        tok->date_value = *d;
        return Status::Ok();
      }
      // Not a date after all (e.g. `6/2` division): rewind to the slash.
      pos_ = save;
      line_ = save_line;
      column_ = save_col;
    }

    bool is_double = false;
    if (Peek() == '.' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
      is_double = true;
      Advance();
      while (std::isdigit(static_cast<unsigned char>(Peek()))) Advance();
    }
    if (Peek() == 'e' || Peek() == 'E') {
      size_t ahead = 1;
      if (Peek(1) == '+' || Peek(1) == '-') ahead = 2;
      if (std::isdigit(static_cast<unsigned char>(Peek(ahead)))) {
        is_double = true;
        for (size_t i = 0; i < ahead; ++i) Advance();
        while (std::isdigit(static_cast<unsigned char>(Peek()))) Advance();
      }
    }

    std::string_view text = text_.substr(start, pos_ - start);
    if (is_double) {
      double d = 0;
      auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(), d);
      if (ec != std::errc() || p != text.data() + text.size()) {
        return ErrorHere(StrCat("bad number '", text, "'"));
      }
      tok->kind = TokenKind::kDouble;
      tok->double_value = d;
    } else {
      int64_t i = 0;
      auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(), i);
      if (ec != std::errc() || p != text.data() + text.size()) {
        return ErrorHere(StrCat("bad integer '", text, "'"));
      }
      tok->kind = TokenKind::kInt;
      tok->int_value = i;
    }
    return Status::Ok();
  }

  Status LexWord(Token* tok) {
    size_t start = pos_;
    while (std::isalnum(static_cast<unsigned char>(Peek())) || Peek() == '_') {
      Advance();
    }
    std::string word(text_.substr(start, pos_ - start));
    tok->kind = std::isupper(static_cast<unsigned char>(word[0]))
                    ? TokenKind::kVariable
                    : TokenKind::kIdent;
    tok->text = std::move(word);
    return Status::Ok();
  }

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

Result<std::vector<Token>> Lex(std::string_view text) {
  return LexerImpl(text).Run();
}

}  // namespace idl
