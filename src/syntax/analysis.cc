#include "syntax/analysis.h"

#include <algorithm>
#include <unordered_set>

#include "common/str_util.h"
#include "syntax/printer.h"

namespace idl {

namespace {

void AppendUnique(const std::vector<std::string>& vars,
                  std::vector<std::string>* out) {
  for (const auto& v : vars) {
    if (std::find(out->begin(), out->end(), v) == out->end()) {
      out->push_back(v);
    }
  }
}

// Collects variables that occur anywhere under an insert-marked expression.
void CollectInsertVars(const Expr& expr, bool under_insert,
                       std::vector<std::string>* out) {
  bool here = under_insert || expr.update == UpdateOp::kInsert;
  switch (expr.kind) {
    case Expr::Kind::kEpsilon:
      return;
    case Expr::Kind::kAtomic:
      if (here) expr.term.CollectVars(out);
      return;
    case Expr::Kind::kTuple:
      for (const auto& item : expr.items) {
        bool item_insert = here || item.update == UpdateOp::kInsert;
        if (item_insert && item.attr_is_var) out->push_back(item.attr);
        if (item.expr) CollectInsertVars(*item.expr, item_insert, out);
      }
      return;
    case Expr::Kind::kSet:
      if (expr.set_inner) CollectInsertVars(*expr.set_inner, here, out);
      return;
  }
}

// True if `expr` is a *simple* expression per §4.1/§6: only '=' atomic
// expressions, no negation, no update markers.
bool IsSimpleExpr(const Expr& expr) {
  if (expr.negated || expr.update != UpdateOp::kNone) return false;
  switch (expr.kind) {
    case Expr::Kind::kEpsilon:
      return true;
    case Expr::Kind::kAtomic:
      return expr.relop == RelOp::kEq;
    case Expr::Kind::kTuple:
      for (const auto& item : expr.items) {
        if (item.update != UpdateOp::kNone) return false;
        if (item.expr && !IsSimpleExpr(*item.expr)) return false;
      }
      return true;
    case Expr::Kind::kSet:
      return expr.set_inner == nullptr || IsSimpleExpr(*expr.set_inner);
  }
  return false;
}

}  // namespace

void CollectPositiveVars(const Expr& expr, std::vector<std::string>* out) {
  if (expr.negated) return;
  switch (expr.kind) {
    case Expr::Kind::kEpsilon:
      return;
    case Expr::Kind::kAtomic:
      if (!expr.guard_var.empty()) out->push_back(expr.guard_var);
      expr.term.CollectVars(out);
      return;
    case Expr::Kind::kTuple:
      for (const auto& item : expr.items) {
        if (item.attr_is_var) out->push_back(item.attr);
        if (item.expr) CollectPositiveVars(*item.expr, out);
      }
      return;
    case Expr::Kind::kSet:
      if (expr.set_inner) CollectPositiveVars(*expr.set_inner, out);
      return;
  }
}

bool ContainsNegation(const Expr& expr) {
  if (expr.negated) return true;
  switch (expr.kind) {
    case Expr::Kind::kEpsilon:
    case Expr::Kind::kAtomic:
      return false;
    case Expr::Kind::kTuple:
      for (const auto& item : expr.items) {
        if (item.expr && ContainsNegation(*item.expr)) return true;
      }
      return false;
    case Expr::Kind::kSet:
      return expr.set_inner != nullptr && ContainsNegation(*expr.set_inner);
  }
  return false;
}

Result<QueryInfo> AnalyzeQuery(const Query& query) {
  QueryInfo info;
  for (const auto& conjunct : query.conjuncts) {
    if (conjunct->HasUpdate()) info.is_update_request = true;
    std::vector<std::string> vars;
    CollectPositiveVars(*conjunct, &vars);
    AppendUnique(vars, &info.free_vars);
  }
  return info;
}

Status ValidateRule(const Rule& rule) {
  if (rule.head == nullptr) return InvalidArgument("rule has no head");
  if (rule.head->kind != Expr::Kind::kTuple) {
    return Unsafe(
        StrCat("rule head must be a tuple expression on the universe: ",
               ToString(*rule.head)));
  }
  if (!IsSimpleExpr(*rule.head)) {
    return Unsafe(StrCat(
        "rule head must be a simple expression (only '=', no negation, "
        "no updates): ",
        ToString(*rule.head)));
  }
  std::vector<std::string> head_vars;
  rule.head->CollectVars(&head_vars);

  std::vector<std::string> body_vars;
  for (const auto& conjunct : rule.body) {
    if (conjunct->HasUpdate()) {
      return Unsafe(StrCat("rule body must not contain updates: ",
                           ToString(*conjunct)));
    }
    CollectPositiveVars(*conjunct, &body_vars);
  }
  std::unordered_set<std::string> bound(body_vars.begin(), body_vars.end());
  for (const auto& v : head_vars) {
    if (!bound.contains(v)) {
      return Unsafe(StrCat("head variable ", v,
                           " does not occur positively in the rule body"));
    }
  }
  return Status::Ok();
}

Result<ClauseInfo> AnalyzeClause(const ProgramClause& clause) {
  if (clause.name_path.empty()) {
    return InvalidArgument("update program has an empty name path");
  }
  std::vector<std::string> insert_vars;
  for (const auto& conjunct : clause.body) {
    CollectInsertVars(*conjunct, /*under_insert=*/false, &insert_vars);
  }
  std::unordered_set<std::string> insert_set(insert_vars.begin(),
                                             insert_vars.end());
  ClauseInfo info;
  for (const auto& param : clause.params) {
    if (insert_set.contains(param.var)) {
      info.required_params.push_back(param.attr);
    }
  }
  return info;
}

}  // namespace idl
