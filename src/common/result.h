// Result<T>: value-or-Status, the return type of fallible producing calls.

#ifndef IDL_COMMON_RESULT_H_
#define IDL_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/logging.h"
#include "common/status.h"

namespace idl {

template <typename T>
class Result {
 public:
  // Implicit construction from a value or an error status keeps call sites
  // terse: `return value;` / `return NotFound(...)`.
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : rep_(std::move(status)) {  // NOLINT
    IDL_CHECK(!std::get<Status>(rep_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(rep_);
  }

  // Value access. Requires ok().
  const T& value() const& {
    IDL_CHECK(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    IDL_CHECK(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    IDL_CHECK(ok());
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

// Unwraps a Result into `lhs`, or propagates its error.
#define IDL_ASSIGN_OR_RETURN(lhs, expr)                    \
  IDL_ASSIGN_OR_RETURN_IMPL_(                              \
      IDL_RESULT_CONCAT_(idl_result_, __LINE__), lhs, expr)

#define IDL_RESULT_CONCAT_INNER_(a, b) a##b
#define IDL_RESULT_CONCAT_(a, b) IDL_RESULT_CONCAT_INNER_(a, b)

#define IDL_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr)     \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

}  // namespace idl

#endif  // IDL_COMMON_RESULT_H_
