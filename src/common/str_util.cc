#include "common/str_util.h"

#include <charconv>
#include <cstdio>

namespace idl {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string QuoteString(std::string_view s) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default: {
        // Control bytes get \xNN so the literal re-lexes to the same bytes;
        // everything >= 0x80 passes through raw (UTF-8 stays readable).
        unsigned char u = static_cast<unsigned char>(c);
        if (u < 0x20 || u == 0x7f) {
          out += "\\x";
          out += kHex[u >> 4];
          out += kHex[u & 0xf];
        } else {
          out += c;
        }
      }
    }
  }
  out += '"';
  return out;
}

std::string DoubleToString(double d) {
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  (void)ec;
  std::string out(buf, ptr);
  // Ensure the token re-lexes as a double, not an int.
  if (out.find('.') == std::string::npos &&
      out.find('e') == std::string::npos &&
      out.find("inf") == std::string::npos &&
      out.find("nan") == std::string::npos) {
    out += ".0";
  }
  return out;
}

}  // namespace idl
