#include "common/trace.h"

#include <time.h>

#include <chrono>
#include <cstdio>
#include <mutex>

#include "common/str_util.h"

namespace idl {

namespace {

std::mutex& Mutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

std::vector<TraceSpanRecord>& Records() {
  static std::vector<TraceSpanRecord>* records =
      new std::vector<TraceSpanRecord>();
  return *records;
}

// Per-thread stack of open span ids; innermost last.
thread_local std::vector<uint64_t> tls_open_spans;

int64_t WallNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string FormatTraceMs(double ms, bool mask) {
  if (mask) return "-";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2fms", ms);
  return buf;
}

}  // namespace

int64_t ThreadCpuNs() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
  }
#endif
  return 0;
}

std::atomic<bool> Trace::enabled_{false};

void Trace::Enable() {
  Clear();
  enabled_.store(true, std::memory_order_relaxed);
}

void Trace::Disable() { enabled_.store(false, std::memory_order_relaxed); }

void Trace::Clear() {
  std::lock_guard<std::mutex> lock(Mutex());
  Records().clear();
}

uint64_t Trace::CurrentSpan() {
  return tls_open_spans.empty() ? 0 : tls_open_spans.back();
}

uint64_t Trace::Open(const char* name, std::string detail,
                     uint64_t explicit_parent, bool has_explicit_parent) {
  std::lock_guard<std::mutex> lock(Mutex());
  std::vector<TraceSpanRecord>& records = Records();
  TraceSpanRecord record;
  record.id = records.size() + 1;  // id == index + 1
  record.parent =
      has_explicit_parent ? explicit_parent : CurrentSpan();
  if (record.parent > 0 && record.parent <= records.size()) {
    record.depth = records[record.parent - 1].depth + 1;
  }
  record.name = name;
  record.detail = std::move(detail);
  records.push_back(std::move(record));
  tls_open_spans.push_back(records.size());
  return records.size();
}

void Trace::Close(uint64_t id, double wall_ms, double cpu_ms) {
  if (!tls_open_spans.empty() && tls_open_spans.back() == id) {
    tls_open_spans.pop_back();
  }
  std::lock_guard<std::mutex> lock(Mutex());
  std::vector<TraceSpanRecord>& records = Records();
  if (id == 0 || id > records.size()) return;  // cleared while open
  TraceSpanRecord& record = records[id - 1];
  record.wall_ms = wall_ms;
  record.cpu_ms = cpu_ms;
  record.closed = true;
}

std::vector<TraceSpanRecord> Trace::Snapshot() {
  std::lock_guard<std::mutex> lock(Mutex());
  return Records();
}

std::string Trace::Render(bool mask_timings) {
  std::string out;
  for (const TraceSpanRecord& record : Snapshot()) {
    out.append(static_cast<size_t>(record.depth) * 2, ' ');
    out += record.name;
    if (!record.detail.empty()) {
      out += ' ';
      out += record.detail;
    }
    out += StrCat(" wall=", FormatTraceMs(record.wall_ms, mask_timings),
                  " cpu=", FormatTraceMs(record.cpu_ms, mask_timings), "\n");
  }
  return out;
}

std::string Trace::RenderJson(bool mask_timings) {
  std::string out = "{\"spans\":[";
  bool first = true;
  for (const TraceSpanRecord& record : Snapshot()) {
    if (!first) out += ",";
    first = false;
    out += StrCat("{\"id\":", record.id, ",\"parent\":", record.parent,
                  ",\"name\":", QuoteString(record.name),
                  ",\"detail\":", QuoteString(record.detail));
    if (mask_timings) {
      out += ",\"wall_ms\":null,\"cpu_ms\":null}";
    } else {
      out += StrCat(",\"wall_ms\":", DoubleToString(record.wall_ms),
                    ",\"cpu_ms\":", DoubleToString(record.cpu_ms), "}");
    }
  }
  out += "]}";
  return out;
}

TraceSpan::TraceSpan(const char* name, std::string detail) {
  if (!Trace::enabled()) return;
  Start(name, std::move(detail), 0, /*has_explicit_parent=*/false);
}

TraceSpan::TraceSpan(const char* name, std::string detail, uint64_t parent) {
  if (!Trace::enabled()) return;
  Start(name, std::move(detail), parent, /*has_explicit_parent=*/true);
}

void TraceSpan::Start(const char* name, std::string detail,
                      uint64_t explicit_parent, bool has_explicit_parent) {
  id_ = Trace::Open(name, std::move(detail), explicit_parent,
                    has_explicit_parent);
  wall_start_ns_ = WallNowNs();
  cpu_start_ns_ = ThreadCpuNs();
}

TraceSpan::~TraceSpan() {
  if (id_ == 0) return;
  double wall_ms =
      static_cast<double>(WallNowNs() - wall_start_ns_) / 1e6;
  double cpu_ms = static_cast<double>(ThreadCpuNs() - cpu_start_ns_) / 1e6;
  Trace::Close(id_, wall_ms, cpu_ms);
}

}  // namespace idl
