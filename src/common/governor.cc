#include "common/governor.h"

#include <algorithm>

#include "common/metrics.h"
#include "common/str_util.h"

namespace idl {

namespace {

// Internal abort classification, stored as one atomic int so every
// checkpoint after the first failure repeats the same status.
enum AbortReason : int {
  kNone = 0,
  kAbortCancelled,
  kAbortInjected,  // cancel_at_checkpoint seam; reported as kCancelled
  kAbortDeadline,
  kAbortPasses,
  kAbortDerivations,
  kAbortCells,
};

// Messages carry the configured limit, never a live counter: the naive and
// semi-naive strategies reach a budget at different counter values, and the
// golden corpus requires identical transcripts from both.
Status StatusFor(int reason, const GovernorLimits& limits) {
  switch (reason) {
    case kNone:
      return Status::Ok();
    case kAbortCancelled:
      return Cancelled("request cancelled");
    case kAbortInjected:
      return Cancelled(StrCat("request cancelled (injected at checkpoint ",
                              limits.cancel_at_checkpoint, ")"));
    case kAbortDeadline:
      return DeadlineExceeded(
          StrCat("request exceeded its deadline (deadline_ms=",
                 limits.deadline_ms, ")"));
    case kAbortPasses:
      return ResourceExhausted(
          StrCat("fixpoint did not converge within max_passes=",
                 limits.max_passes));
    case kAbortDerivations:
      return ResourceExhausted(
          StrCat("evaluation exceeded max_derivations=",
                 limits.max_derivations));
    case kAbortCells:
      return ResourceExhausted(
          StrCat("universe exceeded max_universe_cells=",
                 limits.max_universe_cells));
  }
  return Internal("unknown governor abort reason");
}

// The wall clock is consulted on every stride-th checkpoint (and on every
// explicit budget charge), keeping the fast path to two relaxed atomics.
constexpr uint64_t kTimeCheckStride = 16;

const char* AbortMetricName(int reason) {
  switch (reason) {
    case kAbortCancelled:
    case kAbortInjected:
      return "governor.aborts.cancelled";
    case kAbortDeadline:
      return "governor.aborts.deadline";
    case kAbortPasses:
      return "governor.aborts.passes";
    case kAbortDerivations:
      return "governor.aborts.derivations";
    case kAbortCells:
      return "governor.aborts.cells";
  }
  return "governor.aborts.other";
}

// Stores the abort reason and, iff this is the governor's *first* abort
// (exchange saw kNone), bumps the per-reason process metric — sticky
// repeats at later checkpoints must not inflate the count.
void RecordAbort(std::atomic<int>& abort_code, int reason) {
  if (abort_code.exchange(reason, std::memory_order_relaxed) == kNone) {
    MetricsRegistry::Global().counter(AbortMetricName(reason))->Increment();
  }
}

}  // namespace

ResourceGovernor::ResourceGovernor(const GovernorLimits& limits,
                                   CancelHandle cancel,
                                   const ResourceGovernor* parent)
    : limits_(limits),
      cancel_(std::move(cancel)),
      parent_(parent),
      start_(std::chrono::steady_clock::now()),
      deadline_(limits.deadline_ms > 0
                    ? start_ + std::chrono::milliseconds(limits.deadline_ms)
                    : start_) {}

Status ResourceGovernor::CheckNow(bool check_time) const {
  int aborted = abort_code_.load(std::memory_order_relaxed);
  if (aborted != kNone) return StatusFor(aborted, limits_);
  int reason = kNone;
  if (cancel_.flag_->load(std::memory_order_relaxed)) {
    reason = kAbortCancelled;
  } else if (limits_.cancel_at_checkpoint > 0 &&
             checkpoints_.load(std::memory_order_relaxed) >=
                 limits_.cancel_at_checkpoint) {
    reason = kAbortInjected;
  } else if (check_time && limits_.deadline_ms > 0 &&
             std::chrono::steady_clock::now() >= deadline_) {
    reason = kAbortDeadline;
  }
  if (reason != kNone) {
    RecordAbort(abort_code_, reason);
    return StatusFor(reason, limits_);
  }
  if (parent_ != nullptr) {
    Status from_parent = parent_->Checkpoint();
    if (!from_parent.ok()) {
      // Sticky here too: the child keeps failing even if it later runs
      // checkpoints faster than the parent. The parent already counted the
      // abort in the metrics, so the child only records the code.
      abort_code_.store(kAbortCancelled, std::memory_order_relaxed);
      return from_parent;
    }
  }
  return Status::Ok();
}

Status ResourceGovernor::Checkpoint() const {
  uint64_t n = checkpoints_.fetch_add(1, std::memory_order_relaxed) + 1;
  return CheckNow(/*check_time=*/n % kTimeCheckStride == 0 || n == 1);
}

Status ResourceGovernor::CheckDeadlineNow() const {
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  return CheckNow(/*check_time=*/true);
}

Status ResourceGovernor::ChargePass() const {
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  IDL_RETURN_IF_ERROR(CheckNow(/*check_time=*/true));
  int used = passes_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (limits_.max_passes > 0 && used > limits_.max_passes) {
    RecordAbort(abort_code_, kAbortPasses);
    return StatusFor(kAbortPasses, limits_);
  }
  return Status::Ok();
}

Status ResourceGovernor::ChargeDerivations(uint64_t n) const {
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  IDL_RETURN_IF_ERROR(CheckNow(/*check_time=*/false));
  uint64_t used = derivations_.fetch_add(n, std::memory_order_relaxed) + n;
  if (limits_.max_derivations > 0 && used > limits_.max_derivations) {
    RecordAbort(abort_code_, kAbortDerivations);
    return StatusFor(kAbortDerivations, limits_);
  }
  return Status::Ok();
}

Status ResourceGovernor::ChargeCells(uint64_t n) const {
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  IDL_RETURN_IF_ERROR(CheckNow(/*check_time=*/false));
  uint64_t used = cells_.fetch_add(n, std::memory_order_relaxed) + n;
  if (limits_.max_universe_cells > 0 && used > limits_.max_universe_cells) {
    RecordAbort(abort_code_, kAbortCells);
    return StatusFor(kAbortCells, limits_);
  }
  return Status::Ok();
}

int64_t ResourceGovernor::RemainingMs() const {
  int64_t remaining = -1;
  if (limits_.deadline_ms > 0) {
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline_ - std::chrono::steady_clock::now())
                    .count();
    remaining = left < 0 ? 0 : left;
  }
  if (parent_ != nullptr) {
    int64_t from_parent = parent_->RemainingMs();
    if (from_parent >= 0) {
      remaining = remaining < 0 ? from_parent
                                : std::min(remaining, from_parent);
    }
  }
  return remaining;
}

bool ResourceGovernor::cancelled() const {
  return cancel_.flag_->load(std::memory_order_relaxed) ||
         (parent_ != nullptr && parent_->cancelled());
}

GovernorUsage ResourceGovernor::Usage() const {
  GovernorUsage usage;
  usage.checkpoints = checkpoints_.load(std::memory_order_relaxed);
  usage.passes = passes_.load(std::memory_order_relaxed);
  usage.derivations = derivations_.load(std::memory_order_relaxed);
  usage.peak_cells = cells_.load(std::memory_order_relaxed);
  usage.remaining_ms = RemainingMs();
  int aborted = abort_code_.load(std::memory_order_relaxed);
  if (aborted != kNone) {
    usage.abort_reason = StatusFor(aborted, limits_).ToString();
  }
  return usage;
}

std::string FormatGovernorUsage(const GovernorUsage& usage,
                                const GovernorLimits& limits) {
  auto bound = [](uint64_t limit) {
    return limit == 0 ? std::string("-") : StrCat(limit);
  };
  return StrCat(
      "governor: passes=", usage.passes, "/",
      bound(static_cast<uint64_t>(limits.max_passes)),
      " derivations=", usage.derivations, "/", bound(limits.max_derivations),
      " cells=", usage.peak_cells, "/", bound(limits.max_universe_cells),
      " checkpoints=", usage.checkpoints, " remaining_ms=",
      usage.remaining_ms < 0 ? std::string("-") : StrCat(usage.remaining_ms),
      " status=",
      usage.abort_reason.empty() ? std::string("completed")
                                 : usage.abort_reason,
      "\n");
}

}  // namespace idl
