#include "common/thread_pool.h"

namespace idl {

ThreadPool::ThreadPool(size_t num_workers) {
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

size_t ThreadPool::DefaultWorkers() {
  unsigned hc = std::thread::hardware_concurrency();
  return hc > 1 ? hc - 1 : 0;
}

void ThreadPool::RunTask(const std::function<void(size_t, size_t)>& fn,
                         size_t task, size_t slot) {
  try {
    fn(task, slot);
  } catch (...) {
    std::lock_guard<std::mutex> lock(exception_mu_);
    if (!first_exception_) first_exception_ = std::current_exception();
  }
}

void ThreadPool::WorkerLoop(size_t slot) {
  uint64_t seen_batch = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] {
      return stop_ || (fn_ != nullptr && batch_seq_ != seen_batch);
    });
    if (stop_) return;
    seen_batch = batch_seq_;
    ++busy_;
    while (next_task_ < num_tasks_) {
      size_t task = next_task_++;
      const auto* fn = fn_;
      lock.unlock();
      RunTask(*fn, task, slot);
      lock.lock();
    }
    --busy_;
    if (busy_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::ParallelFor(
    size_t num_tasks, const std::function<void(size_t, size_t)>& fn) {
  if (num_tasks == 0) return;
  if (workers_.empty() || num_tasks == 1) {
    for (size_t task = 0; task < num_tasks; ++task) RunTask(fn, task, 0);
    RethrowPendingException();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    num_tasks_ = num_tasks;
    next_task_ = 0;
    ++batch_seq_;
  }
  work_cv_.notify_all();
  // The calling thread drains tasks alongside the workers (slot 0).
  std::unique_lock<std::mutex> lock(mu_);
  while (next_task_ < num_tasks_) {
    size_t task = next_task_++;
    lock.unlock();
    RunTask(fn, task, 0);
    lock.lock();
  }
  // All tasks claimed; wait for workers still executing theirs. A worker
  // waking late finds no task to claim and never touches fn_ again.
  done_cv_.wait(lock, [&] { return busy_ == 0; });
  fn_ = nullptr;
  lock.unlock();
  RethrowPendingException();
}

void ThreadPool::RethrowPendingException() {
  std::exception_ptr e;
  {
    std::lock_guard<std::mutex> lock(exception_mu_);
    e = first_exception_;
    first_exception_ = nullptr;
  }
  if (e) std::rethrow_exception(e);
}

// ---- BoundedExecutor -------------------------------------------------------

BoundedExecutor::BoundedExecutor(size_t num_threads, size_t max_queue)
    : max_queue_(max_queue) {
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

BoundedExecutor::~BoundedExecutor() { Shutdown(/*drain=*/true); }

Status BoundedExecutor::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return FailedPrecondition("executor is shut down");
    }
    if (queue_.size() >= max_queue_) {
      return ResourceExhausted("executor queue full");
    }
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
  return Status::Ok();
}

void BoundedExecutor::Shutdown(bool drain) {
  std::vector<std::thread> threads;
  std::deque<std::function<void()>> discarded;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!shutdown_) {
      shutdown_ = true;
      drain_ = drain;
    }
    if (!drain_) discarded.swap(queue_);
    threads.swap(threads_);
  }
  work_cv_.notify_all();
  for (auto& t : threads) t.join();
  // `discarded` tasks are destroyed here, outside the lock, without running.
}

size_t BoundedExecutor::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void BoundedExecutor::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) return;  // shutdown_ && (drained or discarded)
    if (shutdown_ && !drain_) return;
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    task();
    lock.lock();
  }
}

}  // namespace idl
