// Structured request tracing: nested spans with wall and CPU timings.
//
// A span covers one phase of the request path — parse, materialize, a
// stratum, a fixpoint pass, a site fetch, write-back — and spans nest, so a
// finished trace is a tree that attributes the request's wall time to its
// phases. The companion registry (common/metrics.h) accumulates *totals*
// across requests; a trace explains *one* request.
//
//   {
//     TraceSpan span("materialize", "strategy=semi-naive");
//     ...                       // child spans opened here nest under it
//   }                           // timings recorded at scope exit
//
// Nesting is per-thread (a thread-local span stack). Work handed to a
// thread pool keeps its attribution by capturing Trace::CurrentSpan()
// *before* the fan-out and opening child spans with that explicit parent:
//
//   uint64_t parent = Trace::CurrentSpan();
//   pool->ParallelFor(n, [&](size_t i) {
//     TraceSpan span("task", detail, parent);
//     ...
//   });
//
// Tracing is off by default and costs one relaxed atomic load per
// (would-be) span when off — cheap enough to leave the instrumentation in
// every hot phase unconditionally (bench_seminaive pins the overhead at
// < 2% on the 1000-stock closure; see EXPERIMENTS.md). When on, span
// records are appended under a mutex at *open* (so ids are parent-before-
// child) and timings are filled in at close; wall time is steady_clock,
// CPU time is the calling thread's CLOCK_THREAD_CPUTIME_ID.
//
// Render() draws the tree in open order, two-space indent per depth:
//   materialize strategy=semi-naive wall=1.23ms cpu=1.20ms
//     stratum 0 wall=0.80ms cpu=0.79ms
// With mask_timings (golden tests; the corpus must be byte-stable) every
// timing renders as "-". RenderJson() emits the flat span list:
//   {"spans":[{"id":1,"parent":0,"name":...,"detail":...,
//              "wall_ms":...,"cpu_ms":...},...]}
// Format locked by tests/explain_format_test.cc.
//
// The span buffer grows until Clear(); Enable() implies Clear(). Tracing
// state is process-global — meant for the shell, benches and tests, not for
// concurrent requests wanting separate traces (they would interleave into
// one tree, which is still attributable via parent ids).

#ifndef IDL_COMMON_TRACE_H_
#define IDL_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace idl {

// One recorded span. parent == 0 means a root span (ids start at 1).
struct TraceSpanRecord {
  uint64_t id = 0;
  uint64_t parent = 0;
  int depth = 0;
  std::string name;
  std::string detail;    // "key=value ..." payload; may be empty
  double wall_ms = 0.0;  // filled at close; 0 for a still-open span
  double cpu_ms = 0.0;
  bool closed = false;
};

// The calling thread's consumed CPU time (CLOCK_THREAD_CPUTIME_ID) in
// nanoseconds; 0 where unavailable. Used by TraceSpan and by the view
// engine's per-phase CPU attribution.
int64_t ThreadCpuNs();

class Trace {
 public:
  // Clears any previous trace and starts recording.
  static void Enable();
  static void Disable();
  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  static void Clear();

  // Id of the calling thread's innermost open span, 0 if none (or tracing
  // is off). Capture before a fan-out; pass to TraceSpan's explicit-parent
  // constructor inside the tasks.
  static uint64_t CurrentSpan();

  // Copy of the recorded spans, in open order (parents before children).
  static std::vector<TraceSpanRecord> Snapshot();

  // Human tree / machine list; see file comment for the formats.
  static std::string Render(bool mask_timings = false);
  static std::string RenderJson(bool mask_timings = false);

 private:
  friend class TraceSpan;
  static uint64_t Open(const char* name, std::string detail,
                       uint64_t explicit_parent, bool has_explicit_parent);
  static void Close(uint64_t id, double wall_ms, double cpu_ms);

  static std::atomic<bool> enabled_;
};

// RAII span handle. Opens on construction when tracing is enabled, records
// timings on destruction. Cheap no-op (one relaxed load) when disabled.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, std::string detail = "");
  // Parents under `parent` (a Trace::CurrentSpan() value captured on the
  // spawning thread) instead of the calling thread's stack.
  TraceSpan(const char* name, std::string detail, uint64_t parent);

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan();

 private:
  void Start(const char* name, std::string detail, uint64_t explicit_parent,
             bool has_explicit_parent);

  uint64_t id_ = 0;  // 0: tracing was off at open; destructor is a no-op
  int64_t wall_start_ns_ = 0;
  int64_t cpu_start_ns_ = 0;
};

}  // namespace idl

#endif  // IDL_COMMON_TRACE_H_
