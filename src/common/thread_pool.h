// A small fixed-size worker pool for data-parallel batches.
//
// The view engine uses it to evaluate independent rule bodies of one
// evaluation level concurrently: the universe is immutable during the
// enumeration phase, so tasks share it read-only and only their result
// slots are written (one slot per task, no locking).
//
// Each task is handed a dense *worker slot* id: 0 for the calling thread
// (which participates in the batch), 1..num_workers() for pool threads.
// Callers use the slot to address per-worker scratch (e.g. a SetIndexCache)
// without synchronization.

#ifndef IDL_COMMON_THREAD_POOL_H_
#define IDL_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace idl {

class ThreadPool {
 public:
  // Spawns `num_workers` threads (0 is valid: every batch then runs inline
  // on the calling thread, which keeps single-core machines overhead-free).
  explicit ThreadPool(size_t num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const { return workers_.size(); }
  // Worker slots available to ParallelFor callbacks: pool threads plus the
  // calling thread.
  size_t num_slots() const { return workers_.size() + 1; }

  // Runs fn(task, slot) for every task in [0, num_tasks), claiming tasks
  // dynamically. Blocks until all tasks finished. Not reentrant: fn must not
  // call ParallelFor on the same pool. Errors normally flow out through the
  // caller's result slots; if a task does throw, the batch still runs to
  // completion (no task is skipped, no worker dies) and the *first* exception
  // is rethrown on the calling thread afterwards — the pool remains usable.
  void ParallelFor(size_t num_tasks,
                   const std::function<void(size_t task, size_t slot)>& fn);

  // Worker count that saturates this machine when the calling thread
  // participates too: hardware_concurrency - 1 (0 on single-core boxes and
  // when concurrency is unknown).
  static size_t DefaultWorkers();

 private:
  void WorkerLoop(size_t slot);
  // Runs one task, capturing the first exception for RethrowPendingException.
  void RunTask(const std::function<void(size_t, size_t)>& fn, size_t task,
               size_t slot);
  void RethrowPendingException();

  std::vector<std::thread> workers_;

  std::mutex exception_mu_;
  std::exception_ptr first_exception_;  // first throw of the current batch

  std::mutex mu_;
  std::condition_variable work_cv_;   // signals a new batch (or shutdown)
  std::condition_variable done_cv_;   // signals batch completion
  const std::function<void(size_t, size_t)>* fn_ = nullptr;
  size_t next_task_ = 0;
  size_t num_tasks_ = 0;
  size_t busy_ = 0;        // workers currently executing batch tasks
  uint64_t batch_seq_ = 0;  // bumped per batch so sleepy workers can't rejoin
  bool stop_ = false;
};

// A fixed-size worker pool behind a *bounded* task queue: Submit() rejects
// with kResourceExhausted once `max_queue` tasks are pending instead of
// growing without bound. This is the admission-control primitive — the
// server's commit queue is a BoundedExecutor(1, N), so "queue full" surfaces
// to clients as a retryable overload error at the door rather than as
// unbounded latency inside.
//
// Tasks must not throw (report failures through their own channels — e.g.
// the server parks a Status in the commit ticket); a throwing task
// terminates the process rather than being silently swallowed.
class BoundedExecutor {
 public:
  BoundedExecutor(size_t num_threads, size_t max_queue);
  // Drains: queued and running tasks complete before destruction returns.
  ~BoundedExecutor();

  BoundedExecutor(const BoundedExecutor&) = delete;
  BoundedExecutor& operator=(const BoundedExecutor&) = delete;

  // Enqueues `task` for asynchronous execution. Errors:
  //   kResourceExhausted  — queue full (admission rejection; retry later)
  //   kFailedPrecondition — Shutdown() already called
  Status Submit(std::function<void()> task);

  // Stops accepting work and joins the workers. With drain=true every
  // already-queued task still runs; with drain=false queued-but-unstarted
  // tasks are destroyed without running (their owners see them vanish —
  // see the server's shutdown path, which fails pending tickets first).
  // Idempotent; the first call's drain mode wins.
  void Shutdown(bool drain = true);

  // Tasks queued but not yet claimed by a worker (instantaneous; racy by
  // nature — use for admission heuristics and metrics, not invariants).
  size_t queue_depth() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  const size_t max_queue_;
  bool shutdown_ = false;
  bool drain_ = true;
};

}  // namespace idl

#endif  // IDL_COMMON_THREAD_POOL_H_
