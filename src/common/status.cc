#include "common/status.h"

namespace idl {

namespace {
const std::string kEmpty;
}  // namespace

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kAlreadyExists:
      return "already exists";
    case StatusCode::kParseError:
      return "parse error";
    case StatusCode::kTypeError:
      return "type error";
    case StatusCode::kUnsafe:
      return "unsafe";
    case StatusCode::kUnsupported:
      return "unsupported";
    case StatusCode::kFailedPrecondition:
      return "failed precondition";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kDeadlineExceeded:
      return "deadline exceeded";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kResourceExhausted:
      return "resource exhausted";
    case StatusCode::kDataLoss:
      return "data loss";
  }
  return "unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    rep_ = std::make_unique<Rep>(Rep{code, std::move(message)});
  }
}

Status::Status(const Status& other) {
  if (other.rep_ != nullptr) rep_ = std::make_unique<Rep>(*other.rep_);
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    rep_ = other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr;
  }
  return *this;
}

const std::string& Status::message() const {
  return rep_ ? rep_->message : kEmpty;
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out(StatusCodeName(rep_->code));
  if (!rep_->message.empty()) {
    out += ": ";
    out += rep_->message;
  }
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return Status();
  std::string message(context);
  message += ": ";
  message += rep_->message;
  return Status(rep_->code, std::move(message));
}

Status InvalidArgument(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFound(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status AlreadyExists(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
Status ParseError(std::string message) {
  return Status(StatusCode::kParseError, std::move(message));
}
Status TypeError(std::string message) {
  return Status(StatusCode::kTypeError, std::move(message));
}
Status Unsafe(std::string message) {
  return Status(StatusCode::kUnsafe, std::move(message));
}
Status Unsupported(std::string message) {
  return Status(StatusCode::kUnsupported, std::move(message));
}
Status FailedPrecondition(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status Internal(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status Unavailable(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}
Status DeadlineExceeded(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}
Status Cancelled(std::string message) {
  return Status(StatusCode::kCancelled, std::move(message));
}
Status ResourceExhausted(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
Status DataLoss(std::string message) {
  return Status(StatusCode::kDataLoss, std::move(message));
}

std::string FileOffsetContext(std::string_view filename, uint64_t offset) {
  std::string out(filename);
  out += ':';
  out += std::to_string(offset);
  return out;
}

}  // namespace idl
