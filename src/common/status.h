// Status: the error model used throughout the IDL library.
//
// The library does not use C++ exceptions. Every fallible operation returns
// an idl::Status (or idl::Result<T>, see result.h). A Status is either OK or
// carries an error code plus a human-readable message that accumulates
// context as it propagates up the stack.

#ifndef IDL_COMMON_STATUS_H_
#define IDL_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace idl {

// Error taxonomy. Codes are coarse; the message carries specifics.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kNotFound,          // named entity (db, relation, attribute, …) missing
  kAlreadyExists,     // duplicate registration
  kParseError,        // lexer/parser rejection (message has line:col)
  kTypeError,         // expression applied to wrong object category
  kUnsafe,            // query/rule violates a safety condition
  kUnsupported,       // legal in the paper but out of scope / disabled
  kFailedPrecondition,// state does not permit the operation
  kInternal,          // invariant violation (a bug in this library)
  kUnavailable,       // transient failure of a remote site (retriable)
  kDeadlineExceeded,  // request exceeded its deadline (retriable)
  kCancelled,         // request cancelled cooperatively (not retriable)
  kResourceExhausted, // a resource-governor budget was hit (not retriable)
  kDataLoss,          // durable state failed validation (checksum mismatch,
                      // unreadable snapshot) — never retriable, and never
                      // masked: recovery halts rather than serve bad data
};

// Returns the canonical lower-case name for `code` (e.g. "parse error").
std::string_view StatusCodeName(StatusCode code);

class Status {
 public:
  // OK status. Cheap: no allocation.
  Status() = default;

  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  // Message without the code prefix. Empty for OK.
  const std::string& message() const;

  // "parse error: unexpected ')' at 1:7", or "ok".
  std::string ToString() const;

  // Returns a copy of this status with `context` prepended to the message,
  // separated by ": ". No-op on OK statuses.
  Status WithContext(std::string_view context) const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code() && a.message() == b.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::unique_ptr<Rep> rep_;  // null == OK
};

// Constructor helpers, e.g. InvalidArgument("bad relop: ", tok).
Status InvalidArgument(std::string message);
Status NotFound(std::string message);
Status AlreadyExists(std::string message);
Status ParseError(std::string message);
Status TypeError(std::string message);
Status Unsafe(std::string message);
Status Unsupported(std::string message);
Status FailedPrecondition(std::string message);
Status Internal(std::string message);
Status Unavailable(std::string message);
Status DeadlineExceeded(std::string message);
// Neither kCancelled nor kResourceExhausted is retriable at the federation
// gateway: a cancelled request stays cancelled, and a budget does not grow
// back by retrying (the gateway's retriable set remains exactly
// kUnavailable and kDeadlineExceeded).
Status Cancelled(std::string message);
Status ResourceExhausted(std::string message);
Status DataLoss(std::string message);

// The context prefix for a failure at a byte position of a durable file:
// "<filename>:<offset>". Chained onto an I/O or validation status it yields
// messages like "wal.log:1042: checksum mismatch" — the positioned form
// every durability-layer error carries (format locked by
// tests/durability_test.cc).
std::string FileOffsetContext(std::string_view filename, uint64_t offset);

// Propagates a non-OK status to the caller.
#define IDL_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::idl::Status idl_status_ = (expr);            \
    if (!idl_status_.ok()) return idl_status_;     \
  } while (0)

}  // namespace idl

#endif  // IDL_COMMON_STATUS_H_
