// Invariant-checking macros. IDL_CHECK is always on; violations indicate a
// bug in this library (never a user error — user errors flow through Status).

#ifndef IDL_COMMON_LOGGING_H_
#define IDL_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

#define IDL_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "IDL_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#ifndef NDEBUG
#define IDL_DCHECK(cond) IDL_CHECK(cond)
#else
#define IDL_DCHECK(cond) \
  do {                   \
  } while (0)
#endif

#endif  // IDL_COMMON_LOGGING_H_
