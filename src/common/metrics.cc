#include "common/metrics.h"

#include <cstdio>

#include "common/str_util.h"

namespace idl {

namespace {

// Two-decimal fixed rendering, matching FormatMs in eval/explain.
std::string Fixed2(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

}  // namespace

void Histogram::Observe(double v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  double old_sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(old_sum, old_sum + v,
                                     std::memory_order_relaxed)) {
  }
  double old_min = min_.load(std::memory_order_relaxed);
  while (v < old_min &&
         !min_.compare_exchange_weak(old_min, v, std::memory_order_relaxed)) {
  }
  double old_max = max_.load(std::memory_order_relaxed);
  while (v > old_max &&
         !max_.compare_exchange_weak(old_max, v, std::memory_order_relaxed)) {
  }
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(kInf, std::memory_order_relaxed);
  max_.store(-kInf, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

std::string MetricsRegistry::Render(bool mask_values) const {
  std::lock_guard<std::mutex> lock(mu_);
  // One merged, name-sorted listing across the three kinds. The per-kind
  // maps are already sorted; a three-way merge keeps the global order.
  std::map<std::string, std::string> lines;
  for (const auto& [name, c] : counters_) {
    lines[name] = StrCat("counter ", name, " = ", c->value(), "\n");
  }
  for (const auto& [name, g] : gauges_) {
    lines[name] = StrCat("gauge ", name, " = ", g->value(), "\n");
  }
  for (const auto& [name, h] : histograms_) {
    // Counts are deterministic; the observed values are timings, so masked
    // renders (golden transcripts) keep count and hide sum/min/max.
    lines[name] =
        mask_values
            ? StrCat("histogram ", name, " = count=", h->count(),
                     " sum=- min=- max=-\n")
            : StrCat("histogram ", name, " = count=", h->count(),
                     " sum=", Fixed2(h->sum()), " min=", Fixed2(h->min()),
                     " max=", Fixed2(h->max()), "\n");
  }
  std::string out;
  for (const auto& [name, line] : lines) out += line;
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ",";
    first = false;
    out += StrCat("\"", name, "\":", c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += StrCat("\"", name, "\":", g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    out += StrCat("\"", name, "\":{\"count\":", h->count(),
                  ",\"sum\":", DoubleToString(h->sum()),
                  ",\"min\":", DoubleToString(h->min()),
                  ",\"max\":", DoubleToString(h->max()), "}");
  }
  out += "}}";
  return out;
}

}  // namespace idl
