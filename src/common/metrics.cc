#include "common/metrics.h"

#include <cmath>
#include <cstdio>

#include "common/str_util.h"

namespace idl {

namespace {

// Two-decimal fixed rendering, matching FormatMs in eval/explain.
std::string Fixed2(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

}  // namespace

namespace {

// 2^(j/8) for j = 0..7: the sub-bucket boundaries within one octave.
// Written out so bucket math needs no transcendental calls — frexp/ldexp
// and these constants are exact IEEE operations, keeping the rendered
// percentiles identical on every platform.
constexpr double kEighth[8] = {
    1.0,
    1.0905077326652577,
    1.189207115002721,
    1.2968395546510096,
    1.4142135623730951,
    1.5422108254079407,
    1.681792830507429,
    1.8340080864093424,
};

}  // namespace

size_t Histogram::BucketOf(double v) {
  if (!(v > kMinBound)) return 0;  // also catches NaN
  int exp = 0;
  double frac2 = 2.0 * std::frexp(v / kMinBound, &exp);  // in [1, 2)
  size_t j = 7;
  while (j > 0 && kEighth[j] > frac2) --j;
  // v / kMinBound = frac2 * 2^(exp-1) with frac2 in [kEighth[j], next).
  long idx = 1 + 8 * (static_cast<long>(exp) - 1) + static_cast<long>(j);
  if (idx < 1) return 1;
  if (idx >= static_cast<long>(kNumBuckets)) return kNumBuckets - 1;
  return static_cast<size_t>(idx);
}

double Histogram::BucketUpperBound(size_t bucket) {
  if (bucket == 0) return kMinBound;
  if (bucket >= kNumBuckets - 1) return kInf;  // overflow: clamp to max()
  return std::ldexp(kEighth[bucket % 8], static_cast<int>(bucket / 8)) *
         kMinBound;
}

double Histogram::Percentile(double q) const {
  uint64_t snapshot[kNumBuckets];
  uint64_t total = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    snapshot[i] = buckets_[i].load(std::memory_order_relaxed);
    total += snapshot[i];
  }
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * total));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  size_t bucket = kNumBuckets - 1;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += snapshot[i];
    if (seen >= rank) {
      bucket = i;
      break;
    }
  }
  double estimate = BucketUpperBound(bucket);
  double lo = min(), hi = max();
  if (estimate < lo) estimate = lo;
  if (estimate > hi) estimate = hi;
  return estimate;
}

void Histogram::Observe(double v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  buckets_[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
  double old_sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(old_sum, old_sum + v,
                                     std::memory_order_relaxed)) {
  }
  double old_min = min_.load(std::memory_order_relaxed);
  while (v < old_min &&
         !min_.compare_exchange_weak(old_min, v, std::memory_order_relaxed)) {
  }
  double old_max = max_.load(std::memory_order_relaxed);
  while (v > old_max &&
         !max_.compare_exchange_weak(old_max, v, std::memory_order_relaxed)) {
  }
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(kInf, std::memory_order_relaxed);
  max_.store(-kInf, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

std::string MetricsRegistry::Render(bool mask_values) const {
  std::lock_guard<std::mutex> lock(mu_);
  // One merged, name-sorted listing across the three kinds. The per-kind
  // maps are already sorted; a three-way merge keeps the global order.
  std::map<std::string, std::string> lines;
  for (const auto& [name, c] : counters_) {
    lines[name] = StrCat("counter ", name, " = ", c->value(), "\n");
  }
  for (const auto& [name, g] : gauges_) {
    lines[name] = StrCat("gauge ", name, " = ", g->value(), "\n");
  }
  for (const auto& [name, h] : histograms_) {
    // Counts are deterministic; the observed values are timings, so masked
    // renders (golden transcripts) keep count and hide sum/min/max.
    lines[name] =
        mask_values
            ? StrCat("histogram ", name, " = count=", h->count(),
                     " sum=- min=- max=- p50=- p95=- p99=-\n")
            : StrCat("histogram ", name, " = count=", h->count(),
                     " sum=", Fixed2(h->sum()), " min=", Fixed2(h->min()),
                     " max=", Fixed2(h->max()),
                     " p50=", Fixed2(h->Percentile(0.50)),
                     " p95=", Fixed2(h->Percentile(0.95)),
                     " p99=", Fixed2(h->Percentile(0.99)), "\n");
  }
  std::string out;
  for (const auto& [name, line] : lines) out += line;
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ",";
    first = false;
    out += StrCat("\"", name, "\":", c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += StrCat("\"", name, "\":", g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    out += StrCat("\"", name, "\":{\"count\":", h->count(),
                  ",\"sum\":", DoubleToString(h->sum()),
                  ",\"min\":", DoubleToString(h->min()),
                  ",\"max\":", DoubleToString(h->max()),
                  ",\"p50\":", DoubleToString(h->Percentile(0.50)),
                  ",\"p95\":", DoubleToString(h->Percentile(0.95)),
                  ",\"p99\":", DoubleToString(h->Percentile(0.99)), "}");
  }
  out += "}}";
  return out;
}

}  // namespace idl
