#include "common/interner.h"

#include "common/logging.h"

namespace idl {

StringInterner::Id StringInterner::Intern(std::string_view s) {
  auto it = ids_.find(std::string(s));
  if (it != ids_.end()) return it->second;
  Id id = static_cast<Id>(strings_.size());
  strings_.emplace_back(s);
  ids_.emplace(strings_.back(), id);
  return id;
}

StringInterner::Id StringInterner::Find(std::string_view s) const {
  auto it = ids_.find(std::string(s));
  return it == ids_.end() ? kNotInterned : it->second;
}

const std::string& StringInterner::Lookup(Id id) const {
  IDL_CHECK(id < strings_.size());
  return strings_[id];
}

}  // namespace idl
