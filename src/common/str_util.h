// Small string formatting helpers shared across the library.

#ifndef IDL_COMMON_STR_UTIL_H_
#define IDL_COMMON_STR_UTIL_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace idl {

// Concatenates the stream representation of all arguments.
// StrCat(1, " + ", 2.5) == "1 + 2.5".
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream out;
  (out << ... << args);
  return out.str();
}

// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// True iff `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

// Splits `s` on `sep`; keeps empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

// Quotes `s` as an IDL string literal: wraps in double quotes, escapes
// backslash, quote, newline, tab and carriage return, and renders other
// control bytes as \xNN. The result re-lexes to exactly `s` for every byte
// string (printer -> lexer round trip is total).
std::string QuoteString(std::string_view s);

// Renders a double the way IDL prints numeric atoms: shortest representation
// that round-trips, always containing '.' or 'e' so it re-lexes as a double.
std::string DoubleToString(double d);

}  // namespace idl

#endif  // IDL_COMMON_STR_UTIL_H_
