// ResourceGovernor: admission control for one governed request.
//
// IDL's higher-order rules quantify over relation and attribute names, and
// data-dependent views synthesize rule sets at runtime, so an interoperation
// program can diverge: a fixpoint that derives a fresh fact (or a fresh
// relation) every pass never converges. The governor is the shared,
// thread-safe context that makes every long-running layer *interruptible*
// and *bounded*:
//
//   * a wall-clock deadline (kDeadlineExceeded when it passes),
//   * a cooperative cancellation token settable from any thread
//     (kCancelled at the next checkpoint),
//   * a fixpoint pass budget and a derivation-step budget
//     (kResourceExhausted when exceeded),
//   * a memory budget tracked via universe cell/fact accounting
//     (kResourceExhausted when exceeded).
//
// Layers poll it cooperatively: the view engine per fixpoint pass, per rule
// batch and per derivation (including inside thread-pool workers), the query
// evaluator per enumeration step, the update applier and program executor
// per conjunct, and the federation gateway per site attempt (which also
// derives its per-site RequestContext deadline from the governor's remaining
// time). Checkpoints are two relaxed atomic ops on the fast path; the
// wall clock is consulted every kTimeCheckStride-th checkpoint, so a
// governed run with no limits costs effectively nothing (bench_governor
// pins the overhead at < 2% on the 1000-stock recursive closure).
//
// Strong exception safety is the *caller's* half of the contract: every
// evaluation stage writes into scratch state (the materializer derives into
// a copy of the base universe; session updates are snapshot-guarded) and
// publishes only on success, so a cancelled or budget-killed request leaves
// the session universe bit-identical to its pre-request state. The
// interrupt-injection suite (tests/governor_interrupt_test.cc) verifies
// this by structural-hash comparison while cancelling at every checkpoint.

#ifndef IDL_COMMON_GOVERNOR_H_
#define IDL_COMMON_GOVERNOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"

namespace idl {

// Budgets for one governed request. 0 always means "unbounded".
struct GovernorLimits {
  // Wall-clock deadline for the whole request, in milliseconds.
  int deadline_ms = 0;
  // Fixpoint passes across all strata of one materialization.
  int max_passes = 0;
  // Body substitutions processed (facts derived) by materializations.
  uint64_t max_derivations = 0;
  // Universe size budget: object-model cells (atoms, tuples, sets — see
  // CountCells in object/value.h), counting the base universe plus every
  // cell-creating change a materialization makes.
  uint64_t max_universe_cells = 0;
  // Interrupt-injection seam for tests: the governor behaves as cancelled
  // from its Nth checkpoint on. Never set in production paths.
  uint64_t cancel_at_checkpoint = 0;

  bool Unlimited() const {
    return deadline_ms == 0 && max_passes == 0 && max_derivations == 0 &&
           max_universe_cells == 0 && cancel_at_checkpoint == 0;
  }
};

// A cancellation token. Copies share one flag, so a handle held by another
// thread cancels the request that is evaluating under it. Cancel() is safe
// to call from any thread at any time; the evaluation notices at its next
// checkpoint and unwinds with kCancelled.
class CancelHandle {
 public:
  CancelHandle() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void Cancel() { flag_->store(true, std::memory_order_relaxed); }
  // Re-arms the handle for the next request.
  void Reset() { flag_->store(false, std::memory_order_relaxed); }
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

 private:
  friend class ResourceGovernor;
  std::shared_ptr<std::atomic<bool>> flag_;
};

// A snapshot of what a governed request has consumed.
struct GovernorUsage {
  uint64_t checkpoints = 0;   // cooperative polls answered
  int passes = 0;             // fixpoint passes charged
  uint64_t derivations = 0;   // derivation steps charged
  uint64_t peak_cells = 0;    // high-water universe cell account
  int64_t remaining_ms = -1;  // deadline headroom at snapshot; -1 = unbounded
  std::string abort_reason;   // empty until a limit fires; then the status
};

class ResourceGovernor {
 public:
  // Unbounded governor with its own (never-cancelled) token.
  ResourceGovernor() : ResourceGovernor(GovernorLimits()) {}

  // `parent`, when non-null, chains governors: this governor also fails its
  // checkpoints once the parent is cancelled or past its deadline (budget
  // counters stay local). The session uses this so a materialization
  // triggered inside a query still honours the query's deadline and cancel
  // token. The parent must outlive this governor.
  explicit ResourceGovernor(const GovernorLimits& limits,
                            CancelHandle cancel = CancelHandle(),
                            const ResourceGovernor* parent = nullptr);

  ResourceGovernor(const ResourceGovernor&) = delete;
  ResourceGovernor& operator=(const ResourceGovernor&) = delete;

  // The cooperative poll. OK, or the abort status: kCancelled,
  // kDeadlineExceeded, or (from the Charge* methods' budgets) whatever
  // already fired — once a governor has aborted, every later checkpoint
  // returns the same status, so one missed return cannot resurrect a
  // request. Thread-safe; called concurrently from pool workers.
  Status Checkpoint() const;

  // Budget charges. Each implies a checkpoint and returns the abort status
  // when the corresponding budget (or any earlier limit) is exceeded.
  Status ChargePass() const;
  Status ChargeDerivations(uint64_t n) const;
  Status ChargeCells(uint64_t n) const;

  // A checkpoint that always consults the wall clock (Checkpoint() only
  // does so every kTimeCheckStride-th poll, so a governor can be past its
  // deadline without having noticed yet). The federation gateway calls this
  // before dispatching a site RPC so an exhausted request fails fast with
  // kDeadlineExceeded instead of surfacing as a per-site timeout.
  Status CheckDeadlineNow() const;

  // Remaining wall-clock headroom in ms (>= 0), or -1 when unbounded. The
  // federation gateway derives per-site RequestContext deadlines from this.
  int64_t RemainingMs() const;

  bool cancelled() const;
  const GovernorLimits& limits() const { return limits_; }
  GovernorUsage Usage() const;

 private:
  // Classifies the current state; returns OK or the abort status. The
  // first abort is recorded so every later checkpoint repeats it.
  Status CheckNow(bool check_time) const;

  const GovernorLimits limits_;
  const CancelHandle cancel_;
  const ResourceGovernor* const parent_;
  const std::chrono::steady_clock::time_point start_;
  const std::chrono::steady_clock::time_point deadline_;  // start_ if none

  mutable std::atomic<uint64_t> checkpoints_{0};
  mutable std::atomic<int> passes_{0};
  mutable std::atomic<uint64_t> derivations_{0};
  mutable std::atomic<uint64_t> cells_{0};
  // 0 = running; otherwise the StatusCode of the first abort.
  mutable std::atomic<int> abort_code_{0};
};

// Renders the governor section of Explain(): one line of the form
//   governor: passes=U/L derivations=U/L cells=U/L checkpoints=N
//   remaining_ms=R status=S
// where unbounded budgets (and an unset deadline) render their bound as "-"
// and S is "completed" or the abort status. The format is locked by
// tests/explain_format_test.cc.
std::string FormatGovernorUsage(const GovernorUsage& usage,
                                const GovernorLimits& limits);

}  // namespace idl

#endif  // IDL_COMMON_GOVERNOR_H_
