// StringInterner: maps strings to small dense ids and back.
//
// Attribute and relation names recur constantly during evaluation; interning
// turns name comparisons into integer comparisons and lets binding sets store
// ids instead of strings.

#ifndef IDL_COMMON_INTERNER_H_
#define IDL_COMMON_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace idl {

class StringInterner {
 public:
  using Id = uint32_t;

  StringInterner() = default;
  StringInterner(const StringInterner&) = delete;
  StringInterner& operator=(const StringInterner&) = delete;

  // Returns the id for `s`, creating one if needed. Ids are dense from 0.
  Id Intern(std::string_view s);

  // Returns the id for `s` or kNotInterned if never interned.
  static constexpr Id kNotInterned = UINT32_MAX;
  Id Find(std::string_view s) const;

  // The string for a valid id. Reference valid until the interner dies.
  const std::string& Lookup(Id id) const;

  size_t size() const { return strings_.size(); }

 private:
  std::unordered_map<std::string, Id> ids_;
  std::vector<std::string> strings_;
};

}  // namespace idl

#endif  // IDL_COMMON_INTERNER_H_
