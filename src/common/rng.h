// Deterministic pseudo-random number generation for workload synthesis.
//
// SplitMix64: tiny, fast, and identical across platforms, so generated
// workloads (and therefore test and bench inputs) are fully reproducible.

#ifndef IDL_COMMON_RNG_H_
#define IDL_COMMON_RNG_H_

#include <cstdint>

namespace idl {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  // Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform integer in [0, bound). bound must be > 0. Unbiased: Lemire's
  // multiply-shift with rejection of the short low fringe, so every value in
  // [0, bound) is exactly equally likely (plain `Next() % bound` over-weights
  // the first 2^64 mod bound values, badly so for bounds near 2^64).
  uint64_t Below(uint64_t bound) {
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (low < bound) {
      uint64_t threshold = -bound % bound;  // 2^64 mod bound
      while (low < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive. The span is computed in unsigned
  // arithmetic so hi - lo + 1 cannot overflow; a full-range request (span
  // wraps to 0) degenerates to a raw 64-bit draw.
  int64_t Range(int64_t lo, int64_t hi) {
    uint64_t span =
        static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
    if (span == 0) return static_cast<int64_t>(Next());
    return static_cast<int64_t>(static_cast<uint64_t>(lo) + Below(span));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  uint64_t state_;
};

}  // namespace idl

#endif  // IDL_COMMON_RNG_H_
