// Process-wide metrics registry: named counters, gauges and histograms.
//
// The observability counterpart to common/trace.h: where a trace answers
// "what did *this request* spend its time on", the registry accumulates
// totals across every request the process has served — fixpoint passes,
// derivations, index builds, site RPC retries, governor aborts — so benches
// and the shell can dump one snapshot that explains a whole run.
//
// Usage pattern (hot paths cache the pointer once; the registry never
// deallocates an instrument, so the pointer stays valid for the process
// lifetime, across Reset() calls included):
//
//   static Counter* passes = MetricsRegistry::Global().counter(
//       "engine.fixpoint_passes");
//   passes->Increment();
//
// All instruments are thread-safe (relaxed atomics on the hot path; the
// histogram min/max use CAS loops). Reset() zeroes values but keeps every
// registered instrument, so cached pointers survive and snapshots after a
// Reset() still list the full instrument set touched so far.
//
// Render() is the human form (one sorted line per instrument; format locked
// by tests/explain_format_test.cc); ToJson() is the machine form consumed by
// bench_util's metrics sidecars and the --trace=json shell output.

#ifndef IDL_COMMON_METRICS_H_
#define IDL_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace idl {

// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  std::atomic<uint64_t> value_{0};
};

// Last-write-wins instantaneous value (e.g. current universe cell count).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  std::atomic<int64_t> value_{0};
};

// Distribution summary: count, sum, min, max and log-bucketed percentile
// estimates over observed doubles. Observe() is a handful of relaxed
// atomics (no locks), cheap enough for per-RPC, per-pass, and per-request
// call sites; the bucket array makes p50/p95/p99 available without keeping
// observations (bench_server's latency summaries come straight from here).
//
// Buckets are geometric with 8 sub-buckets per octave (adjacent bounds
// ratio 2^(1/8) ≈ 1.09, so a percentile estimate is within ~9% of the true
// value), spanning kMinBound=0.001 up to ~2.1e6 in the unit observed
// (milliseconds everywhere in this codebase: 1ns resolution to ~35min).
// Observations at or below kMinBound land in bucket 0; beyond the top in
// the overflow bucket. Bucket classification and bounds use only exact
// IEEE operations (frexp/ldexp and a fixed table of 2^(j/8)), so rendered
// percentiles are bit-identical across platforms.
class Histogram {
 public:
  void Observe(double v);
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  // 0 until the first Observe() (the infinity sentinels never escape).
  double min() const;
  double max() const;

  // Nearest-rank percentile estimate for q in [0, 1]: the upper bound of
  // the bucket holding the ceil(q * count)-th smallest observation, clamped
  // to [min(), max()] so estimates never leave the observed range. 0 until
  // the first Observe(). p50/p95/p99 are rendered by Render()/ToJson().
  double Percentile(double q) const;

 private:
  friend class MetricsRegistry;
  static constexpr size_t kNumBuckets = 256;  // 0, 254 geometric, overflow
  static constexpr double kMinBound = 1e-3;
  static size_t BucketOf(double v);
  static double BucketUpperBound(size_t bucket);

  void Reset();
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // +/-infinity sentinels so Observe() is a plain compare-and-swap race.
  static constexpr double kInf = std::numeric_limits<double>::infinity();
  std::atomic<double> min_{kInf};
  std::atomic<double> max_{-kInf};
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
};

class MetricsRegistry {
 public:
  // The process-wide registry. Instruments registered here live until
  // process exit.
  static MetricsRegistry& Global();

  // Get-or-create by name. Names are dotted paths ("engine.fixpoint_passes");
  // docs/OBSERVABILITY.md catalogues every name the library emits. A name
  // identifies one instrument of one kind for the registry's lifetime;
  // requesting it as a different kind returns a distinct instrument tracked
  // under the same name (don't do that). Returned pointers are never
  // invalidated.
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);

  // Zeroes every instrument's value; keeps the instruments themselves (and
  // therefore every pointer handed out) valid.
  void Reset();

  // One line per instrument, sorted by name:
  //   counter engine.fixpoint_passes = 12
  //   gauge session.universe_cells = 345
  //   histogram federation.site_fetch_ms = count=3 sum=4.50 min=1.00
  //       max=2.00 p50=1.58 p95=2.00 p99=2.00        (one line)
  // Zero-count instruments are included — the instrument set is part of the
  // snapshot. With mask_values, histogram sum/min/max/percentiles render as
  // "-" (they are timings; counts and counters stay — the byte-stable form
  // golden transcripts pin). Format locked by tests/explain_format_test.cc.
  std::string Render(bool mask_values = false) const;

  // {"counters":{...},"gauges":{...},"histograms":{name:{"count":...,
  // "sum":...,"min":...,"max":...,"p50":...,"p95":...,"p99":...}}} with
  // keys sorted (std::map order).
  std::string ToJson() const;

 private:
  mutable std::mutex mu_;
  // node-based maps: pointers to mapped values are stable across inserts.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace idl

#endif  // IDL_COMMON_METRICS_H_
