// Evaluation statistics: the instrumentation used by benches and
// EXPERIMENTS.md to substantiate claims about work performed
// (e.g. one higher-order query scans the chwab relation once, while the
// first-order expansion scans it once per stock).

#ifndef IDL_EVAL_EXPLAIN_H_
#define IDL_EVAL_EXPLAIN_H_

#include <cstdint>
#include <string>

namespace idl {

struct EvalStats {
  uint64_t set_elements_scanned = 0;   // elements visited by set expressions
  uint64_t attrs_enumerated = 0;       // attribute names tried by HO variables
  uint64_t comparisons = 0;            // atomic-expression evaluations
  uint64_t substitutions_emitted = 0;  // satisfying grounding substitutions
  uint64_t negation_probes = 0;        // existence checks under ¬
  uint64_t index_probes = 0;           // set matches served by an index

  EvalStats& operator+=(const EvalStats& o) {
    set_elements_scanned += o.set_elements_scanned;
    attrs_enumerated += o.attrs_enumerated;
    comparisons += o.comparisons;
    substitutions_emitted += o.substitutions_emitted;
    negation_probes += o.negation_probes;
    index_probes += o.index_probes;
    return *this;
  }

  std::string ToString() const;
};

}  // namespace idl

#endif  // IDL_EVAL_EXPLAIN_H_
