// Evaluation statistics: the instrumentation used by benches and
// EXPERIMENTS.md to substantiate claims about work performed
// (e.g. one higher-order query scans the chwab relation once, while the
// first-order expansion scans it once per stock; semi-naive materialization
// replays only delta-touching substitutions instead of the whole universe).

#ifndef IDL_EVAL_EXPLAIN_H_
#define IDL_EVAL_EXPLAIN_H_

#include <cstdint>
#include <string>
#include <vector>

namespace idl {

struct EvalStats {
  uint64_t set_elements_scanned = 0;   // elements visited by set expressions
  uint64_t attrs_enumerated = 0;       // attribute names tried by HO variables
  uint64_t comparisons = 0;            // atomic-expression evaluations
  uint64_t substitutions_emitted = 0;  // satisfying grounding substitutions
  uint64_t negation_probes = 0;        // existence checks under ¬
  uint64_t index_probes = 0;           // set matches served by an index
  uint64_t indexes_built = 0;          // probes that had to build their index
  uint64_t indexes_reused = 0;         // probes served by an existing index

  // Adds this snapshot's aggregates to the process metrics registry
  // (counters eval.*) — called once per query/materialization, so the
  // per-probe hot paths stay metric-free.
  void BumpMetrics() const;

  EvalStats& operator+=(const EvalStats& o) {
    set_elements_scanned += o.set_elements_scanned;
    attrs_enumerated += o.attrs_enumerated;
    comparisons += o.comparisons;
    substitutions_emitted += o.substitutions_emitted;
    negation_probes += o.negation_probes;
    index_probes += o.index_probes;
    indexes_built += o.indexes_built;
    indexes_reused += o.indexes_reused;
    return *this;
  }

  std::string ToString() const;
};

// Per-rule timing inside one evaluation wave, split into the two phases the
// engine alternates: body enumeration (parallelizable, read-only) and head
// writing (sequential, in rule order). Sums cover every pass the rule was
// active in.
struct RuleTimingStats {
  int rule = 0;       // index in the engine's rule list
  std::string head;   // HeadTarget, "db.rel" with "*" for data-dependent
  int passes = 0;     // passes this rule was enumerated in
  uint64_t substitutions = 0;  // body substitutions processed
  double plan_ms = 0.0;        // cost-based planning wall time (its own
                               // phase; never folded into enumerate_ms)
  double enumerate_ms = 0.0;   // body enumeration wall time (excl. plan)
  double write_ms = 0.0;       // head write wall time
  // Cost-based planner outcome (src/planner/planner.h PlanInfo), summed
  // across passes/delta variants. All zero under PlannerMode::kWrittenOrder.
  bool planned = false;          // a cost-based plan executed
  bool plan_fell_back = false;   // a planned run errored; written order re-ran
  uint64_t plan_est_rows = 0;    // planner's estimated emissions
  uint64_t plan_actual_rows = 0; // emissions the planned runs produced
  std::string plan_summary;      // e.g. "order=[1 0] spec=[0:S*16]"
};

// Per-evaluation-level accounting of one materialization (see
// views/engine.h). A "stratum" here is one evaluation wave of the view
// engine: under the semi-naive strategy all mutually independent rules at
// the same topological depth form one wave; under the naive oracle each SCC
// is its own wave.
struct StratumStats {
  int stratum = 0;        // wave id, in evaluation order
  int rules = 0;          // rules evaluated in this wave
  int passes = 0;         // fixpoint passes (1 unless recursive)
  bool recursive = false;
  uint64_t substitutions = 0;          // body substitutions processed
  uint64_t substitutions_skipped = 0;  // replays avoided vs. naive (estimate)
  uint64_t delta_facts = 0;            // facts recorded into pass deltas
  uint64_t parallel_tasks = 0;         // rule evaluations run on pool threads
  double wall_ms = 0.0;
  // CPU time attributable to this wave: enumeration-task thread CPU (summed
  // across workers) plus the sequential write phase's. Can exceed wall_ms
  // under parallelism.
  double cpu_ms = 0.0;
  std::vector<RuleTimingStats> rule_timings;  // one row per rule in the wave
};

// Renders one row per stratum plus a totals row, aligned for terminals.
std::string FormatStratumStats(const std::vector<StratumStats>& strata);

// The EXPLAIN ANALYZE table: per-stratum rows (wall/CPU) interleaved with
// their per-rule phase timings (plan / enumerate / write — planner time is
// its own phase, never folded into enumerate), one "plan: rule=..." line
// per cost-planned rule (chosen order, specializations, estimated vs
// actual cardinality, fallbacks), and a totals row summing the strata,
// then a trailer line carrying the materialization's own measured totals —
//   analyze: wall=12.34ms cpu=11.90ms strata_wall=12.10ms plan=0.02ms
// so per-stratum attribution can be checked against end-to-end time (the
// two agree within 10% on the paper pipeline; tests/trace_metrics_test.cc
// asserts the containment direction). With mask_timings every timing cell
// (and the trailer's values) renders as "-" — the byte-stable form golden
// transcripts pin. Format locked by tests/explain_format_test.cc.
std::string FormatAnalyze(const std::vector<StratumStats>& strata,
                          double wall_ms, double cpu_ms,
                          bool mask_timings = false);

// Accounting of incremental view maintenance (views/engine.h ApplyDelta) on
// one retained materialization. `fallbacks` counts deltas the session could
// not maintain incrementally (whole-universe dirt, governor abort mid-delta,
// missing retained state) and served by a full rematerialization instead.
struct MaintenanceStats {
  uint64_t deltas_applied = 0;    // ApplyDelta calls that succeeded
  uint64_t rederived = 0;         // body substitutions replayed by maintenance
  uint64_t strata_skipped = 0;    // level visits that skipped evaluation
  uint64_t strata_rederived = 0;  // level visits that re-ran their wave
  uint64_t fallbacks = 0;         // deltas served by full rematerialization
};

// The one-line maintenance section of Materialized::Explain(), e.g.
// "maintenance: deltas=2 rederived=17 strata_skipped=3 strata_rederived=1
// fallbacks=0\n" (locked by tests/explain_format_test.cc).
std::string FormatMaintenanceStats(const MaintenanceStats& s);

// Per-site accounting of the federation gateway (src/federation/gateway.h):
// how many requests crossed the site boundary, how the generation-keyed
// answer cache behaved, and how the robustness machinery (retries, deadlines,
// degradation) fired. Cache hit/miss counters restart from zero whenever an
// update is written through to the site (the cache restarts cold), so
// hits/(hits+misses) is the hit rate *since the last write*.
struct SiteStats {
  std::string site;
  uint64_t requests = 0;        // site calls attempted (incl. retries, pings)
  uint64_t cache_hits = 0;      // answers served without a site call
  uint64_t cache_misses = 0;    // answers that had to call the site
  uint64_t retries = 0;         // failed attempts that were retried
  uint64_t timeouts = 0;        // attempts lost to the per-request deadline
  uint64_t failures = 0;        // attempts that failed for any reason
  uint64_t shipped_subgoals = 0;  // first-order subgoals pushed to the site
  uint64_t pulled_exports = 0;    // full fact exports pulled from the site
  bool degraded = false;        // answered without this site last operation

  double CacheHitRate() const {
    uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0 : static_cast<double>(cache_hits) / total;
  }
};

// Renders one row per site plus a totals row, aligned for terminals —
// the federation counterpart of FormatStratumStats.
std::string FormatSiteStats(const std::vector<SiteStats>& sites);

}  // namespace idl

#endif  // IDL_EVAL_EXPLAIN_H_
