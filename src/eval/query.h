// Conjunctive query evaluation over the universe (paper §4).
//
// A query `? c1, ..., ck` is one tuple expression on the universe whose items
// are the conjuncts; evaluation enumerates grounding substitutions
// left-to-right with sideways information passing, and the answer is the set
// of bindings of the query's positive free variables (§4.2: "the answer to a
// query is the set of grounding substitutions satisfying the query"). A
// variable-free query yields a boolean.

#ifndef IDL_EVAL_QUERY_H_
#define IDL_EVAL_QUERY_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "eval/explain.h"
#include "eval/substitution.h"
#include "object/value.h"
#include "syntax/ast.h"

namespace idl {

// The answer to a query: a relation over the free variables.
struct Answer {
  std::vector<std::string> columns;        // free variables, in query order
  std::vector<std::vector<Value>> rows;    // deduplicated bindings
  bool boolean() const { return !rows.empty(); }

  // The row values for `var` across all rows (convenience for tests).
  std::vector<Value> Column(const std::string& var) const;

  // Renders as an aligned text table (column headers + rows).
  std::string ToTable() const;
};

struct EvalOptions {
  // Move negated conjuncts after all positive ones (keeps left-to-right
  // binding order safe without requiring the user to order them).
  bool defer_negation = true;
  // Cap on result rows (0 = unlimited).
  size_t max_rows = 0;
  // Build equality indexes over large sets for the duration of the
  // evaluation (ablated by bench_ablation_index).
  bool use_indexes = true;
  // Sets smaller than this are scanned, not indexed.
  size_t index_min_set_size = 32;
};

// Evaluates a pure query (no update markers) against `universe`.
// `stats`, if non-null, accumulates work counters.
Result<Answer> EvaluateQuery(const Value& universe, const Query& query,
                             const EvalOptions& options = EvalOptions(),
                             EvalStats* stats = nullptr);

// Evaluates the conjunction and calls back with every satisfying
// substitution (used by the view engine and the update applier, which need
// the substitutions themselves rather than a projected answer).
Result<bool> EnumerateBindings(
    const Value& universe, const std::vector<ExprPtr>& conjuncts,
    const EvalOptions& options, EvalStats* stats,
    const std::function<bool(const Substitution&)>& cb);

}  // namespace idl

#endif  // IDL_EVAL_QUERY_H_
