// Conjunctive query evaluation over the universe (paper §4).
//
// A query `? c1, ..., ck` is one tuple expression on the universe whose items
// are the conjuncts; evaluation enumerates grounding substitutions
// left-to-right with sideways information passing, and the answer is the set
// of bindings of the query's positive free variables (§4.2: "the answer to a
// query is the set of grounding substitutions satisfying the query"). A
// variable-free query yields a boolean.

#ifndef IDL_EVAL_QUERY_H_
#define IDL_EVAL_QUERY_H_

#include <functional>
#include <string>
#include <vector>

#include "common/governor.h"
#include "common/result.h"
#include "eval/explain.h"
#include "eval/substitution.h"
#include "object/value.h"
#include "syntax/ast.h"

namespace idl {

// The answer to a query: a relation over the free variables.
struct Answer {
  std::vector<std::string> columns;        // free variables, in query order
  std::vector<std::vector<Value>> rows;    // deduplicated bindings
  bool boolean() const { return !rows.empty(); }

  // The row values for `var` across all rows (convenience for tests).
  std::vector<Value> Column(const std::string& var) const;

  // Renders as an aligned text table (column headers + rows).
  std::string ToTable() const;
};

// How ViewEngine::Materialize evaluates rules (see views/engine.h).
enum class EvalStrategy {
  // Re-enumerate every rule body over the full universe each fixpoint pass.
  // O(passes x rules x universe); kept as the differential-test oracle.
  kNaive,
  // Semi-naive delta evaluation: passes after the first only re-derive
  // substitutions whose body touches a fact derived in the previous pass,
  // with independent rules of one evaluation level run in parallel.
  kSemiNaive,
};

// How the session keeps a cached materialization current across base
// changes (see views/engine.h ApplyDelta and docs/INCREMENTAL.md).
enum class MaintenanceMode {
  // Propagate structured base deltas into the retained materialization:
  // insertions semi-naively, everything else by delete-and-rederive
  // restricted to the affected strata. Falls back to a full
  // rematerialization whenever the delta cannot be maintained safely.
  kIncremental,
  // Discard and rebuild from scratch on every base change; kept as the
  // differential oracle for the incremental path.
  kRematerialize,
};

// Which physical representation evaluates flat relations (see
// docs/COLUMNAR.md and relational/columnar.h).
enum class EvalSubstrate {
  // Vectorized kernels over per-attribute column vectors for flat
  // relations, falling back to tuple-at-a-time matching for everything the
  // planner cannot vectorize (higher-order attribute variables, negation,
  // non-flat sets). Transcript-identical to kNested by construction.
  kColumnar,
  // Tuple-at-a-time matching over nested Values everywhere; kept as the
  // differential oracle (the same naive-vs-optimized proof pattern as
  // EvalStrategy::kNaive and MaintenanceMode::kRematerialize).
  kNested,
};

class ColumnarStore;
class SetIndexCache;

// How rule-body conjuncts are ordered for enumeration (see
// src/planner/planner.h and docs/PLANNER.md).
enum class PlannerMode {
  // Evaluate conjuncts exactly in written order (after defer_negation).
  // Kept as the differential oracle: the planned mode must be
  // answer-identical to this one, including error timing.
  kWrittenOrder,
  // Cost-based: greedy bound-variable-first join reordering driven by
  // cardinality estimates, plus compile-time specialization of
  // higher-order conjuncts into their first-order instances. Emission
  // order and error behaviour are reconstructed to match kWrittenOrder
  // exactly (byte-identical answers).
  kCostBased,
};

struct EvalOptions {
  // Move negated conjuncts after all positive ones (keeps left-to-right
  // binding order safe without requiring the user to order them).
  bool defer_negation = true;
  // Cap on result rows (0 = unlimited).
  size_t max_rows = 0;
  // Build equality indexes over large sets for the duration of the
  // evaluation (ablated by bench_ablation_index).
  bool use_indexes = true;
  // Sets smaller than this are scanned, not indexed.
  size_t index_min_set_size = 32;
  // Materialization only: fixpoint evaluation strategy.
  EvalStrategy strategy = EvalStrategy::kSemiNaive;
  // Materialization only: worker threads for rule-body evaluation under
  // kSemiNaive. 0 = auto (hardware concurrency), 1 = serial, N = N-way.
  // Results are identical for every value (writes stay sequential).
  size_t materialize_parallelism = 0;
  // Materialization only: how the session maintains the cached
  // materialization across base changes. Incremental maintenance needs the
  // per-level state only kSemiNaive records, so kNaive always
  // rematerializes regardless of this setting.
  MaintenanceMode maintenance = MaintenanceMode::kIncremental;
  // Physical evaluation substrate for flat relations.
  EvalSubstrate substrate = EvalSubstrate::kColumnar;
  // Conjunct-ordering planner. kCostBased reorders and specializes rule
  // bodies behind an emission-order reconstruction that keeps answers
  // byte-identical to kWrittenOrder (the oracle). Ignored (written order)
  // when max_rows is set: early-stop semantics are defined on the written
  // emission order.
  PlannerMode planner = PlannerMode::kWrittenOrder;
  // Pre-built columnar pages for this universe (server epochs share them
  // across sessions). Null = build pages on demand per index-cache
  // generation. Ignored under kNested.
  const ColumnarStore* columnar_store = nullptr;

  // ---- Resource-governor budgets (common/governor.h; 0 = unbounded) -------
  // The session builds one ResourceGovernor per request from these; a
  // request that exceeds a budget aborts with kDeadlineExceeded /
  // kResourceExhausted and leaves the universe exactly as it was.
  // Wall-clock deadline for the whole request.
  int deadline_ms = 0;
  // Fixpoint passes a materialization may run (guards divergent programs).
  int max_passes = 0;
  // Body substitutions a materialization may process.
  uint64_t max_derivations = 0;
  // Universe size budget in object-model cells (see CountCells).
  uint64_t max_universe_cells = 0;
  // Interrupt-injection seam for tests: cancel at the Nth governor
  // checkpoint (see GovernorLimits::cancel_at_checkpoint).
  uint64_t cancel_at_checkpoint = 0;
};

// The governor budgets carried by `options`, ready for ResourceGovernor.
GovernorLimits GovernorLimitsFrom(const EvalOptions& options);

// Evaluates a pure query (no update markers) against `universe`.
// `stats`, if non-null, accumulates work counters. `governor`, if non-null,
// is polled at every enumeration step: a cancelled or out-of-budget
// evaluation unwinds with the governor's abort status.
// `index_cache`, if non-null, persists set indexes and columnar pages
// across calls (the caller owns generation invalidation — see
// eval/index.h); sessions pass their hoisted query cache here so repeated
// queries over an unchanged universe reuse pages.
Result<Answer> EvaluateQuery(const Value& universe, const Query& query,
                             const EvalOptions& options = EvalOptions(),
                             EvalStats* stats = nullptr,
                             const ResourceGovernor* governor = nullptr,
                             SetIndexCache* index_cache = nullptr);

// Evaluates the conjunction and calls back with every satisfying
// substitution (used by the view engine and the update applier, which need
// the substitutions themselves rather than a projected answer).
Result<bool> EnumerateBindings(
    const Value& universe, const std::vector<ExprPtr>& conjuncts,
    const EvalOptions& options, EvalStats* stats,
    const std::function<bool(const Substitution&)>& cb,
    const ResourceGovernor* governor = nullptr,
    SetIndexCache* index_cache = nullptr);

// A body conjunct paired with the universe it reads. Semi-naive evaluation
// points one conjunct at the (much smaller) delta universe of the previous
// fixpoint pass while the rest read the full one.
struct ConjunctSource {
  const Expr* expr = nullptr;
  const Value* universe = nullptr;
};

struct PlanInfo;

// Lower-level enumeration: per-conjunct universes and an optional external
// index cache (persistent across calls; the caller is responsible for
// generation-invalidating it — see eval/index.h). When `index_cache` is
// null and options.use_indexes is set, a throwaway per-call cache is used,
// which is exactly EnumerateBindings' behaviour. `plan_info`, if non-null,
// accumulates what the cost-based planner did (src/planner/planner.h).
Result<bool> EnumerateBindingsOver(
    const std::vector<ConjunctSource>& conjuncts, const EvalOptions& options,
    EvalStats* stats, SetIndexCache* index_cache,
    const std::function<bool(const Substitution&)>& cb,
    const ResourceGovernor* governor = nullptr, PlanInfo* plan_info = nullptr);

}  // namespace idl

#endif  // IDL_EVAL_QUERY_H_
