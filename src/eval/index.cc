#include "eval/index.h"

#include "common/str_util.h"
#include "common/trace.h"

namespace idl {

bool SetIndexCache::Probe(const Value& set, std::string_view attr,
                          const Value& value,
                          std::vector<uint32_t>* candidates) {
  candidates->clear();
  if (!set.is_set() || set.SetSize() < min_set_size_) return false;

  const StringInterner::Id attr_id = attr_ids_.Intern(attr);
  auto& per_set = cache_[static_cast<SetKey>(&set)];
  auto it = per_set.find(attr_id);
  if (it != per_set.end()) {
    ++indexes_reused_;
  } else {
    // A build walks the whole set, so it is worth a span; reuse probes are
    // far too hot to trace individually (they show up as counters only).
    TraceSpan span("index.build",
                   StrCat("attr=", attr, " elements=", set.SetSize()));
    AttrIndex index;
    const auto& elements = set.elements();
    for (uint32_t i = 0; i < elements.size(); ++i) {
      if (!elements[i].is_tuple()) continue;
      const Value* field = elements[i].FindField(attr);
      if (field == nullptr || field->is_null()) continue;
      // Numbers hash by double value so that =50 probes find 50.0 cells
      // (matching EvalRelOp's cross-kind numeric equality).
      uint64_t h = field->is_number()
                       ? Value::Real(field->as_double()).Hash()
                       : field->Hash();
      index.by_hash.emplace(h, i);
    }
    it = per_set.emplace(attr_id, std::move(index)).first;
    ++indexes_built_;
  }

  uint64_t h = value.is_number() ? Value::Real(value.as_double()).Hash()
                                 : value.Hash();
  auto [lo, hi] = it->second.by_hash.equal_range(h);
  for (auto i = lo; i != hi; ++i) candidates->push_back(i->second);
  return true;
}

}  // namespace idl
