#include "eval/index.h"

#include <algorithm>

#include "common/str_util.h"
#include "common/trace.h"
#include "relational/columnar.h"

namespace idl {

bool SetIndexCache::Probe(const Value& set, std::string_view attr,
                          const Value& value,
                          std::vector<uint32_t>* candidates) {
  candidates->clear();
  if (!set.is_set() || set.SetSize() < min_set_size_) return false;

  // Find before Intern: steady-state probes hit attribute names interned by
  // an earlier generation and skip the insert path entirely.
  StringInterner::Id attr_id = attr_ids_.Find(attr);
  if (attr_id == StringInterner::kNotInterned) attr_id = attr_ids_.Intern(attr);
  PerSetEntry& entry = cache_[static_cast<SetKey>(&set)];
  if (entry.built_size != set.SetSize() && !entry.by_attr.empty()) {
    // The set changed size under its address without a generation bump
    // (e.g. delete-and-rederive reusing storage): every position list and
    // bucket estimate for it is stale. Drop and rebuild on demand.
    entry.by_attr.clear();
  }
  entry.built_size = set.SetSize();
  auto& per_set = entry.by_attr;
  auto it = per_set.find(attr_id);
  if (it != per_set.end()) {
    ++indexes_reused_;
  } else {
    // A build walks the whole set, so it is worth a span; reuse probes are
    // far too hot to trace individually (they show up as counters only).
    TraceSpan span("index.build",
                   StrCat("attr=", attr, " elements=", set.SetSize()));
    AttrIndex index;
    const auto& elements = set.elements();
    // Size the bucket array once: growing it inside the loop rehashes the
    // whole multimap log(n) times on a large build.
    index.by_hash.reserve(elements.size());
    for (uint32_t i = 0; i < elements.size(); ++i) {
      if (!elements[i].is_tuple()) continue;
      const Value* field = elements[i].FindField(attr);
      if (field == nullptr || field->is_null()) continue;
      index.by_hash.emplace(NormalizedCellHash(*field), i);
    }
    it = per_set.emplace(attr_id, std::move(index)).first;
    ++indexes_built_;
  }

  auto [lo, hi] = it->second.by_hash.equal_range(NormalizedCellHash(value));
  for (auto i = lo; i != hi; ++i) candidates->push_back(i->second);
  // Multimap equal ranges come back in unspecified order; ascending element
  // order makes the indexed path visit candidates exactly as a scan would
  // (the columnar substrate relies on this for transcript identity).
  std::sort(candidates->begin(), candidates->end());
  return true;
}

std::shared_ptr<const ColumnarRelation> SetIndexCache::Columnar(
    const Value& set, const ColumnarStore* store) {
  if (store != nullptr) {
    std::shared_ptr<const ColumnarRelation> page =
        store->Find(static_cast<const void*>(&set));
    if (page != nullptr) return page;
  }
  SetKey key = static_cast<SetKey>(&set);
  auto it = columnar_.find(key);
  if (it != columnar_.end() && it->second.built_size == set.SetSize()) {
    return it->second.page;
  }
  // Miss, or size-stamp mismatch (set mutated in place without a generation
  // bump): (re)build. nullptr memoizes "not flat at this size".
  std::shared_ptr<const ColumnarRelation> page = ColumnarRelation::FromSet(set);
  columnar_[key] = PageEntry{set.SetSize(), page};
  return page;
}

}  // namespace idl
