// Vectorized conjunct execution over columnar pages (docs/COLUMNAR.md).
//
// The tuple-at-a-time matcher enumerates a conjunct like
//
//     .dbI.p(.date = D, .stock = S, .price = P)
//
// by walking every element of `dbI.p`, allocating and comparing nested
// Values per tuple. When the relation is flat (relational/columnar.h), the
// same conjunct runs as a handful of column kernels instead: resolve each
// item to a column, narrow a selection vector with typed filters (or one
// hash-index probe for the first `=ground` item), then emit the surviving
// rows, binding variables from column cells.
//
// Two pieces:
//  * CompileVectorConjunct — static shape analysis, once per enumeration: a
//    chain of single-item tuple navigations down to a set whose inner tuple
//    has only constant-attribute atomic/ε items (no negation, guards,
//    higher-order attribute variables, updates, intra-conjunct variable
//    reuse, or nested aggregates — those shapes keep the matcher).
//  * ExecuteVectorConjunct — runs a compiled plan under the current
//    substitution. Dynamic per-item classification (a variable bound by an
//    earlier conjunct filters; an unbound one binds) mirrors MatchAtomic.
//
// Equivalence contract (pinned by columnar_test and every differential
// suite): for any conjunct it accepts, ExecuteVectorConjunct emits exactly
// the substitutions Matcher::Match would, in the same order, with the same
// error (and error timing) — so transcripts are byte-identical across
// EvalSubstrate modes. Rows emit in element order; errors surface only if
// some row reaches the erroring item, exactly like the scan.

#ifndef IDL_EVAL_VECTOR_EXEC_H_
#define IDL_EVAL_VECTOR_EXEC_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "eval/explain.h"
#include "eval/index.h"
#include "eval/substitution.h"
#include "object/value.h"
#include "syntax/ast.h"

namespace idl {

class ColumnarStore;

// One inner-tuple item of a vectorizable conjunct.
struct VectorItemPlan {
  enum class Kind : uint8_t {
    kExists,  // `.attr` with ε: column must exist; any cell (even null) passes
    kAtomic,  // `.attr relop term`
  };
  Kind kind = Kind::kAtomic;
  const std::string* attr = nullptr;  // owned by the conjunct expression
  RelOp relop = RelOp::kEq;
  const Term* term = nullptr;         // kAtomic
  const Expr* expr = nullptr;         // the inner atomic expr (error messages)
};

// A compiled conjunct: navigate `path` from the universe root to a set,
// then run `items` over its columnar page.
struct VectorConjunctPlan {
  std::vector<const std::string*> path;  // tuple attrs, owned by `source`
  std::vector<VectorItemPlan> items;
  const Expr* source = nullptr;          // the conjunct (for fallback)
};

// Static shape analysis; nullopt when the conjunct must keep the matcher.
std::optional<VectorConjunctPlan> CompileVectorConjunct(const Expr& expr);

class ChoiceRecorder;

// Runs `plan` against `universe` under `*sigma`, calling `next` once per
// satisfying row with `*sigma` extended (and rolled back afterwards).
// Returns false when `next` stopped enumeration, true otherwise; errors are
// the exact statuses the matcher would raise. If the target set has no
// columnar page (not flat), sets `*fell_back` and returns without emitting:
// the caller must run the matcher instead. `recorder`, if non-null,
// receives the emitted row's element ordinal around each `next` call — the
// same ordinal the matcher's set scan records (eval/matcher.h).
Result<bool> ExecuteVectorConjunct(const VectorConjunctPlan& plan,
                                   const Value& universe, SetIndexCache* cache,
                                   const ColumnarStore* store, bool use_indexes,
                                   size_t index_min_rows, EvalStats* stats,
                                   Substitution* sigma,
                                   const std::function<bool()>& next,
                                   bool* fell_back,
                                   ChoiceRecorder* recorder = nullptr);

}  // namespace idl

#endif  // IDL_EVAL_VECTOR_EXEC_H_
