// Matcher: the satisfaction semantics of IDL expressions (paper §4.2-4.3).
//
// Match(value, expr, σ, cb) enumerates every extension σ' of the current
// substitution σ under which `value` satisfies `expr`, invoking `cb` once per
// extension (with σ temporarily extended; the matcher backtracks afterward).
//
// Semantics implemented:
//  * atomic:  `α c` compares the atom against the (evaluated) term; an
//    unbound variable with `=` binds to the object (any category — the
//    paper's generalization of [KN88] lets variables range over aggregate
//    objects too); an unbound variable with another relop is unsafe.
//  * tuple:   each item's expression must be satisfied by the item's
//    attribute object; a variable in attribute position (higher-order,
//    §4.3) enumerates the tuple's attribute names.
//  * set:     exists an element satisfying the inner expression.
//  * ¬exp:    satisfied iff no extension satisfies exp; variables bound
//    only inside the negation are existential and do not escape (§4.2).
//  * ε:       satisfied by every object.
//  * null:    the null atom satisfies no atomic expression (§5.2).
//  * kind mismatches (tuple expression on an atom, …) simply fail — data
//    in multidatabases is heterogeneous — they are not errors.

#ifndef IDL_EVAL_MATCHER_H_
#define IDL_EVAL_MATCHER_H_

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "eval/explain.h"
#include "eval/index.h"
#include "eval/substitution.h"
#include "syntax/ast.h"

namespace idl {

// Returns false to stop enumeration early.
using MatchCallback = std::function<bool(const Substitution&)>;

// Records the ordinal chosen at every branch point of a match — set-element
// indexes and higher-order attribute positions — so the planner can
// reconstruct, for each emitted substitution, where the written-order
// enumeration would have emitted it (src/planner/planner.cc). Every
// successful match path through an expression crosses a statically known
// number of branch points (sets and attribute variables outside negation),
// so at emission time the path is a fixed-length key. Recording is
// suspended inside negation probes: their choices are existential and never
// reach an emission.
class ChoiceRecorder {
 public:
  void Push(int32_t ordinal) {
    if (suspended_ == 0) path_.push_back(ordinal);
  }
  size_t Mark() const { return path_.size(); }
  void TruncateTo(size_t mark) { path_.resize(mark); }
  void Suspend() { ++suspended_; }
  void Resume() { --suspended_; }
  const std::vector<int32_t>& path() const { return path_; }

 private:
  std::vector<int32_t> path_;
  int suspended_ = 0;
};

class Matcher {
 public:
  // `index_cache` (optional) accelerates equality probes into large sets;
  // it must only be supplied while the matched universe is immutable.
  explicit Matcher(EvalStats* stats, SetIndexCache* index_cache = nullptr)
      : stats_(stats), index_cache_(index_cache) {}

  // Attaches a branch-point recorder (null to detach). The recorder must
  // outlive every Match call made while attached.
  void set_recorder(ChoiceRecorder* recorder) { recorder_ = recorder; }

  // Enumerates satisfying extensions; the result is false if enumeration was
  // stopped early by the callback, true otherwise. Update-marked expressions
  // are rejected (the update applier owns those).
  Result<bool> Match(const Value& value, const Expr& expr, Substitution* sigma,
                     const MatchCallback& cb);

  // Convenience: true iff at least one satisfying extension exists. Bindings
  // do not escape.
  Result<bool> Exists(const Value& value, const Expr& expr,
                      Substitution* sigma);

  // Evaluates a ground (under σ) term to a value. Errors on unbound
  // variables inside arithmetic or on invalid arithmetic operands.
  static Result<Value> EvalTerm(const Term& term, const Substitution& sigma);

  // Three-way comparison used by relops: numeric across int/double, strings,
  // dates, bools. Returns no value (unordered) for incompatible kinds.
  // `=`/`!=` never error: incompatible kinds are simply unequal.
  static bool EvalRelOp(RelOp op, const Value& object, const Value& operand);

 private:
  // Dispatch ignoring expr.negated (used to probe inside a negation).
  Result<bool> MatchPositive(const Value& value, const Expr& expr,
                             Substitution* sigma, const MatchCallback& cb);
  Result<bool> MatchAtomic(const Value& value, const Expr& expr,
                           Substitution* sigma, const MatchCallback& cb);
  Result<bool> MatchTuple(const Value& value, const Expr& expr,
                          Substitution* sigma, const MatchCallback& cb);
  Result<bool> MatchTupleItems(const Value& value,
                               const std::vector<TupleItem>& items,
                               size_t index, Substitution* sigma,
                               const MatchCallback& cb);
  Result<bool> MatchSet(const Value& value, const Expr& expr,
                        Substitution* sigma, const MatchCallback& cb);

  // If `inner` (the body of a set expression) contains a tuple item usable
  // as an equality probe under `sigma` — a constant attribute with a pure
  // `=term` expression whose term is ground — fills attr/value and returns
  // true. `*attr` aliases the item's name (owned by the expression, which
  // outlives the probe): the hot path copies no string.
  static bool FindProbe(const Expr& inner, const Substitution& sigma,
                        std::string_view* attr, Value* value);

  EvalStats* stats_;
  SetIndexCache* index_cache_;
  ChoiceRecorder* recorder_ = nullptr;
  // An error raised inside a nested enumeration callback is parked here and
  // re-raised once the enumeration unwinds.
  Status nested_error_;
};

}  // namespace idl

#endif  // IDL_EVAL_MATCHER_H_
