#include "eval/query.h"

#include <algorithm>
#include <unordered_map>

#include "common/str_util.h"
#include "eval/index.h"
#include "eval/matcher.h"
#include "eval/substitution.h"
#include "eval/vector_exec.h"
#include "object/value_io.h"
#include "planner/planner.h"
#include "syntax/analysis.h"

namespace idl {

std::vector<Value> Answer::Column(const std::string& var) const {
  std::vector<Value> out;
  for (size_t c = 0; c < columns.size(); ++c) {
    if (columns[c] == var) {
      out.reserve(rows.size());
      for (const auto& row : rows) out.push_back(row[c]);
      return out;
    }
  }
  return out;
}

std::string Answer::ToTable() const {
  if (columns.empty()) {
    return boolean() ? "true" : "false";
  }
  std::vector<std::vector<std::string>> cells;
  cells.push_back(columns);
  for (const auto& row : rows) {
    std::vector<std::string> line;
    line.reserve(row.size());
    for (const auto& v : row) line.push_back(ToString(v));
    cells.push_back(std::move(line));
  }
  std::vector<size_t> width(columns.size(), 0);
  for (const auto& line : cells) {
    for (size_t c = 0; c < line.size(); ++c) {
      width[c] = std::max(width[c], line[c].size());
    }
  }
  std::string out;
  for (size_t r = 0; r < cells.size(); ++r) {
    for (size_t c = 0; c < cells[r].size(); ++c) {
      if (c > 0) out += "  ";
      out += cells[r][c];
      out.append(width[c] - cells[r][c].size(), ' ');
    }
    out += '\n';
    if (r == 0) {
      for (size_t c = 0; c < width.size(); ++c) {
        if (c > 0) out += "  ";
        out.append(width[c], '-');
      }
      out += '\n';
    }
  }
  return out;
}

namespace {

// Recursive conjunct-by-conjunct enumeration. Each conjunct carries its own
// universe so semi-naive delta variants can point one conjunct at the delta.
struct ConjunctChain {
  const std::vector<ConjunctSource>* conjuncts;
  Matcher* matcher;
  const std::function<bool(const Substitution&)>* cb;
  const ResourceGovernor* governor;
  Status error;
  // Columnar substrate (null under EvalSubstrate::kNested): per-conjunct
  // vector plans parallel to `conjuncts`, plus the page cache/store the
  // executor reads. Vectorized and matched conjuncts interleave freely —
  // emission happens through the same Step recursion either way, so
  // checkpoint counts and substitution order are substrate-independent.
  const std::vector<std::optional<VectorConjunctPlan>>* plans = nullptr;
  SetIndexCache* page_cache = nullptr;
  const EvalOptions* options = nullptr;
  EvalStats* stats = nullptr;

  bool Step(size_t index, Substitution* sigma) {
    // Checkpoint per enumeration step, not just per emitted substitution: a
    // highly selective conjunct over a huge relation emits rarely but steps
    // constantly, and cancellation must stay responsive there too.
    if (governor != nullptr) {
      Status st = governor->Checkpoint();
      if (!st.ok()) {
        error = std::move(st);
        return false;
      }
    }
    if (index == conjuncts->size()) return (*cb)(*sigma);
    const ConjunctSource& source = (*conjuncts)[index];
    if (plans != nullptr && (*plans)[index].has_value()) {
      bool fell_back = false;
      Result<bool> r = ExecuteVectorConjunct(
          *(*plans)[index], *source.universe, page_cache,
          options->columnar_store, options->use_indexes,
          options->index_min_set_size, stats, sigma,
          [&] { return Step(index + 1, sigma); }, &fell_back);
      if (!fell_back) {
        if (!r.ok()) {
          error = r.status();
          return false;
        }
        return *r;
      }
      // Not flat: this activation runs tuple-at-a-time below.
    }
    Result<bool> r = matcher->Match(
        *source.universe, *source.expr, sigma,
        [&](const Substitution&) { return Step(index + 1, sigma); });
    if (!r.ok()) {
      error = r.status();
      return false;
    }
    return *r;
  }
};

}  // namespace

GovernorLimits GovernorLimitsFrom(const EvalOptions& options) {
  GovernorLimits limits;
  limits.deadline_ms = options.deadline_ms;
  limits.max_passes = options.max_passes;
  limits.max_derivations = options.max_derivations;
  limits.max_universe_cells = options.max_universe_cells;
  limits.cancel_at_checkpoint = options.cancel_at_checkpoint;
  return limits;
}

Result<bool> EnumerateBindingsOver(
    const std::vector<ConjunctSource>& conjuncts, const EvalOptions& options,
    EvalStats* stats, SetIndexCache* index_cache,
    const std::function<bool(const Substitution&)>& cb,
    const ResourceGovernor* governor, PlanInfo* plan_info) {
  EvalStats local_stats;
  if (stats == nullptr) stats = &local_stats;

  std::vector<ConjunctSource> ordered;
  ordered.reserve(conjuncts.size());
  if (options.defer_negation) {
    // Conjuncts carrying negation anywhere (top level or nested inside a
    // set expression) run after all purely positive conjuncts, so their
    // variables are bound.
    for (const auto& c : conjuncts) {
      if (!ContainsNegation(*c.expr)) ordered.push_back(c);
    }
    for (const auto& c : conjuncts) {
      if (ContainsNegation(*c.expr)) ordered.push_back(c);
    }
  } else {
    ordered = conjuncts;
  }

  SetIndexCache local_cache(options.index_min_set_size);
  SetIndexCache* cache = index_cache;
  if (cache == nullptr && options.use_indexes) cache = &local_cache;

  // Cost-based planning. max_rows defines early stop on the *written*
  // emission order, so planning (which buffers and replays) would change
  // which rows make the cut — written order handles that case. An error
  // fallback falls through to the written-order chain below, which re-runs
  // the enumeration and raises the error with written timing.
  if (options.planner == PlannerMode::kCostBased && options.max_rows == 0) {
    SetIndexCache* page_cache = index_cache != nullptr ? index_cache
                                                       : &local_cache;
    PlannedEnumerate planned = TryPlannedEnumerate(
        ordered, options, stats, page_cache, cb, governor, plan_info);
    if (planned.kind == PlannedEnumerate::Kind::kDone) return planned.result;
  }

  Matcher matcher(stats, options.use_indexes ? cache : nullptr);
  Substitution sigma;
  ConjunctChain chain{&ordered, &matcher, &cb, governor, Status::Ok()};

  // Columnar substrate: compile a vector plan per conjunct (static shape
  // analysis, once per enumeration). Conjuncts the compiler rejects — and
  // activations whose target set turns out not to be flat — keep the
  // matcher, with identical semantics.
  std::vector<std::optional<VectorConjunctPlan>> plans;
  if (options.substrate == EvalSubstrate::kColumnar) {
    plans.reserve(ordered.size());
    bool any = false;
    for (const ConjunctSource& c : ordered) {
      plans.push_back(CompileVectorConjunct(*c.expr));
      any |= plans.back().has_value();
    }
    if (any) {
      chain.plans = &plans;
      // Page memoization needs a cache even when equality indexes are
      // ablated (pages are storage, not an index).
      chain.page_cache = index_cache != nullptr ? index_cache : &local_cache;
      chain.options = &options;
      chain.stats = stats;
    }
  }

  bool keep_going = chain.Step(0, &sigma);
  if (!chain.error.ok()) return chain.error;
  return keep_going;
}

Result<bool> EnumerateBindings(
    const Value& universe, const std::vector<ExprPtr>& conjuncts,
    const EvalOptions& options, EvalStats* stats,
    const std::function<bool(const Substitution&)>& cb,
    const ResourceGovernor* governor, SetIndexCache* index_cache) {
  std::vector<ConjunctSource> sources;
  sources.reserve(conjuncts.size());
  for (const auto& c : conjuncts) {
    sources.push_back(ConjunctSource{c.get(), &universe});
  }
  return EnumerateBindingsOver(sources, options, stats, index_cache, cb,
                               governor);
}

Result<Answer> EvaluateQuery(const Value& universe, const Query& query,
                             const EvalOptions& options, EvalStats* stats,
                             const ResourceGovernor* governor,
                             SetIndexCache* index_cache) {
  IDL_ASSIGN_OR_RETURN(QueryInfo info, AnalyzeQuery(query));
  if (info.is_update_request) {
    return InvalidArgument(
        "update request passed to EvaluateQuery; use ApplyUpdateRequest");
  }

  Answer answer;
  answer.columns = info.free_vars;

  // Row dedup: hash buckets with deep comparison (hash alone would silently
  // drop distinct rows on collision).
  std::unordered_map<uint64_t, std::vector<size_t>> seen;
  EvalStats local_stats;
  EvalStats* st = stats ? stats : &local_stats;

  Result<bool> r = EnumerateBindings(
      universe, query.conjuncts, options, st,
      [&](const Substitution& sigma) {
        std::vector<Value> row;
        row.reserve(answer.columns.size());
        uint64_t h = 0x9e3779b97f4a7c15ULL;
        for (const auto& var : answer.columns) {
          const Value* v = sigma.Lookup(var);
          // A free variable can be unbound when it only occurs in a conjunct
          // that bound nothing (e.g. under a deferred branch); treat as null.
          Value val = v ? *v : Value::Null();
          h = h * 1099511628211ULL ^ val.Hash();
          row.push_back(std::move(val));
        }
        auto& bucket = seen[h];
        for (size_t idx : bucket) {
          if (answer.rows[idx] == row) return true;  // duplicate
        }
        bucket.push_back(answer.rows.size());
        ++st->substitutions_emitted;
        answer.rows.push_back(std::move(row));
        if (options.max_rows != 0 && answer.rows.size() >= options.max_rows) {
          return false;
        }
        return true;
      },
      governor, index_cache);
  if (!r.ok()) return r.status();
  return answer;
}

}  // namespace idl
