#include "eval/vector_exec.h"

#include <algorithm>

#include "common/metrics.h"
#include "common/str_util.h"
#include "eval/matcher.h"
#include "relational/columnar.h"
#include "syntax/printer.h"

namespace idl {

namespace {

Counter* VectorActivationsCounter() {
  static Counter* c =
      MetricsRegistry::Global().counter("columnar.vector_activations");
  return c;
}
Counter* NonflatFallbacksCounter() {
  static Counter* c =
      MetricsRegistry::Global().counter("columnar.nonflat_fallbacks");
  return c;
}

}  // namespace

std::optional<VectorConjunctPlan> CompileVectorConjunct(const Expr& expr) {
  VectorConjunctPlan plan;
  plan.source = &expr;

  // Navigate single-item constant-attribute tuple levels down to the set.
  const Expr* e = &expr;
  while (true) {
    if (e->negated || e->update != UpdateOp::kNone) return std::nullopt;
    if (e->kind == Expr::Kind::kSet) break;
    if (e->kind != Expr::Kind::kTuple || e->items.size() != 1) {
      return std::nullopt;
    }
    const TupleItem& item = e->items[0];
    if (item.is_guard() || item.attr_is_var ||
        item.update != UpdateOp::kNone || item.expr == nullptr) {
      return std::nullopt;
    }
    plan.path.push_back(&item.attr);
    e = item.expr.get();
  }

  const Expr* inner = e->set_inner.get();
  if (inner == nullptr ||
      (inner->kind == Expr::Kind::kEpsilon && !inner->negated)) {
    return plan;  // `(ε)`: every row emits, no bindings
  }
  if (inner->kind != Expr::Kind::kTuple || inner->negated) {
    return std::nullopt;
  }

  std::vector<const std::string*> binderish;  // kVar term names
  for (const TupleItem& item : inner->items) {
    if (item.update != UpdateOp::kNone || item.is_guard() ||
        item.attr_is_var) {
      return std::nullopt;
    }
    const Expr* sub = item.expr.get();
    if (sub == nullptr || (sub->kind == Expr::Kind::kEpsilon &&
                           !sub->negated)) {
      VectorItemPlan p;
      p.kind = VectorItemPlan::Kind::kExists;
      p.attr = &item.attr;
      plan.items.push_back(p);
      continue;
    }
    if (sub->kind != Expr::Kind::kAtomic || sub->negated ||
        sub->update != UpdateOp::kNone || !sub->guard_var.empty()) {
      return std::nullopt;
    }
    VectorItemPlan p;
    p.kind = VectorItemPlan::Kind::kAtomic;
    p.attr = &item.attr;
    p.relop = sub->relop;
    p.term = &sub->term;
    p.expr = sub;
    plan.items.push_back(p);
    if (sub->term.kind == Term::Kind::kVar) {
      binderish.push_back(&sub->term.var);
    }
  }

  // Intra-conjunct variable reuse keeps the matcher: a variable bound by
  // one item and read by a sibling is a per-row dependency the item-order
  // kernel loop cannot express.
  for (size_t i = 0; i < binderish.size(); ++i) {
    for (size_t j = i + 1; j < binderish.size(); ++j) {
      if (*binderish[i] == *binderish[j]) return std::nullopt;
    }
  }
  for (const VectorItemPlan& p : plan.items) {
    if (p.kind != VectorItemPlan::Kind::kAtomic ||
        p.term->kind != Term::Kind::kArith) {
      continue;
    }
    std::vector<std::string> vars;
    p.term->CollectVars(&vars);
    for (const std::string& v : vars) {
      for (const std::string* b : binderish) {
        if (v == *b) return std::nullopt;
      }
    }
  }
  return plan;
}

Result<bool> ExecuteVectorConjunct(const VectorConjunctPlan& plan,
                                   const Value& universe, SetIndexCache* cache,
                                   const ColumnarStore* store, bool use_indexes,
                                   size_t index_min_rows, EvalStats* stats,
                                   Substitution* sigma,
                                   const std::function<bool()>& next,
                                   bool* fell_back,
                                   ChoiceRecorder* recorder) {
  *fell_back = false;

  // Navigate to the relation set; kind mismatches and absent attributes are
  // "no match", never errors (heterogeneous multidatabase data).
  const Value* cur = &universe;
  for (const std::string* attr : plan.path) {
    if (!cur->is_tuple()) return true;
    cur = cur->FindField(*attr);
    if (cur == nullptr) return true;
  }
  if (!cur->is_set()) return true;

  std::shared_ptr<const ColumnarRelation> page = cache->Columnar(*cur, store);
  if (page == nullptr) {
    NonflatFallbacksCounter()->Increment();
    *fell_back = true;
    return true;
  }
  VectorActivationsCounter()->Increment();
  const ColumnarRelation& rel = *page;

  // The selection vector starts as "all rows" without materializing it, so
  // a leading equality item can seed it straight from an index probe.
  std::vector<uint32_t> sel;
  bool sel_is_all = true;
  auto sel_empty = [&] {
    return sel_is_all ? rel.num_rows() == 0 : sel.empty();
  };
  auto materialize = [&] {
    if (sel_is_all) {
      rel.AllRows(&sel);
      sel_is_all = false;
    }
  };

  struct PendingBind {
    const std::string* var;
    int col;
  };
  std::vector<PendingBind> binds;
  Value scratch;  // evaluated arithmetic operand

  // Stats mirror the scan: the first narrowing step of an activation
  // "scans" its input rows (the probe path counts only its candidates,
  // exactly like the nested index fast path).
  bool scan_counted = false;
  auto count_scan = [&](size_t rows) {
    if (!scan_counted) {
      stats->set_elements_scanned += rows;
      scan_counted = true;
    }
  };

  // Items run strictly in written order: error timing (an unbound variable
  // under `<`, a failing arithmetic term) must match the scan, which raises
  // an error only when some element survives the items before it.
  for (const VectorItemPlan& item : plan.items) {
    int col = rel.FindColumn(*item.attr);
    if (col < 0) {
      // No element has this attribute (the relation is flat): nothing
      // matches, but later items still must NOT error — the scan never
      // reaches them.
      materialize();
      count_scan(sel.size());
      sel.clear();
      continue;
    }
    if (item.kind == VectorItemPlan::Kind::kExists) continue;  // ε: any cell

    const Term& term = *item.term;
    const Value* operand = nullptr;
    if (term.kind == Term::Kind::kVar) {
      const Value* bound = sigma->Lookup(term.var);
      if (bound == nullptr) {
        if (item.relop != RelOp::kEq) {
          if (sel_empty()) continue;
          return Unsafe(StrCat("variable ", term.var, " is unbound in '",
                               ToString(*item.expr), "'"));
        }
        // Binder: null cells never bind (null satisfies nothing), and they
        // drop out here — at this item's position — so later items never
        // see them, exactly like the per-element scan.
        const ColumnarRelation::Column& c = rel.columns()[col];
        if (!c.valid.empty()) {
          materialize();
          count_scan(sel.size());
          size_t out = 0;
          for (uint32_t r : sel) {
            if (c.valid[r] != 0) sel[out++] = r;
          }
          sel.resize(out);
        }
        binds.push_back(PendingBind{&term.var, col});
        continue;
      }
      if (bound->is_tuple() || bound->is_set()) {
        // MatchAtomic's aggregate-equality branch: an atom cell never deep-
        // equals an aggregate, and — unlike EvalRelOp — null cells take this
        // branch too, so `!=` keeps every row (nulls included).
        if (item.relop != RelOp::kNe) {
          materialize();
          count_scan(sel.size());
          sel.clear();
        }
        continue;
      }
      operand = bound;
    } else if (term.kind == Term::Kind::kConst) {
      operand = &term.constant;
    } else {  // kArith: row-independent by compilation; lazy for error parity
      if (sel_empty()) continue;
      Result<Value> v = Matcher::EvalTerm(term, *sigma);
      if (!v.ok()) return v.status();
      scratch = std::move(v).value();
      operand = &scratch;
    }

    // First `=ground` item over an untouched selection: one hash-bucket
    // probe instead of a scan. Small relations skip the index (scanning a
    // typed column beats building a hash map), same threshold as the
    // nested SetIndexCache.
    if (use_indexes && sel_is_all && rel.num_rows() >= index_min_rows &&
        item.relop == RelOp::kEq && operand->is_atom() &&
        !operand->is_null()) {
      bool built = false;
      rel.ProbeEq(static_cast<size_t>(col), *operand, &sel, &built);
      sel_is_all = false;
      ++stats->index_probes;
      if (built) {
        ++stats->indexes_built;
      } else {
        ++stats->indexes_reused;
      }
      stats->set_elements_scanned += sel.size();
      scan_counted = true;
    } else {
      materialize();
      count_scan(sel.size());
      stats->comparisons += sel.size();
      rel.Filter(static_cast<size_t>(col), item.relop, *operand, &sel);
    }
  }

  materialize();
  count_scan(sel.size());
  for (uint32_t r : sel) {
    size_t mark = sigma->Mark();
    size_t cmark = 0;
    if (recorder != nullptr) {
      cmark = recorder->Mark();
      recorder->Push(static_cast<int32_t>(r));
    }
    for (const PendingBind& b : binds) {
      sigma->Bind(*b.var, rel.CellValue(static_cast<size_t>(b.col), r));
    }
    bool keep_going = next();
    if (recorder != nullptr) recorder->TruncateTo(cmark);
    sigma->RollbackTo(mark);
    if (!keep_going) return false;
  }
  return true;
}

}  // namespace idl
