#include "eval/explain.h"

#include <algorithm>

#include "common/metrics.h"
#include "common/str_util.h"

namespace idl {

std::string EvalStats::ToString() const {
  return StrCat("scanned=", set_elements_scanned,
                " attrs=", attrs_enumerated, " cmp=", comparisons,
                " out=", substitutions_emitted, " negprobes=", negation_probes,
                " idxprobes=", index_probes, " idxbuilt=", indexes_built,
                " idxreused=", indexes_reused);
}

void EvalStats::BumpMetrics() const {
  MetricsRegistry& registry = MetricsRegistry::Global();
  static Counter* scanned = registry.counter("eval.set_elements_scanned");
  static Counter* attrs = registry.counter("eval.attrs_enumerated");
  static Counter* cmp = registry.counter("eval.comparisons");
  static Counter* out = registry.counter("eval.substitutions_emitted");
  static Counter* negprobes = registry.counter("eval.negation_probes");
  static Counter* idxprobes = registry.counter("eval.index_probes");
  static Counter* idxbuilt = registry.counter("eval.indexes_built");
  static Counter* idxreused = registry.counter("eval.indexes_reused");
  scanned->Increment(set_elements_scanned);
  attrs->Increment(attrs_enumerated);
  cmp->Increment(comparisons);
  out->Increment(substitutions_emitted);
  negprobes->Increment(negation_probes);
  idxprobes->Increment(index_probes);
  idxbuilt->Increment(indexes_built);
  idxreused->Increment(indexes_reused);
}

namespace {

std::string FormatMs(double ms) {
  // Two decimals, no locale surprises.
  int64_t hundredths = static_cast<int64_t>(ms * 100.0 + 0.5);
  return StrCat(hundredths / 100, ".", (hundredths % 100) < 10 ? "0" : "",
                hundredths % 100);
}

}  // namespace

std::string FormatMaintenanceStats(const MaintenanceStats& s) {
  return StrCat("maintenance: deltas=", s.deltas_applied,
                " rederived=", s.rederived,
                " strata_skipped=", s.strata_skipped,
                " strata_rederived=", s.strata_rederived,
                " fallbacks=", s.fallbacks, "\n");
}

namespace {

// Right-aligns `rows` (first row is the header) into a terminal table.
std::string AlignRows(const std::vector<std::vector<std::string>>& rows) {
  std::vector<size_t> width(rows[0].size(), 0);
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::string out;
  for (size_t r = 0; r < rows.size(); ++r) {
    for (size_t c = 0; c < rows[r].size(); ++c) {
      if (c > 0) out += "  ";
      out.append(width[c] - rows[r][c].size(), ' ');  // right-align
      out += rows[r][c];
    }
    out += '\n';
    if (r == 0) {
      for (size_t c = 0; c < width.size(); ++c) {
        if (c > 0) out += "  ";
        out.append(width[c], '-');
      }
      out += '\n';
    }
  }
  return out;
}

}  // namespace

std::string FormatSiteStats(const std::vector<SiteStats>& sites) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"site", "reqs", "hits", "misses", "retries", "timeouts",
                  "failures", "shipped", "pulled", "state"});
  SiteStats total;
  for (const auto& s : sites) {
    rows.push_back({s.site, StrCat(s.requests), StrCat(s.cache_hits),
                    StrCat(s.cache_misses), StrCat(s.retries),
                    StrCat(s.timeouts), StrCat(s.failures),
                    StrCat(s.shipped_subgoals), StrCat(s.pulled_exports),
                    s.degraded ? "degraded" : "ok"});
    total.requests += s.requests;
    total.cache_hits += s.cache_hits;
    total.cache_misses += s.cache_misses;
    total.retries += s.retries;
    total.timeouts += s.timeouts;
    total.failures += s.failures;
    total.shipped_subgoals += s.shipped_subgoals;
    total.pulled_exports += s.pulled_exports;
  }
  rows.push_back({"total", StrCat(total.requests), StrCat(total.cache_hits),
                  StrCat(total.cache_misses), StrCat(total.retries),
                  StrCat(total.timeouts), StrCat(total.failures),
                  StrCat(total.shipped_subgoals), StrCat(total.pulled_exports),
                  ""});
  return AlignRows(rows);
}

std::string FormatStratumStats(const std::vector<StratumStats>& strata) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"stratum", "rules", "passes", "rec", "subs", "skipped",
                  "delta", "par", "wall_ms"});
  StratumStats total;
  for (const auto& s : strata) {
    rows.push_back({StrCat(s.stratum), StrCat(s.rules), StrCat(s.passes),
                    s.recursive ? "yes" : "no", StrCat(s.substitutions),
                    StrCat(s.substitutions_skipped), StrCat(s.delta_facts),
                    StrCat(s.parallel_tasks), FormatMs(s.wall_ms)});
    total.rules += s.rules;
    total.passes += s.passes;
    total.substitutions += s.substitutions;
    total.substitutions_skipped += s.substitutions_skipped;
    total.delta_facts += s.delta_facts;
    total.parallel_tasks += s.parallel_tasks;
    total.wall_ms += s.wall_ms;
  }
  rows.push_back({"total", StrCat(total.rules), StrCat(total.passes), "",
                  StrCat(total.substitutions),
                  StrCat(total.substitutions_skipped),
                  StrCat(total.delta_facts), StrCat(total.parallel_tasks),
                  FormatMs(total.wall_ms)});
  return AlignRows(rows);
}

std::string FormatAnalyze(const std::vector<StratumStats>& strata,
                          double wall_ms, double cpu_ms, bool mask_timings) {
  auto ms = [mask_timings](double v) {
    return mask_timings ? std::string("-") : FormatMs(v);
  };
  auto trailer_ms = [mask_timings](double v) {
    return mask_timings ? std::string("-") : StrCat(FormatMs(v), "ms");
  };
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"stratum", "rule", "head", "passes", "subs", "plan_ms",
                  "enum_ms", "write_ms", "wall_ms", "cpu_ms"});
  double strata_wall = 0.0;
  double strata_cpu = 0.0;
  double strata_plan = 0.0;
  std::string plan_lines;
  for (const auto& s : strata) {
    rows.push_back({StrCat(s.stratum), "-", "-", StrCat(s.passes),
                    StrCat(s.substitutions), "-", "-", "-", ms(s.wall_ms),
                    ms(s.cpu_ms)});
    strata_wall += s.wall_ms;
    strata_cpu += s.cpu_ms;
    for (const auto& r : s.rule_timings) {
      rows.push_back({StrCat(s.stratum), StrCat(r.rule), r.head,
                      StrCat(r.passes), StrCat(r.substitutions),
                      ms(r.plan_ms), ms(r.enumerate_ms), ms(r.write_ms), "-",
                      "-"});
      strata_plan += r.plan_ms;
      if (r.planned) {
        plan_lines += StrCat("plan: rule=", r.rule, " ", r.plan_summary,
                             " est=", r.plan_est_rows,
                             " actual=", r.plan_actual_rows,
                             " fallback=", r.plan_fell_back ? "yes" : "no",
                             "\n");
      }
    }
  }
  rows.push_back({"total", "-", "-", "", "", "", "", "", ms(strata_wall),
                  ms(strata_cpu)});
  return StrCat(AlignRows(rows), plan_lines,
                "analyze: wall=", trailer_ms(wall_ms),
                " cpu=", trailer_ms(cpu_ms),
                " strata_wall=", trailer_ms(strata_wall),
                " plan=", trailer_ms(strata_plan), "\n");
}

}  // namespace idl
