#include "eval/explain.h"

#include "common/str_util.h"

namespace idl {

std::string EvalStats::ToString() const {
  return StrCat("scanned=", set_elements_scanned,
                " attrs=", attrs_enumerated, " cmp=", comparisons,
                " out=", substitutions_emitted, " negprobes=", negation_probes,
                " idxprobes=", index_probes);
}

}  // namespace idl
