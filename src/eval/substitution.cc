#include "eval/substitution.h"

#include <unordered_map>

#include "common/logging.h"

namespace idl {

const Value* Substitution::Lookup(const std::string& var) const {
  // Bindings are few (the variables of one query); linear scan wins over a
  // map in practice and keeps the trail trivial.
  for (const auto& b : bindings_) {
    if (b.var == var) return &b.value;
  }
  return nullptr;
}

void Substitution::Bind(const std::string& var, Value value) {
  IDL_DCHECK(Lookup(var) == nullptr);
  bindings_.push_back(Binding{var, std::move(value)});
}

void Substitution::RollbackTo(size_t mark) {
  IDL_CHECK(mark <= bindings_.size());
  bindings_.resize(mark);
}

bool SameSubstitution(const Substitution& a, const Substitution& b) {
  if (a.size() != b.size()) return false;
  for (const auto& binding : a.bindings()) {
    const Value* other = b.Lookup(binding.var);
    if (other == nullptr || !(*other == binding.value)) return false;
  }
  return true;
}

void DedupSubstitutions(std::vector<Substitution>* subs) {
  if (subs->size() < 2) return;
  auto fingerprint = [](const Substitution& s) {
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    // Order-insensitive combine (XOR of per-binding hashes).
    for (const auto& b : s.bindings()) {
      uint64_t bh = 1469598103934665603ULL;
      for (char c : b.var) {
        bh = (bh ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
      }
      h ^= bh * 31 + b.value.Hash();
    }
    return h;
  };
  std::vector<Substitution> kept;
  kept.reserve(subs->size());
  std::unordered_map<uint64_t, std::vector<size_t>> seen;
  for (auto& s : *subs) {
    uint64_t h = fingerprint(s);
    auto& bucket = seen[h];
    bool dup = false;
    for (size_t i : bucket) {
      if (SameSubstitution(kept[i], s)) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      bucket.push_back(kept.size());
      kept.push_back(std::move(s));
    }
  }
  *subs = std::move(kept);
}

}  // namespace idl
