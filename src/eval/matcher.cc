#include "eval/matcher.h"

#include "common/str_util.h"
#include "object/value_io.h"
#include "syntax/printer.h"

namespace idl {

namespace {

// Order comparison across atoms: returns -1/0/1, or kUnordered if the kinds
// are not comparable.
constexpr int kUnordered = 2;

int CompareAtoms(const Value& a, const Value& b) {
  if (a.is_number() && b.is_number()) {
    if (a.is_int() && b.is_int()) {
      int64_t x = a.as_int(), y = b.as_int();
      return x == y ? 0 : (x < y ? -1 : 1);
    }
    double x = a.as_double(), y = b.as_double();
    return x == y ? 0 : (x < y ? -1 : 1);
  }
  if (a.is_string() && b.is_string()) {
    int c = a.as_string().compare(b.as_string());
    return c == 0 ? 0 : (c < 0 ? -1 : 1);
  }
  if (a.is_date() && b.is_date()) {
    if (a.as_date() == b.as_date()) return 0;
    return a.as_date() < b.as_date() ? -1 : 1;
  }
  if (a.is_bool() && b.is_bool()) {
    if (a.as_bool() == b.as_bool()) return 0;
    return !a.as_bool() ? -1 : 1;
  }
  return kUnordered;
}

}  // namespace

bool Matcher::EvalRelOp(RelOp op, const Value& object, const Value& operand) {
  // The null atom satisfies no atomic expression (§5.2's null semantics).
  if (object.is_null()) return false;
  if (op == RelOp::kEq || op == RelOp::kNe) {
    bool eq;
    if (object.is_number() && operand.is_number()) {
      eq = object.as_double() == operand.as_double();
    } else {
      eq = object == operand;
    }
    return op == RelOp::kEq ? eq : !eq;
  }
  int c = CompareAtoms(object, operand);
  if (c == kUnordered) return false;
  switch (op) {
    case RelOp::kLt:
      return c < 0;
    case RelOp::kLe:
      return c <= 0;
    case RelOp::kGt:
      return c > 0;
    case RelOp::kGe:
      return c >= 0;
    default:
      return false;
  }
}

Result<Value> Matcher::EvalTerm(const Term& term, const Substitution& sigma) {
  switch (term.kind) {
    case Term::Kind::kConst:
      return term.constant;
    case Term::Kind::kVar: {
      const Value* v = sigma.Lookup(term.var);
      if (v == nullptr) {
        return Unsafe(StrCat("variable ", term.var,
                             " is unbound where a value is required"));
      }
      return *v;
    }
    case Term::Kind::kArith: {
      IDL_ASSIGN_OR_RETURN(Value lhs, EvalTerm(*term.lhs, sigma));
      IDL_ASSIGN_OR_RETURN(Value rhs, EvalTerm(*term.rhs, sigma));
      // Date ± int-days arithmetic supports workload-style queries.
      if (lhs.is_date() && rhs.is_int() &&
          (term.op == ArithOp::kAdd || term.op == ArithOp::kSub)) {
        int64_t days = term.op == ArithOp::kAdd ? rhs.as_int() : -rhs.as_int();
        return Value::Of(Date::FromDayNumber(lhs.as_date().DayNumber() + days));
      }
      if (!lhs.is_number() || !rhs.is_number()) {
        return TypeError(StrCat("arithmetic on non-numeric operands: ",
                                ToString(lhs.is_number() ? rhs : lhs)));
      }
      if (lhs.is_int() && rhs.is_int() && term.op != ArithOp::kDiv) {
        int64_t a = lhs.as_int(), b = rhs.as_int();
        switch (term.op) {
          case ArithOp::kAdd:
            return Value::Int(a + b);
          case ArithOp::kSub:
            return Value::Int(a - b);
          case ArithOp::kMul:
            return Value::Int(a * b);
          default:
            break;
        }
      }
      double a = lhs.as_double(), b = rhs.as_double();
      switch (term.op) {
        case ArithOp::kAdd:
          return Value::Real(a + b);
        case ArithOp::kSub:
          return Value::Real(a - b);
        case ArithOp::kMul:
          return Value::Real(a * b);
        case ArithOp::kDiv:
          if (b == 0) return InvalidArgument("division by zero");
          return Value::Real(a / b);
      }
      return Internal("unreachable arithmetic case");
    }
  }
  return Internal("unreachable term kind");
}

Result<bool> Matcher::Match(const Value& value, const Expr& expr,
                            Substitution* sigma, const MatchCallback& cb) {
  if (expr.update != UpdateOp::kNone) {
    return InvalidArgument(
        StrCat("update expression in a query context: ", ToString(expr)));
  }
  if (expr.negated) {
    // ¬exp: satisfied iff no extension satisfies exp. Inner variables are
    // existential: bindings do not escape (we roll back to the mark).
    ++stats_->negation_probes;
    bool found = false;
    size_t mark = sigma->Mark();
    // Choices made while probing for a witness are existential and never
    // reach an emission; keep them out of the recorded path.
    if (recorder_ != nullptr) recorder_->Suspend();
    Result<bool> r =
        MatchPositive(value, expr, sigma, [&](const Substitution&) {
          found = true;
          return false;  // stop at first witness
        });
    if (recorder_ != nullptr) recorder_->Resume();
    sigma->RollbackTo(mark);
    if (!r.ok()) return r.status();
    if (found) return true;  // negation fails: no callback, keep enumerating
    return cb(*sigma);
  }
  return MatchPositive(value, expr, sigma, cb);
}

Result<bool> Matcher::MatchPositive(const Value& value, const Expr& expr,
                                    Substitution* sigma,
                                    const MatchCallback& cb) {
  switch (expr.kind) {
    case Expr::Kind::kEpsilon:
      return cb(*sigma);
    case Expr::Kind::kAtomic:
      return MatchAtomic(value, expr, sigma, cb);
    case Expr::Kind::kTuple:
      return MatchTuple(value, expr, sigma, cb);
    case Expr::Kind::kSet:
      return MatchSet(value, expr, sigma, cb);
  }
  return Internal("unreachable expression kind");
}

Result<bool> Matcher::Exists(const Value& value, const Expr& expr,
                             Substitution* sigma) {
  bool found = false;
  size_t mark = sigma->Mark();
  Result<bool> r = Match(value, expr, sigma, [&](const Substitution&) {
    found = true;
    return false;
  });
  sigma->RollbackTo(mark);
  if (!r.ok()) return r.status();
  return found;
}

Result<bool> Matcher::MatchAtomic(const Value& value, const Expr& expr,
                                  Substitution* sigma,
                                  const MatchCallback& cb) {
  ++stats_->comparisons;
  // Guard: `Var relop Term` over bound variables (footnote 7); the context
  // object plays no role. `X = term` with X free binds X.
  if (!expr.guard_var.empty()) {
    const Value* bound = sigma->Lookup(expr.guard_var);
    if (bound == nullptr) {
      if (expr.relop != RelOp::kEq) {
        return Unsafe(StrCat("guard variable ", expr.guard_var,
                             " is unbound in '", ToString(expr), "'"));
      }
      IDL_ASSIGN_OR_RETURN(Value v, EvalTerm(expr.term, *sigma));
      size_t mark = sigma->Mark();
      sigma->Bind(expr.guard_var, std::move(v));
      bool keep_going = cb(*sigma);
      sigma->RollbackTo(mark);
      return keep_going;
    }
    IDL_ASSIGN_OR_RETURN(Value operand, EvalTerm(expr.term, *sigma));
    if (bound->is_tuple() || bound->is_set() || operand.is_tuple() ||
        operand.is_set()) {
      bool eq = *bound == operand;
      bool sat = expr.relop == RelOp::kEq     ? eq
                 : expr.relop == RelOp::kNe ? !eq
                                            : false;
      return sat ? cb(*sigma) : true;
    }
    // Guards compare two values symmetrically; `!=` must hold even against
    // null, so handle equality kinds directly rather than via EvalRelOp's
    // null-fails-everything rule.
    if (bound->is_null() || operand.is_null()) {
      bool eq = bound->is_null() && operand.is_null();
      bool sat = expr.relop == RelOp::kEq     ? eq
                 : expr.relop == RelOp::kNe ? !eq
                                            : false;
      return sat ? cb(*sigma) : true;
    }
    return EvalRelOp(expr.relop, *bound, operand) ? cb(*sigma) : true;
  }
  // Unbound variable with '=' binds the object itself (any category).
  if (expr.term.kind == Term::Kind::kVar) {
    const Value* bound = sigma->Lookup(expr.term.var);
    if (bound == nullptr) {
      if (expr.relop != RelOp::kEq) {
        return Unsafe(StrCat("variable ", expr.term.var, " is unbound in '",
                             ToString(expr), "'"));
      }
      if (value.is_null()) return true;  // null satisfies nothing
      size_t mark = sigma->Mark();
      sigma->Bind(expr.term.var, value);
      bool keep_going = cb(*sigma);
      sigma->RollbackTo(mark);
      return keep_going;
    }
    // Bound: fall through to comparison against the bound value.
    if (value.is_tuple() || value.is_set() || bound->is_tuple() ||
        bound->is_set()) {
      // Aggregate equality (deep, order-insensitive for sets).
      bool eq = value == *bound;
      bool sat = expr.relop == RelOp::kEq     ? eq
                 : expr.relop == RelOp::kNe ? !eq
                                            : false;
      return sat ? cb(*sigma) : true;
    }
    return EvalRelOp(expr.relop, value, *bound) ? cb(*sigma) : true;
  }
  // Constant or arithmetic term: evaluate and compare.
  if (value.is_tuple() || value.is_set()) return true;  // kind mismatch
  IDL_ASSIGN_OR_RETURN(Value operand, EvalTerm(expr.term, *sigma));
  return EvalRelOp(expr.relop, value, operand) ? cb(*sigma) : true;
}

Result<bool> Matcher::MatchTuple(const Value& value, const Expr& expr,
                                 Substitution* sigma, const MatchCallback& cb) {
  if (!value.is_tuple()) return true;  // kind mismatch: no match, no error
  return MatchTupleItems(value, expr.items, 0, sigma, cb);
}

Result<bool> Matcher::MatchTupleItems(const Value& value,
                                      const std::vector<TupleItem>& items,
                                      size_t index, Substitution* sigma,
                                      const MatchCallback& cb) {
  if (index == items.size()) return cb(*sigma);
  const TupleItem& item = items[index];
  if (item.update != UpdateOp::kNone) {
    return InvalidArgument("update item in a query context");
  }
  // Function-local static reference: never destroyed (per style rules on
  // static storage duration objects).
  static const Expr& kEpsilon = *new Expr();  // default-constructed == ε

  // Guard item: evaluate the guard (it ignores the context object).
  if (item.is_guard()) {
    Result<bool> r =
        Match(value, item.expr ? *item.expr : kEpsilon, sigma,
              [&](const Substitution&) {
                Result<bool> nested =
                    MatchTupleItems(value, items, index + 1, sigma, cb);
                if (!nested.ok()) {
                  nested_error_ = nested.status();
                  return false;
                }
                return *nested;
              });
    if (!r.ok()) return r.status();
    if (!nested_error_.ok()) {
      Status err = nested_error_;
      nested_error_ = Status::Ok();
      return err;
    }
    return r;
  }

  auto match_one_attr = [&](const Value& attr_object) -> Result<bool> {
    const Expr& sub = item.expr ? *item.expr : kEpsilon;
    return Match(attr_object, sub, sigma, [&](const Substitution&) {
      Result<bool> r = MatchTupleItems(value, items, index + 1, sigma, cb);
      // Errors inside nested enumeration surface as stop + sticky status.
      if (!r.ok()) {
        nested_error_ = r.status();
        return false;
      }
      return *r;
    });
  };

  Result<bool> result = true;
  if (!item.attr_is_var) {
    const Value* attr_object = value.FindField(item.attr);
    if (attr_object == nullptr) return true;  // attribute absent: no match
    result = match_one_attr(*attr_object);
  } else {
    const Value* bound = sigma->Lookup(item.attr);
    if (bound != nullptr) {
      // Higher-order variable already bound: must name an attribute.
      if (!bound->is_string()) return true;
      const Value* attr_object = value.FindField(bound->as_string());
      if (attr_object == nullptr) return true;
      if (recorder_ != nullptr) {
        // Record the attribute's ordinal even on the direct-lookup path, so
        // a plan that binds the variable earlier than the written order did
        // still produces the ordinal the written-order enumeration records.
        const auto& fields = value.fields();
        size_t fi = 0;
        while (fi < fields.size() && fields[fi].name != bound->as_string()) {
          ++fi;
        }
        size_t cmark = recorder_->Mark();
        recorder_->Push(static_cast<int32_t>(fi));
        result = match_one_attr(*attr_object);
        recorder_->TruncateTo(cmark);
      } else {
        result = match_one_attr(*attr_object);
      }
    } else {
      // Enumerate attribute names (§4.3 higher-order quantification).
      const auto& fields = value.fields();
      for (size_t fi = 0; fi < fields.size(); ++fi) {
        const auto& field = fields[fi];
        ++stats_->attrs_enumerated;
        size_t mark = sigma->Mark();
        size_t cmark = 0;
        if (recorder_ != nullptr) {
          cmark = recorder_->Mark();
          recorder_->Push(static_cast<int32_t>(fi));
        }
        sigma->Bind(item.attr, Value::String(field.name));
        Result<bool> r = match_one_attr(field.value);
        if (recorder_ != nullptr) recorder_->TruncateTo(cmark);
        sigma->RollbackTo(mark);
        if (!r.ok()) return r.status();
        if (!*r) {
          result = false;
          break;
        }
      }
    }
  }
  if (!result.ok()) return result.status();
  if (!nested_error_.ok()) {
    Status err = nested_error_;
    nested_error_ = Status::Ok();
    return err;
  }
  return result;
}

bool Matcher::FindProbe(const Expr& inner, const Substitution& sigma,
                        std::string_view* attr, Value* value) {
  if (inner.negated || inner.kind != Expr::Kind::kTuple) return false;
  for (const auto& item : inner.items) {
    if (item.attr_is_var || item.is_guard() ||
        item.update != UpdateOp::kNone || item.expr == nullptr) {
      continue;
    }
    const Expr& sub = *item.expr;
    if (sub.negated || sub.kind != Expr::Kind::kAtomic ||
        sub.relop != RelOp::kEq || sub.update != UpdateOp::kNone ||
        !sub.guard_var.empty()) {
      continue;
    }
    Value v;
    if (sub.term.kind == Term::Kind::kConst) {
      v = sub.term.constant;
    } else if (sub.term.kind == Term::Kind::kVar) {
      const Value* bound = sigma.Lookup(sub.term.var);
      if (bound == nullptr) continue;
      v = *bound;
    } else {
      continue;  // arithmetic: not worth probing
    }
    if (v.is_tuple() || v.is_set() || v.is_null()) continue;
    *attr = item.attr;
    *value = std::move(v);
    return true;
  }
  return false;
}

Result<bool> Matcher::MatchSet(const Value& value, const Expr& expr,
                               Substitution* sigma, const MatchCallback& cb) {
  if (!value.is_set()) return true;  // kind mismatch
  static const Expr& kEpsilon = *new Expr();
  const Expr& inner = expr.set_inner ? *expr.set_inner : kEpsilon;

  // Fast path: probe an equality index instead of scanning, when a cache is
  // available and the inner expression pins some attribute to a ground
  // value. Candidates are verified by the full match, so hash collisions
  // and cross-kind equality are handled exactly as in the scan path.
  if (index_cache_ != nullptr) {
    std::string_view attr;
    Value probe_value;
    if (FindProbe(inner, *sigma, &attr, &probe_value)) {
      std::vector<uint32_t> candidates;
      uint64_t built_before = index_cache_->indexes_built();
      if (index_cache_->Probe(value, attr, probe_value, &candidates)) {
        ++stats_->index_probes;
        if (index_cache_->indexes_built() != built_before) {
          ++stats_->indexes_built;
        } else {
          ++stats_->indexes_reused;
        }
        const auto& elements = value.elements();
        for (uint32_t i : candidates) {
          ++stats_->set_elements_scanned;
          size_t mark = sigma->Mark();
          size_t cmark = 0;
          if (recorder_ != nullptr) {
            cmark = recorder_->Mark();
            // Candidates carry their absolute element index, so probe and
            // scan paths record identical ordinals for identical matches.
            recorder_->Push(static_cast<int32_t>(i));
          }
          Result<bool> r = Match(elements[i], inner, sigma, cb);
          if (recorder_ != nullptr) recorder_->TruncateTo(cmark);
          sigma->RollbackTo(mark);
          if (!r.ok()) return r.status();
          if (!*r) return false;
        }
        return true;
      }
    }
  }

  const auto& elements = value.elements();
  for (size_t i = 0; i < elements.size(); ++i) {
    ++stats_->set_elements_scanned;
    size_t mark = sigma->Mark();
    size_t cmark = 0;
    if (recorder_ != nullptr) {
      cmark = recorder_->Mark();
      recorder_->Push(static_cast<int32_t>(i));
    }
    Result<bool> r = Match(elements[i], inner, sigma, cb);
    if (recorder_ != nullptr) recorder_->TruncateTo(cmark);
    sigma->RollbackTo(mark);
    if (!r.ok()) return r.status();
    if (!*r) return false;
  }
  return true;
}

}  // namespace idl
