// SetIndexCache: lazily-built equality indexes over relation sets, used by
// the matcher to accelerate `(… .attr=value …)` probes.
//
// The cache is keyed by set identity (address), so it is only valid while
// the universe is immutable. Two lifetimes exist:
//
//  * per-evaluation (the original design): created by EvaluateQuery /
//    EnumerateBindings, discarded afterwards;
//  * persistent (the view engine): one cache per worker thread survives
//    across rules and fixpoint passes of a materialization, keyed by a
//    *universe generation* counter that the engine bumps whenever MakeTrue
//    changes the universe. EnsureGeneration drops every entry on a
//    generation change — addresses may dangle after mutation, so
//    invalidation is whole-cache, never per-entry. While the universe is
//    unchanged (e.g. a pass that derived nothing, or many rules reading the
//    same relations within one pass), indexes are reused instead of rebuilt.
//
// An index over one (set, attribute) pair is built on first probe, and only
// for sets at least `min_set_size` elements large (scanning smaller sets is
// cheaper than indexing them).

#ifndef IDL_EVAL_INDEX_H_
#define IDL_EVAL_INDEX_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/interner.h"
#include "object/value.h"

namespace idl {

class ColumnarRelation;
class ColumnarStore;

class SetIndexCache {
 public:
  explicit SetIndexCache(size_t min_set_size = 32)
      : min_set_size_(min_set_size) {}

  SetIndexCache(const SetIndexCache&) = delete;
  SetIndexCache& operator=(const SetIndexCache&) = delete;

  // Declares the universe generation the next probes will run against. If it
  // differs from the generation the cache was filled under, every entry is
  // dropped (set addresses are not stable across mutations).
  void EnsureGeneration(uint64_t generation) {
    if (generation != generation_) {
      cache_.clear();
      columnar_.clear();
      generation_ = generation;
    }
  }
  uint64_t generation() const { return generation_; }

  // Candidate element positions of `set` whose `attr` equals `value`
  // (verified by hash only — the caller re-checks each candidate), in
  // ascending element order so the indexed path visits candidates in the
  // same order a scan would. Returns false if the set is below the indexing
  // threshold (caller should scan).
  bool Probe(const Value& set, std::string_view attr, const Value& value,
             std::vector<uint32_t>* candidates);

  // The columnar page for `set`: `store`'s pre-built page if it has one
  // (server epochs), else built on first request and memoized for the
  // generation. Returns nullptr when the set is not flat (memoized too, so
  // flatness is detected once per set per generation).
  std::shared_ptr<const ColumnarRelation> Columnar(const Value& set,
                                                   const ColumnarStore* store);

  uint64_t indexes_built() const { return indexes_built_; }
  // Probes answered by an index built on an earlier probe (possibly by an
  // earlier rule or fixpoint pass of the same generation).
  uint64_t indexes_reused() const { return indexes_reused_; }

 private:
  struct AttrIndex {
    // attribute value hash -> element positions.
    std::unordered_multimap<uint64_t, uint32_t> by_hash;
  };
  using SetKey = const void*;

  // All entries for one set, stamped with the cardinality they were built
  // from. Address-keyed caching assumes generation bumps cover every
  // mutation; the stamp is the defensive backstop — if a set shrank or grew
  // in place (delete-and-rederive reusing an address) without a bump, the
  // mismatch forces a rebuild instead of serving stale candidate positions.
  struct PerSetEntry {
    size_t built_size = 0;
    std::unordered_map<StringInterner::Id, AttrIndex> by_attr;
  };
  struct PageEntry {
    size_t built_size = 0;
    // nullptr = known non-flat at built_size elements.
    std::shared_ptr<const ColumnarRelation> page;
  };

  size_t min_set_size_;
  // Attribute names interned once per cache lifetime: probes on the hot
  // path then key by a 32-bit id instead of hashing the attribute string
  // per probe. Survives EnsureGeneration clears — the same few relation
  // attribute names recur across every generation.
  StringInterner attr_ids_;
  // set address -> that set's equality indexes.
  std::unordered_map<SetKey, PerSetEntry> cache_;
  // set address -> columnar page. Same lifetime discipline as cache_:
  // whole-map invalidation on generation change, size-stamp backstop.
  std::unordered_map<SetKey, PageEntry> columnar_;
  uint64_t generation_ = 0;
  uint64_t indexes_built_ = 0;
  uint64_t indexes_reused_ = 0;
};

}  // namespace idl

#endif  // IDL_EVAL_INDEX_H_
