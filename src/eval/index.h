// SetIndexCache: lazily-built equality indexes over relation sets, used by
// the matcher to accelerate `(… .attr=value …)` probes during one query
// evaluation.
//
// The cache is keyed by set identity (address), so it is only valid while
// the universe is immutable — it is created per EvaluateQuery /
// EnumerateBindings call and discarded afterwards. An index over one
// (set, attribute) pair is built on first probe, and only for sets at least
// `min_set_size` elements large (scanning smaller sets is cheaper than
// indexing them).

#ifndef IDL_EVAL_INDEX_H_
#define IDL_EVAL_INDEX_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "object/value.h"

namespace idl {

class SetIndexCache {
 public:
  explicit SetIndexCache(size_t min_set_size = 32)
      : min_set_size_(min_set_size) {}

  SetIndexCache(const SetIndexCache&) = delete;
  SetIndexCache& operator=(const SetIndexCache&) = delete;

  // Candidate element positions of `set` whose `attr` equals `value`
  // (verified by hash only — the caller re-checks each candidate). Returns
  // false if the set is below the indexing threshold (caller should scan).
  bool Probe(const Value& set, const std::string& attr, const Value& value,
             std::vector<uint32_t>* candidates);

  uint64_t indexes_built() const { return indexes_built_; }

 private:
  struct AttrIndex {
    // attribute value hash -> element positions.
    std::unordered_multimap<uint64_t, uint32_t> by_hash;
  };
  using SetKey = const void*;

  size_t min_set_size_;
  // (set address, attribute) -> index.
  std::unordered_map<SetKey, std::unordered_map<std::string, AttrIndex>>
      cache_;
  uint64_t indexes_built_ = 0;
};

}  // namespace idl

#endif  // IDL_EVAL_INDEX_H_
