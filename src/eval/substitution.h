// Substitution: a mapping from variables to objects (paper §4.2), with a
// trail so the matcher can backtrack cheaply.

#ifndef IDL_EVAL_SUBSTITUTION_H_
#define IDL_EVAL_SUBSTITUTION_H_

#include <string>
#include <vector>

#include "object/value.h"

namespace idl {

class Substitution {
 public:
  Substitution() = default;

  // The value bound to `var`, or nullptr if free.
  const Value* Lookup(const std::string& var) const;
  bool IsBound(const std::string& var) const { return Lookup(var) != nullptr; }

  // Binds a currently-free variable. (Rebinding is a bug: callers must
  // check Lookup first and compare.)
  void Bind(const std::string& var, Value value);

  // Backtracking: Mark() the trail, Bind() freely, RollbackTo(mark) to undo.
  size_t Mark() const { return bindings_.size(); }
  void RollbackTo(size_t mark);

  size_t size() const { return bindings_.size(); }

  struct Binding {
    std::string var;
    Value value;
  };
  const std::vector<Binding>& bindings() const { return bindings_; }

 private:
  std::vector<Binding> bindings_;
};

// True if both bind exactly the same variables to equal values (binding
// order is irrelevant).
bool SameSubstitution(const Substitution& a, const Substitution& b);

// Removes duplicate substitutions, keeping first occurrences. The paper's
// semantics is set-valued (an answer is a *set* of substitutions), so
// intermediate binding sets may be deduplicated freely.
void DedupSubstitutions(std::vector<Substitution>* subs);

}  // namespace idl

#endif  // IDL_EVAL_SUBSTITUTION_H_
