// Update expression evaluation (paper §5.2).
//
// An update request `? e1, ..., ek` evaluates conjuncts strictly left to
// right over a set of substitutions: pure query conjuncts extend the
// substitutions (sideways information passing), update conjuncts mutate the
// universe once per substitution. Deletes additionally *bind*: deleting
// `-(.hp=C)` extends the substitution with C bound to each deleted value, so
// the paper's delete-then-insert composition
//   ?.chwab.r-(.date=3/3/85,.hp=C), .chwab.r+(.date=3/3/85,.hp=C+10)
// works as written (a series of deletes, one per binding — the QBE/LDL
// reading the paper adopts).
//
// Implemented semantics, per §5.2:
//  * atomic plus  `+=c`   replace the atom with c
//  * atomic minus `-=c`   replace with null if the atom satisfies =c
//  * tuple plus   `+.a e` create attribute a (dropping any existing object),
//                         seed an empty object, recursively make e true on it
//  * tuple minus  `-.a e` remove attribute a if its object satisfies e
//  * set plus     `+(e)`  build a new object from e and insert it
//  * set minus    `-(e)`  delete all elements satisfying e
// Update expressions must be simple and ground at application time
// (violations yield kUnsafe, never undefined behaviour). Sets may end up
// heterogeneous — attribute deletion in a single tuple is legal (§5.2).

#ifndef IDL_UPDATE_APPLIER_H_
#define IDL_UPDATE_APPLIER_H_

#include <set>
#include <string>
#include <vector>

#include "common/governor.h"
#include "common/result.h"
#include "eval/explain.h"
#include "eval/substitution.h"
#include "object/value.h"
#include "syntax/ast.h"
#include "views/delta.h"

namespace idl {

struct UpdateCounts {
  uint64_t set_inserts = 0;
  uint64_t set_deletes = 0;
  uint64_t attr_creates = 0;
  uint64_t attr_deletes = 0;
  uint64_t atom_writes = 0;
  uint64_t atom_nulls = 0;

  uint64_t Total() const {
    return set_inserts + set_deletes + attr_creates + attr_deletes +
           atom_writes + atom_nulls;
  }
  UpdateCounts& operator+=(const UpdateCounts& o) {
    set_inserts += o.set_inserts;
    set_deletes += o.set_deletes;
    attr_creates += o.attr_creates;
    attr_deletes += o.attr_deletes;
    atom_writes += o.atom_writes;
    atom_nulls += o.atom_nulls;
    return *this;
  }

  // Folds these counts into the process-wide update.* counters
  // (common/metrics.h). Called once per completed request, not per
  // mutation, to keep the applier's hot path free of registry traffic.
  void BumpMetrics() const;
};

class UpdateApplier {
 public:
  // `governor`, if non-null, is polled once per conjunct application and per
  // MakeTrue — update requests touch few objects per step, so that is
  // responsive enough, and the applier never needs to roll back (the session
  // snapshots before governed updates).
  UpdateApplier(EvalStats* stats, UpdateCounts* counts,
                const ResourceGovernor* governor = nullptr)
      : stats_(stats), counts_(counts), governor_(governor) {}

  // When set, every mutation is recorded into `delta` at the finest sound
  // granularity (views/delta.h): fresh facts added to a relation as
  // inserts, anything else as a dirty "db[.rel]" path, mutations that
  // cannot be attributed to a database path as whole-universe. Only
  // meaningful when ApplyConjunct targets the universe root (paths are
  // tracked from the target down).
  void set_delta(UniverseDelta* delta) { delta_ = delta; }

  // Applies one conjunct (which contains update markers) to `target` under
  // `sigma`; appends the resulting (possibly extended) substitutions to
  // `out`. A conjunct whose query parts match nothing appends nothing.
  Status ApplyConjunct(Value* target, const Expr& expr,
                       const Substitution& sigma,
                       std::vector<Substitution>* out);

  // Makes a simple expression true on `slot` (the recursive "+" semantics:
  // the MakeTrue operation shared with the view engine, §6).
  Status MakeTrue(Value* slot, const Expr& expr, const Substitution& sigma);

 private:
  // Items are applied with pure-query items first (they *select* the tuples
  // an update applies to, whatever order they were written in: delStk's
  // `.S-=X, .date=D` filters on the date), then update items in written
  // order.
  Status ApplyTupleItems(Value* tuple,
                         const std::vector<const TupleItem*>& items,
                         size_t index, const Substitution& sigma,
                         std::vector<Substitution>* out);
  static std::vector<const TupleItem*> OrderItems(
      const std::vector<TupleItem>& items);
  Status ApplyItem(Value* tuple, const TupleItem& item,
                   const Substitution& sigma, std::vector<Substitution>* out);
  Status ApplySet(Value* set, const Expr& expr, const Substitution& sigma,
                  std::vector<Substitution>* out);
  Status ApplyAtomic(Value* atom, const Expr& expr, const Substitution& sigma,
                     std::vector<Substitution>* out);

  // Resolves an item's attribute name: a constant, or a variable that must
  // be bound to a string.
  Result<std::string> GroundAttr(const TupleItem& item,
                                 const Substitution& sigma);

  // Records the innermost enclosing relation as dirty in delta_ (no-op
  // without one). `attr` extends the current navigation path — an
  // attribute-level mutation; inside set elements the set itself is the
  // changed relation, whatever deeper path the mutation took.
  void RecordDirty(const std::string* attr);

  EvalStats* stats_;
  UpdateCounts* counts_;
  const ResourceGovernor* governor_;
  UniverseDelta* delta_ = nullptr;
  // Attribute path from the update target (the universe root) to the object
  // currently being mutated; elements of sets contribute no component.
  std::vector<std::string> path_;
  // Depth of nested element-wise set updates; while > 0 all recording
  // collapses onto element_set_path_, the outermost such set.
  size_t element_depth_ = 0;
  std::vector<std::string> element_set_path_;
};

struct UpdateRequestResult {
  // Substitutions alive after the last conjunct (0 means some conjunct
  // matched nothing — the request had no effect at that point).
  size_t bindings = 0;
  UpdateCounts counts;
};

// Applies an update request (a Query whose conjuncts include update
// expressions) to the universe. `governor`, if non-null, is polled per
// substitution per conjunct; callers wanting strong exception safety must
// snapshot the universe first (the session does). `delta`, if non-null,
// records every mutation (see UpdateApplier::set_delta).
Result<UpdateRequestResult> ApplyUpdateRequest(
    Value* universe, const Query& request, EvalStats* stats = nullptr,
    const ResourceGovernor* governor = nullptr,
    UniverseDelta* delta = nullptr);

// Records into `roots` the top-level attribute names — database names, when
// `conjunct` is applied to the universe root — that the conjunct's update
// markers may mutate under `sigma`. This is an over-approximation (a
// recorded root may end up unchanged if the update's query part matches
// nothing), which is what the federation write-back path needs: it must
// write back every site that *may* have changed. A database name held in a
// variable that `sigma` does not ground as a string records "*" (any root).
void CollectUpdateRoots(const Expr& conjunct, const Substitution& sigma,
                        std::set<std::string>* roots);

}  // namespace idl

#endif  // IDL_UPDATE_APPLIER_H_
