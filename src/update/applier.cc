#include "update/applier.h"

#include "common/metrics.h"
#include "common/str_util.h"
#include "eval/matcher.h"
#include "syntax/printer.h"

namespace idl {

void UpdateCounts::BumpMetrics() const {
  static Counter* set_ins =
      MetricsRegistry::Global().counter("update.set_inserts");
  static Counter* set_del =
      MetricsRegistry::Global().counter("update.set_deletes");
  static Counter* attr_crt =
      MetricsRegistry::Global().counter("update.attr_creates");
  static Counter* attr_del =
      MetricsRegistry::Global().counter("update.attr_deletes");
  static Counter* atom_wr =
      MetricsRegistry::Global().counter("update.atom_writes");
  static Counter* atom_nul =
      MetricsRegistry::Global().counter("update.atom_nulls");
  set_ins->Increment(set_inserts);
  set_del->Increment(set_deletes);
  attr_crt->Increment(attr_creates);
  attr_del->Increment(attr_deletes);
  atom_wr->Increment(atom_writes);
  atom_nul->Increment(atom_nulls);
}

namespace {

const Expr& EpsilonExpr() {
  static const Expr& kEpsilon = *new Expr();
  return kEpsilon;
}

// Materializes all satisfying extensions of `sigma` for `value` ⊨ `expr`.
Status CollectMatches(EvalStats* stats, const Value& value, const Expr& expr,
                      const Substitution& sigma,
                      std::vector<Substitution>* out) {
  Matcher matcher(stats);
  Substitution working = sigma;
  Result<bool> r =
      matcher.Match(value, expr, &working, [&](const Substitution& s) {
        out->push_back(s);
        return true;
      });
  if (!r.ok()) return r.status();
  return Status::Ok();
}

}  // namespace

void UpdateApplier::RecordDirty(const std::string* attr) {
  if (delta_ == nullptr) return;
  if (element_depth_ > 0) {
    delta_->AddDirty(element_set_path_);
    return;
  }
  if (attr == nullptr) {
    delta_->AddDirty(path_);
    return;
  }
  path_.push_back(*attr);
  delta_->AddDirty(path_);
  path_.pop_back();
}

Result<std::string> UpdateApplier::GroundAttr(const TupleItem& item,
                                              const Substitution& sigma) {
  if (!item.attr_is_var) return item.attr;
  const Value* bound = sigma.Lookup(item.attr);
  if (bound == nullptr) {
    return Unsafe(StrCat("attribute variable ", item.attr,
                         " is unbound in an update expression"));
  }
  if (!bound->is_string()) {
    return TypeError(StrCat("attribute variable ", item.attr,
                            " is bound to a non-name object"));
  }
  return bound->as_string();
}

Status UpdateApplier::ApplyConjunct(Value* target, const Expr& expr,
                                    const Substitution& sigma,
                                    std::vector<Substitution>* out) {
  if (governor_ != nullptr) IDL_RETURN_IF_ERROR(governor_->Checkpoint());
  if (expr.negated) {
    return Unsafe(StrCat("negated update expression: ", ToString(expr)));
  }
  switch (expr.kind) {
    case Expr::Kind::kEpsilon:
      out->push_back(sigma);
      return Status::Ok();
    case Expr::Kind::kAtomic:
      return ApplyAtomic(target, expr, sigma, out);
    case Expr::Kind::kTuple:
      if (!target->is_tuple()) {
        return TypeError(StrCat("tuple update applied to a ",
                                ValueKindName(target->kind()), " object"));
      }
      return ApplyTupleItems(target, OrderItems(expr.items), 0, sigma, out);
    case Expr::Kind::kSet:
      return ApplySet(target, expr, sigma, out);
  }
  return Internal("unreachable expression kind");
}

std::vector<const TupleItem*> UpdateApplier::OrderItems(
    const std::vector<TupleItem>& items) {
  std::vector<const TupleItem*> ordered;
  ordered.reserve(items.size());
  for (const auto& item : items) {
    if (item.update == UpdateOp::kNone &&
        (item.expr == nullptr || item.expr->IsPureQuery())) {
      ordered.push_back(&item);
    }
  }
  for (const auto& item : items) {
    if (!(item.update == UpdateOp::kNone &&
          (item.expr == nullptr || item.expr->IsPureQuery()))) {
      ordered.push_back(&item);
    }
  }
  return ordered;
}

Status UpdateApplier::ApplyTupleItems(
    Value* tuple, const std::vector<const TupleItem*>& items, size_t index,
    const Substitution& sigma, std::vector<Substitution>* out) {
  if (index == items.size()) {
    out->push_back(sigma);
    return Status::Ok();
  }
  std::vector<Substitution> step;
  IDL_RETURN_IF_ERROR(ApplyItem(tuple, *items[index], sigma, &step));
  for (const auto& s : step) {
    IDL_RETURN_IF_ERROR(ApplyTupleItems(tuple, items, index + 1, s, out));
  }
  return Status::Ok();
}

Status UpdateApplier::ApplyItem(Value* tuple, const TupleItem& item,
                                const Substitution& sigma,
                                std::vector<Substitution>* out) {
  const Expr& sub = item.expr ? *item.expr : EpsilonExpr();

  // Pure query item (no update inside): match to extend bindings. Uses the
  // matcher, so higher-order attribute variables enumerate as usual.
  if (item.update == UpdateOp::kNone && sub.IsPureQuery()) {
    std::vector<TupleItem> single;
    single.push_back(TupleItem{item.update, item.attr_is_var, item.attr,
                               item.expr ? item.expr->Clone() : nullptr});
    ExprPtr probe = Expr::Tuple(std::move(single));
    return CollectMatches(stats_, *tuple, *probe, sigma, out);
  }

  IDL_ASSIGN_OR_RETURN(std::string attr, GroundAttr(item, sigma));

  switch (item.update) {
    case UpdateOp::kInsert: {
      // §5.2 tuple plus: (re)create the attribute with an empty object and
      // make the sub-expression true on it.
      const bool existed = tuple->FindField(attr) != nullptr;
      tuple->SetField(attr, Value::Null());
      ++counts_->attr_creates;
      Value* slot = tuple->MutableField(attr);
      IDL_RETURN_IF_ERROR(MakeTrue(slot, sub, sigma));
      if (delta_ != nullptr) {
        if (existed || element_depth_ > 0) {
          // Replaced an existing object (or churned inside a set element):
          // not a pure insert.
          RecordDirty(&attr);
        } else {
          path_.push_back(attr);
          delta_->AddCreatedObject(path_, *slot);
          path_.pop_back();
        }
      }
      out->push_back(sigma);
      return Status::Ok();
    }
    case UpdateOp::kDelete: {
      // §5.2 tuple minus: remove the attribute if its object satisfies the
      // sub-expression; bindings from the match propagate.
      const Value* object = tuple->FindField(attr);
      if (object == nullptr) {
        out->push_back(sigma);  // nothing to delete
        return Status::Ok();
      }
      std::vector<Substitution> matches;
      IDL_RETURN_IF_ERROR(
          CollectMatches(stats_, *object, sub, sigma, &matches));
      if (matches.empty()) {
        out->push_back(sigma);  // condition not met: unchanged
        return Status::Ok();
      }
      tuple->RemoveField(attr);
      ++counts_->attr_deletes;
      RecordDirty(&attr);
      for (auto& m : matches) out->push_back(std::move(m));
      return Status::Ok();
    }
    case UpdateOp::kNone: {
      // Navigation: the sub-expression contains the updates.
      Value* object = tuple->MutableField(attr);
      if (object == nullptr) {
        return NotFound(
            StrCat("update path: no attribute '", attr, "' to descend into"));
      }
      if (element_depth_ == 0) path_.push_back(attr);
      Status st = ApplyConjunct(object, sub, sigma, out);
      if (element_depth_ == 0) path_.pop_back();
      return st;
    }
  }
  return Internal("unreachable update op");
}

Status UpdateApplier::ApplySet(Value* set, const Expr& expr,
                               const Substitution& sigma,
                               std::vector<Substitution>* out) {
  const Expr& inner = expr.set_inner ? *expr.set_inner : EpsilonExpr();
  if (!set->is_set()) {
    // §5.2: update expressions are valid on an empty object; a null slot
    // becomes an empty set.
    if (set->is_null() && expr.update == UpdateOp::kInsert) {
      *set = Value::EmptySet();
    } else {
      return TypeError(StrCat("set update applied to a ",
                              ValueKindName(set->kind()), " object"));
    }
  }

  switch (expr.update) {
    case UpdateOp::kInsert: {
      // §5.2 set plus: create an empty object, make the inner expression
      // true on it, add it to the set.
      Value element;
      IDL_RETURN_IF_ERROR(MakeTrue(&element, inner, sigma));
      if (delta_ != nullptr) {
        if (element_depth_ == 0 && path_.size() == 2) {
          // A fact added to a base relation: the delta-universe fast path.
          delta_->AddInsert(path_[0], path_[1], element);
        } else {
          RecordDirty(nullptr);
        }
      }
      set->Insert(std::move(element));
      ++counts_->set_inserts;
      out->push_back(sigma);
      return Status::Ok();
    }
    case UpdateOp::kDelete: {
      // §5.2 set minus: delete all elements satisfying the inner (query)
      // expression; one extended substitution per deleted element.
      std::vector<Substitution> matches;
      std::vector<size_t> doomed;
      const auto& elems = set->elements();
      for (size_t i = 0; i < elems.size(); ++i) {
        size_t before = matches.size();
        IDL_RETURN_IF_ERROR(
            CollectMatches(stats_, elems[i], inner, sigma, &matches));
        if (matches.size() > before) doomed.push_back(i);
      }
      if (doomed.empty()) {
        out->push_back(sigma);  // nothing deleted: substitution unchanged
        return Status::Ok();
      }
      // Rebuild the set without the doomed elements (by index).
      {
        std::vector<Value> kept;
        const auto& all = set->elements();
        size_t d = 0;
        for (size_t i = 0; i < all.size(); ++i) {
          if (d < doomed.size() && doomed[d] == i) {
            ++d;
            ++counts_->set_deletes;
          } else {
            kept.push_back(all[i]);
          }
        }
        Value rebuilt = Value::EmptySet();
        for (auto& v : kept) rebuilt.Insert(std::move(v));
        *set = std::move(rebuilt);
      }
      RecordDirty(nullptr);
      for (auto& m : matches) out->push_back(std::move(m));
      return Status::Ok();
    }
    case UpdateOp::kNone: {
      // Element-wise mixed query/update: for each element, the pure parts
      // select and bind, the update parts mutate that element in place.
      if (inner.kind == Expr::Kind::kEpsilon) {
        out->push_back(sigma);
        return Status::Ok();
      }
      if (inner.kind != Expr::Kind::kTuple) {
        return Unsupported(
            "mixed query/update inside a set expression requires tuple "
            "elements");
      }
      uint64_t before = counts_->Total();
      std::vector<const TupleItem*> ordered = OrderItems(inner.items);
      if (element_depth_ == 0) element_set_path_ = path_;
      ++element_depth_;
      size_t n = set->SetSize();
      for (size_t i = 0; i < n; ++i) {
        Value* element = set->MutableElement(i);
        if (!element->is_tuple()) continue;
        Status st = ApplyTupleItems(element, ordered, 0, sigma, out);
        if (!st.ok()) {
          --element_depth_;
          return st;
        }
      }
      --element_depth_;
      if (counts_->Total() != before) {
        set->RehashSet();
        RecordDirty(nullptr);
      }
      return Status::Ok();
    }
  }
  return Internal("unreachable update op");
}

Status UpdateApplier::ApplyAtomic(Value* atom, const Expr& expr,
                                  const Substitution& sigma,
                                  std::vector<Substitution>* out) {
  if (atom->is_tuple() || atom->is_set()) {
    return TypeError(StrCat("atomic update applied to a ",
                            ValueKindName(atom->kind()), " object"));
  }
  switch (expr.update) {
    case UpdateOp::kInsert: {
      // §5.2 atomic plus: replace the object with the value.
      if (expr.relop != RelOp::kEq) {
        return Unsafe("atomic insert must use '=' (simple expression)");
      }
      IDL_ASSIGN_OR_RETURN(Value v, Matcher::EvalTerm(expr.term, sigma));
      *atom = std::move(v);
      ++counts_->atom_writes;
      RecordDirty(nullptr);
      out->push_back(sigma);
      return Status::Ok();
    }
    case UpdateOp::kDelete: {
      // §5.2 atomic minus: null out the object if it satisfies =c. An
      // unbound variable binds to the current value first (delStk's
      // `.S-=X`), making the deleted value available downstream.
      if (expr.relop != RelOp::kEq) {
        return Unsafe("atomic delete must use '=' (simple expression)");
      }
      if (expr.term.kind == Term::Kind::kVar &&
          sigma.Lookup(expr.term.var) == nullptr) {
        if (atom->is_null()) {
          out->push_back(sigma);  // nothing to delete
          return Status::Ok();
        }
        Substitution extended = sigma;
        extended.Bind(expr.term.var, *atom);
        *atom = Value::Null();
        ++counts_->atom_nulls;
        RecordDirty(nullptr);
        out->push_back(std::move(extended));
        return Status::Ok();
      }
      IDL_ASSIGN_OR_RETURN(Value v, Matcher::EvalTerm(expr.term, sigma));
      if (Matcher::EvalRelOp(RelOp::kEq, *atom, v)) {
        *atom = Value::Null();
        ++counts_->atom_nulls;
        RecordDirty(nullptr);
      }
      out->push_back(sigma);
      return Status::Ok();
    }
    case UpdateOp::kNone:
      // Pure query atomic reached through an update conjunct: match.
      return CollectMatches(stats_, *atom, expr, sigma, out);
  }
  return Internal("unreachable update op");
}

Status UpdateApplier::MakeTrue(Value* slot, const Expr& expr,
                               const Substitution& sigma) {
  if (governor_ != nullptr) IDL_RETURN_IF_ERROR(governor_->Checkpoint());
  if (expr.negated) {
    return Unsafe("cannot make a negated expression true");
  }
  switch (expr.kind) {
    case Expr::Kind::kEpsilon:
      return Status::Ok();  // any object satisfies ε; leave the slot as-is
    case Expr::Kind::kAtomic: {
      if (expr.relop != RelOp::kEq || expr.update == UpdateOp::kDelete) {
        return Unsafe(StrCat("insert requires a simple expression, got: ",
                             ToString(expr)));
      }
      IDL_ASSIGN_OR_RETURN(Value v, Matcher::EvalTerm(expr.term, sigma));
      *slot = std::move(v);
      ++counts_->atom_writes;
      return Status::Ok();
    }
    case Expr::Kind::kTuple: {
      // The empty object behaves as an empty tuple in tuple context (§5.2).
      if (slot->is_null()) *slot = Value::EmptyTuple();
      if (!slot->is_tuple()) {
        return TypeError(StrCat("cannot make a tuple expression true on a ",
                                ValueKindName(slot->kind()), " object"));
      }
      for (const auto& item : expr.items) {
        if (item.update == UpdateOp::kDelete) {
          return Unsafe("delete item inside an insert expression");
        }
        IDL_ASSIGN_OR_RETURN(std::string attr, GroundAttr(item, sigma));
        slot->SetField(attr, Value::Null());
        ++counts_->attr_creates;
        Value* field = slot->MutableField(attr);
        IDL_RETURN_IF_ERROR(
            MakeTrue(field, item.expr ? *item.expr : EpsilonExpr(), sigma));
      }
      return Status::Ok();
    }
    case Expr::Kind::kSet: {
      // The empty object behaves as an empty set in set context (§5.2).
      if (slot->is_null()) *slot = Value::EmptySet();
      if (!slot->is_set()) {
        return TypeError(StrCat("cannot make a set expression true on a ",
                                ValueKindName(slot->kind()), " object"));
      }
      if (expr.update == UpdateOp::kDelete) {
        return Unsafe("delete expression inside an insert expression");
      }
      Value element;
      IDL_RETURN_IF_ERROR(
          MakeTrue(&element, expr.set_inner ? *expr.set_inner : EpsilonExpr(),
                   sigma));
      slot->Insert(std::move(element));
      ++counts_->set_inserts;
      return Status::Ok();
    }
  }
  return Internal("unreachable expression kind");
}

Result<UpdateRequestResult> ApplyUpdateRequest(Value* universe,
                                               const Query& request,
                                               EvalStats* stats,
                                               const ResourceGovernor* governor,
                                               UniverseDelta* delta) {
  EvalStats local;
  if (stats == nullptr) stats = &local;
  UpdateRequestResult result;
  UpdateApplier applier(stats, &result.counts, governor);
  applier.set_delta(delta);

  std::vector<Substitution> bindings;
  bindings.emplace_back();

  for (const auto& conjunct : request.conjuncts) {
    std::vector<Substitution> next;
    if (conjunct->IsPureQuery()) {
      for (const auto& sigma : bindings) {
        if (governor != nullptr) IDL_RETURN_IF_ERROR(governor->Checkpoint());
        IDL_RETURN_IF_ERROR(
            CollectMatches(stats, *universe, *conjunct, sigma, &next));
      }
    } else {
      for (const auto& sigma : bindings) {
        IDL_RETURN_IF_ERROR(
            applier.ApplyConjunct(universe, *conjunct, sigma, &next));
      }
    }
    DedupSubstitutions(&next);
    bindings = std::move(next);
    if (bindings.empty()) break;
  }
  result.bindings = bindings.size();
  return result;
}

void CollectUpdateRoots(const Expr& conjunct, const Substitution& sigma,
                        std::set<std::string>* roots) {
  if (conjunct.IsPureQuery()) return;
  if (conjunct.kind != Expr::Kind::kTuple) {
    // A set/atomic update applied to the universe object itself: no named
    // root to attribute it to.
    roots->insert("*");
    return;
  }
  for (const auto& item : conjunct.items) {
    bool updates = item.update != UpdateOp::kNone ||
                   (item.expr != nullptr && item.expr->HasUpdate());
    if (!updates) continue;
    if (!item.attr_is_var) {
      roots->insert(item.attr.empty() ? "*" : item.attr);
      continue;
    }
    const Value* bound = sigma.Lookup(item.attr);
    if (bound != nullptr && bound->is_string()) {
      roots->insert(bound->as_string());
    } else {
      roots->insert("*");
    }
  }
}

}  // namespace idl
