// Path: a sequence of attribute names navigating nested tuples, e.g.
// ["euter", "r"] for the relation r in database euter of the universe.

#ifndef IDL_OBJECT_PATH_H_
#define IDL_OBJECT_PATH_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "object/value.h"

namespace idl {

class Path {
 public:
  Path() = default;
  explicit Path(std::vector<std::string> parts) : parts_(std::move(parts)) {}

  // Parses ".euter.r" or "euter.r".
  static Result<Path> Parse(std::string_view text);

  const std::vector<std::string>& parts() const { return parts_; }
  bool empty() const { return parts_.empty(); }
  size_t size() const { return parts_.size(); }
  const std::string& operator[](size_t i) const { return parts_[i]; }

  Path Child(std::string_view name) const;

  // ".euter.r".
  std::string ToString() const;

  // Navigates `root` along this path; error if a step is missing or passes
  // through a non-tuple.
  Result<const Value*> Resolve(const Value& root) const;
  Result<Value*> ResolveMutable(Value* root) const;

  // Like ResolveMutable but creates missing intermediate tuples (used by
  // MakeTrue when a rule derives into a database that does not exist yet).
  Result<Value*> ResolveOrCreate(Value* root) const;

  friend bool operator==(const Path& a, const Path& b) {
    return a.parts_ == b.parts_;
  }

 private:
  std::vector<std::string> parts_;
};

}  // namespace idl

#endif  // IDL_OBJECT_PATH_H_
