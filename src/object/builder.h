// Fluent construction helpers for tuples, sets, relations and databases.

#ifndef IDL_OBJECT_BUILDER_H_
#define IDL_OBJECT_BUILDER_H_

#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "object/value.h"

namespace idl {

// MakeTuple({{"name", Value::String("john")}, {"sal", Value::Int(10000)}}).
Value MakeTuple(
    std::initializer_list<std::pair<std::string, Value>> fields);

// MakeSet({v1, v2, ...}); duplicates collapse.
Value MakeSet(std::initializer_list<Value> elems);

// Incremental builders (clearer than chains of SetField/Insert).
class TupleBuilder {
 public:
  TupleBuilder& Set(std::string_view name, Value v) {
    value_.SetField(name, std::move(v));
    return *this;
  }
  Value Build() && { return std::move(value_); }

 private:
  Value value_ = Value::EmptyTuple();
};

class SetBuilder {
 public:
  SetBuilder& Add(Value v) {
    value_.Insert(std::move(v));
    return *this;
  }
  Value Build() && { return std::move(value_); }

 private:
  Value value_ = Value::EmptySet();
};

}  // namespace idl

#endif  // IDL_OBJECT_BUILDER_H_
