#include "object/path.h"

#include "common/str_util.h"

namespace idl {

Result<Path> Path::Parse(std::string_view text) {
  std::string_view rest = text;
  if (!rest.empty() && rest[0] == '.') rest.remove_prefix(1);
  if (rest.empty()) return InvalidArgument("empty path");
  std::vector<std::string> parts = Split(rest, '.');
  for (const auto& p : parts) {
    if (p.empty()) {
      return InvalidArgument(StrCat("empty path component in '", text, "'"));
    }
  }
  return Path(std::move(parts));
}

Path Path::Child(std::string_view name) const {
  Path out = *this;
  out.parts_.emplace_back(name);
  return out;
}

std::string Path::ToString() const {
  std::string out;
  for (const auto& p : parts_) {
    out += '.';
    out += p;
  }
  return out;
}

Result<const Value*> Path::Resolve(const Value& root) const {
  const Value* cur = &root;
  for (const auto& p : parts_) {
    if (!cur->is_tuple()) {
      return TypeError(
          StrCat("path ", ToString(), ": '", p, "' applied to a ",
                 ValueKindName(cur->kind()), " object"));
    }
    const Value* next = cur->FindField(p);
    if (next == nullptr) {
      return NotFound(StrCat("path ", ToString(), ": no attribute '", p, "'"));
    }
    cur = next;
  }
  return cur;
}

Result<Value*> Path::ResolveMutable(Value* root) const {
  Value* cur = root;
  for (const auto& p : parts_) {
    if (!cur->is_tuple()) {
      return TypeError(
          StrCat("path ", ToString(), ": '", p, "' applied to a ",
                 ValueKindName(cur->kind()), " object"));
    }
    Value* next = cur->MutableField(p);
    if (next == nullptr) {
      return NotFound(StrCat("path ", ToString(), ": no attribute '", p, "'"));
    }
    cur = next;
  }
  return cur;
}

Result<Value*> Path::ResolveOrCreate(Value* root) const {
  Value* cur = root;
  for (const auto& p : parts_) {
    if (!cur->is_tuple()) {
      return TypeError(
          StrCat("path ", ToString(), ": '", p, "' applied to a ",
                 ValueKindName(cur->kind()), " object"));
    }
    Value* next = cur->MutableField(p);
    if (next == nullptr) {
      cur->SetField(p, Value::EmptyTuple());
      next = cur->MutableField(p);
    }
    cur = next;
  }
  return cur;
}

}  // namespace idl
