// Printing and parsing of object literals.
//
// Concrete syntax (round-trips through ParseValue):
//   atoms   null  true  false  42  6.5  "a string"  hp  3/3/1985
//   tuples  (name: hp, sal: 10000)
//   sets    {(date: 3/3/1985, clsPrice: 50), ...}
//
// Bare lowercase identifiers denote string atoms (the paper writes `hp`,
// `ibm` unquoted); strings that do not lex as identifiers print quoted.

#ifndef IDL_OBJECT_VALUE_IO_H_
#define IDL_OBJECT_VALUE_IO_H_

#include <iosfwd>
#include <string>
#include <string_view>

#include "common/result.h"
#include "object/value.h"

namespace idl {

// Compact single-line rendering.
std::string ToString(const Value& v);

// Pretty multi-line rendering with 2-space indentation; sets/tuples with
// more than `wrap_threshold` entries are broken across lines.
std::string ToPrettyString(const Value& v, size_t wrap_threshold = 4);

// Parses a literal produced by ToString (or written by hand).
Result<Value> ParseValue(std::string_view text);

std::ostream& operator<<(std::ostream& os, const Value& v);

}  // namespace idl

#endif  // IDL_OBJECT_VALUE_IO_H_
