// Date: the calendar-date atom used by the paper's stock examples (3/3/85).
//
// Dates are a distinct atom kind (not strings) so that comparison operators
// in query expressions (.date>D) order chronologically.

#ifndef IDL_OBJECT_DATE_H_
#define IDL_OBJECT_DATE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace idl {

class Date {
 public:
  // 1/1/1 by default (a valid sentinel-free date).
  Date() = default;
  Date(int year, int month, int day);

  static bool IsValid(int year, int month, int day);

  // Parses "M/D/YY" or "M/D/YYYY" (the paper's 3/3/85 style). Two-digit
  // years are 19xx, matching the paper's 1991 setting.
  static Result<Date> Parse(std::string_view text);

  int year() const { return year_; }
  int month() const { return month_; }
  int day() const { return day_; }

  // "3/3/1985".
  std::string ToString() const;

  // Days since 1/1/1 (proleptic Gregorian); supports date arithmetic in
  // generated workloads.
  int64_t DayNumber() const;
  static Date FromDayNumber(int64_t n);

  // Chronological ordering.
  friend bool operator==(const Date& a, const Date& b) {
    return a.year_ == b.year_ && a.month_ == b.month_ && a.day_ == b.day_;
  }
  friend auto operator<=>(const Date& a, const Date& b) {
    if (a.year_ != b.year_) return a.year_ <=> b.year_;
    if (a.month_ != b.month_) return a.month_ <=> b.month_;
    return a.day_ <=> b.day_;
  }

 private:
  int16_t year_ = 1;
  int8_t month_ = 1;
  int8_t day_ = 1;
};

}  // namespace idl

#endif  // IDL_OBJECT_DATE_H_
