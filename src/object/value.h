// Value: the IDL object model (paper Section 3).
//
// An object is an atom (null, bool, int, double, string, date), a tuple of
// named attribute/object pairs, or a set of objects. The model is purely
// value-based (no object identity), sets are duplicate-free and
// order-insensitive, and — crucially for the paper — sets may contain
// *heterogeneous* elements: tuples in one relation can have different
// attribute sets ("varying arity").
//
// The universe of databases is itself a Value: a tuple of databases, each a
// tuple of relations, each relation a set of tuples of atoms.
//
// Mutation discipline: every mutable access (MutableField, MutableElement,
// SetField, Insert, …) invalidates the cached hash of the node it goes
// through. Code that mutates a set element in place must call RehashSet()
// on the containing set afterwards to restore the dedup index.
//
// Thread safety: a Value that no thread mutates is safe to read from many
// threads at once. The only mutable state behind a const read is the hash
// cache, which is a relaxed atomic — concurrent Hash() calls race only on
// storing the identical computed value. The server layer (src/server)
// relies on this to share one published epoch universe across reader
// sessions; WarmHashCaches() additionally pre-computes every node's hash
// before publication so steady-state readers never write at all.

#ifndef IDL_OBJECT_VALUE_H_
#define IDL_OBJECT_VALUE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <variant>
#include <vector>

#include "object/date.h"

namespace idl {

enum class ValueKind : uint8_t {
  kNull = 0,
  kBool,
  kInt,
  kDouble,
  kString,
  kDate,
  kTuple,
  kSet,
};

// "tuple", "set", "int", ...
std::string_view ValueKindName(ValueKind kind);

class Value {
 public:
  // A named attribute of a tuple. Defined after the class (it holds a Value
  // by value).
  struct Field;

  // ---- Construction -------------------------------------------------------

  // Null atom by default.
  Value() = default;

  static Value Null() { return Value(); }
  static Value Bool(bool b);
  static Value Int(int64_t i);
  static Value Real(double d);
  static Value String(std::string s);
  static Value Of(Date d);
  static Value EmptyTuple();
  static Value EmptySet();

  // Hand-written only because the hash cache is an atomic (atomics are not
  // copyable); semantically these are the defaulted member-wise operations.
  Value(const Value& o) : rep_(o.rep_), hash_(o.CachedHash()) {}
  Value& operator=(const Value& o) {
    rep_ = o.rep_;
    SetCachedHash(o.CachedHash());
    return *this;
  }
  Value(Value&& o) noexcept
      : rep_(std::move(o.rep_)), hash_(o.CachedHash()) {}
  Value& operator=(Value&& o) noexcept {
    rep_ = std::move(o.rep_);
    SetCachedHash(o.CachedHash());
    return *this;
  }

  // ---- Classification -----------------------------------------------------

  ValueKind kind() const { return static_cast<ValueKind>(rep_.index()); }
  bool is_null() const { return kind() == ValueKind::kNull; }
  bool is_bool() const { return kind() == ValueKind::kBool; }
  bool is_int() const { return kind() == ValueKind::kInt; }
  bool is_double() const { return kind() == ValueKind::kDouble; }
  bool is_string() const { return kind() == ValueKind::kString; }
  bool is_date() const { return kind() == ValueKind::kDate; }
  bool is_tuple() const { return kind() == ValueKind::kTuple; }
  bool is_set() const { return kind() == ValueKind::kSet; }
  bool is_atom() const { return !is_tuple() && !is_set(); }
  bool is_number() const { return is_int() || is_double(); }

  // ---- Atom access (valid only for the matching kind) ---------------------

  bool as_bool() const;
  int64_t as_int() const;
  double as_double() const;       // valid for int or double
  const std::string& as_string() const;
  const Date& as_date() const;

  // ---- Tuple access -------------------------------------------------------

  size_t TupleSize() const;
  // Fields in sorted-by-name order.
  const std::vector<Field>& fields() const;
  // nullptr if absent.
  const Value* FindField(std::string_view name) const;
  bool HasField(std::string_view name) const {
    return FindField(name) != nullptr;
  }
  // Mutable access; nullptr if absent. Invalidates this node's hash cache.
  Value* MutableField(std::string_view name);
  // Inserts or overwrites.
  void SetField(std::string_view name, Value value);
  // True if the field existed.
  bool RemoveField(std::string_view name);

  // ---- Set access ---------------------------------------------------------

  size_t SetSize() const;
  const std::vector<Value>& elements() const;
  bool Contains(const Value& v) const;
  // Inserts `v` unless already present. Returns true if the set changed.
  bool Insert(Value v);
  // Removes all elements for which pred(elem) is true; returns count removed.
  template <typename Pred>
  size_t EraseIf(Pred pred) {
    auto& s = set_rep();
    std::vector<Value> kept;
    kept.reserve(s.elems.size());
    size_t removed = 0;
    for (auto& e : s.elems) {
      if (pred(static_cast<const Value&>(e))) {
        ++removed;
      } else {
        kept.push_back(std::move(e));
      }
    }
    if (removed > 0) {
      s.elems = std::move(kept);
      RebuildSetIndex();
      SetCachedHash(0);
    }
    return removed;
  }
  // Mutable element access. Invalidates this node's hash cache. The caller
  // must call RehashSet() after in-place element mutation.
  Value* MutableElement(size_t index);
  // Rebuilds the dedup index and removes duplicates introduced by in-place
  // element mutation (keeps the first occurrence).
  void RehashSet();
  // Targeted alternative to RehashSet() when exactly one element was mutated
  // in place: re-indexes elems[index] given its pre-mutation hash. If the new
  // value duplicates another element, the later of the two is removed (the
  // same survivor RehashSet would keep) and true is returned — element
  // indices past the removal point have shifted.
  bool RehashElement(size_t index, uint64_t old_hash);

  // ---- Whole-value operations ---------------------------------------------

  // Structural hash; sets hash order-insensitively. Cached.
  uint64_t Hash() const;

  // Recursively computes and caches the hash of every node, so subsequent
  // const reads (Hash, Contains, ==) never write the cache. The server
  // calls this on an epoch universe before sharing it across reader
  // threads (the cache writes are relaxed atomics, so skipping this is
  // still race-free — warming just keeps shared pages clean).
  void WarmHashCaches() const;

  // Canonical total order over all values: kinds ranked
  // null < bool < int < double < string < date < tuple < set; tuples compare
  // field-by-field in name order; sets compare as sorted element sequences.
  // (Cross-kind *numeric* comparison for query relops lives in the matcher,
  // not here: Compare is a strict ordering for canonicalization.)
  static int Compare(const Value& a, const Value& b);

  // Deep structural equality (sets order-insensitive). Int(1) != Real(1.0).
  friend bool operator==(const Value& a, const Value& b) {
    uint64_t ha = a.CachedHash(), hb = b.CachedHash();
    if (ha != 0 && hb != 0 && ha != hb) return false;
    return Compare(a, b) == 0;
  }

 private:
  struct TupleRep {
    // Sorted by name, unique names.
    std::vector<Field> fields;
  };
  struct SetRep {
    std::vector<Value> elems;
    // element hash -> indices into elems (collision chains possible).
    std::unordered_multimap<uint64_t, uint32_t> index;
  };

  using Rep = std::variant<std::monostate, bool, int64_t, double, std::string,
                           Date, TupleRep, SetRep>;

  TupleRep& tuple_rep();
  const TupleRep& tuple_rep() const;
  SetRep& set_rep();
  const SetRep& set_rep() const;
  void RebuildSetIndex();

  uint64_t CachedHash() const {
    return hash_.load(std::memory_order_relaxed);
  }
  void SetCachedHash(uint64_t h) const {
    hash_.store(h, std::memory_order_relaxed);
  }

  Rep rep_;
  // 0 == not computed. Reset by every mutation path; cached by Hash(). A
  // relaxed atomic so concurrent readers of an immutable Value may race on
  // caching the (identical, deterministic) hash without UB.
  mutable std::atomic<uint64_t> hash_{0};
};

struct Value::Field {
  std::string name;
  Value value;
};

// Number of object-model cells in `v`: every node (atom, tuple, or set)
// counts as one cell, recursively through tuple fields and set elements.
// The resource governor's max_universe_cells budget is accounted in these
// units (common/governor.h).
uint64_t CountCells(const Value& v);

}  // namespace idl

#endif  // IDL_OBJECT_VALUE_H_
