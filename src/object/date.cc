#include "object/date.h"

#include <charconv>

#include "common/logging.h"
#include "common/str_util.h"

namespace idl {

namespace {

bool IsLeap(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int DaysInMonth(int year, int month) {
  static constexpr int kDays[] = {31, 28, 31, 30, 31, 30,
                                  31, 31, 30, 31, 30, 31};
  if (month == 2 && IsLeap(year)) return 29;
  return kDays[month - 1];
}

// Days before January 1 of `year` counted from 1/1/1.
int64_t DaysBeforeYear(int year) {
  int64_t y = year - 1;
  return y * 365 + y / 4 - y / 100 + y / 400;
}

}  // namespace

Date::Date(int year, int month, int day)
    : year_(static_cast<int16_t>(year)),
      month_(static_cast<int8_t>(month)),
      day_(static_cast<int8_t>(day)) {
  IDL_CHECK(IsValid(year, month, day));
}

bool Date::IsValid(int year, int month, int day) {
  return year >= 1 && year <= 9999 && month >= 1 && month <= 12 && day >= 1 &&
         day <= DaysInMonth(year, month);
}

Result<Date> Date::Parse(std::string_view text) {
  int parts[3] = {0, 0, 0};
  const char* p = text.data();
  const char* end = text.data() + text.size();
  for (int i = 0; i < 3; ++i) {
    auto [next, ec] = std::from_chars(p, end, parts[i]);
    // from_chars accepts a sign for int; a negative component would slip
    // past the century pivot (-85 + 1900 = 1815), so reject it here.
    if (ec != std::errc() || next == p || parts[i] < 0) {
      return InvalidArgument(StrCat("bad date literal: '", text, "'"));
    }
    p = next;
    if (i < 2) {
      if (p == end || *p != '/') {
        return InvalidArgument(StrCat("bad date literal: '", text, "'"));
      }
      ++p;
    }
  }
  if (p != end) {
    return InvalidArgument(StrCat("bad date literal: '", text, "'"));
  }
  int year = parts[2];
  if (year < 100) year += 1900;  // The paper's 3/3/85 means 1985.
  if (!IsValid(year, parts[0], parts[1])) {
    return InvalidArgument(StrCat("invalid date: '", text, "'"));
  }
  return Date(year, parts[0], parts[1]);
}

std::string Date::ToString() const {
  return StrCat(static_cast<int>(month_), "/", static_cast<int>(day_), "/",
                static_cast<int>(year_));
}

int64_t Date::DayNumber() const {
  int64_t n = DaysBeforeYear(year_);
  for (int m = 1; m < month_; ++m) n += DaysInMonth(year_, m);
  return n + day_ - 1;
}

Date Date::FromDayNumber(int64_t n) {
  IDL_CHECK(n >= 0);
  // Find the year by estimate then adjust.
  int year = static_cast<int>(n / 366) + 1;
  while (DaysBeforeYear(year + 1) <= n) ++year;
  int64_t rem = n - DaysBeforeYear(year);
  int month = 1;
  while (rem >= DaysInMonth(year, month)) {
    rem -= DaysInMonth(year, month);
    ++month;
  }
  return Date(year, month, static_cast<int>(rem) + 1);
}

}  // namespace idl
