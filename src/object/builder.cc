#include "object/builder.h"

namespace idl {

Value MakeTuple(
    std::initializer_list<std::pair<std::string, Value>> fields) {
  Value t = Value::EmptyTuple();
  for (const auto& [name, v] : fields) t.SetField(name, v);
  return t;
}

Value MakeSet(std::initializer_list<Value> elems) {
  Value s = Value::EmptySet();
  for (const auto& e : elems) s.Insert(e);
  return s;
}

}  // namespace idl
