#include "object/value.h"

#include <algorithm>

#include "common/logging.h"

namespace idl {

namespace {

// 64-bit mix (SplitMix64 finalizer) for hash combining.
uint64_t Mix(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Combine(uint64_t a, uint64_t b) { return Mix(a * 31 + b + 0x9e37); }

uint64_t HashString(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

std::string_view ValueKindName(ValueKind kind) {
  switch (kind) {
    case ValueKind::kNull:
      return "null";
    case ValueKind::kBool:
      return "bool";
    case ValueKind::kInt:
      return "int";
    case ValueKind::kDouble:
      return "double";
    case ValueKind::kString:
      return "string";
    case ValueKind::kDate:
      return "date";
    case ValueKind::kTuple:
      return "tuple";
    case ValueKind::kSet:
      return "set";
  }
  return "unknown";
}

// ---- Construction ----------------------------------------------------------

Value Value::Bool(bool b) {
  Value v;
  v.rep_ = b;
  return v;
}

Value Value::Int(int64_t i) {
  Value v;
  v.rep_ = i;
  return v;
}

Value Value::Real(double d) {
  Value v;
  v.rep_ = d;
  return v;
}

Value Value::String(std::string s) {
  Value v;
  v.rep_ = std::move(s);
  return v;
}

Value Value::Of(Date d) {
  Value v;
  v.rep_ = d;
  return v;
}

Value Value::EmptyTuple() {
  Value v;
  v.rep_ = TupleRep{};
  return v;
}

Value Value::EmptySet() {
  Value v;
  v.rep_ = SetRep{};
  return v;
}

// ---- Atom access -----------------------------------------------------------

bool Value::as_bool() const {
  IDL_CHECK(is_bool());
  return std::get<bool>(rep_);
}

int64_t Value::as_int() const {
  IDL_CHECK(is_int());
  return std::get<int64_t>(rep_);
}

double Value::as_double() const {
  if (is_int()) return static_cast<double>(std::get<int64_t>(rep_));
  IDL_CHECK(is_double());
  return std::get<double>(rep_);
}

const std::string& Value::as_string() const {
  IDL_CHECK(is_string());
  return std::get<std::string>(rep_);
}

const Date& Value::as_date() const {
  IDL_CHECK(is_date());
  return std::get<Date>(rep_);
}

// ---- Tuple access ----------------------------------------------------------

Value::TupleRep& Value::tuple_rep() {
  IDL_CHECK(is_tuple());
  return std::get<TupleRep>(rep_);
}

const Value::TupleRep& Value::tuple_rep() const {
  IDL_CHECK(is_tuple());
  return std::get<TupleRep>(rep_);
}

size_t Value::TupleSize() const { return tuple_rep().fields.size(); }

const std::vector<Value::Field>& Value::fields() const {
  return tuple_rep().fields;
}

namespace {
// Iterator to the first field with name >= `name`.
std::vector<Value::Field>::iterator LowerBound(std::vector<Value::Field>& fs,
                                               std::string_view name) {
  return std::lower_bound(
      fs.begin(), fs.end(), name,
      [](const Value::Field& f, std::string_view n) { return f.name < n; });
}
}  // namespace

const Value* Value::FindField(std::string_view name) const {
  const auto& fs = tuple_rep().fields;
  auto it = std::lower_bound(
      fs.begin(), fs.end(), name,
      [](const Field& f, std::string_view n) { return f.name < n; });
  if (it != fs.end() && it->name == name) return &it->value;
  return nullptr;
}

Value* Value::MutableField(std::string_view name) {
  auto& fs = tuple_rep().fields;
  auto it = LowerBound(fs, name);
  if (it != fs.end() && it->name == name) {
    SetCachedHash(0);
    return &it->value;
  }
  return nullptr;
}

void Value::SetField(std::string_view name, Value value) {
  auto& fs = tuple_rep().fields;
  auto it = LowerBound(fs, name);
  if (it != fs.end() && it->name == name) {
    it->value = std::move(value);
  } else {
    fs.insert(it, Field{std::string(name), std::move(value)});
  }
  SetCachedHash(0);
}

bool Value::RemoveField(std::string_view name) {
  auto& fs = tuple_rep().fields;
  auto it = LowerBound(fs, name);
  if (it == fs.end() || it->name != name) return false;
  fs.erase(it);
  SetCachedHash(0);
  return true;
}

// ---- Set access ------------------------------------------------------------

Value::SetRep& Value::set_rep() {
  IDL_CHECK(is_set());
  return std::get<SetRep>(rep_);
}

const Value::SetRep& Value::set_rep() const {
  IDL_CHECK(is_set());
  return std::get<SetRep>(rep_);
}

size_t Value::SetSize() const { return set_rep().elems.size(); }

const std::vector<Value>& Value::elements() const { return set_rep().elems; }

bool Value::Contains(const Value& v) const {
  const auto& s = set_rep();
  uint64_t h = v.Hash();
  auto [lo, hi] = s.index.equal_range(h);
  for (auto it = lo; it != hi; ++it) {
    if (s.elems[it->second] == v) return true;
  }
  return false;
}

bool Value::Insert(Value v) {
  if (Contains(v)) return false;
  auto& s = set_rep();
  uint64_t h = v.Hash();
  s.index.emplace(h, static_cast<uint32_t>(s.elems.size()));
  s.elems.push_back(std::move(v));
  SetCachedHash(0);
  return true;
}

Value* Value::MutableElement(size_t index) {
  auto& s = set_rep();
  IDL_CHECK(index < s.elems.size());
  SetCachedHash(0);
  return &s.elems[index];
}

void Value::RehashSet() {
  auto& s = set_rep();
  // Dedup (keep first occurrence) then rebuild the index.
  std::vector<Value> kept;
  kept.reserve(s.elems.size());
  s.index.clear();
  for (auto& e : s.elems) {
    uint64_t h = e.Hash();
    bool dup = false;
    auto [lo, hi] = s.index.equal_range(h);
    for (auto it = lo; it != hi; ++it) {
      if (kept[it->second] == e) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      s.index.emplace(h, static_cast<uint32_t>(kept.size()));
      kept.push_back(std::move(e));
    }
  }
  s.elems = std::move(kept);
  SetCachedHash(0);
}

bool Value::RehashElement(size_t index, uint64_t old_hash) {
  auto& s = set_rep();
  IDL_CHECK(index < s.elems.size());
  // Drop the stale index entry keyed by the pre-mutation hash.
  {
    auto [lo, hi] = s.index.equal_range(old_hash);
    for (auto it = lo; it != hi; ++it) {
      if (it->second == index) {
        s.index.erase(it);
        break;
      }
    }
  }
  uint64_t h = s.elems[index].Hash();
  auto [lo, hi] = s.index.equal_range(h);
  for (auto it = lo; it != hi; ++it) {
    if (s.elems[it->second] == s.elems[index]) {
      // One mutated element can create at most one duplicate pair (the set
      // was duplicate-free before). RehashSet keeps first occurrences, so
      // the higher index loses regardless of which one was mutated.
      size_t drop = std::max<size_t>(index, it->second);
      s.elems.erase(s.elems.begin() + static_cast<ptrdiff_t>(drop));
      RebuildSetIndex();
      SetCachedHash(0);
      return true;
    }
  }
  s.index.emplace(h, static_cast<uint32_t>(index));
  SetCachedHash(0);
  return false;
}

void Value::RebuildSetIndex() {
  auto& s = set_rep();
  s.index.clear();
  for (uint32_t i = 0; i < s.elems.size(); ++i) {
    s.index.emplace(s.elems[i].Hash(), i);
  }
}

// ---- Whole-value operations --------------------------------------------------

uint64_t Value::Hash() const {
  if (uint64_t cached = CachedHash(); cached != 0) return cached;
  uint64_t h = Mix(static_cast<uint64_t>(kind()) + 0x51ed);
  switch (kind()) {
    case ValueKind::kNull:
      break;
    case ValueKind::kBool:
      h = Combine(h, std::get<bool>(rep_) ? 2 : 1);
      break;
    case ValueKind::kInt:
      h = Combine(h, static_cast<uint64_t>(std::get<int64_t>(rep_)));
      break;
    case ValueKind::kDouble: {
      double d = std::get<double>(rep_);
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      h = Combine(h, bits);
      break;
    }
    case ValueKind::kString:
      h = Combine(h, HashString(std::get<std::string>(rep_)));
      break;
    case ValueKind::kDate:
      h = Combine(h, static_cast<uint64_t>(std::get<Date>(rep_).DayNumber()));
      break;
    case ValueKind::kTuple:
      for (const auto& f : std::get<TupleRep>(rep_).fields) {
        h = Combine(h, HashString(f.name));
        h = Combine(h, f.value.Hash());
      }
      break;
    case ValueKind::kSet: {
      // Order-insensitive: XOR of element hashes (sets are duplicate-free).
      uint64_t x = 0;
      for (const auto& e : std::get<SetRep>(rep_).elems) x ^= Mix(e.Hash());
      h = Combine(h, x);
      h = Combine(h, std::get<SetRep>(rep_).elems.size());
      break;
    }
  }
  if (h == 0) h = 1;
  SetCachedHash(h);
  return h;
}

void Value::WarmHashCaches() const {
  switch (kind()) {
    case ValueKind::kTuple:
      for (const auto& f : std::get<TupleRep>(rep_).fields) {
        f.value.WarmHashCaches();
      }
      break;
    case ValueKind::kSet:
      for (const auto& e : std::get<SetRep>(rep_).elems) e.WarmHashCaches();
      break;
    default:
      break;
  }
  Hash();
}

int Value::Compare(const Value& a, const Value& b) {
  if (a.kind() != b.kind()) {
    return static_cast<int>(a.kind()) < static_cast<int>(b.kind()) ? -1 : 1;
  }
  switch (a.kind()) {
    case ValueKind::kNull:
      return 0;
    case ValueKind::kBool: {
      bool x = std::get<bool>(a.rep_), y = std::get<bool>(b.rep_);
      return x == y ? 0 : (x < y ? -1 : 1);
    }
    case ValueKind::kInt: {
      int64_t x = std::get<int64_t>(a.rep_), y = std::get<int64_t>(b.rep_);
      return x == y ? 0 : (x < y ? -1 : 1);
    }
    case ValueKind::kDouble: {
      double x = std::get<double>(a.rep_), y = std::get<double>(b.rep_);
      if (x < y) return -1;
      if (x > y) return 1;
      return 0;
    }
    case ValueKind::kString:
      return std::get<std::string>(a.rep_).compare(std::get<std::string>(b.rep_));
    case ValueKind::kDate: {
      const Date& x = std::get<Date>(a.rep_);
      const Date& y = std::get<Date>(b.rep_);
      if (x == y) return 0;
      return x < y ? -1 : 1;
    }
    case ValueKind::kTuple: {
      const auto& fa = std::get<TupleRep>(a.rep_).fields;
      const auto& fb = std::get<TupleRep>(b.rep_).fields;
      size_t n = std::min(fa.size(), fb.size());
      for (size_t i = 0; i < n; ++i) {
        int c = fa[i].name.compare(fb[i].name);
        if (c != 0) return c < 0 ? -1 : 1;
        c = Compare(fa[i].value, fb[i].value);
        if (c != 0) return c;
      }
      if (fa.size() == fb.size()) return 0;
      return fa.size() < fb.size() ? -1 : 1;
    }
    case ValueKind::kSet: {
      const auto& ea = std::get<SetRep>(a.rep_).elems;
      const auto& eb = std::get<SetRep>(b.rep_).elems;
      if (ea.size() != eb.size()) return ea.size() < eb.size() ? -1 : 1;
      // Compare as canonically sorted sequences.
      auto sorted = [](const std::vector<Value>& v) {
        std::vector<const Value*> p;
        p.reserve(v.size());
        for (const auto& e : v) p.push_back(&e);
        std::sort(p.begin(), p.end(), [](const Value* x, const Value* y) {
          return Compare(*x, *y) < 0;
        });
        return p;
      };
      std::vector<const Value*> pa = sorted(ea), pb = sorted(eb);
      for (size_t i = 0; i < pa.size(); ++i) {
        int c = Compare(*pa[i], *pb[i]);
        if (c != 0) return c;
      }
      return 0;
    }
  }
  return 0;
}

uint64_t CountCells(const Value& v) {
  uint64_t cells = 1;
  if (v.is_tuple()) {
    for (const auto& field : v.fields()) cells += CountCells(field.value);
  } else if (v.is_set()) {
    for (const auto& element : v.elements()) cells += CountCells(element);
  }
  return cells;
}

}  // namespace idl
