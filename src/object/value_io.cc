#include "object/value_io.h"

#include <cctype>
#include <charconv>
#include <ostream>
#include <sstream>

#include "common/str_util.h"

namespace idl {

namespace {

bool IsBareIdentifier(const std::string& s) {
  if (s.empty()) return false;
  if (!std::islower(static_cast<unsigned char>(s[0]))) return false;
  for (char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  // Reserved words must be quoted to round-trip.
  return s != "null" && s != "true" && s != "false";
}

void Print(const Value& v, std::string* out) {
  switch (v.kind()) {
    case ValueKind::kNull:
      *out += "null";
      return;
    case ValueKind::kBool:
      *out += v.as_bool() ? "true" : "false";
      return;
    case ValueKind::kInt:
      *out += StrCat(v.as_int());
      return;
    case ValueKind::kDouble:
      *out += DoubleToString(v.as_double());
      return;
    case ValueKind::kString:
      if (IsBareIdentifier(v.as_string())) {
        *out += v.as_string();
      } else {
        *out += QuoteString(v.as_string());
      }
      return;
    case ValueKind::kDate:
      *out += v.as_date().ToString();
      return;
    case ValueKind::kTuple: {
      *out += '(';
      bool first = true;
      for (const auto& f : v.fields()) {
        if (!first) *out += ", ";
        first = false;
        *out += f.name;
        *out += ": ";
        Print(f.value, out);
      }
      *out += ')';
      return;
    }
    case ValueKind::kSet: {
      *out += '{';
      bool first = true;
      for (const auto& e : v.elements()) {
        if (!first) *out += ", ";
        first = false;
        Print(e, out);
      }
      *out += '}';
      return;
    }
  }
}

void PrintPretty(const Value& v, size_t wrap, int indent, std::string* out) {
  auto pad = [&](int n) { out->append(static_cast<size_t>(n) * 2, ' '); };
  switch (v.kind()) {
    case ValueKind::kTuple: {
      if (v.TupleSize() <= wrap) {
        Print(v, out);
        return;
      }
      *out += "(\n";
      bool first = true;
      for (const auto& f : v.fields()) {
        if (!first) *out += ",\n";
        first = false;
        pad(indent + 1);
        *out += f.name;
        *out += ": ";
        PrintPretty(f.value, wrap, indent + 1, out);
      }
      *out += '\n';
      pad(indent);
      *out += ')';
      return;
    }
    case ValueKind::kSet: {
      if (v.SetSize() <= wrap) {
        Print(v, out);
        return;
      }
      *out += "{\n";
      bool first = true;
      for (const auto& e : v.elements()) {
        if (!first) *out += ",\n";
        first = false;
        pad(indent + 1);
        PrintPretty(e, wrap, indent + 1, out);
      }
      *out += '\n';
      pad(indent);
      *out += '}';
      return;
    }
    default:
      Print(v, out);
  }
}

// Minimal recursive-descent literal parser (independent of the IDL language
// lexer; object literals are a lower layer than the language).
class LiteralParser {
 public:
  explicit LiteralParser(std::string_view text) : text_(text) {}

  Result<Value> Parse() {
    IDL_ASSIGN_OR_RETURN(Value v, ParseOne());
    SkipSpace();
    if (pos_ != text_.size()) {
      return ParseError(StrCat("trailing characters at offset ", pos_));
    }
    return v;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  bool Consume(char c) {
    SkipSpace();
    if (Peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<Value> ParseOne() {
    SkipSpace();
    char c = Peek();
    if (c == '(') return ParseTuple();
    if (c == '{') return ParseSet();
    if (c == '"') return ParseQuoted();
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return ParseNumberOrDate();
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return ParseWord();
    }
    return ParseError(StrCat("unexpected character '", std::string(1, c),
                             "' at offset ", pos_));
  }

  Result<Value> ParseTuple() {
    Consume('(');
    Value t = Value::EmptyTuple();
    SkipSpace();
    if (Consume(')')) return t;
    while (true) {
      SkipSpace();
      size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      if (pos_ == start) {
        return ParseError(StrCat("expected attribute name at offset ", pos_));
      }
      std::string name(text_.substr(start, pos_ - start));
      if (!Consume(':')) {
        return ParseError(StrCat("expected ':' after attribute '", name, "'"));
      }
      IDL_ASSIGN_OR_RETURN(Value v, ParseOne());
      t.SetField(name, std::move(v));
      if (Consume(',')) continue;
      if (Consume(')')) return t;
      return ParseError(StrCat("expected ',' or ')' at offset ", pos_));
    }
  }

  Result<Value> ParseSet() {
    Consume('{');
    Value s = Value::EmptySet();
    SkipSpace();
    if (Consume('}')) return s;
    while (true) {
      IDL_ASSIGN_OR_RETURN(Value v, ParseOne());
      s.Insert(std::move(v));
      if (Consume(',')) continue;
      if (Consume('}')) return s;
      return ParseError(StrCat("expected ',' or '}' at offset ", pos_));
    }
  }

  Result<Value> ParseQuoted() {
    Consume('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        char e = text_[pos_++];
        switch (e) {
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'r':
            out += '\r';
            break;
          case 'x': {
            // QuoteString's escape for other control bytes: exactly two
            // lowercase hex digits ("\x00", "\x1b", "\x7f").
            auto hex = [](char h) -> int {
              if (h >= '0' && h <= '9') return h - '0';
              if (h >= 'a' && h <= 'f') return h - 'a' + 10;
              if (h >= 'A' && h <= 'F') return h - 'A' + 10;
              return -1;
            };
            if (pos_ + 1 >= text_.size()) {
              return ParseError(
                  StrCat("truncated \\x escape at offset ", pos_ - 2));
            }
            int hi = hex(text_[pos_]);
            int lo = hex(text_[pos_ + 1]);
            if (hi < 0 || lo < 0) {
              return ParseError(
                  StrCat("bad \\x escape at offset ", pos_ - 2));
            }
            pos_ += 2;
            out += static_cast<char>(hi * 16 + lo);
            break;
          }
          default:
            out += e;
        }
      } else {
        out += c;
      }
    }
    if (pos_ == text_.size()) return ParseError("unterminated string literal");
    ++pos_;  // closing quote
    return Value::String(std::move(out));
  }

  Result<Value> ParseNumberOrDate() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == '/' || text_[pos_] == 'e' ||
            text_[pos_] == 'E' ||
            ((text_[pos_] == '+' || text_[pos_] == '-') &&
             (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
      ++pos_;
    }
    std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.find('/') != std::string_view::npos) {
      IDL_ASSIGN_OR_RETURN(Date d, Date::Parse(tok));
      return Value::Of(d);
    }
    if (tok.find('.') != std::string_view::npos ||
        tok.find('e') != std::string_view::npos ||
        tok.find('E') != std::string_view::npos) {
      double d = 0;
      auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), d);
      if (ec != std::errc() || p != tok.data() + tok.size()) {
        return ParseError(StrCat("bad number '", tok, "'"));
      }
      return Value::Real(d);
    }
    int64_t i = 0;
    auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), i);
    if (ec != std::errc() || p != tok.data() + tok.size()) {
      return ParseError(StrCat("bad number '", tok, "'"));
    }
    return Value::Int(i);
  }

  Result<Value> ParseWord() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    std::string word(text_.substr(start, pos_ - start));
    if (word == "null") return Value::Null();
    if (word == "true") return Value::Bool(true);
    if (word == "false") return Value::Bool(false);
    return Value::String(std::move(word));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

std::string ToString(const Value& v) {
  std::string out;
  Print(v, &out);
  return out;
}

std::string ToPrettyString(const Value& v, size_t wrap_threshold) {
  std::string out;
  PrintPretty(v, wrap_threshold, 0, &out);
  return out;
}

Result<Value> ParseValue(std::string_view text) {
  return LiteralParser(text).Parse();
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << ToString(v);
}

}  // namespace idl
