#include "federation/site.h"

#include <chrono>
#include <thread>
#include <utility>

#include "common/str_util.h"
#include "object/value_io.h"
#include "relational/adapter.h"

namespace idl {

std::string SelectRequest::CacheKey() const {
  std::string key = relation;
  for (const auto& arg : restrictions) {
    key += StrCat("|", arg.column, RelOpText(arg.op), ToString(arg.constant));
  }
  return key;
}

// ---------------------------------------------------------------------------
// LocalSite

LocalSite::LocalSite(std::string name, Value facts)
    : name_(std::move(name)), facts_(std::move(facts)) {}

LocalSite::LocalSite(const RelationalDatabase& db)
    : name_(db.name()), facts_(LiftDatabase(db)) {}

Result<uint64_t> LocalSite::Generation(const RequestContext&) {
  std::lock_guard<std::mutex> lock(mu_);
  return generation_;
}

Result<Value> LocalSite::Export(const RequestContext&) {
  std::lock_guard<std::mutex> lock(mu_);
  return facts_;
}

Status LocalSite::EnsureLowered() {
  if (lowered_.has_value() && lowered_generation_ == generation_) {
    return Status::Ok();
  }
  IDL_ASSIGN_OR_RETURN(RelationalDatabase db, LowerDatabase(name_, facts_));
  lowered_ = std::move(db);
  lowered_generation_ = generation_;
  return Status::Ok();
}

Result<ResultSet> LocalSite::Select(const SelectRequest& request,
                                    const RequestContext&) {
  std::lock_guard<std::mutex> lock(mu_);
  IDL_RETURN_IF_ERROR(EnsureLowered());
  return ExecuteFoSelect(*lowered_, request.relation, request.restrictions);
}

Result<ResultSet> LocalSite::Execute(const FoQuery& query,
                                     const RequestContext&) {
  std::lock_guard<std::mutex> lock(mu_);
  IDL_RETURN_IF_ERROR(EnsureLowered());
  return ExecuteFoQuery(*lowered_, query);
}

Status LocalSite::Write(const Value& facts, const RequestContext&) {
  std::lock_guard<std::mutex> lock(mu_);
  facts_ = facts;
  ++generation_;
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// SimulatedRemoteSite

SimulatedRemoteSite::SimulatedRemoteSite(std::unique_ptr<Site> inner,
                                         int latency_ms)
    : inner_(std::move(inner)), latency_ms_(latency_ms) {}

void SimulatedRemoteSite::FailNext(int n) {
  transient_failures_.fetch_add(n);
}

void SimulatedRemoteSite::KillPermanently() { permanently_dead_.store(true); }

void SimulatedRemoteSite::Revive() {
  permanently_dead_.store(false);
  transient_failures_.store(0);
}

Status SimulatedRemoteSite::Admit(const RequestContext& ctx) {
  requests_seen_.fetch_add(1);
  const int latency = latency_ms_.load();
  if (latency > 0) {
    // The caller observes min(latency, deadline) of wall time: a site slower
    // than the deadline is indistinguishable from a dead one within this
    // request.
    const bool too_slow = ctx.deadline_ms > 0 && latency > ctx.deadline_ms;
    const int wait = too_slow ? ctx.deadline_ms : latency;
    std::this_thread::sleep_for(std::chrono::milliseconds(wait));
    if (too_slow) {
      requests_failed_.fetch_add(1);
      return DeadlineExceeded(StrCat("site '", name(), "' latency ", latency,
                                     "ms exceeds deadline ", ctx.deadline_ms,
                                     "ms"));
    }
  }
  if (permanently_dead_.load()) {
    requests_failed_.fetch_add(1);
    return Unavailable(StrCat("site '", name(), "' is down"));
  }
  int budget = transient_failures_.load();
  while (budget > 0 &&
         !transient_failures_.compare_exchange_weak(budget, budget - 1)) {
  }
  if (budget > 0) {
    requests_failed_.fetch_add(1);
    return Unavailable(
        StrCat("site '", name(), "' transient failure (injected)"));
  }
  return Status::Ok();
}

Result<uint64_t> SimulatedRemoteSite::Generation(const RequestContext& ctx) {
  IDL_RETURN_IF_ERROR(Admit(ctx));
  return inner_->Generation(ctx);
}

Result<Value> SimulatedRemoteSite::Export(const RequestContext& ctx) {
  IDL_RETURN_IF_ERROR(Admit(ctx));
  return inner_->Export(ctx);
}

Result<ResultSet> SimulatedRemoteSite::Select(const SelectRequest& request,
                                              const RequestContext& ctx) {
  IDL_RETURN_IF_ERROR(Admit(ctx));
  return inner_->Select(request, ctx);
}

Result<ResultSet> SimulatedRemoteSite::Execute(const FoQuery& query,
                                               const RequestContext& ctx) {
  IDL_RETURN_IF_ERROR(Admit(ctx));
  return inner_->Execute(query, ctx);
}

Status SimulatedRemoteSite::Write(const Value& facts,
                                  const RequestContext& ctx) {
  IDL_RETURN_IF_ERROR(Admit(ctx));
  return inner_->Write(facts, ctx);
}

}  // namespace idl
