#include "federation/gateway.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <thread>
#include <utility>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "common/trace.h"
#include "relational/adapter.h"

namespace idl {

namespace {

// Pre-dispatch governor gate. A request that reaches the gateway with an
// already-exhausted governor must fail with the governor's own status
// (kDeadlineExceeded / kCancelled / kResourceExhausted) *before* any site
// RPC is issued — previously the expired remaining time was clamped to a
// 1 ms site deadline, so exhaustion surfaced as a per-site timeout and was
// mis-attributed (and retried!) as a site fault. Counted process-wide under
// federation.governor_expired; deliberately not charged to any site's
// timeout/failure counters.
Status CheckGovernorBeforeDispatch(const ResourceGovernor* governor) {
  if (governor == nullptr) return Status::Ok();
  Status st = governor->CheckDeadlineNow();
  if (!st.ok()) {
    MetricsRegistry::Global()
        .counter("federation.governor_expired")
        ->Increment();
  }
  return st;
}

// Issues one logical request with bounded retries and jittered exponential
// backoff (BackoffSchedule). kUnavailable and kDeadlineExceeded are
// retriable; every other error — including the governor's kCancelled and
// kResourceExhausted — is permanent for the request. `governor`, if
// non-null, is checked before every attempt and before every backoff sleep,
// so a cancelled request stops retrying immediately instead of sleeping out
// its schedule. Counters: one `requests` per logical request, one `retries`
// per re-attempt, one `timeouts` per kDeadlineExceeded response, one
// `failures` when the request ultimately fails.
template <typename T>
Result<T> WithRetry(const Gateway::Options& options, SiteStats* stats,
                    const ResourceGovernor* governor,
                    const std::function<Result<T>()>& attempt) {
  static Counter* requests =
      MetricsRegistry::Global().counter("federation.requests");
  static Counter* retries =
      MetricsRegistry::Global().counter("federation.retries");
  static Counter* timeouts =
      MetricsRegistry::Global().counter("federation.timeouts");
  static Counter* failures =
      MetricsRegistry::Global().counter("federation.failures");
  requests->Increment();
  ++stats->requests;
  const std::vector<int> schedule = BackoffSchedule(options);
  for (int tries = 0;; ++tries) {
    if (governor != nullptr) {
      Status st = governor->Checkpoint();
      if (!st.ok()) {
        ++stats->failures;
        failures->Increment();
        return st;
      }
    }
    Result<T> r = attempt();
    if (r.ok()) return r;
    const StatusCode code = r.status().code();
    if (code == StatusCode::kDeadlineExceeded) {
      ++stats->timeouts;
      timeouts->Increment();
    }
    const bool retriable = code == StatusCode::kUnavailable ||
                           code == StatusCode::kDeadlineExceeded;
    if (!retriable || tries >= options.max_retries) {
      ++stats->failures;
      failures->Increment();
      return r;
    }
    ++stats->retries;
    retries->Increment();
    const int sleep_ms =
        tries < static_cast<int>(schedule.size()) ? schedule[tries] : 0;
    if (sleep_ms > 0) {
      if (governor != nullptr) {
        Status st = governor->Checkpoint();
        if (!st.ok()) {
          ++stats->failures;
          failures->Increment();
          return st;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    }
  }
}

}  // namespace

std::vector<int> BackoffSchedule(const Gateway::Options& options) {
  std::vector<int> schedule;
  if (options.max_retries <= 0 || options.backoff_ms <= 0) {
    schedule.assign(std::max(options.max_retries, 0), 0);
    return schedule;
  }
  Rng rng(options.backoff_seed);
  schedule.reserve(options.max_retries);
  int64_t base = options.backoff_ms;
  for (int i = 0; i < options.max_retries; ++i) {
    int64_t bounded = base;
    if (options.backoff_cap_ms > 0) {
      bounded = std::min<int64_t>(bounded, options.backoff_cap_ms);
    }
    // Equal jitter: uniform in [bounded/2, bounded] — decorrelates retry
    // storms while keeping every sleep within the configured bound.
    int64_t jittered =
        bounded / 2 + static_cast<int64_t>(rng.Below(
                          static_cast<uint64_t>(bounded - bounded / 2 + 1)));
    schedule.push_back(static_cast<int>(jittered));
    if (base <= (1 << 30)) base *= 2;
  }
  return schedule;
}

Gateway::Gateway() : Gateway(Options()) {}

Gateway::Gateway(Options options)
    : options_(options), pool_(options.fetch_workers) {}

// ---------------------------------------------------------------------------
// Site registry

Status Gateway::AddSite(std::shared_ptr<Site> site) {
  if (site == nullptr || site->name().empty()) {
    return InvalidArgument("a site must be non-null and named");
  }
  std::lock_guard<std::mutex> lock(sites_mu_);
  const std::string& name = site->name();
  if (sites_.contains(name)) {
    return AlreadyExists(StrCat("site '", name, "' is already registered"));
  }
  sites_.emplace(name, std::make_shared<SiteState>(std::move(site)));
  return Status::Ok();
}

Status Gateway::RemoveSite(const std::string& name) {
  std::lock_guard<std::mutex> lock(sites_mu_);
  if (sites_.erase(name) == 0) {
    return NotFound(StrCat("no site '", name, "' is registered"));
  }
  return Status::Ok();
}

bool Gateway::HasSite(const std::string& name) const {
  std::lock_guard<std::mutex> lock(sites_mu_);
  return sites_.contains(name);
}

std::set<std::string> Gateway::SiteNames() const {
  std::lock_guard<std::mutex> lock(sites_mu_);
  std::set<std::string> names;
  for (const auto& [name, st] : sites_) names.insert(name);
  return names;
}

Site* Gateway::FindSite(const std::string& name) {
  std::lock_guard<std::mutex> lock(sites_mu_);
  auto it = sites_.find(name);
  return it == sites_.end() ? nullptr : it->second->site.get();
}

// ---------------------------------------------------------------------------
// Fetch

RequestContext Gateway::MakeContext(const ResourceGovernor* governor) const {
  RequestContext ctx{options_.deadline_ms};
  if (governor != nullptr) {
    int64_t remaining = governor->RemainingMs();
    if (remaining >= 0) {
      // Governor time left bounds the site request. An exhausted governor
      // never reaches this derivation: every dispatch path runs
      // CheckGovernorBeforeDispatch first, so the floor of 1 ms only
      // rounds up a sub-millisecond (but live) remainder.
      int bounded = static_cast<int>(std::max<int64_t>(remaining, 1));
      ctx.deadline_ms =
          ctx.deadline_ms == 0 ? bounded : std::min(ctx.deadline_ms, bounded);
    }
  }
  return ctx;
}

Status Gateway::ValidateGenerationLocked(SiteState& st,
                                         const RequestContext& ctx,
                                         const ResourceGovernor* governor) {
  IDL_ASSIGN_OR_RETURN(
      uint64_t generation,
      WithRetry<uint64_t>(options_, &st.stats, governor,
                          [&] { return st.site->Generation(ctx); }));
  if (generation != st.cached_generation) {
    st.export_cache.reset();
    st.select_cache.clear();
    st.cached_generation = generation;
  }
  return Status::Ok();
}

Result<Value> Gateway::PullExportLocked(SiteState& st,
                                        const RequestContext& ctx,
                                        const ResourceGovernor* governor) {
  if (st.export_cache.has_value()) {
    ++st.stats.cache_hits;
    return *st.export_cache;
  }
  ++st.stats.cache_misses;
  ++st.stats.pulled_exports;
  IDL_ASSIGN_OR_RETURN(Value facts,
                       WithRetry<Value>(options_, &st.stats, governor,
                                        [&] { return st.site->Export(ctx); }));
  st.export_cache = facts;
  return facts;
}

Result<Value> Gateway::FetchSite(SiteState& st, const ShipPlan& plan,
                                 const ResourceGovernor* governor,
                                 uint64_t parent_span) {
  TraceSpan span("site.fetch", StrCat("site=", st.site->name()), parent_span);
  IDL_RETURN_IF_ERROR(CheckGovernorBeforeDispatch(governor));
  std::lock_guard<std::mutex> lock(st.mu);
  RequestContext ctx = MakeContext(governor);
  IDL_RETURN_IF_ERROR(ValidateGenerationLocked(st, ctx, governor));
  const std::string& name = st.site->name();
  if (plan.pull_all || plan.pull_sites.contains(name)) {
    return PullExportLocked(st, ctx, governor);
  }

  // Ship path: the site's contribution is a database tuple holding just the
  // shipped relations (a touch-only site contributes an empty tuple, which
  // is all a `?.site` presence test needs).
  Value db = Value::EmptyTuple();
  static const std::vector<FoAtom::Arg> kUnrestricted;
  for (const auto& shipment : plan.shipments) {
    if (shipment.site != name) continue;
    // An unrestricted referencing conjunct subsumes every other selection.
    const bool whole_relation =
        std::any_of(shipment.selects.begin(), shipment.selects.end(),
                    [](const std::vector<FoAtom::Arg>& r) {
                      return r.empty();
                    });
    std::vector<const std::vector<FoAtom::Arg>*> selects;
    if (whole_relation) {
      selects.push_back(&kUnrestricted);
    } else {
      for (const auto& r : shipment.selects) selects.push_back(&r);
    }

    Value relation = Value::EmptySet();
    bool absent = false;
    std::set<std::string> keys_done;
    for (const auto* restrictions : selects) {
      SelectRequest request;
      request.relation = shipment.relation;
      request.restrictions = *restrictions;
      const std::string key = request.CacheKey();
      if (!keys_done.insert(key).second) continue;  // duplicate conjunct

      CachedSelect entry;
      auto it = st.select_cache.find(key);
      if (it != st.select_cache.end()) {
        ++st.stats.cache_hits;
        entry = it->second;
      } else {
        ++st.stats.cache_misses;
        ++st.stats.shipped_subgoals;
        Result<ResultSet> rows = WithRetry<ResultSet>(
            options_, &st.stats, governor,
            [&] { return st.site->Select(request, ctx); });
        if (!rows.ok()) {
          if (rows.status().code() == StatusCode::kNotFound) {
            entry.absent = true;
          } else if (rows.status().code() == StatusCode::kTypeError) {
            // The site's facts are not relational (nested objects, say):
            // shipping cannot represent them, the full export can.
            return PullExportLocked(st, ctx, governor);
          } else {
            return rows.status().WithContext(
                StrCat("shipping ", shipment.relation, " from site '", name,
                       "'"));
          }
        } else {
          entry.relation = LiftRows(rows->schema, rows->rows);
        }
        st.select_cache[key] = entry;
      }

      if (entry.absent) {
        absent = true;
        break;
      }
      for (const auto& element : entry.relation.elements()) {
        relation.Insert(element);
      }
    }
    // A missing relation stays missing in the assembled universe (the
    // matcher must see "attribute absent", not "empty set").
    if (!absent) db.SetField(shipment.relation, std::move(relation));
  }
  return db;
}

Result<Gateway::FederatedFetch> Gateway::Fetch(
    const ShipPlan& plan, const ResourceGovernor* governor) {
  std::vector<std::shared_ptr<SiteState>> involved;
  {
    std::lock_guard<std::mutex> lock(sites_mu_);
    for (const auto& [name, st] : sites_) {
      if (plan.pull_all || plan.NeedsSite(name)) involved.push_back(st);
    }
  }

  TraceSpan span("federation.fetch",
                 StrCat("sites=", involved.size(),
                        plan.pull_all ? " pull_all" : ""));
  static Histogram* fetch_ms =
      MetricsRegistry::Global().histogram("federation.site_fetch_ms");
  const uint64_t parent_span = Trace::CurrentSpan();
  std::vector<Result<Value>> fetched(involved.size(),
                                     Result<Value>(Internal("not fetched")));
  pool_.ParallelFor(involved.size(), [&](size_t task, size_t) {
    auto start = std::chrono::steady_clock::now();
    fetched[task] = FetchSite(*involved[task], plan, governor, parent_span);
    fetch_ms->Observe(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count());
  });

  FederatedFetch out;
  for (size_t i = 0; i < involved.size(); ++i) {
    SiteState& st = *involved[i];
    const std::string& name = st.site->name();
    std::lock_guard<std::mutex> lock(st.mu);
    if (fetched[i].ok()) {
      st.stats.degraded = false;
      out.site_databases[name] = std::move(fetched[i]).value();
      out.generations[name] = st.cached_generation;
      continue;
    }
    if (options_.degrade == DegradePolicy::kFail) {
      return fetched[i].status().WithContext(
          StrCat("fetching site '", name, "'"));
    }
    st.stats.degraded = true;
    out.degraded.push_back(name);
  }
  return out;
}

Result<Gateway::FederatedFetch> Gateway::FetchAll(
    const ResourceGovernor* governor) {
  ShipPlan plan;
  plan.pull_all = true;
  return Fetch(plan, governor);
}

// ---------------------------------------------------------------------------
// Write-back

Status Gateway::WriteSite(const std::string& name, const Value& facts,
                          const ResourceGovernor* governor) {
  std::shared_ptr<SiteState> st;
  {
    std::lock_guard<std::mutex> lock(sites_mu_);
    auto it = sites_.find(name);
    if (it == sites_.end()) {
      return NotFound(StrCat("no site '", name, "' is registered"));
    }
    st = it->second;
  }
  TraceSpan span("site.write", StrCat("site=", name));
  IDL_RETURN_IF_ERROR(CheckGovernorBeforeDispatch(governor));
  std::lock_guard<std::mutex> lock(st->mu);
  RequestContext ctx = MakeContext(governor);
  Result<bool> r =
      WithRetry<bool>(options_, &st->stats, governor, [&]() -> Result<bool> {
        Status s = st->site->Write(facts, ctx);
        if (!s.ok()) return s;
        return true;
      });
  if (!r.ok()) {
    return r.status().WithContext(StrCat("writing back site '", name, "'"));
  }
  // The site's data changed: drop the cache and restart the hit/miss
  // counters, so the reported rate is "since the last write" (it reads 0
  // on the first post-update query, by design).
  st->export_cache.reset();
  st->select_cache.clear();
  st->cached_generation = 0;
  st->stats.cache_hits = 0;
  st->stats.cache_misses = 0;
  st->stats.degraded = false;
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// MSQL broadcast

Result<MultiQueryResult> Gateway::Broadcast(const FoQuery& query,
                                            const ResourceGovernor* governor) {
  std::vector<std::shared_ptr<SiteState>> involved;
  {
    std::lock_guard<std::mutex> lock(sites_mu_);
    for (const auto& [name, st] : sites_) involved.push_back(st);
  }

  TraceSpan span("federation.broadcast", StrCat("sites=", involved.size()));
  const uint64_t parent_span = Trace::CurrentSpan();
  std::vector<Result<ResultSet>> answers(
      involved.size(), Result<ResultSet>(Internal("not fetched")));
  pool_.ParallelFor(involved.size(), [&](size_t task, size_t) {
    SiteState& st = *involved[task];
    TraceSpan site_span("site.execute", StrCat("site=", st.site->name()),
                        parent_span);
    if (Status gate = CheckGovernorBeforeDispatch(governor); !gate.ok()) {
      answers[task] = gate;
      return;
    }
    std::lock_guard<std::mutex> lock(st.mu);
    RequestContext ctx = MakeContext(governor);
    ++st.stats.shipped_subgoals;
    answers[task] = WithRetry<ResultSet>(
        options_, &st.stats, governor,
        [&] { return st.site->Execute(query, ctx); });
  });

  // Merge in registration (name) order so answers are deterministic.
  MultiQueryResult out;
  for (size_t i = 0; i < involved.size(); ++i) {
    const std::string& name = involved[i]->site->name();
    if (!answers[i].ok()) {
      // MSQL semantics: a member that cannot answer is skipped.
      out.skipped.push_back(name);
      continue;
    }
    IDL_RETURN_IF_ERROR(AppendBroadcastRows(name, *answers[i], &out));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Introspection

std::vector<SiteStats> Gateway::Stats() const {
  std::vector<std::shared_ptr<SiteState>> states;
  {
    std::lock_guard<std::mutex> lock(sites_mu_);
    for (const auto& [name, st] : sites_) states.push_back(st);
  }
  std::vector<SiteStats> out;
  for (const auto& st : states) {
    std::lock_guard<std::mutex> lock(st->mu);
    SiteStats stats = st->stats;
    stats.site = st->site->name();
    out.push_back(std::move(stats));
  }
  return out;
}

std::string Gateway::Explain() const { return FormatSiteStats(Stats()); }

void Gateway::ResetStats() {
  std::vector<std::shared_ptr<SiteState>> states;
  {
    std::lock_guard<std::mutex> lock(sites_mu_);
    for (const auto& [name, st] : sites_) states.push_back(st);
  }
  for (const auto& st : states) {
    std::lock_guard<std::mutex> lock(st->mu);
    st->stats = SiteStats();
  }
}

}  // namespace idl
