#include "federation/ship.h"

#include <algorithm>

namespace idl {

namespace {

// Extracts the constant comparisons of a row expression (the inner
// expression of `.r(...)`) as pushdown restrictions. Only simple items of
// the form `.col relop constant` restrict; everything else (variables bound
// sideways, arithmetic, nested structure, higher-order column variables,
// negated items, guards) contributes no restriction — the relation simply
// ships more rows and the matcher finishes the job locally.
std::vector<FoAtom::Arg> ExtractRestrictions(const Expr& row_expr) {
  std::vector<FoAtom::Arg> restrictions;
  if (row_expr.kind != Expr::Kind::kTuple || row_expr.negated) {
    return restrictions;
  }
  for (const auto& item : row_expr.items) {
    if (item.is_guard() || item.attr_is_var || item.update != UpdateOp::kNone) {
      continue;
    }
    const Expr* e = item.expr.get();
    if (e == nullptr || e->kind != Expr::Kind::kAtomic || e->negated ||
        e->update != UpdateOp::kNone || !e->guard_var.empty()) {
      continue;
    }
    if (e->term.kind != Term::Kind::kConst) continue;
    FoAtom::Arg arg;
    arg.column = item.attr;
    arg.constant = e->term.constant;
    arg.op = e->relop;
    restrictions.push_back(std::move(arg));
  }
  return restrictions;
}

class Planner {
 public:
  Planner(const std::set<std::string>& site_names, ShipPlan* plan)
      : site_names_(site_names), plan_(plan) {}

  void AddConjunct(const Expr& conjunct) {
    if (plan_->pull_all) return;
    // A guard (`X = ource`) touches bound variables only.
    if (conjunct.kind == Expr::Kind::kAtomic && !conjunct.guard_var.empty()) {
      return;
    }
    if (conjunct.kind == Expr::Kind::kEpsilon) return;
    if (conjunct.kind != Expr::Kind::kTuple) {
      // An atomic or set expression against the universe tuple: nothing the
      // planner understands — fetch everything and evaluate locally.
      plan_->pull_all = true;
      return;
    }
    for (const auto& item : conjunct.items) {
      AddDatabaseItem(item);
      if (plan_->pull_all) return;
    }
  }

 private:
  // One `.dbname expr` item at universe level.
  void AddDatabaseItem(const TupleItem& item) {
    if (item.is_guard()) return;
    if (item.attr_is_var) {
      // `?.X ...` ranges over every database name, sites included.
      plan_->pull_all = true;
      return;
    }
    if (!site_names_.contains(item.attr)) return;  // a local database
    const std::string& site = item.attr;
    const Expr* e = item.expr.get();
    if (e == nullptr || e->kind == Expr::Kind::kEpsilon) {
      // `?.euter` — presence only.
      plan_->touch_sites.insert(site);
      return;
    }
    if (e->kind != Expr::Kind::kTuple) {
      // `.euter = X` (binds the whole database object) or a set expression:
      // the full export is the only faithful answer.
      Pull(site);
      return;
    }
    for (const auto& rel_item : e->items) {
      AddRelationItem(site, rel_item);
    }
  }

  // One `.relname expr` item inside a site's database expression.
  void AddRelationItem(const std::string& site, const TupleItem& item) {
    if (item.is_guard()) return;
    if (item.attr_is_var) {
      // `?.euter.X ...` ranges over this site's relation names.
      Pull(site);
      return;
    }
    const Expr* e = item.expr.get();
    if (e == nullptr || e->kind == Expr::Kind::kEpsilon) {
      // `?.euter.r` — relation existence: an unrestricted select answers it
      // (kNotFound vs. an empty row set distinguishes absent from empty).
      Ship(site, item.attr, {});
      return;
    }
    if (e->kind == Expr::Kind::kSet) {
      // `.r(rows...)` — the shippable shape. Restrictions come from the
      // element expression; nothing extractable just ships the relation
      // whole.
      std::vector<FoAtom::Arg> restrictions;
      if (e->set_inner != nullptr) {
        restrictions = ExtractRestrictions(*e->set_inner);
      }
      Ship(site, item.attr, std::move(restrictions));
      return;
    }
    // `.euter.r = X` binds the relation object itself, or a nested tuple
    // shape: pull the export rather than reason about lift/lower identity.
    Pull(site);
  }

  void Ship(const std::string& site, const std::string& relation,
            std::vector<FoAtom::Arg> restrictions) {
    if (plan_->pull_sites.contains(site)) return;  // already pulling whole
    for (auto& s : plan_->shipments) {
      if (s.site == site && s.relation == relation) {
        s.selects.push_back(std::move(restrictions));
        return;
      }
    }
    ShipPlan::Shipment s;
    s.site = site;
    s.relation = relation;
    s.selects.push_back(std::move(restrictions));
    plan_->shipments.push_back(std::move(s));
  }

  void Pull(const std::string& site) {
    plan_->pull_sites.insert(site);
    // Shipping anything to a pulled site is redundant.
    plan_->shipments.erase(
        std::remove_if(plan_->shipments.begin(), plan_->shipments.end(),
                       [&](const ShipPlan::Shipment& s) {
                         return s.site == site;
                       }),
        plan_->shipments.end());
  }

  const std::set<std::string>& site_names_;
  ShipPlan* plan_;
};

}  // namespace

bool ShipPlan::NeedsSite(const std::string& site) const {
  if (pull_all) return true;
  if (pull_sites.contains(site) || touch_sites.contains(site)) return true;
  for (const auto& s : shipments) {
    if (s.site == site) return true;
  }
  return false;
}

ShipPlan PlanQuery(const Query& query,
                   const std::set<std::string>& site_names) {
  ShipPlan plan;
  Planner planner(site_names, &plan);
  for (const auto& conjunct : query.conjuncts) {
    if (conjunct == nullptr) continue;
    if (conjunct->HasUpdate()) {
      // Update requests never take the ship path; be conservative if one
      // reaches the planner anyway.
      plan.pull_all = true;
      break;
    }
    planner.AddConjunct(*conjunct);
    if (plan.pull_all) break;
  }
  if (plan.pull_all) {
    plan.shipments.clear();
    plan.pull_sites.clear();
    plan.touch_sites.clear();
  }
  return plan;
}

}  // namespace idl
