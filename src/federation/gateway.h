// Gateway: the session's one door to the federation's component sites.
//
// The gateway owns the set of registered sites and mediates every request
// the IDL engine makes of them:
//
//  * Fetch      — executes a ShipPlan (src/federation/ship.h): shipped
//                 subgoals become Site::Select calls with pushed-down
//                 restrictions, higher-order use pulls full exports. Sites
//                 are contacted in parallel (common/thread_pool).
//  * WriteSite  — pushes an updated database object back to its site
//                 (the §5/§7 write-back path).
//  * Broadcast  — MSQL multiple-query over the federation (relational/msql
//                 merge semantics, one Site::Execute per site).
//
// Robustness is the gateway's job, not the engine's:
//
//  * Caching. Per site, answers (full export and each distinct shipped
//    select) are cached keyed by the site's update-generation counter: a
//    fetch first pings Generation and drops the site's cache if the counter
//    moved. A write through the gateway bumps the counter at the site and
//    drops the cache eagerly. Cache hit/miss counters restart at every
//    write-through, so the reported rate is the hit rate *since the site's
//    data last changed* — it is 1.0 on an idle repeated query and exactly
//    0.0 on the first query after an update.
//  * Retries. kUnavailable and kDeadlineExceeded responses are retried with
//    jittered exponential backoff up to Options::max_retries; any other
//    error is permanent for the request. In particular kCancelled and
//    kResourceExhausted (common/governor.h aborts surfaced by a site) are
//    NOT retried: the caller's budget is spent, so another attempt can only
//    waste it. The retriable set is exactly {kUnavailable,
//    kDeadlineExceeded}. Backoff jitter is drawn from a seeded deterministic
//    RNG (common/rng.h) so a fixed Options::backoff_seed reproduces the
//    exact sleep schedule (see BackoffSchedule).
//  * Deadlines. Options::deadline_ms rides every request as the
//    RequestContext deadline; a ResourceGovernor passed to a federated
//    operation tightens it to the governor's remaining wall-clock time.
//  * Degradation. When a site stays unreachable after retries,
//    DegradePolicy::kFail fails the fetch; DegradePolicy::kPartial answers
//    from the remaining sites, reports the dead site in
//    FederatedFetch::degraded, and flags it in the Explain() stats table —
//    a partial answer is never silent.

#ifndef IDL_FEDERATION_GATEWAY_H_
#define IDL_FEDERATION_GATEWAY_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/governor.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "eval/explain.h"
#include "federation/ship.h"
#include "federation/site.h"
#include "object/value.h"
#include "relational/msql.h"

namespace idl {

// What to do when a site stays unreachable after retries.
enum class DegradePolicy : uint8_t {
  kFail,     // the whole fetch fails
  kPartial,  // answer from the remaining sites, flag the dead one
};

class Gateway {
 public:
  struct Options {
    // Extra attempts after the first for retriable failures.
    int max_retries = 3;
    // Initial retry backoff; doubles per retry. 0 retries immediately.
    int backoff_ms = 1;
    // Upper bound on any single backoff sleep (0 = uncapped). Keeps the
    // doubling from producing multi-second stalls on high retry counts.
    int backoff_cap_ms = 100;
    // Seed for the jitter RNG. The whole sleep schedule is a pure function
    // of (max_retries, backoff_ms, backoff_cap_ms, backoff_seed), so a
    // fixed seed gives a reproducible schedule (tests) while different
    // seeds decorrelate retry storms across gateways.
    uint64_t backoff_seed = 0x1d1ULL;
    // Per-request deadline (0 = unbounded).
    int deadline_ms = 0;
    DegradePolicy degrade = DegradePolicy::kFail;
    // Worker threads for the parallel site fan-out.
    size_t fetch_workers = 4;
  };

  Gateway();
  explicit Gateway(Options options);

  // ---- Site registry ------------------------------------------------------

  Status AddSite(std::shared_ptr<Site> site);
  Status RemoveSite(const std::string& name);
  bool HasSite(const std::string& name) const;
  std::set<std::string> SiteNames() const;
  // The registered site, or nullptr (for tests poking fault schedules).
  Site* FindSite(const std::string& name);

  // ---- Federated operations ----------------------------------------------

  struct FederatedFetch {
    // Per site: the database object to splice into the evaluation universe
    // (a full export, or the union of shipped selections).
    std::map<std::string, Value> site_databases;
    // Per site: the generation the data reflects.
    std::map<std::string, uint64_t> generations;
    // Sites skipped under DegradePolicy::kPartial (never non-empty under
    // kFail).
    std::vector<std::string> degraded;
  };

  // Executes `plan`, contacting the involved sites in parallel. `governor`,
  // if non-null, is checked before every site attempt and every backoff
  // sleep, and its remaining wall-clock time tightens each site request's
  // deadline.
  Result<FederatedFetch> Fetch(const ShipPlan& plan,
                               const ResourceGovernor* governor = nullptr);

  // Convenience: pull every site's full export (a pull_all plan).
  Result<FederatedFetch> FetchAll(const ResourceGovernor* governor = nullptr);

  // Pushes `facts` to the named site and invalidates its cache. Hit/miss
  // counters restart (the reported rate becomes "since last write").
  Status WriteSite(const std::string& name, const Value& facts,
                   const ResourceGovernor* governor = nullptr);

  // MSQL multiple query over every site (relational/msql merge semantics:
  // rows prefixed with the site name, unioned; unreachable sites and sites
  // lacking the template's relation are skipped, not errors).
  Result<MultiQueryResult> Broadcast(const FoQuery& query,
                                     const ResourceGovernor* governor =
                                         nullptr);

  // ---- Introspection ------------------------------------------------------

  // Per-site counters, sorted by site name.
  std::vector<SiteStats> Stats() const;
  // The FormatSiteStats table of Stats().
  std::string Explain() const;
  void ResetStats();

  const Options& options() const { return options_; }
  void set_options(const Options& options) { options_ = options; }

 private:
  struct CachedSelect {
    bool absent = false;  // relation missing at the site (kNotFound)
    Value relation;       // lifted row set, when present
  };

  // All mutable per-site state is guarded by `mu`: a parallel fetch gives
  // each site to exactly one task, but Stats()/WriteSite may race with it.
  struct SiteState {
    explicit SiteState(std::shared_ptr<Site> s) : site(std::move(s)) {}
    std::shared_ptr<Site> site;
    std::mutex mu;
    SiteStats stats;
    uint64_t cached_generation = 0;  // 0 = nothing cached
    std::optional<Value> export_cache;
    std::unordered_map<std::string, CachedSelect> select_cache;
  };

  // Fetches one site's contribution under `plan`. Locks the site's mutex.
  // `parent_span` attributes the per-site trace span to the fetch fan-out
  // that spawned this call (runs on a pool worker thread).
  Result<Value> FetchSite(SiteState& st, const ShipPlan& plan,
                          const ResourceGovernor* governor,
                          uint64_t parent_span);
  // The RequestContext for one site request: the configured deadline,
  // tightened to the governor's remaining time when one is present.
  RequestContext MakeContext(const ResourceGovernor* governor) const;
  // Pull path body; call with st.mu held and the generation validated.
  Result<Value> PullExportLocked(SiteState& st, const RequestContext& ctx,
                                 const ResourceGovernor* governor);
  // Pings the generation and drops stale caches; call with st.mu held.
  Status ValidateGenerationLocked(SiteState& st, const RequestContext& ctx,
                                  const ResourceGovernor* governor);

  Options options_;
  ThreadPool pool_;

  mutable std::mutex sites_mu_;  // guards the map shape, not the states
  std::map<std::string, std::shared_ptr<SiteState>> sites_;
};

// The backoff sleep (ms) before each retry 1..max_retries: exponential
// doubling from backoff_ms with equal jitter (each sleep is drawn uniformly
// from [base/2, base]), every entry bounded by backoff_cap_ms when set. A
// pure function of the options — a fixed backoff_seed reproduces the exact
// schedule, which tests/federation_test.cc pins.
std::vector<int> BackoffSchedule(const Gateway::Options& options);

}  // namespace idl

#endif  // IDL_FEDERATION_GATEWAY_H_
