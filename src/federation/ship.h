// Query shipping plan (src/federation): decide, per conjunct of an IDL
// query, how much of each component site's data the gateway must fetch for
// local evaluation to agree with evaluation over the full federation.
//
// The ideal case is a *shipped subgoal*: a first-order conjunct naming one
// site and one relation by constants, e.g. `?.euter.r(.date=3/1/85, .P=X)`.
// The gateway pushes the constant comparisons down as a single-relation
// selection (Site::Select, relational/fo_engine.h) and pulls back only
// matching rows. Anything the plan cannot prove shippable degrades
// soundly: a conjunct quantifying over relation names (`?.euter.X ...`)
// pulls that site's whole export; a conjunct quantifying over *database*
// names (`?.X.Y ...`) pulls every site.
//
// Correctness rests on two superset arguments:
//  * Shipping is a superset guarantee. The matcher re-applies every
//    comparison to the assembled universe, so extra rows (from another
//    conjunct's shipment of the same relation) never change an answer —
//    what matters is that every row satisfying a conjunct's restrictions is
//    present, and σ_restrictions(r) guarantees exactly that.
//  * Negation survives shipping. A row matching a negated subgoal's inner
//    expression necessarily satisfies the extracted restrictions (they are
//    conjuncts of that expression), so it is in the shipped set; hence
//    "some row matches" agrees between the full and shipped relation, and
//    so does its complement.
//
// Empty vs. absent stays faithful: a relation that exists but is empty
// ships as an empty set (the attribute is present in the assembled
// universe), while Select on a missing relation returns kNotFound and the
// gateway omits the attribute — the two cases the matcher distinguishes.

#ifndef IDL_FEDERATION_SHIP_H_
#define IDL_FEDERATION_SHIP_H_

#include <set>
#include <string>
#include <vector>

#include "relational/fo_engine.h"
#include "syntax/ast.h"

namespace idl {

// How much of one federation the gateway must fetch for one query.
struct ShipPlan {
  // One shippable (site, relation) pair. `selects` holds one restriction
  // list per referencing conjunct; the fetched rows are the union of the
  // selections (an empty restriction list ships the full relation).
  struct Shipment {
    std::string site;
    std::string relation;
    std::vector<std::vector<FoAtom::Arg>> selects;
  };
  std::vector<Shipment> shipments;

  // Sites whose full export must be pulled (higher-order use, relation-level
  // bindings, or shapes the planner cannot restrict).
  std::set<std::string> pull_sites;

  // Sites referenced only for presence (`?.euter`): the site participates in
  // the assembled universe but no data is fetched beyond what other
  // conjuncts ship.
  std::set<std::string> touch_sites;

  // The query quantifies over database names (or has a shape the planner
  // does not analyse): every site's export must be pulled.
  bool pull_all = false;

  bool NeedsSite(const std::string& site) const;
};

// Plans `query` against the sites named in `site_names`. Conjuncts touching
// only non-site databases contribute nothing to the plan (they evaluate
// against the gateway owner's local universe).
ShipPlan PlanQuery(const Query& query, const std::set<std::string>& site_names);

}  // namespace idl

#endif  // IDL_FEDERATION_SHIP_H_
