// Site: one autonomous component database behind a request/response
// boundary (the multidatabase shape of the paper's Figure 1 — euter, chwab
// and ource are independent systems the unified view queries *across*).
//
// A site answers four kinds of requests, each of which may fail or time out
// independently (the boundary is where the federation's robustness surface
// lives — see gateway.h for retries, deadlines and degradation):
//
//   Generation — cheap metadata ping: a counter bumped by every applied
//                update. The gateway keys its per-site answer caches on it.
//   Export     — the site's full exported facts as an object-model database
//                (a tuple of relation sets), the pull fallback for
//                higher-order subgoals that quantify over the site's schema.
//   Select     — a shipped first-order subgoal: one relation, constant
//                restrictions pushed down, all columns back
//                (relational/fo_engine's ExecuteFoSelect).
//   Execute    — an MSQL-style first-order template (relational/msql);
//                the gateway broadcasts these across the federation.
//   Write      — replace the site's facts (the write-back path of §5/§7
//                update requests routed through the gateway).
//
// `LocalSite` hosts the facts in-process; `SimulatedRemoteSite` wraps any
// site with injectable latency, per-request deadlines, and transient or
// permanent fault schedules, which is how the tests and benches exercise a
// distributed deployment on one machine.

#ifndef IDL_FEDERATION_SITE_H_
#define IDL_FEDERATION_SITE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "object/value.h"
#include "relational/database.h"
#include "relational/fo_engine.h"

namespace idl {

// Per-request options crossing the site boundary. A deadline of 0 means
// unbounded.
struct RequestContext {
  int deadline_ms = 0;
};

// A shipped first-order subgoal: σ_{restrictions}(relation), all columns.
// Restrictions are constant-only FoAtom args (relational/fo_engine.h).
struct SelectRequest {
  std::string relation;
  std::vector<FoAtom::Arg> restrictions;

  // Stable cache key (relation plus canonicalized restrictions).
  std::string CacheKey() const;
};

class Site {
 public:
  virtual ~Site() = default;

  virtual const std::string& name() const = 0;

  // Update-generation counter (starts at 1, bumped by every Write). A real
  // RPC: a dead site cannot validate a cache entry.
  virtual Result<uint64_t> Generation(const RequestContext& ctx) = 0;

  // Full exported facts: a tuple of relation sets.
  virtual Result<Value> Export(const RequestContext& ctx) = 0;

  // Shipped subgoal. kNotFound when the relation does not exist here.
  // kTypeError when the site's facts cannot be lowered to relational form
  // (the caller falls back to Export).
  virtual Result<ResultSet> Select(const SelectRequest& request,
                                   const RequestContext& ctx) = 0;

  // MSQL template execution against the site's relational form.
  virtual Result<ResultSet> Execute(const FoQuery& query,
                                    const RequestContext& ctx) = 0;

  // Replaces the site's facts, bumping the generation.
  virtual Status Write(const Value& facts, const RequestContext& ctx) = 0;
};

// In-process site: owns its facts as an object-model database and lowers
// them lazily to a RelationalDatabase for shipped subgoals. Thread-safe
// (the gateway fetches from several sites concurrently).
class LocalSite : public Site {
 public:
  // `facts` must be a tuple of relations (same shape RegisterDatabase
  // accepts).
  LocalSite(std::string name, Value facts);
  // Lifts a relational database through the adapter.
  explicit LocalSite(const RelationalDatabase& db);

  const std::string& name() const override { return name_; }
  Result<uint64_t> Generation(const RequestContext& ctx) override;
  Result<Value> Export(const RequestContext& ctx) override;
  Result<ResultSet> Select(const SelectRequest& request,
                           const RequestContext& ctx) override;
  Result<ResultSet> Execute(const FoQuery& query,
                            const RequestContext& ctx) override;
  Status Write(const Value& facts, const RequestContext& ctx) override;

 private:
  // Lowers facts_ to relational form if the cached lowering is stale.
  // Called with mu_ held.
  Status EnsureLowered();

  const std::string name_;
  std::mutex mu_;
  Value facts_;
  uint64_t generation_ = 1;
  std::optional<RelationalDatabase> lowered_;
  uint64_t lowered_generation_ = 0;
};

// Wraps a site with injected latency and faults. Every request first waits
// the configured latency (truncated by the request deadline — a latency
// above the deadline is a timeout, kDeadlineExceeded), then consults the
// fault schedule: a permanent fault fails every request until Revive();
// a transient budget fails the next N requests. Fault injection applies to
// *all* request kinds, including Generation pings — a dead site cannot even
// confirm its cache validity, which is what forces the gateway's
// degradation policy to engage.
class SimulatedRemoteSite : public Site {
 public:
  SimulatedRemoteSite(std::unique_ptr<Site> inner, int latency_ms = 0);

  const std::string& name() const override { return inner_->name(); }
  Result<uint64_t> Generation(const RequestContext& ctx) override;
  Result<Value> Export(const RequestContext& ctx) override;
  Result<ResultSet> Select(const SelectRequest& request,
                           const RequestContext& ctx) override;
  Result<ResultSet> Execute(const FoQuery& query,
                            const RequestContext& ctx) override;
  Status Write(const Value& facts, const RequestContext& ctx) override;

  // ---- Fault schedule (safe to call from tests while requests fly) -------
  void set_latency_ms(int ms) { latency_ms_.store(ms); }
  int latency_ms() const { return latency_ms_.load(); }
  // Fails the next `n` requests with kUnavailable (transient outage).
  void FailNext(int n);
  // Fails every request from now on (permanent outage) / heals it.
  void KillPermanently();
  void Revive();

  uint64_t requests_seen() const { return requests_seen_.load(); }
  uint64_t requests_failed() const { return requests_failed_.load(); }

 private:
  // Applies latency + fault schedule; OK means the request may proceed.
  Status Admit(const RequestContext& ctx);

  std::unique_ptr<Site> inner_;
  std::atomic<int> latency_ms_;
  std::atomic<int> transient_failures_{0};
  std::atomic<bool> permanently_dead_{false};
  std::atomic<uint64_t> requests_seen_{0};
  std::atomic<uint64_t> requests_failed_{0};
};

}  // namespace idl

#endif  // IDL_FEDERATION_SITE_H_
