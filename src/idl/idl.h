// Umbrella header: the public API of the IDL library.
//
// IDL ("Interoperable Database Language") reproduces the language of
// Krishnamurthy, Litwin & Kent, "Language Features for Interoperability of
// Databases with Schematic Discrepancies", SIGMOD 1991: higher-order queries
// over data *and* metadata, higher-order (data-dependent) view definitions,
// and update programs providing multidatabase view updatability.

#ifndef IDL_IDL_IDL_H_
#define IDL_IDL_IDL_H_

#include "catalog/catalog.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"
#include "common/trace.h"
#include "constraints/checker.h"
#include "durability/crash_point.h"
#include "durability/crc32.h"
#include "durability/snapshot.h"
#include "durability/wal.h"
#include "eval/query.h"
#include "federation/gateway.h"
#include "federation/ship.h"
#include "federation/site.h"
#include "idl/session.h"
#include "object/builder.h"
#include "object/value.h"
#include "object/value_io.h"
#include "relational/adapter.h"
#include "relational/algebra.h"
#include "relational/database.h"
#include "relational/fo_engine.h"
#include "relational/msql.h"
#include "relational/pivot.h"
#include "server/script_driver.h"
#include "server/server.h"
#include "server/trace_sweep.h"
#include "syntax/analysis.h"
#include "syntax/parser.h"
#include "syntax/printer.h"
#include "workload/discrepancy_gen.h"
#include "workload/paper_universe.h"
#include "workload/stock_gen.h"

#endif  // IDL_IDL_IDL_H_
