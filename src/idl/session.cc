#include "idl/session.h"

#include <algorithm>
#include <utility>

#include "common/metrics.h"
#include "common/str_util.h"
#include "common/trace.h"
#include "eval/matcher.h"
#include "federation/ship.h"
#include "relational/adapter.h"
#include "syntax/analysis.h"
#include "syntax/parser.h"
#include "syntax/printer.h"

namespace idl {

namespace {

// Parses one request text under a "parse" span so a trace attributes
// front-end time separately from evaluation.
Result<Query> ParseRequest(std::string_view text) {
  TraceSpan span("parse", StrCat("bytes=", text.size()));
  return ParseQuery(text);
}

}  // namespace

Status Session::RegisterDatabase(std::string name, Value db_object) {
  if (!db_object.is_tuple()) {
    return TypeError(StrCat("database '", name,
                            "' must be a tuple of relations"));
  }
  if (base_.HasField(name) ||
      (federation_ != nullptr && federation_->HasSite(name))) {
    return AlreadyExists(StrCat("database '", name, "'"));
  }
  base_.SetField(name, std::move(db_object));
  database_names_.push_back(std::move(name));
  Invalidate();
  return Status::Ok();
}

Status Session::RegisterDatabase(const RelationalDatabase& db) {
  return RegisterDatabase(db.name(), LiftDatabase(db));
}

Status Session::RemoveDatabase(std::string_view name) {
  std::string site_name(name);
  if (federation_ != nullptr && federation_->HasSite(site_name)) {
    IDL_RETURN_IF_ERROR(federation_->RemoveSite(site_name));
    base_.RemoveField(name);
    synced_generations_.erase(site_name);
    Invalidate();
    return Status::Ok();
  }
  if (!base_.RemoveField(name)) {
    return NotFound(StrCat("database '", name, "'"));
  }
  database_names_.erase(
      std::remove(database_names_.begin(), database_names_.end(), site_name),
      database_names_.end());
  Invalidate();
  return Status::Ok();
}

Result<const Value*> Session::universe() { return universe(nullptr); }

Result<Value> Session::SnapshotUniverse() {
  IDL_ASSIGN_OR_RETURN(const Value* u, universe());
  if (views_.rules().empty() || !materialized_valid_) {
    Value snapshot = *u;
    snapshot.WarmHashCaches();
    return snapshot;
  }
  return materialized_.SnapshotUniverse();
}

Result<const Value*> Session::universe(const ResourceGovernor* request) {
  IDL_RETURN_IF_ERROR(SyncFederation(request));
  if (views_.rules().empty()) return &base_;  // nothing derived: no copy
  IDL_RETURN_IF_ERROR(EnsureMaterialized(request));
  return &materialized_.universe;
}

std::unique_ptr<ResourceGovernor> Session::MakeRequestGovernor(
    const EvalOptions& options) {
  GovernorLimits limits = GovernorLimitsFrom(options);
  if (limits.Unlimited() && !cancel_exposed_) return nullptr;
  return std::make_unique<ResourceGovernor>(limits, cancel_);
}

void Session::MarkStale(UniverseDelta delta) {
  materialized_valid_ = false;
  ++query_generation_;  // the hoisted query cache must not survive the change
  // A counted mutation that recorded nothing would otherwise slip past
  // maintenance entirely; treat an empty delta as whole-universe.
  if (delta.empty()) delta.MarkWhole();
  pending_delta_.MergeFrom(std::move(delta));
}

void Session::RecordGovernor(const ResourceGovernor* governor,
                             const Status& status) {
  if (governor == nullptr) return;
  GovernorUsage usage = governor->Usage();
  bool governor_abort = status.code() == StatusCode::kCancelled ||
                        status.code() == StatusCode::kDeadlineExceeded ||
                        status.code() == StatusCode::kResourceExhausted;
  if (governor_abort && usage.abort_reason.empty()) return;
  last_governor_ = FormatGovernorUsage(usage, governor->limits());
}

// ---------------------------------------------------------------------------
// Federation

Status Session::ConnectGateway(std::shared_ptr<Gateway> gateway) {
  if (gateway == nullptr) {
    return InvalidArgument("gateway must be non-null");
  }
  if (federation_ != nullptr) {
    return FailedPrecondition("a gateway is already connected");
  }
  for (const auto& name : gateway->SiteNames()) {
    if (base_.HasField(name)) {
      return AlreadyExists(StrCat("database '", name,
                                  "' is registered locally; a site of the "
                                  "same name cannot be attached"));
    }
  }
  federation_ = std::move(gateway);
  Invalidate();
  return Status::Ok();
}

Status Session::RegisterSite(std::shared_ptr<Site> site) {
  if (federation_ == nullptr) {
    return FailedPrecondition("connect a gateway before registering sites");
  }
  if (site != nullptr && base_.HasField(site->name())) {
    return AlreadyExists(StrCat("database '", site->name(),
                                "' is registered locally"));
  }
  return federation_->AddSite(std::move(site));
}

std::string Session::ExplainFederation() const {
  return federation_ == nullptr ? std::string() : federation_->Explain();
}

Status Session::SyncFederation(const ResourceGovernor* governor) {
  if (federation_ == nullptr) return Status::Ok();
  IDL_ASSIGN_OR_RETURN(Gateway::FederatedFetch fetch,
                       federation_->FetchAll(governor));
  degraded_sites_ = fetch.degraded;
  bool changed = false;
  UniverseDelta delta;  // one dirty db per replica that moved
  for (auto& [name, db] : fetch.site_databases) {
    auto it = synced_generations_.find(name);
    if (it != synced_generations_.end() &&
        it->second == fetch.generations[name] && base_.HasField(name)) {
      continue;  // replica already reflects this generation
    }
    base_.SetField(name, std::move(db));
    synced_generations_[name] = fetch.generations[name];
    delta.AddDirty({name});
    changed = true;
  }
  // A degraded site contributes nothing: the answer comes from the
  // remaining sites (and says so — see degraded_sites()).
  for (const auto& name : fetch.degraded) {
    if (base_.RemoveField(name)) {
      delta.AddDirty({name});
      changed = true;
    }
    synced_generations_.erase(name);
  }
  if (changed) MarkStale(std::move(delta));
  return Status::Ok();
}

Status Session::WriteBack(const std::set<std::string>& roots) {
  if (federation_ == nullptr || roots.empty()) return Status::Ok();
  std::set<std::string> sites;
  if (roots.contains("*")) {
    // An ungroundable database name may have touched anything.
    sites = federation_->SiteNames();
  } else {
    for (const auto& root : roots) {
      if (federation_->HasSite(root)) sites.insert(root);
    }
  }
  TraceSpan span("writeback", StrCat("sites=", sites.size()));
  for (const auto& name : sites) {
    const Value* db = base_.FindField(name);
    if (db == nullptr) continue;  // degraded site: no replica to push
    Status pushed = federation_->WriteSite(name, *db);
    if (!pushed.ok()) {
      // The caller restores its local snapshot; force the next sync to
      // re-pull every site so the session converges to remote truth (some
      // earlier write-back of this batch may have landed).
      synced_generations_.clear();
      return pushed;
    }
    // The site's generation moved; re-pin the replica on the next sync.
    synced_generations_.erase(name);
  }
  return Status::Ok();
}

Result<RelationalDatabase> Session::ExportDatabase(const std::string& name) {
  IDL_ASSIGN_OR_RETURN(const Value* u, universe());
  const Value* db = u->FindField(name);
  if (db == nullptr) return NotFound(StrCat("database '", name, "'"));
  return LowerDatabase(name, *db);
}

Status Session::DefineRule(std::string_view rule_text) {
  IDL_ASSIGN_OR_RETURN(Rule rule, ParseRule(rule_text));
  IDL_RETURN_IF_ERROR(views_.AddRule(std::move(rule)));
  rule_texts_.emplace_back(rule_text);
  Invalidate();
  return Status::Ok();
}

Status Session::DefineRules(const std::vector<std::string>& rule_texts) {
  for (const auto& text : rule_texts) {
    IDL_RETURN_IF_ERROR(DefineRule(text).WithContext(text));
  }
  return Status::Ok();
}

Status Session::DefineProgram(std::string_view clause_text) {
  IDL_ASSIGN_OR_RETURN(ProgramClause clause, ParseProgramClause(clause_text));
  IDL_RETURN_IF_ERROR(registry_.Register(std::move(clause)));
  program_texts_.emplace_back(clause_text);
  return Status::Ok();
}

Status Session::DefinePrograms(const std::vector<std::string>& clause_texts) {
  for (const auto& text : clause_texts) {
    IDL_RETURN_IF_ERROR(DefineProgram(text).WithContext(text));
  }
  return Status::Ok();
}

Status Session::DeclareConstraint(std::string_view declaration) {
  return constraints_.AddText(declaration);
}

Result<CallResult> Session::CallProgram(
    const std::string& path, const std::map<std::string, Value>& args,
    UpdateOp view_op, const EvalOptions& options) {
  TraceSpan span("session.call", StrCat("path=", path));
  static Counter* calls =
      MetricsRegistry::Global().counter("session.program_calls");
  calls->Increment();
  std::unique_ptr<ResourceGovernor> governor = MakeRequestGovernor(options);
  IDL_RETURN_IF_ERROR(SyncFederation(governor.get()));

  // With constraints declared, a federation connected (whose write-back can
  // fail), or a governor active (which can abort mid-call), the call is
  // atomic: snapshot, apply, validate, roll back on violation or abort.
  Value snapshot;
  bool guarded = constraints_.size() > 0 || federation_ != nullptr ||
                 governor != nullptr;
  if (guarded) snapshot = base_;

  std::set<std::string> touched;
  UniverseDelta call_delta;
  ProgramExecutor executor(&registry_, &base_, &stats_,
                           federation_ == nullptr ? nullptr : &touched,
                           governor.get(), &call_delta);
  Result<CallResult> result = executor.Call(path, view_op, args);
  RecordGovernor(governor.get(), result.status());
  if (!result.ok()) {
    if (guarded) {
      base_ = std::move(snapshot);
      Invalidate();
    }
    return result.status();
  }
  if (constraints_.size() > 0) {
    Status valid = constraints_.Validate(base_);
    if (!valid.ok()) {
      base_ = std::move(snapshot);
      Invalidate();
      return valid.WithContext(
          StrCat("program ", path, " rolled back"));
    }
  }
  if (result->counts.Total() > 0) MarkStale(std::move(call_delta));
  Status pushed = WriteBack(touched);
  if (!pushed.ok()) {
    base_ = std::move(snapshot);
    Invalidate();
    return pushed.WithContext(StrCat("program ", path, " rolled back"));
  }
  result->counts.BumpMetrics();
  return result;
}

Result<Answer> Session::Query(std::string_view query_text,
                              const EvalOptions& options) {
  IDL_ASSIGN_OR_RETURN(struct Query query, ParseRequest(query_text));
  IDL_ASSIGN_OR_RETURN(QueryInfo info, AnalyzeQuery(query));
  if (info.is_update_request) {
    return InvalidArgument(
        "this is an update request; use Session::Update for it");
  }
  return QueryParsed(query, options);
}

Result<Answer> Session::QueryParsed(const struct Query& query,
                                    const EvalOptions& options) {
  TraceSpan span("session.query");
  static Counter* queries =
      MetricsRegistry::Global().counter("session.queries");
  queries->Increment();
  std::unique_ptr<ResourceGovernor> governor = MakeRequestGovernor(options);
  Result<Answer> answer = QueryGoverned(query, options, governor.get());
  RecordGovernor(governor.get(), answer.status());
  return answer;
}

Result<Answer> Session::QueryGoverned(const struct Query& query,
                                      const EvalOptions& options,
                                      const ResourceGovernor* governor) {
  // Ship path: with a federation and no view rules, fetch only what the
  // query needs — shipped selections for first-order subgoals, exports for
  // higher-order ones — and evaluate over the assembled universe.
  if (federation_ != nullptr && views_.rules().empty()) {
    ShipPlan plan = PlanQuery(query, federation_->SiteNames());
    IDL_ASSIGN_OR_RETURN(Gateway::FederatedFetch fetch,
                         federation_->Fetch(plan, governor));
    degraded_sites_ = fetch.degraded;
    Value assembled = base_;
    for (const auto& name : federation_->SiteNames()) {
      assembled.RemoveField(name);  // drop any stale replica
    }
    for (auto& [name, db] : fetch.site_databases) {
      assembled.SetField(name, std::move(db));
    }
    return EvaluateQuery(assembled, query, options, &stats_, governor);
  }
  IDL_ASSIGN_OR_RETURN(const Value* u, universe(governor));
  if (query_cache_ == nullptr ||
      query_cache_min_set_size_ != options.index_min_set_size) {
    query_cache_ =
        std::make_unique<SetIndexCache>(options.index_min_set_size);
    query_cache_min_set_size_ = options.index_min_set_size;
  }
  query_cache_->EnsureGeneration(query_generation_);
  return EvaluateQuery(*u, query, options, &stats_, governor,
                       query_cache_.get());
}

Status Session::EnsureMaterialized(const ResourceGovernor* request) {
  if (materialized_valid_) return Status::Ok();
  GovernorLimits limits = GovernorLimitsFrom(materialize_options_);
  if (request != nullptr) {
    // The materialization's budgets come from materialize_options_, but a
    // budget the session leaves unset is inherited from the request, so
    // Query("...", {.max_passes = 8}) bounds the fixpoint it triggers. The
    // request's deadline and cancel token ride along via the parent chain
    // (inheriting deadline_ms as a number would restart the clock).
    const GovernorLimits& outer = request->limits();
    if (limits.max_passes == 0) limits.max_passes = outer.max_passes;
    if (limits.max_derivations == 0) {
      limits.max_derivations = outer.max_derivations;
    }
    if (limits.max_universe_cells == 0) {
      limits.max_universe_cells = outer.max_universe_cells;
    }
  }
  const bool governed =
      request != nullptr || !limits.Unlimited() || cancel_exposed_;

  // Maintenance counters survive a rebuild (so `explain` shows the
  // session-lifetime tally, fallbacks included).
  MaintenanceStats carried;
  if (maintenance_available_) carried = materialized_.maintenance;

  const bool maintaining =
      maintenance_available_ &&
      materialize_options_.maintenance == MaintenanceMode::kIncremental &&
      materialize_options_.strategy == EvalStrategy::kSemiNaive;
  if (maintaining && !pending_delta_.whole) {
    UniverseDelta delta = std::exchange(pending_delta_, UniverseDelta());
    Status applied;
    if (governed) {
      ResourceGovernor governor(limits, cancel_, request);
      applied = views_.ApplyDelta(&materialized_, base_, delta,
                                  materialize_options_, &stats_, &governor);
      if (applied.ok()) {
        materialized_.governor =
            FormatGovernorUsage(governor.Usage(), governor.limits());
      } else if (!governor.Usage().abort_reason.empty()) {
        // Aborted mid-delta: the retained state is unspecified. Publish the
        // fixpoint's own usage line and drop the state — the next request
        // rebuilds from base_, which the abort never touched.
        last_governor_ =
            FormatGovernorUsage(governor.Usage(), governor.limits());
        maintenance_available_ = false;
        return applied;
      }
    } else {
      applied = views_.ApplyDelta(&materialized_, base_, delta,
                                  materialize_options_, &stats_);
    }
    if (applied.ok()) {
      materialized_.federation = ExplainFederation();
      derived_paths_ = materialized_.derived_paths;
      materialized_valid_ = true;
      return Status::Ok();
    }
    // Not maintainable (whole-universe delta, missing retained state, an
    // evaluation error): fall through to the full rematerialization.
  }
  const bool fell_back = maintaining;
  maintenance_available_ = false;
  pending_delta_.Clear();

  if (governed) {
    // Materialize derives into a scratch copy of base_, so an abort leaves
    // both base_ and the cached materialization untouched.
    ResourceGovernor governor(limits, cancel_, request);
    Result<Materialized> m =
        views_.Materialize(base_, materialize_options_, &stats_, &governor);
    if (!m.ok()) {
      // Publish the aborted fixpoint's own usage line — its counters (not
      // the enclosing request's) say why the request died.
      if (!governor.Usage().abort_reason.empty()) {
        last_governor_ =
            FormatGovernorUsage(governor.Usage(), governor.limits());
      }
      return m.status();
    }
    materialized_ = std::move(m).value();
  } else {
    IDL_ASSIGN_OR_RETURN(
        materialized_,
        views_.Materialize(base_, materialize_options_, &stats_));
  }
  materialized_.maintenance = carried;
  if (fell_back) ++materialized_.maintenance.fallbacks;
  materialized_.federation = ExplainFederation();
  derived_paths_ = materialized_.derived_paths;
  materialized_valid_ = true;
  maintenance_available_ =
      materialize_options_.strategy == EvalStrategy::kSemiNaive;
  return Status::Ok();
}

bool Session::TargetsDerived(const std::string& path) const {
  // `path` is the dotted constant prefix of an update conjunct
  // (e.g. "dbO.stk1" or "dbO"). It targets a derived relation if it equals
  // a derived path, is a database-level prefix of one, or extends one.
  for (const auto& derived : derived_paths_) {
    if (path == derived) return true;
    if (StartsWith(derived, StrCat(path, "."))) return true;
    if (StartsWith(path, StrCat(derived, "."))) return true;
  }
  return false;
}

Result<UpdateRequestResult> Session::Update(std::string_view request_text,
                                            const EvalOptions& options) {
  TraceSpan span("session.update");
  static Counter* updates =
      MetricsRegistry::Global().counter("session.updates");
  updates->Increment();
  IDL_ASSIGN_OR_RETURN(struct Query request, ParseRequest(request_text));

  std::unique_ptr<ResourceGovernor> governor = MakeRequestGovernor(options);

  // Sync before the snapshot so a rollback restores current replicas.
  IDL_RETURN_IF_ERROR(SyncFederation(governor.get()));

  // With constraints declared, a federation connected (whose write-back can
  // fail), or a governor active (which can abort mid-request), the whole
  // request is atomic and validated.
  Value snapshot;
  bool guarded = constraints_.size() > 0 || federation_ != nullptr ||
                 governor != nullptr;
  if (guarded) snapshot = base_;
  std::set<std::string> touched;
  Result<UpdateRequestResult> result =
      UpdateImpl(request, &touched, governor.get());
  RecordGovernor(governor.get(), result.status());
  if (!result.ok()) {
    if (guarded) {
      base_ = std::move(snapshot);
      Invalidate();
    }
    return result;
  }
  if (constraints_.size() > 0) {
    Status valid = constraints_.Validate(base_);
    if (!valid.ok()) {
      base_ = std::move(snapshot);
      Invalidate();
      return valid.WithContext("update request rolled back");
    }
  }
  Status pushed = WriteBack(touched);
  if (!pushed.ok()) {
    base_ = std::move(snapshot);
    Invalidate();
    return pushed.WithContext("update request rolled back");
  }
  result->counts.BumpMetrics();
  return result;
}

Result<UpdateRequestResult> Session::UpdateImpl(
    const struct Query& request, std::set<std::string>* touched_roots,
    const ResourceGovernor* governor) {

  // Make derived_paths_ current so view-targeting conjuncts are detected
  // even before the first query.
  if (!views_.rules().empty()) {
    IDL_RETURN_IF_ERROR(EnsureMaterialized(governor));
  }

  UpdateRequestResult result;
  // Mutations are recorded per conjunct and handed to MarkStale before the
  // next conjunct runs: pure-query conjuncts read the merged universe, so
  // mid-request materializations must already see the delta.
  UniverseDelta request_delta;
  ProgramExecutor executor(&registry_, &base_, &stats_,
                           federation_ == nullptr ? nullptr : touched_roots,
                           governor, &request_delta);
  UpdateApplier applier(&stats_, &result.counts, governor);
  applier.set_delta(&request_delta);

  std::vector<Substitution> bindings;
  bindings.emplace_back();

  for (const auto& conjunct : request.conjuncts) {
    if (governor != nullptr) IDL_RETURN_IF_ERROR(governor->Checkpoint());
    std::vector<Substitution> next;

    ProgramKey key;
    if (registry_.MatchCall(*conjunct, &key)) {
      // Program (or view-update) dispatch.
      CallResult call;
      IDL_RETURN_IF_ERROR(executor.ExecuteConjunct(*conjunct, bindings, &next,
                                                   &call));
      result.counts += call.counts;
      if (call.counts.Total() > 0) {
        MarkStale(std::move(request_delta));
        request_delta.Clear();
      }
    } else if (conjunct->IsPureQuery()) {
      IDL_ASSIGN_OR_RETURN(const Value* u, universe(governor));
      for (const auto& sigma : bindings) {
        if (governor != nullptr) IDL_RETURN_IF_ERROR(governor->Checkpoint());
        Matcher matcher(&stats_);
        Substitution working = sigma;
        Result<bool> r = matcher.Match(*u, *conjunct, &working,
                                       [&](const Substitution& s) {
                                         next.push_back(s);
                                         return true;
                                       });
        if (!r.ok()) return r.status();
      }
    } else {
      // Base update. Refuse updates that target derived relations: the
      // administrator must provide the translation as a program (§7.2).
      std::string path;
      UpdateOp op;
      const Expr* params;
      if (DecomposeCallShape(*conjunct, &path, &op, &params) &&
          TargetsDerived(path)) {
        return Unsupported(StrCat(
            "'", ToString(*conjunct), "' updates the derived view '", path,
            "'; no ", (op == UpdateOp::kDelete ? "delete" : "insert"),
            " update program is registered for it (§7.2)"));
      }
      const uint64_t counts_before = result.counts.Total();
      for (const auto& sigma : bindings) {
        if (federation_ != nullptr) {
          CollectUpdateRoots(*conjunct, sigma, touched_roots);
        }
        IDL_RETURN_IF_ERROR(
            applier.ApplyConjunct(&base_, *conjunct, sigma, &next));
      }
      if (result.counts.Total() > counts_before) {
        MarkStale(std::move(request_delta));
        request_delta.Clear();
      }
    }

    DedupSubstitutions(&next);
    bindings = std::move(next);
    if (bindings.empty()) break;
  }
  result.bindings = bindings.size();
  if (!request_delta.empty()) MarkStale(std::move(request_delta));
  return result;
}

bool Session::IsUpdateRequest(const struct Query& query) const {
  ProgramKey key;
  for (const auto& conjunct : query.conjuncts) {
    if (conjunct->HasUpdate()) return true;
    if (registry_.MatchCall(*conjunct, &key)) return true;
  }
  return false;
}

Result<std::vector<Answer>> Session::ExecuteScript(std::string_view script,
                                                   const EvalOptions& options) {
  Result<std::vector<Statement>> parsed = [&] {
    TraceSpan span("parse", StrCat("bytes=", script.size()));
    return ParseStatements(script);
  }();
  IDL_ASSIGN_OR_RETURN(std::vector<Statement> statements, std::move(parsed));
  std::vector<Answer> answers;
  for (auto& statement : statements) {
    switch (statement.kind) {
      case Statement::Kind::kQuery: {
        if (IsUpdateRequest(statement.query)) {
          IDL_ASSIGN_OR_RETURN(UpdateRequestResult r,
                               Update(ToString(statement.query), options));
          (void)r;
        } else {
          IDL_ASSIGN_OR_RETURN(Answer a,
                               QueryParsed(statement.query, options));
          answers.push_back(std::move(a));
        }
        break;
      }
      case Statement::Kind::kRule:
        IDL_RETURN_IF_ERROR(views_.AddRule(std::move(statement.rule)));
        Invalidate();
        break;
      case Statement::Kind::kProgramClause:
        IDL_RETURN_IF_ERROR(
            registry_.Register(std::move(statement.clause)));
        break;
    }
  }
  return answers;
}

}  // namespace idl
