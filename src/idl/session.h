// Session: the public API of the IDL library.
//
// A session owns the base universe (registered databases), the view rules,
// and the update-program registry. Queries run against the *merged* universe
// (base plus materialized views, recomputed lazily after changes); update
// requests run against the base universe, with conjuncts that target a
// registered update program dispatched through it — including view-update
// programs (§7.2), which is how an update through a customized view reaches
// the base databases.
//
// Typical use (see examples/quickstart.cc):
//   Session session;
//   session.RegisterDatabase(BuildEuterDatabase(w));
//   session.DefineRules(PaperViewRules());
//   auto answer = session.Query("?.dbI.p(.stk=S, .clsPrice>200)");

#ifndef IDL_IDL_SESSION_H_
#define IDL_IDL_SESSION_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/governor.h"
#include "common/result.h"
#include "constraints/checker.h"
#include "eval/explain.h"
#include "eval/index.h"
#include "eval/query.h"
#include "federation/gateway.h"
#include "object/value.h"
#include "programs/executor.h"
#include "programs/program.h"
#include "relational/database.h"
#include "update/applier.h"
#include "views/engine.h"

namespace idl {

class Session {
 public:
  Session() = default;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // ---- Universe management -------------------------------------------------

  // Registers a database object (a tuple of relation sets).
  Status RegisterDatabase(std::string name, Value db_object);
  // Lifts a relational database through the adapter and registers it.
  Status RegisterDatabase(const RelationalDatabase& db);
  Status RemoveDatabase(std::string_view name);

  const Value& base_universe() const { return base_; }

  // The merged universe: base plus materialized views. Recomputed lazily.
  Result<const Value*> universe();

  // Materializes if stale and returns a hash-warmed deep copy of the merged
  // universe: the epoch snapshot the server publishes to concurrent reader
  // sessions (src/server). The copy shares no mutable state with the
  // session, so it is safe to evaluate against from many threads while this
  // session keeps committing (object/value.h, "Thread safety").
  Result<Value> SnapshotUniverse();

  // Lowers a database of the *merged* universe back to relational form
  // (write-back path for substrate databases, export path for views).
  Result<RelationalDatabase> ExportDatabase(const std::string& name);

  // ---- Durable state enumeration (src/durability) ---------------------------
  // The definition texts and registration names this session retains
  // verbatim, in order, so a snapshot checkpoint can serialize everything
  // needed to rebuild it (derived state is recomputed, never persisted —
  // docs/DURABILITY.md). Names registered through RegisterDatabase only;
  // federation site replicas are remote truth, not durable local state.
  const std::vector<std::string>& database_names() const {
    return database_names_;
  }
  const std::vector<std::string>& rule_texts() const { return rule_texts_; }
  const std::vector<std::string>& program_texts() const {
    return program_texts_;
  }

  // ---- Federation (src/federation) -------------------------------------------

  // Connects this session to a federation gateway. The gateway's sites
  // appear in the universe as databases named after each site, kept in sync
  // lazily: every query and update first refreshes the replicas whose site
  // generation moved (cheap pings plus per-site answer caches — see
  // federation/gateway.h). Pure queries over a rule-free session take the
  // *ship* path instead: first-order subgoals naming one site are pushed
  // down as selections and only matching rows cross the boundary
  // (federation/ship.h). Update requests that touch a site-backed database
  // are written back through the gateway; a write-back failure restores the
  // local universe and forces a resync, so the session converges to what
  // the sites actually hold. Fails if a site name collides with a
  // registered database.
  Status ConnectGateway(std::shared_ptr<Gateway> gateway);
  const std::shared_ptr<Gateway>& gateway() const { return federation_; }

  // Convenience: registers `site` with the connected gateway.
  Status RegisterSite(std::shared_ptr<Site> site);

  // Per-site counter table (Gateway::Explain); empty without a gateway.
  std::string ExplainFederation() const;

  // Sites skipped under DegradePolicy::kPartial during the last fetch: any
  // answer produced while this is non-empty is a documented partial answer.
  const std::vector<std::string>& degraded_sites() const {
    return degraded_sites_;
  }

  // ---- Views (§6) ------------------------------------------------------------

  Status DefineRule(std::string_view rule_text);
  Status DefineRules(const std::vector<std::string>& rule_texts);
  // "db.rel" paths of relations created by rules in the last
  // materialization.
  const std::vector<std::string>& derived_paths() const {
    return derived_paths_;
  }
  const Materialized* last_materialization() const {
    return materialized_valid_ ? &materialized_ : nullptr;
  }

  // ---- Integrity constraints (§2/§8's types & keys) -------------------------

  // Declares a constraint, e.g.
  //   "constrain .euter.r (date: date!, stkCode: string!, "
  //   "clsPrice: number) key (date, stkCode)"
  // While any constraints are declared, Update and CallProgram become
  // *atomic and validated*: the base universe is snapshotted, the request
  // applied, the constraints checked, and on violation the snapshot is
  // restored and kFailedPrecondition returned.
  Status DeclareConstraint(std::string_view declaration);
  const ConstraintSet& constraints() const { return constraints_; }
  // Checks the current base universe (e.g. after registering databases).
  Status ValidateConstraints() const { return constraints_.Validate(base_); }

  // ---- Update programs (§7) ---------------------------------------------------

  Status DefineProgram(std::string_view clause_text);
  Status DefinePrograms(const std::vector<std::string>& clause_texts);
  Result<CallResult> CallProgram(const std::string& path,
                                 const std::map<std::string, Value>& args,
                                 UpdateOp view_op = UpdateOp::kNone,
                                 const EvalOptions& options = EvalOptions());
  const ProgramRegistry& programs() const { return registry_; }

  // ---- Queries and update requests -------------------------------------------

  // Evaluates a pure query ("?...") against the merged universe.
  Result<Answer> Query(std::string_view query_text,
                       const EvalOptions& options = EvalOptions());

  // Applies an update request ("?..." with +/- expressions). Pure query
  // conjuncts read the merged universe; update conjuncts write the base
  // universe; conjuncts naming a registered program (including view-update
  // programs) are dispatched to it. Updating a derived relation without a
  // program is an error (§7.2: the administrator must supply the
  // translation). `options` carries the request's governor budgets
  // (EvalOptions::{deadline_ms, max_passes, max_derivations,
  // max_universe_cells}); a governed request is atomic — aborting leaves the
  // base universe bit-identical.
  Result<UpdateRequestResult> Update(
      std::string_view request_text,
      const EvalOptions& options = EvalOptions());

  // True if this parsed query must go through Update rather than Query: it
  // contains an update marker, or a conjunct calls a registered update
  // program (§7.1 requests like "?.dbU.delStk(.stk=hp)" carry no marker of
  // their own — the marker lives in the program's body).
  bool IsUpdateRequest(const struct Query& query) const;

  // Parses and runs a ';'-separated script of rules, program definitions,
  // queries and update requests; returns the answers of the query
  // statements in order. `options` applies to every statement individually
  // (each query or update gets its own governor with these budgets).
  Result<std::vector<Answer>> ExecuteScript(
      std::string_view script, const EvalOptions& options = EvalOptions());

  // ---- Resource governor (common/governor.h) --------------------------------

  // A token another thread may use to cancel this session's in-flight (and
  // future, until Reset) requests; they unwind with kCancelled at the next
  // governor checkpoint. Grabbing the handle makes every subsequent request
  // governed: updates snapshot the base universe first, so a cancelled
  // request rolls back cleanly (strong exception safety).
  CancelHandle cancel_handle() {
    cancel_exposed_ = true;
    return cancel_;
  }

  // The FormatGovernorUsage line of the most recent governed request
  // (passes, derivations, peak cells, time remaining, abort reason); empty
  // if no governed request has run yet.
  const std::string& last_governor() const { return last_governor_; }

  // Cumulative evaluation statistics (reset with ResetStats).
  const EvalStats& stats() const { return stats_; }
  void ResetStats() { stats_ = EvalStats(); }

  // Options used when (re)materializing views — strategy and parallelism
  // (see EvalOptions). Changing them invalidates the cached materialization.
  void set_materialize_options(const EvalOptions& options) {
    materialize_options_ = options;
    Invalidate();
  }
  const EvalOptions& materialize_options() const {
    return materialize_options_;
  }

 private:
  // Rematerializes views if stale. The materialization runs under its own
  // governor built from materialize_options_, chained to `request` (so a
  // query's deadline/cancel bounds the materialization it triggers); no
  // governor at all when nothing is bounded and no cancel handle is out.
  Status EnsureMaterialized(const ResourceGovernor* request = nullptr);
  Result<UpdateRequestResult> UpdateImpl(const struct Query& request,
                                         std::set<std::string>* touched_roots,
                                         const ResourceGovernor* governor);
  // Evaluates an already-parsed pure query (the ship path lives here).
  Result<Answer> QueryParsed(const struct Query& query,
                             const EvalOptions& options);
  Result<Answer> QueryGoverned(const struct Query& query,
                               const EvalOptions& options,
                               const ResourceGovernor* governor);
  // The per-request governor: non-null when any budget in `options` is set
  // or a cancel handle has been handed out, null (ungoverned, zero
  // overhead) otherwise.
  std::unique_ptr<ResourceGovernor> MakeRequestGovernor(
      const EvalOptions& options);
  // Records the finished request's governor line into last_governor_.
  // `status` is the request's outcome: when a *chained* governor (the
  // materialization's) aborted the request, this governor's own counters
  // never fired, and the chained one has already published its more
  // informative line — which this call then must not clobber.
  void RecordGovernor(const ResourceGovernor* governor,
                      const Status& status = Status::Ok());
  // The merged universe, with materialization bounded by `request`.
  Result<const Value*> universe(const ResourceGovernor* request);
  // Refreshes the site replica fields of base_ from the federation; no-op
  // without a gateway or when no site generation moved.
  Status SyncFederation(const ResourceGovernor* governor = nullptr);
  // Pushes the named replica databases back to their sites ("*" means every
  // site). On failure the caller restores its snapshot; this clears the
  // synced generations so the next sync re-pulls remote truth.
  Status WriteBack(const std::set<std::string>& roots);
  // Hard invalidation: the retained materialization is unusable (rule set
  // changed, databases came or went, a rollback rewound the base). The next
  // request rematerializes from scratch.
  void Invalidate() {
    materialized_valid_ = false;
    maintenance_available_ = false;
    pending_delta_.Clear();
    ++query_generation_;
  }
  // Soft invalidation: the base changed exactly as `delta` describes. The
  // merged accumulated delta drives incremental maintenance at the next
  // EnsureMaterialized (views/engine.h ApplyDelta).
  void MarkStale(UniverseDelta delta);
  // True if an update conjunct with this decomposed path targets a derived
  // relation.
  bool TargetsDerived(const std::string& path) const;

  Value base_ = Value::EmptyTuple();
  CancelHandle cancel_;
  bool cancel_exposed_ = false;
  std::string last_governor_;
  std::shared_ptr<Gateway> federation_;
  std::map<std::string, uint64_t> synced_generations_;
  std::vector<std::string> degraded_sites_;
  ViewEngine views_;
  ProgramRegistry registry_;
  ConstraintSet constraints_;
  Materialized materialized_;
  bool materialized_valid_ = false;
  // True while materialized_ carries usable per-level maintenance state
  // (set by a full kSemiNaive materialization, cleared by Invalidate and by
  // maintenance errors). Orthogonal to materialized_valid_: a stale-but-
  // maintainable cache has maintenance_available_ && !materialized_valid_.
  bool maintenance_available_ = false;
  // Base changes accumulated since the retained materialization was built
  // (merged across MarkStale calls, consumed by EnsureMaterialized).
  UniverseDelta pending_delta_;
  std::vector<std::string> derived_paths_;
  // Durable-state enumeration (kept in sync by RegisterDatabase/
  // RemoveDatabase/DefineRule/DefineProgram).
  std::vector<std::string> database_names_;
  std::vector<std::string> rule_texts_;
  std::vector<std::string> program_texts_;
  EvalStats stats_;
  EvalOptions materialize_options_;
  // Hoisted query-evaluation cache: equality indexes and columnar pages
  // persist across direct-session queries of one universe generation, so a
  // repeated query reuses its pages instead of rebuilding them per call.
  // Keyed by query_generation_, bumped by Invalidate() and MarkStale() —
  // every base or view mutation passes through one of the two. Rebuilt when
  // a query's index_min_set_size differs from the cache's (the threshold is
  // baked in at construction). The federation ship path evaluates over a
  // per-request assembled universe and never uses it.
  std::unique_ptr<SetIndexCache> query_cache_;
  size_t query_cache_min_set_size_ = 0;
  uint64_t query_generation_ = 1;
};

}  // namespace idl

#endif  // IDL_IDL_SESSION_H_
