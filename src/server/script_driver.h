// Concurrent scripted sessions against one in-process Server.
//
// The driver behind `idl_shell --server-sessions=N` and the golden corpus
// test's `% server-sessions: N` directive: it runs an ordinary IDL script,
// but every pure query is evaluated *concurrently on N reader sessions*
// (one thread each), and the transcript asserts that all N answers are
// byte-identical — the per-statement form of the snapshot-isolation
// guarantee, since the sessions share one pinned epoch. Update requests
// commit through the server's write queue on session 0 and every session
// re-pins to the published epoch afterwards, so the transcript stays a
// deterministic function of the script (it is pinned by
// tests/golden/server_demo.golden).

#ifndef IDL_SERVER_SCRIPT_DRIVER_H_
#define IDL_SERVER_SCRIPT_DRIVER_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "eval/query.h"
#include "server/server.h"

namespace idl {

struct ServerScriptResult {
  std::string transcript;
  // True when a statement failed (error appended to the transcript; the
  // statements after it did not run) — the shell exits non-zero on it.
  bool failed = false;
  size_t queries = 0;  // query statements run (each on every session)
  size_t commits = 0;  // update requests committed
  uint64_t final_epoch = 0;
};

// Runs `script` against `server` (already populated with databases) with
// `num_sessions` concurrent reader sessions. Rules and programs defined by
// the script go through the server online. Returns an error only for
// malformed scripts or a snapshot-isolation violation (sessions disagree);
// statement-level failures land in the transcript with failed=true, like
// the plain shell.
Result<ServerScriptResult> RunServerScript(
    Server* server, std::string_view script, size_t num_sessions,
    const EvalOptions& request_options = EvalOptions());

// The `% server-sessions: N` directive (0 when absent).
size_t ServerSessionsDirective(std::string_view script);

// ---- Durable scripts (src/durability, docs/DURABILITY.md) ------------------
//
// The driver behind `idl_shell --wal-dir=DIR` and the golden corpus's
// `% wal:` scripts: an ordinary IDL script committed through a *durable*
// server (Server::Open — recover-or-create on `wal_dir`), with optional
// scripted crash injection:
//
//   % wal:                   mark the script durable (corpus gives it a dir)
//   % checkpoint-every: N    snapshot-checkpoint every N logged records
//   % crash-at: mid-append   crash point to arm (durability/crash_point.h)
//   % crash-after: N         ...fired the Nth time that point is reached
//
// When the armed crash fires, the failing statement's error lands in the
// transcript, the server is discarded (the simulated kill), a fresh one
// recovers from the directory — the transcript records what recovery found
// (replayed records, torn-tail truncation, resumed epoch) — and the script
// *continues* with the next statement. The crashed statement is not
// retried: whether its effect survived is exactly what the record-durable
// line of the crash taxonomy says, and the demo script's queries show it
// (tests/golden/durability_demo.golden pins the whole transcript).

struct DurableScriptSpec {
  bool durable = false;           // `% wal:` present
  size_t checkpoint_every = 64;   // `% checkpoint-every:` override
  // Armed when crash_after > 0.
  CrashPoint crash_at = CrashPoint::kAfterAppend;
  size_t crash_after = 0;
  // Materialization options for the durable server (not a directive — the
  // caller sets it; the corpus runs each wal script under both strategies).
  EvalOptions materialize;
};

// Parses the `% wal:` family of directives. InvalidArgument on an unknown
// `% crash-at:` point name.
Result<DurableScriptSpec> ParseDurableScriptSpec(std::string_view script);

struct DurableScriptResult {
  std::string transcript;
  bool failed = false;  // a statement failed for a non-injected reason
  size_t queries = 0;
  size_t commits = 0;
  size_t crashes = 0;  // injected kills survived (0 or 1)
  uint64_t final_epoch = 0;
};

// Runs `script` durably against `wal_dir` per `spec`. One reader session;
// update requests commit through the log. The directory must exist; state
// already in it is recovered first (and the transcript says so).
// `seed_databases` are registered — and therefore logged — only when the
// directory held no durable state; after a recovery (initial or
// mid-script) they come back from the log itself.
Result<DurableScriptResult> RunDurableScript(
    const std::string& wal_dir, std::string_view script,
    const DurableScriptSpec& spec,
    const std::vector<std::pair<std::string, Value>>& seed_databases = {},
    const EvalOptions& request_options = EvalOptions());

}  // namespace idl

#endif  // IDL_SERVER_SCRIPT_DRIVER_H_
