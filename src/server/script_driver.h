// Concurrent scripted sessions against one in-process Server.
//
// The driver behind `idl_shell --server-sessions=N` and the golden corpus
// test's `% server-sessions: N` directive: it runs an ordinary IDL script,
// but every pure query is evaluated *concurrently on N reader sessions*
// (one thread each), and the transcript asserts that all N answers are
// byte-identical — the per-statement form of the snapshot-isolation
// guarantee, since the sessions share one pinned epoch. Update requests
// commit through the server's write queue on session 0 and every session
// re-pins to the published epoch afterwards, so the transcript stays a
// deterministic function of the script (it is pinned by
// tests/golden/server_demo.golden).

#ifndef IDL_SERVER_SCRIPT_DRIVER_H_
#define IDL_SERVER_SCRIPT_DRIVER_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "common/result.h"
#include "eval/query.h"
#include "server/server.h"

namespace idl {

struct ServerScriptResult {
  std::string transcript;
  // True when a statement failed (error appended to the transcript; the
  // statements after it did not run) — the shell exits non-zero on it.
  bool failed = false;
  size_t queries = 0;  // query statements run (each on every session)
  size_t commits = 0;  // update requests committed
  uint64_t final_epoch = 0;
};

// Runs `script` against `server` (already populated with databases) with
// `num_sessions` concurrent reader sessions. Rules and programs defined by
// the script go through the server online. Returns an error only for
// malformed scripts or a snapshot-isolation violation (sessions disagree);
// statement-level failures land in the transcript with failed=true, like
// the plain shell.
Result<ServerScriptResult> RunServerScript(
    Server* server, std::string_view script, size_t num_sessions,
    const EvalOptions& request_options = EvalOptions());

// The `% server-sessions: N` directive (0 when absent).
size_t ServerSessionsDirective(std::string_view script);

}  // namespace idl

#endif  // IDL_SERVER_SCRIPT_DRIVER_H_
