// Schema-evolution traces through the server's commit queue.
//
// PR 6's generator proves the engine's mode lattice agrees with a logical
// oracle under serial execution. This sweep replays the same generated
// traces against the *server*: one tenant workload's update requests commit
// through the single-writer queue while N reader sessions pin epochs and
// assert, concurrently, that
//
//   (a) the epoch each commit publishes is Value-identical to a shadow
//       serial Session that applied the same request prefix — every epoch
//       IS the serial execution of an epoch-consistent prefix, and
//   (b) at every step boundary the readers' unified view (queried through
//       the normal reader path, all sessions concurrently, answers
//       byte-compared) agrees with the generator's oracle snapshot.
//
// Zero mismatches across the configs is the headroom check ROADMAP item 5
// asks for: local schemas keep evolving while the federation stays
// continuously queryable.

#ifndef IDL_SERVER_TRACE_SWEEP_H_
#define IDL_SERVER_TRACE_SWEEP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "server/server.h"
#include "workload/discrepancy_gen.h"

namespace idl {

struct ServerSweepOptions {
  // Evolution-trace steps per universe.
  size_t trace_steps = 4;
  // Salt mixed into the trace RNG.
  uint64_t trace_salt = 0;
  // Concurrent reader sessions asserting oracle agreement per boundary.
  size_t reader_sessions = 3;
  // Server configuration (materialize options, commit-queue bound).
  ServerOptions server;
  // Substrate of the shadow serial oracle session. The server keeps
  // `server.materialize.substrate` (columnar by default), so with the
  // default here every epoch-vs-shadow comparison is a cross-substrate
  // differential: columnar server epochs must be Value-identical to
  // tuple-at-a-time serial execution of the same commit prefix.
  EvalSubstrate shadow_substrate = EvalSubstrate::kNested;
};

struct ServerSweepReport {
  size_t universes = 0;
  size_t steps = 0;          // evolution steps replayed
  size_t commits = 0;        // update requests committed through the queue
  size_t epochs = 0;         // epochs published across all universes
  size_t serial_checks = 0;  // epoch-vs-shadow-session universe comparisons
  size_t reader_checks = 0;  // reader-vs-oracle unified-view comparisons
  std::vector<std::string> mismatches;

  bool ok() const { return mismatches.empty(); }
};

ServerSweepReport RunServerTraceSweep(
    const std::vector<DiscrepancyConfig>& configs,
    const ServerSweepOptions& options);

// One line, locked by tests/explain_format_test.cc:
//   "server-sweep: universes=5 steps=20 commits=63 epochs=73
//    serial_checks=63 reader_checks=75 mismatches=0\n"
std::string FormatServerSweepReport(const ServerSweepReport& report);

}  // namespace idl

#endif  // IDL_SERVER_TRACE_SWEEP_H_
