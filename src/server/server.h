// Server: one universe, N concurrent sessions, snapshot isolation.
//
// The paper's interoperability language assumes a federation that many
// clients query while component databases keep changing. `idl::Session` is
// strictly single-caller, so this layer adds the concurrency discipline
// around it:
//
//  * Readers never touch the session. They evaluate against an immutable
//    published *epoch* — a hash-warmed deep copy of the merged universe
//    (base plus materialized views) taken after each commit
//    (Materialized::SnapshotUniverse). An epoch is a shared_ptr<const>;
//    pinning one is a pointer copy, and a pinned epoch stays valid for as
//    long as any session holds it, however many commits happen meanwhile.
//
//  * Writers funnel through a single-writer commit queue (a
//    BoundedExecutor with one thread). Each commit applies its update
//    request to the inner session — which maintains the retained
//    materialization incrementally (ViewEngine::ApplyDelta, with the
//    fallback-to-rematerialize path preserved) — snapshots the result, and
//    atomically publishes the next epoch. Commits are strictly serialized,
//    so every epoch is the result of a serial prefix of committed requests:
//    a reader bound to epoch E sees exactly the serial execution of commits
//    1..E, which is the snapshot-isolation guarantee the differential tests
//    prove byte-for-byte.
//
//  * Admission control under overload: a commit arriving while
//    max_pending_commits are already queued is rejected at the door with
//    kResourceExhausted (retryable), and a commit whose deadline_ms expired
//    while it waited in the queue is rejected with kDeadlineExceeded
//    *before* any work happens. The time a commit did spend queued is
//    subtracted from its deadline, so `deadline_ms` bounds wall time from
//    the caller's perspective, queue included.
//
// Epoch lifecycle, isolation guarantee and admission policy are documented
// in docs/SERVER.md; metrics in docs/OBSERVABILITY.md (server.*).

#ifndef IDL_SERVER_SERVER_H_
#define IDL_SERVER_SERVER_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/governor.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "durability/wal.h"
#include "eval/query.h"
#include "idl/session.h"
#include "object/value.h"
#include "update/applier.h"

namespace idl {

class ColumnarStore;

// An immutable published snapshot of the merged universe. Never mutated
// after publication: the universe is hash-warmed (object/value.h, "Thread
// safety"), so any number of threads may evaluate against it concurrently.
struct Epoch {
  // 1 for the initial epoch, +1 per successful commit or schema change.
  uint64_t id = 0;
  Value universe;
  // "db.rel" paths created by rules, as of this epoch.
  std::vector<std::string> derived_paths;
  // Columnar pages for every flat relation of `universe`, built once at
  // publication (docs/COLUMNAR.md). Pages are immutable and refcounted:
  // relations unchanged since the previous epoch share that epoch's pages
  // rather than re-encoding, and reader sessions on either epoch keep the
  // shared page alive. Null only under EvalSubstrate::kNested servers.
  std::shared_ptr<const ColumnarStore> columnar;
  std::chrono::steady_clock::time_point published_at;
};
using EpochPtr = std::shared_ptr<const Epoch>;

// Where and how the server persists its committed state (src/durability;
// protocol in docs/DURABILITY.md). With `dir` empty the server is purely
// in-memory, exactly as before this layer existed.
struct DurabilityOptions {
  // Directory holding `wal.log` and `snap.*.idls`. Must already exist.
  std::string dir;
  // fsync every append/checkpoint step (WalOptions::fsync).
  bool fsync = true;
  // Snapshot-checkpoint (and truncate the log) after this many appended
  // records; 0 disables checkpointing (the log grows without bound).
  size_t checkpoint_every = 64;
  // Bound on Recover()'s total wall time (snapshot load + WAL replay);
  // 0 = unbounded. Composes with the governor: each replayed commit runs
  // under the remaining budget, so replay aborts with kDeadlineExceeded at
  // a governor checkpoint rather than overshooting.
  int recover_deadline_ms = 0;
  // Test-only crash injection (durability/crash_point.h).
  CrashHook crash_hook;
};

struct ServerOptions {
  // Commit-queue bound: an Update arriving while this many commits are
  // already pending is rejected with kResourceExhausted.
  size_t max_pending_commits = 64;
  // Materialization options of the inner session (strategy, parallelism,
  // maintenance mode). Incremental maintenance needs kSemiNaive.
  EvalOptions materialize;
  DurabilityOptions durability;
};

// What Server::Recover/Open rebuilt (for logs, tests, the shell banner).
struct RecoveryReport {
  bool recovered = false;     // false: fresh directory, nothing to replay
  uint64_t snapshot_lsn = 0;  // 0 when no snapshot existed
  size_t replayed_records = 0;
  size_t torn_tail_truncations = 0;  // 0 or 1 (only the tail can tear)
  uint64_t epoch = 0;                // published epoch id after recovery
  double wall_ms = 0.0;
};

// What a successful commit published.
struct CommitResult {
  EpochPtr epoch;       // the epoch containing this commit's effects
  size_t bindings = 0;  // UpdateRequestResult passthrough
  UpdateCounts counts;
};

class ServerSession;

class Server {
 public:
  // In-memory server (options.durability.dir must be empty — use the
  // factories below for a durable one).
  explicit Server(const ServerOptions& options = ServerOptions());
  ~Server();  // Shutdown()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // ---- Durable servers (src/durability, docs/DURABILITY.md) ----------------
  //
  // A durable server writes every acknowledged state change — commits, rule
  // and program definitions, database registrations — to a checksummed
  // write-ahead log *before* publishing the resulting epoch, and
  // periodically folds the log into a snapshot checkpoint. After any
  // durability failure (I/O error, injected crash) the server is fail-stop:
  // every later state change returns the original failure; reads keep
  // working against the last published epoch.

  // Fresh durable server in a directory with no prior durable state
  // (kAlreadyExists if `wal.log` or a snapshot is present).
  static Result<std::unique_ptr<Server>> Create(const ServerOptions& options);

  // Rebuilds a server from the durable state in options.durability.dir:
  // loads the newest valid snapshot, replays the WAL tail with a later LSN
  // through the ordinary commit path, truncates a torn final record, and
  // republishes. kDataLoss (positioned) on mid-log or snapshot corruption;
  // kDeadlineExceeded when recover_deadline_ms expires mid-replay;
  // kNotFound when the directory holds no durable state at all.
  static Result<std::unique_ptr<Server>> Recover(
      const ServerOptions& options, RecoveryReport* report = nullptr);

  // Open-or-recover: Recover() when durable state exists, Create()
  // otherwise. What `idl_shell --wal-dir=` and `% wal:` scripts use.
  static Result<std::unique_ptr<Server>> Open(
      const ServerOptions& options, RecoveryReport* report = nullptr);

  // ---- Universe and schema setup -------------------------------------------
  // Serialized against the commit queue. When an epoch has already been
  // published, each successful call republishes so the change becomes
  // visible to sessions that Refresh() — failures (bad rule, failed
  // materialization) leave the published epoch untouched.
  Status RegisterDatabase(std::string name, Value db_object);
  Status DefineRule(std::string_view rule_text);
  Status DefineRules(const std::vector<std::string>& rule_texts);
  Status DefineProgram(std::string_view clause_text);

  // ---- Epochs and sessions -------------------------------------------------

  // The newest published epoch; publishes the first one on demand (which
  // can fail if materialization fails).
  Result<EpochPtr> PublishedEpoch();

  // Opens a reader session pinned to the newest epoch.
  Result<ServerSession> Connect();

  // ---- The write path ------------------------------------------------------

  // Applies one update request through the commit queue and publishes the
  // next epoch. Blocks until the commit is applied or rejected; thread-safe
  // (this is the whole point). Error surface:
  //   kResourceExhausted  — queue full; admission rejection, retry later
  //   kDeadlineExceeded   — options.deadline_ms expired while queued (the
  //                         request was never applied) or during evaluation
  //   kFailedPrecondition — server shut down
  //   anything else       — the Update itself failed; the universe and the
  //                         published epoch are unchanged (Session::Update
  //                         is atomic under a governor or constraints)
  Result<CommitResult> Commit(std::string_view request_text,
                              const EvalOptions& options = EvalOptions());

  // Drains queued commits, then rejects all further work. Idempotent;
  // called by the destructor. Pending Commit() callers get their results;
  // later callers get kFailedPrecondition.
  void Shutdown();

  // Commits queued but not yet applied (racy; for tests and metrics).
  size_t queue_depth() const { return commit_queue_.queue_depth(); }

  // True if `query` must go through Commit() rather than a reader session:
  // it carries an update marker or calls a registered update program.
  bool IsUpdateRequest(const Query& query) const;

  // The sticky durability failure (Status::Ok() while healthy); see the
  // fail-stop note above. Exposed for tests.
  Status durability_error() const;

 private:
  friend class ServerSession;

  // Appends one record for an applied change, assigning it the epoch id the
  // following PublishLocked() will use. No-op without durability. Caller
  // must hold session_mu_; on failure poisons the durability layer.
  Status AppendDurable(WalRecordType type, std::string_view name,
                       std::string_view body);
  // Snapshot-checkpoints and resets the log every checkpoint_every records.
  // Caller must hold session_mu_.
  Status MaybeCheckpointLocked();
  Status CheckpointLocked();
  Status PoisonDurability(Status status);  // records + returns the failure

  // Snapshots the session and publishes the next epoch. Caller must hold
  // session_mu_.
  Status PublishLocked();
  // Publishes the first epoch if none exists yet.
  Status EnsurePublished();
  EpochPtr CurrentEpoch() const;
  // Runs one commit on the queue thread (the ticket carries the result).
  struct CommitTicket;
  void RunCommit(const std::shared_ptr<CommitTicket>& ticket);

  ServerOptions options_;

  // Guards session_ and epoch publication order. Held by the commit thread
  // while applying, and by setup methods; readers never take it.
  mutable std::mutex session_mu_;
  Session session_;
  uint64_t next_epoch_id_ = 1;

  // Durability (all guarded by session_mu_; null/zero without a dir).
  std::unique_ptr<Wal> wal_;
  size_t records_since_checkpoint_ = 0;
  Status durability_poison_;

  // Guards only the published_ pointer (swap on publish, copy on pin).
  mutable std::mutex epoch_mu_;
  EpochPtr published_;

  // The single-writer commit queue. Declared after the state it touches so
  // its destructor (which drains) runs first.
  BoundedExecutor commit_queue_;
};

// A reader session handle: pins one epoch and evaluates pure queries
// against it. NOT thread-safe itself (one session per thread — sessions
// are cheap); any number of sessions may share one epoch. Copyable: a copy
// is an independent session pinned to the same epoch.
class ServerSession {
 public:
  // Evaluates a pure query at the pinned epoch. The epoch never changes
  // under the caller: repeated queries see one consistent snapshot until
  // Refresh()/Update(). Update requests are rejected with
  // kInvalidArgument — route them through Update(). Governor budgets in
  // `options` apply; CancelHandle() cancels mid-evaluation.
  Result<Answer> Query(std::string_view query_text,
                       const EvalOptions& options = EvalOptions());

  // Submits an update request through the server's commit queue; on
  // success re-pins this session to the epoch the commit published
  // (read-your-writes). On failure the pinned epoch is unchanged.
  Result<CommitResult> Update(std::string_view request_text,
                              const EvalOptions& options = EvalOptions());

  // Re-pins to the newest published epoch.
  Status Refresh();

  const EpochPtr& epoch() const { return epoch_; }
  uint64_t epoch_id() const { return epoch_->id; }

  // A token another thread may use to abort this session's in-flight
  // queries (they unwind with kCancelled at a governor checkpoint).
  CancelHandle cancel_handle() const { return cancel_; }

  // Cumulative evaluation statistics of this session's queries.
  const EvalStats& stats() const { return stats_; }

 private:
  friend class Server;
  ServerSession(Server* server, EpochPtr epoch)
      : server_(server), epoch_(std::move(epoch)) {}

  Server* server_;
  EpochPtr epoch_;
  CancelHandle cancel_;
  EvalStats stats_;
};

}  // namespace idl

#endif  // IDL_SERVER_SERVER_H_
