#include "server/trace_sweep.h"

#include <memory>
#include <utility>

#include "common/str_util.h"
#include "common/thread_pool.h"
#include "idl/session.h"

namespace idl {

namespace {

// The relation at universe.db.rel, or an empty set when absent (views that
// lost every row may survive as empty slots — the oracle compares facts;
// mirrors the normalization in workload/sweep.cc).
Value RelOrEmpty(const Value& universe, const char* db, const char* rel) {
  const Value* d = universe.FindField(db);
  const Value* r = d == nullptr ? nullptr : d->FindField(rel);
  return r == nullptr ? Value::EmptySet() : *r;
}

// Runs one generated universe's trace through a fresh server. Returns ""
// when every comparison held, else a description of the first mismatch.
std::string CheckUniverse(const DiscrepancyConfig& config,
                          const ServerSweepOptions& options,
                          ServerSweepReport* report) {
  DiscrepancyUniverse universe = GenerateDiscrepancyUniverse(config);
  const std::vector<std::string> rules = universe.UnificationRules();

  // The server under test and the shadow serial oracle session, identically
  // populated. The shadow applies every request on the caller thread; each
  // published epoch must equal its merged universe exactly.
  Server server(options.server);
  Session shadow;
  EvalOptions shadow_materialize = options.server.materialize;
  shadow_materialize.substrate = options.shadow_substrate;
  shadow.set_materialize_options(shadow_materialize);
  for (const auto& tenant : universe.tenants) {
    Value db = universe.BuildTenantDatabase(tenant);
    if (Status st = server.RegisterDatabase(tenant.name, db); !st.ok()) {
      return StrCat("server setup: ", st.ToString());
    }
    if (Status st = shadow.RegisterDatabase(tenant.name, std::move(db));
        !st.ok()) {
      return StrCat("shadow setup: ", st.ToString());
    }
  }
  if (Status st = server.DefineRules(rules); !st.ok()) {
    return StrCat("server rules: ", st.ToString());
  }
  if (Status st = shadow.DefineRules(rules); !st.ok()) {
    return StrCat("shadow rules: ", st.ToString());
  }

  std::vector<ServerSession> readers;
  for (size_t i = 0; i < options.reader_sessions; ++i) {
    Result<ServerSession> session = server.Connect();
    if (!session.ok()) {
      return StrCat("connect: ", session.status().ToString());
    }
    readers.push_back(std::move(session).value());
  }
  ThreadPool pool(readers.size() > 1 ? readers.size() - 1 : 0);

  // Compares each published epoch against the shadow serial session.
  auto serial_check = [&](const EpochPtr& epoch,
                          const std::string& when) -> std::string {
    Result<const Value*> u = shadow.universe();
    if (!u.ok()) {
      return StrCat("shadow failed ", when, ": ", u.status().ToString());
    }
    ++report->serial_checks;
    if (!(epoch->universe == **u)) {
      return StrCat("epoch ", epoch->id,
                    " diverges from serial execution ", when);
    }
    return "";
  };

  // All readers re-pin, then concurrently check the unified view against
  // the oracle snapshot through the normal reader query path.
  auto reader_check = [&](const Value& expected_unified,
                          const std::string& when) -> std::string {
    for (auto& reader : readers) {
      if (Status st = reader.Refresh(); !st.ok()) {
        return StrCat("refresh failed ", when, ": ", st.ToString());
      }
    }
    std::vector<std::string> failures(readers.size());
    pool.ParallelFor(readers.size(), [&](size_t task, size_t) {
      Result<Answer> answer =
          readers[task].Query("?.u.p(.tn=T, .ent=E, .key=K, .val=V)");
      if (!answer.ok()) {
        failures[task] = answer.status().ToString();
        return;
      }
      // The reader's pinned epoch must carry the oracle's facts exactly.
      if (!(RelOrEmpty(readers[task].epoch()->universe, "u", "p") ==
            expected_unified)) {
        failures[task] = "unified view disagrees with the oracle";
        return;
      }
      // And the projected answer must enumerate one row per fact.
      if (answer->rows.size() != expected_unified.SetSize()) {
        failures[task] =
            StrCat("answer has ", answer->rows.size(), " rows, oracle has ",
                   expected_unified.SetSize());
      }
    });
    report->reader_checks += readers.size();
    for (size_t i = 0; i < failures.size(); ++i) {
      if (!failures[i].empty()) {
        return StrCat("reader ", i, " ", when, ": ", failures[i]);
      }
    }
    return "";
  };

  // Initial boundary: epoch 1 (plus one epoch per rule batch) against the
  // pre-trace oracle.
  const Value initial_unified = universe.ExpectedUnified();
  {
    Result<EpochPtr> epoch = server.PublishedEpoch();
    if (!epoch.ok()) return StrCat("publish: ", epoch.status().ToString());
    ++report->epochs;  // count the epoch the readers start from
    if (std::string m = serial_check(*epoch, "after setup"); !m.empty()) {
      return m;
    }
  }
  if (std::string m = reader_check(initial_unified, "after setup");
      !m.empty()) {
    return m;
  }

  EvolutionTrace trace =
      GenerateEvolutionTrace(universe, options.trace_steps, options.trace_salt);
  for (size_t s = 0; s < trace.steps.size(); ++s) {
    const EvolutionStep& step = trace.steps[s];
    ++report->steps;
    const std::string when =
        StrCat("at step ", s, " (", step.description, ")");
    for (const std::string& request : step.requests) {
      Result<CommitResult> committed = server.Commit(request);
      if (!committed.ok()) {
        return StrCat("commit failed ", when, " on '", request, "': ",
                      committed.status().ToString());
      }
      ++report->commits;
      ++report->epochs;
      auto applied = shadow.Update(request);
      if (!applied.ok()) {
        return StrCat("shadow update failed ", when, ": ",
                      applied.status().ToString());
      }
      if (std::string m = serial_check(committed->epoch, when); !m.empty()) {
        return m;
      }
    }
    if (std::string m = reader_check(step.expected_unified, when);
        !m.empty()) {
      return m;
    }
  }
  return "";
}

}  // namespace

ServerSweepReport RunServerTraceSweep(
    const std::vector<DiscrepancyConfig>& configs,
    const ServerSweepOptions& options) {
  ServerSweepReport report;
  for (const DiscrepancyConfig& config : configs) {
    ++report.universes;
    std::string mismatch = CheckUniverse(config, options, &report);
    if (!mismatch.empty()) {
      report.mismatches.push_back(
          StrCat("universe seed=", config.seed, ": ", mismatch));
    }
  }
  return report;
}

std::string FormatServerSweepReport(const ServerSweepReport& report) {
  return StrCat("server-sweep: universes=", report.universes,
                " steps=", report.steps, " commits=", report.commits,
                " epochs=", report.epochs,
                " serial_checks=", report.serial_checks,
                " reader_checks=", report.reader_checks,
                " mismatches=", report.mismatches.size(), "\n");
}

}  // namespace idl
