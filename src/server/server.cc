#include "server/server.h"

#include <condition_variable>
#include <utility>

#include "common/metrics.h"
#include "common/str_util.h"
#include "syntax/parser.h"

namespace idl {

namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

struct ServerMetrics {
  Counter* commits;
  Counter* commit_failures;
  Counter* admission_rejects;
  Counter* epochs_published;
  Gauge* queue_depth;
  Gauge* epoch_id;
  Histogram* query_ms;
  Histogram* commit_ms;
  Histogram* commit_queue_ms;
  Histogram* epoch_age_ms;
};

// One static lookup; the registry never invalidates instrument pointers.
const ServerMetrics& Metrics() {
  static const ServerMetrics m = {
      MetricsRegistry::Global().counter("server.commits"),
      MetricsRegistry::Global().counter("server.commit_failures"),
      MetricsRegistry::Global().counter("server.admission_rejects"),
      MetricsRegistry::Global().counter("server.epochs_published"),
      MetricsRegistry::Global().gauge("server.queue_depth"),
      MetricsRegistry::Global().gauge("server.epoch_id"),
      MetricsRegistry::Global().histogram("server.query_ms"),
      MetricsRegistry::Global().histogram("server.commit_ms"),
      MetricsRegistry::Global().histogram("server.commit_queue_ms"),
      MetricsRegistry::Global().histogram("server.epoch_age_ms"),
  };
  return m;
}

}  // namespace

// The rendezvous between a Commit() caller and the queue thread. Shared
// (not stack-owned by the caller) so a Shutdown(drain=false) that destroys
// a queued task cannot leave the worker touching a dead ticket.
struct Server::CommitTicket {
  std::string request_text;
  EvalOptions options;
  std::chrono::steady_clock::time_point submitted_at;

  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Result<CommitResult> result = Result<CommitResult>(CommitResult{});

  void Finish(Result<CommitResult> r) {
    {
      std::lock_guard<std::mutex> lock(mu);
      result = std::move(r);
      done = true;
    }
    cv.notify_all();
  }
  Result<CommitResult> Wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done; });
    return std::move(result);
  }
};

Server::Server(const ServerOptions& options)
    : options_(options),
      commit_queue_(/*num_threads=*/1, options.max_pending_commits) {
  session_.set_materialize_options(options_.materialize);
}

Server::~Server() { Shutdown(); }

void Server::Shutdown() { commit_queue_.Shutdown(/*drain=*/true); }

Status Server::RegisterDatabase(std::string name, Value db_object) {
  std::lock_guard<std::mutex> lock(session_mu_);
  IDL_RETURN_IF_ERROR(
      session_.RegisterDatabase(std::move(name), std::move(db_object)));
  return published_ == nullptr ? Status::Ok() : PublishLocked();
}

Status Server::DefineRule(std::string_view rule_text) {
  std::lock_guard<std::mutex> lock(session_mu_);
  IDL_RETURN_IF_ERROR(session_.DefineRule(rule_text));
  return published_ == nullptr ? Status::Ok() : PublishLocked();
}

Status Server::DefineRules(const std::vector<std::string>& rule_texts) {
  std::lock_guard<std::mutex> lock(session_mu_);
  for (const auto& text : rule_texts) {
    IDL_RETURN_IF_ERROR(session_.DefineRule(text));
  }
  return published_ == nullptr ? Status::Ok() : PublishLocked();
}

Status Server::DefineProgram(std::string_view clause_text) {
  std::lock_guard<std::mutex> lock(session_mu_);
  IDL_RETURN_IF_ERROR(session_.DefineProgram(clause_text));
  // Programs don't change the universe: no republish needed (readers only
  // consult the registry through the server, never through an epoch).
  return Status::Ok();
}

bool Server::IsUpdateRequest(const Query& query) const {
  std::lock_guard<std::mutex> lock(session_mu_);
  return session_.IsUpdateRequest(query);
}

Status Server::PublishLocked() {
  IDL_ASSIGN_OR_RETURN(Value universe, session_.SnapshotUniverse());
  auto epoch = std::make_shared<Epoch>();
  epoch->id = next_epoch_id_++;
  epoch->universe = std::move(universe);
  epoch->derived_paths = session_.derived_paths();
  epoch->published_at = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(epoch_mu_);
    if (published_ != nullptr) {
      Metrics().epoch_age_ms->Observe(MsSince(published_->published_at));
    }
    published_ = std::move(epoch);
    Metrics().epoch_id->Set(static_cast<int64_t>(published_->id));
  }
  Metrics().epochs_published->Increment();
  return Status::Ok();
}

Status Server::EnsurePublished() {
  std::lock_guard<std::mutex> lock(session_mu_);
  if (published_ != nullptr) return Status::Ok();
  return PublishLocked();
}

EpochPtr Server::CurrentEpoch() const {
  std::lock_guard<std::mutex> lock(epoch_mu_);
  return published_;
}

Result<EpochPtr> Server::PublishedEpoch() {
  IDL_RETURN_IF_ERROR(EnsurePublished());
  return CurrentEpoch();
}

Result<ServerSession> Server::Connect() {
  IDL_ASSIGN_OR_RETURN(EpochPtr epoch, PublishedEpoch());
  return ServerSession(this, std::move(epoch));
}

void Server::RunCommit(const std::shared_ptr<CommitTicket>& ticket) {
  Metrics().queue_depth->Set(static_cast<int64_t>(commit_queue_.queue_depth()));
  double queued_ms = MsSince(ticket->submitted_at);
  Metrics().commit_queue_ms->Observe(queued_ms);
  EvalOptions options = ticket->options;
  if (options.deadline_ms > 0) {
    // The deadline covers the caller's wait, queue time included: reject
    // without applying when it expired in the queue, otherwise hand the
    // remaining budget to the governed Update.
    double remaining = options.deadline_ms - queued_ms;
    if (remaining < 1.0) {
      Metrics().commit_failures->Increment();
      ticket->Finish(
          DeadlineExceeded("commit deadline expired while queued"));
      return;
    }
    options.deadline_ms = static_cast<int>(remaining);
  }
  auto t0 = std::chrono::steady_clock::now();
  Result<CommitResult> outcome = [&]() -> Result<CommitResult> {
    std::lock_guard<std::mutex> lock(session_mu_);
    if (published_ == nullptr) IDL_RETURN_IF_ERROR(PublishLocked());
    IDL_ASSIGN_OR_RETURN(UpdateRequestResult applied,
                         session_.Update(ticket->request_text, options));
    IDL_RETURN_IF_ERROR(PublishLocked());
    CommitResult result;
    result.epoch = published_;
    result.bindings = applied.bindings;
    result.counts = applied.counts;
    return result;
  }();
  Metrics().commit_ms->Observe(MsSince(t0));
  if (outcome.ok()) {
    Metrics().commits->Increment();
  } else {
    Metrics().commit_failures->Increment();
  }
  ticket->Finish(std::move(outcome));
}

Result<CommitResult> Server::Commit(std::string_view request_text,
                                    const EvalOptions& options) {
  auto ticket = std::make_shared<CommitTicket>();
  ticket->request_text = std::string(request_text);
  ticket->options = options;
  ticket->submitted_at = std::chrono::steady_clock::now();
  Status admitted = commit_queue_.Submit([this, ticket] { RunCommit(ticket); });
  if (!admitted.ok()) {
    if (admitted.code() == StatusCode::kResourceExhausted) {
      Metrics().admission_rejects->Increment();
      return ResourceExhausted(
          StrCat("server overloaded: ", options_.max_pending_commits,
                 " commits already pending"));
    }
    return admitted;  // kFailedPrecondition: shut down
  }
  Metrics().queue_depth->Set(static_cast<int64_t>(commit_queue_.queue_depth()));
  return ticket->Wait();
}

// ---- ServerSession ---------------------------------------------------------

Result<Answer> ServerSession::Query(std::string_view query_text,
                                    const EvalOptions& options) {
  IDL_ASSIGN_OR_RETURN(struct Query query, ParseQuery(query_text));
  if (server_->IsUpdateRequest(query)) {
    return InvalidArgument(
        "update request on a reader session; use ServerSession::Update");
  }
  auto t0 = std::chrono::steady_clock::now();
  // Always governed: the cancel handle must be able to abort a reader
  // mid-evaluation even when no budget is set.
  ResourceGovernor governor(GovernorLimitsFrom(options), cancel_);
  Result<Answer> answer =
      EvaluateQuery(epoch_->universe, query, options, &stats_, &governor);
  Metrics().query_ms->Observe(MsSince(t0));
  return answer;
}

Result<CommitResult> ServerSession::Update(std::string_view request_text,
                                           const EvalOptions& options) {
  Result<CommitResult> committed = server_->Commit(request_text, options);
  if (committed.ok()) epoch_ = committed->epoch;
  return committed;
}

Status ServerSession::Refresh() {
  IDL_ASSIGN_OR_RETURN(epoch_, server_->PublishedEpoch());
  return Status::Ok();
}

}  // namespace idl
