#include "server/server.h"

#include <unistd.h>

#include <algorithm>
#include <condition_variable>
#include <utility>

#include "common/metrics.h"
#include "common/str_util.h"
#include "durability/snapshot.h"
#include "object/value_io.h"
#include "relational/columnar.h"
#include "syntax/parser.h"

namespace idl {

namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

struct ServerMetrics {
  Counter* commits;
  Counter* commit_failures;
  Counter* admission_rejects;
  Counter* epochs_published;
  Gauge* queue_depth;
  Gauge* epoch_id;
  Histogram* query_ms;
  Histogram* commit_ms;
  Histogram* commit_queue_ms;
  Histogram* epoch_age_ms;
};

// One static lookup; the registry never invalidates instrument pointers.
const ServerMetrics& Metrics() {
  static const ServerMetrics m = {
      MetricsRegistry::Global().counter("server.commits"),
      MetricsRegistry::Global().counter("server.commit_failures"),
      MetricsRegistry::Global().counter("server.admission_rejects"),
      MetricsRegistry::Global().counter("server.epochs_published"),
      MetricsRegistry::Global().gauge("server.queue_depth"),
      MetricsRegistry::Global().gauge("server.epoch_id"),
      MetricsRegistry::Global().histogram("server.query_ms"),
      MetricsRegistry::Global().histogram("server.commit_ms"),
      MetricsRegistry::Global().histogram("server.commit_queue_ms"),
      MetricsRegistry::Global().histogram("server.epoch_age_ms"),
  };
  return m;
}

struct RecoveryMetrics {
  Counter* replayed_records;
  Counter* torn_tail_truncations;
  Histogram* wall_ms;
};

// Lazy like the WAL's: only durable servers register recovery.* at all.
const RecoveryMetrics& RecMetrics() {
  static const RecoveryMetrics m = {
      MetricsRegistry::Global().counter("wal.replayed_records"),
      MetricsRegistry::Global().counter("recovery.torn_tail_truncations"),
      MetricsRegistry::Global().histogram("recovery.wall_ms"),
  };
  return m;
}

std::string WalPath(const DurabilityOptions& d) {
  return StrCat(d.dir, "/wal.log");
}

WalOptions WalOptionsFrom(const DurabilityOptions& d) {
  WalOptions o;
  o.fsync = d.fsync;
  o.crash_hook = d.crash_hook;
  return o;
}

bool FileExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

}  // namespace

// The rendezvous between a Commit() caller and the queue thread. Shared
// (not stack-owned by the caller) so a Shutdown(drain=false) that destroys
// a queued task cannot leave the worker touching a dead ticket.
struct Server::CommitTicket {
  std::string request_text;
  EvalOptions options;
  std::chrono::steady_clock::time_point submitted_at;

  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Result<CommitResult> result = Result<CommitResult>(CommitResult{});

  void Finish(Result<CommitResult> r) {
    {
      std::lock_guard<std::mutex> lock(mu);
      result = std::move(r);
      done = true;
    }
    cv.notify_all();
  }
  Result<CommitResult> Wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done; });
    return std::move(result);
  }
};

Server::Server(const ServerOptions& options)
    : options_(options),
      commit_queue_(/*num_threads=*/1, options.max_pending_commits) {
  session_.set_materialize_options(options_.materialize);
}

Server::~Server() { Shutdown(); }

void Server::Shutdown() { commit_queue_.Shutdown(/*drain=*/true); }

Result<std::unique_ptr<Server>> Server::Create(const ServerOptions& options) {
  const DurabilityOptions& d = options.durability;
  if (d.dir.empty()) {
    return InvalidArgument("DurabilityOptions.dir is empty");
  }
  IDL_ASSIGN_OR_RETURN(LatestSnapshot latest, FindLatestSnapshot(d.dir));
  if (FileExists(WalPath(d)) || !latest.path.empty()) {
    return AlreadyExists(
        StrCat("durable state already present in ", d.dir, "; use Recover"));
  }
  auto server = std::make_unique<Server>(options);
  IDL_ASSIGN_OR_RETURN(server->wal_,
                       Wal::Create(WalPath(d), /*next_lsn=*/1,
                                   WalOptionsFrom(d)));
  return server;
}

Result<std::unique_ptr<Server>> Server::Recover(const ServerOptions& options,
                                                RecoveryReport* report) {
  auto t0 = std::chrono::steady_clock::now();
  const DurabilityOptions& d = options.durability;
  if (d.dir.empty()) {
    return InvalidArgument("DurabilityOptions.dir is empty");
  }
  IDL_ASSIGN_OR_RETURN(LatestSnapshot latest, FindLatestSnapshot(d.dir));
  const bool have_wal = FileExists(WalPath(d));
  if (latest.path.empty() && !have_wal) {
    return NotFound(StrCat("no durable state in ", d.dir));
  }

  SnapshotData snap;  // empty-state defaults when no snapshot exists
  if (!latest.path.empty()) {
    IDL_ASSIGN_OR_RETURN(snap, ReadSnapshot(latest.path));
  }
  WalReadResult tail;
  if (have_wal) {
    // Repairing the torn tail here is what lets OpenForAppend below extend
    // the same file; the dropped record was never acknowledged.
    IDL_ASSIGN_OR_RETURN(tail, ReadWal(WalPath(d), /*repair_torn_tail=*/true));
  }

  RecoveryReport rep;
  rep.recovered = true;
  rep.snapshot_lsn = snap.last_lsn;
  rep.torn_tail_truncations = tail.torn_tail_truncations;

  auto server = std::make_unique<Server>(options);
  std::lock_guard<std::mutex> lock(server->session_mu_);

  // Replay budget: recover_deadline_ms bounds snapshot load + every
  // replayed commit. Each commit runs governed under the remaining budget,
  // so a slow record aborts at a governor checkpoint instead of
  // overshooting the deadline.
  auto remaining_ms = [&]() -> Result<int> {
    if (d.recover_deadline_ms <= 0) return 0;  // 0 = ungoverned
    double remaining = d.recover_deadline_ms - MsSince(t0);
    if (remaining < 1.0) {
      return DeadlineExceeded(
          StrCat("recovery deadline (", d.recover_deadline_ms,
                 " ms) expired after ", rep.replayed_records,
                 " replayed record(s)"));
    }
    return static_cast<int>(remaining);
  };

  // 1. Rebuild the snapshot's state (base databases verbatim, views
  //    rematerialized from the rule texts — derived state is never stored).
  for (const auto& [name, literal] : snap.databases) {
    IDL_ASSIGN_OR_RETURN(Value db, ParseValue(literal));
    IDL_RETURN_IF_ERROR(
        server->session_.RegisterDatabase(name, std::move(db))
            .WithContext(StrCat("snapshot database '", name, "'")));
  }
  for (const std::string& rule : snap.rules) {
    IDL_RETURN_IF_ERROR(
        server->session_.DefineRule(rule).WithContext("snapshot rule"));
  }
  for (const std::string& program : snap.programs) {
    IDL_RETURN_IF_ERROR(
        server->session_.DefineProgram(program).WithContext(
            "snapshot program"));
  }
  server->next_epoch_id_ = snap.next_epoch_id;

  // 2. Replay the WAL tail through the ordinary commit path. Records the
  //    snapshot already covers (a crash between the checkpoint rename and
  //    the log reset leaves them behind) are skipped by LSN. Replay is
  //    deterministic: a logged record is a change that *applied* before it
  //    was logged, so re-applying it to the same prefix state succeeds.
  for (const WalRecord& record : tail.records) {
    if (record.lsn <= snap.last_lsn) continue;
    IDL_ASSIGN_OR_RETURN(int budget, remaining_ms());
    Status applied = [&]() -> Status {
      switch (record.type) {
        case WalRecordType::kCommit: {
          EvalOptions opts;
          opts.deadline_ms = budget;
          return server->session_.Update(record.body, opts).status();
        }
        case WalRecordType::kDefineRule:
          return server->session_.DefineRule(record.body);
        case WalRecordType::kRegisterDatabase: {
          IDL_ASSIGN_OR_RETURN(Value db, ParseValue(record.body));
          return server->session_.RegisterDatabase(record.name,
                                                   std::move(db));
        }
        case WalRecordType::kDefineProgram:
          return server->session_.DefineProgram(record.body);
      }
      return Internal("unreachable: ReadWal validated the record type");
    }();
    IDL_RETURN_IF_ERROR(applied.WithContext(
        StrCat("replaying wal.log record lsn=", record.lsn, " (",
               WalRecordTypeName(record.type), ")")));
    // Resume epoch numbering past every epoch the dead server acknowledged.
    server->next_epoch_id_ =
        std::max(server->next_epoch_id_, record.epoch + 1);
    ++rep.replayed_records;
  }

  // 3. Reopen the log for appending and republish. A fresh post-reset log
  //    reports next_lsn 1; the snapshot knows better.
  uint64_t next_lsn = std::max(tail.next_lsn, snap.last_lsn + 1);
  if (have_wal) {
    IDL_ASSIGN_OR_RETURN(
        server->wal_,
        Wal::OpenForAppend(WalPath(d), next_lsn, WalOptionsFrom(d)));
  } else {
    IDL_ASSIGN_OR_RETURN(
        server->wal_, Wal::Create(WalPath(d), next_lsn, WalOptionsFrom(d)));
  }
  IDL_RETURN_IF_ERROR(server->PublishLocked());
  rep.epoch = server->published_->id;
  rep.wall_ms = MsSince(t0);

  RecMetrics().replayed_records->Increment(rep.replayed_records);
  RecMetrics().torn_tail_truncations->Increment(rep.torn_tail_truncations);
  RecMetrics().wall_ms->Observe(rep.wall_ms);
  if (report != nullptr) *report = rep;
  return server;
}

Result<std::unique_ptr<Server>> Server::Open(const ServerOptions& options,
                                             RecoveryReport* report) {
  const DurabilityOptions& d = options.durability;
  if (d.dir.empty()) {
    return InvalidArgument("DurabilityOptions.dir is empty");
  }
  IDL_ASSIGN_OR_RETURN(LatestSnapshot latest, FindLatestSnapshot(d.dir));
  if (!FileExists(WalPath(d)) && latest.path.empty()) {
    if (report != nullptr) *report = RecoveryReport{};
    return Create(options);
  }
  return Recover(options, report);
}

Status Server::durability_error() const {
  std::lock_guard<std::mutex> lock(session_mu_);
  return durability_poison_;
}

Status Server::PoisonDurability(Status status) {
  durability_poison_ = status;
  return status;
}

Status Server::AppendDurable(WalRecordType type, std::string_view name,
                             std::string_view body) {
  if (wal_ == nullptr) return Status::Ok();
  if (!durability_poison_.ok()) return durability_poison_;
  // The record carries the epoch id the PublishLocked() right after this
  // append will assign — 0 when nothing republishes (program definitions,
  // setup before the first epoch), matching WalRecord::epoch's contract.
  uint64_t epoch = 0;
  if (type != WalRecordType::kDefineProgram && published_ != nullptr) {
    epoch = next_epoch_id_;
  }
  Status appended = wal_->Append(type, name, body, epoch);
  if (!appended.ok()) return PoisonDurability(appended);
  ++records_since_checkpoint_;
  return Status::Ok();
}

Status Server::MaybeCheckpointLocked() {
  if (wal_ == nullptr || options_.durability.checkpoint_every == 0 ||
      records_since_checkpoint_ < options_.durability.checkpoint_every) {
    return Status::Ok();
  }
  IDL_RETURN_IF_ERROR(CheckpointLocked());
  records_since_checkpoint_ = 0;
  return Status::Ok();
}

Status Server::CheckpointLocked() {
  SnapshotData data;
  data.last_lsn = wal_->last_lsn();
  data.next_epoch_id = next_epoch_id_;
  for (const std::string& name : session_.database_names()) {
    const Value* db = session_.base_universe().FindField(name);
    if (db == nullptr) continue;
    data.databases.emplace_back(name, ToString(*db));
  }
  data.rules = session_.rule_texts();
  data.programs = session_.program_texts();
  Status written = WriteSnapshot(options_.durability.dir, data,
                                 WalOptionsFrom(options_.durability));
  if (!written.ok()) return PoisonDurability(written);
  Status reset = wal_->Reset();
  if (!reset.ok()) return PoisonDurability(reset);
  if (options_.durability.crash_hook &&
      options_.durability.crash_hook(CrashPoint::kAfterWalReset)) {
    return PoisonDurability(Unavailable(StrCat(
        "crash injected at ", CrashPointName(CrashPoint::kAfterWalReset))));
  }
  return Status::Ok();
}

Status Server::RegisterDatabase(std::string name, Value db_object) {
  std::lock_guard<std::mutex> lock(session_mu_);
  if (!durability_poison_.ok()) return durability_poison_;
  // Serialize before the move: the record's body is the value_io literal
  // recovery parses back (the same round-trip ExportDatabase rests on).
  std::string literal;
  if (wal_ != nullptr) literal = ToString(db_object);
  IDL_RETURN_IF_ERROR(session_.RegisterDatabase(name, std::move(db_object)));
  IDL_RETURN_IF_ERROR(
      AppendDurable(WalRecordType::kRegisterDatabase, name, literal));
  if (published_ != nullptr) IDL_RETURN_IF_ERROR(PublishLocked());
  return MaybeCheckpointLocked();
}

Status Server::DefineRule(std::string_view rule_text) {
  std::lock_guard<std::mutex> lock(session_mu_);
  if (!durability_poison_.ok()) return durability_poison_;
  IDL_RETURN_IF_ERROR(session_.DefineRule(rule_text));
  IDL_RETURN_IF_ERROR(AppendDurable(WalRecordType::kDefineRule, "", rule_text));
  if (published_ != nullptr) IDL_RETURN_IF_ERROR(PublishLocked());
  return MaybeCheckpointLocked();
}

Status Server::DefineRules(const std::vector<std::string>& rule_texts) {
  std::lock_guard<std::mutex> lock(session_mu_);
  if (!durability_poison_.ok()) return durability_poison_;
  for (const auto& text : rule_texts) {
    IDL_RETURN_IF_ERROR(session_.DefineRule(text));
    IDL_RETURN_IF_ERROR(AppendDurable(WalRecordType::kDefineRule, "", text));
  }
  if (published_ != nullptr) IDL_RETURN_IF_ERROR(PublishLocked());
  return MaybeCheckpointLocked();
}

Status Server::DefineProgram(std::string_view clause_text) {
  std::lock_guard<std::mutex> lock(session_mu_);
  if (!durability_poison_.ok()) return durability_poison_;
  IDL_RETURN_IF_ERROR(session_.DefineProgram(clause_text));
  IDL_RETURN_IF_ERROR(
      AppendDurable(WalRecordType::kDefineProgram, "", clause_text));
  // Programs don't change the universe: no republish needed (readers only
  // consult the registry through the server, never through an epoch).
  return MaybeCheckpointLocked();
}

bool Server::IsUpdateRequest(const Query& query) const {
  std::lock_guard<std::mutex> lock(session_mu_);
  return session_.IsUpdateRequest(query);
}

Status Server::PublishLocked() {
  IDL_ASSIGN_OR_RETURN(Value universe, session_.SnapshotUniverse());
  auto epoch = std::make_shared<Epoch>();
  epoch->id = next_epoch_id_++;
  epoch->universe = std::move(universe);
  epoch->derived_paths = session_.derived_paths();
  if (options_.materialize.substrate == EvalSubstrate::kColumnar) {
    // The outgoing epoch stays alive across Build (readers hold it too), so
    // unchanged relations share its immutable pages instead of re-encoding.
    EpochPtr previous;
    {
      std::lock_guard<std::mutex> lock(epoch_mu_);
      previous = published_;
    }
    epoch->columnar = ColumnarStore::Build(
        epoch->universe, previous != nullptr ? previous->columnar.get()
                                             : nullptr);
  }
  epoch->published_at = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(epoch_mu_);
    if (published_ != nullptr) {
      Metrics().epoch_age_ms->Observe(MsSince(published_->published_at));
    }
    published_ = std::move(epoch);
    Metrics().epoch_id->Set(static_cast<int64_t>(published_->id));
  }
  Metrics().epochs_published->Increment();
  return Status::Ok();
}

Status Server::EnsurePublished() {
  std::lock_guard<std::mutex> lock(session_mu_);
  if (published_ != nullptr) return Status::Ok();
  return PublishLocked();
}

EpochPtr Server::CurrentEpoch() const {
  std::lock_guard<std::mutex> lock(epoch_mu_);
  return published_;
}

Result<EpochPtr> Server::PublishedEpoch() {
  IDL_RETURN_IF_ERROR(EnsurePublished());
  return CurrentEpoch();
}

Result<ServerSession> Server::Connect() {
  IDL_ASSIGN_OR_RETURN(EpochPtr epoch, PublishedEpoch());
  return ServerSession(this, std::move(epoch));
}

void Server::RunCommit(const std::shared_ptr<CommitTicket>& ticket) {
  Metrics().queue_depth->Set(static_cast<int64_t>(commit_queue_.queue_depth()));
  double queued_ms = MsSince(ticket->submitted_at);
  Metrics().commit_queue_ms->Observe(queued_ms);
  EvalOptions options = ticket->options;
  if (options.deadline_ms > 0) {
    // The deadline covers the caller's wait, queue time included: reject
    // without applying when it expired in the queue, otherwise hand the
    // remaining budget to the governed Update.
    double remaining = options.deadline_ms - queued_ms;
    if (remaining < 1.0) {
      Metrics().commit_failures->Increment();
      ticket->Finish(
          DeadlineExceeded("commit deadline expired while queued"));
      return;
    }
    options.deadline_ms = static_cast<int>(remaining);
  }
  auto t0 = std::chrono::steady_clock::now();
  Result<CommitResult> outcome = [&]() -> Result<CommitResult> {
    std::lock_guard<std::mutex> lock(session_mu_);
    if (!durability_poison_.ok()) return durability_poison_;
    if (published_ == nullptr) IDL_RETURN_IF_ERROR(PublishLocked());
    IDL_ASSIGN_OR_RETURN(UpdateRequestResult applied,
                         session_.Update(ticket->request_text, options));
    // Apply, then log, then publish: a failed apply logs nothing (replay
    // always succeeds), and a logged record is a change the server was
    // acknowledging — recovery must replay it even if the publish below
    // never ran.
    IDL_RETURN_IF_ERROR(
        AppendDurable(WalRecordType::kCommit, "", ticket->request_text));
    IDL_RETURN_IF_ERROR(PublishLocked());
    CommitResult result;
    result.epoch = published_;
    result.bindings = applied.bindings;
    result.counts = applied.counts;
    // A due checkpoint rides on this commit; its failure is this commit's
    // error (the commit itself is already durable in the log — the harness
    // classifies checkpoint crash points as record-durable).
    IDL_RETURN_IF_ERROR(MaybeCheckpointLocked());
    return result;
  }();
  Metrics().commit_ms->Observe(MsSince(t0));
  if (outcome.ok()) {
    Metrics().commits->Increment();
  } else {
    Metrics().commit_failures->Increment();
  }
  ticket->Finish(std::move(outcome));
}

Result<CommitResult> Server::Commit(std::string_view request_text,
                                    const EvalOptions& options) {
  auto ticket = std::make_shared<CommitTicket>();
  ticket->request_text = std::string(request_text);
  ticket->options = options;
  ticket->submitted_at = std::chrono::steady_clock::now();
  Status admitted = commit_queue_.Submit([this, ticket] { RunCommit(ticket); });
  if (!admitted.ok()) {
    if (admitted.code() == StatusCode::kResourceExhausted) {
      Metrics().admission_rejects->Increment();
      return ResourceExhausted(
          StrCat("server overloaded: ", options_.max_pending_commits,
                 " commits already pending"));
    }
    return admitted;  // kFailedPrecondition: shut down
  }
  Metrics().queue_depth->Set(static_cast<int64_t>(commit_queue_.queue_depth()));
  return ticket->Wait();
}

// ---- ServerSession ---------------------------------------------------------

Result<Answer> ServerSession::Query(std::string_view query_text,
                                    const EvalOptions& options) {
  IDL_ASSIGN_OR_RETURN(struct Query query, ParseQuery(query_text));
  if (server_->IsUpdateRequest(query)) {
    return InvalidArgument(
        "update request on a reader session; use ServerSession::Update");
  }
  auto t0 = std::chrono::steady_clock::now();
  // Always governed: the cancel handle must be able to abort a reader
  // mid-evaluation even when no budget is set.
  ResourceGovernor governor(GovernorLimitsFrom(options), cancel_);
  // Readers evaluate against the epoch's published pages: no per-query
  // encode, and concurrent sessions on the same epoch share columns.
  EvalOptions epoch_options = options;
  epoch_options.columnar_store = epoch_->columnar.get();
  Result<Answer> answer = EvaluateQuery(epoch_->universe, query, epoch_options,
                                        &stats_, &governor);
  Metrics().query_ms->Observe(MsSince(t0));
  return answer;
}

Result<CommitResult> ServerSession::Update(std::string_view request_text,
                                           const EvalOptions& options) {
  Result<CommitResult> committed = server_->Commit(request_text, options);
  if (committed.ok()) epoch_ = committed->epoch;
  return committed;
}

Status ServerSession::Refresh() {
  IDL_ASSIGN_OR_RETURN(epoch_, server_->PublishedEpoch());
  return Status::Ok();
}

}  // namespace idl
