#include "server/script_driver.h"

#include <memory>
#include <optional>
#include <vector>

#include "common/str_util.h"
#include "common/thread_pool.h"
#include "syntax/parser.h"
#include "syntax/printer.h"

namespace idl {

namespace {

// "% name: 123" -> 123; `fallback` when the directive is absent.
size_t DirectiveNumber(std::string_view script, std::string_view directive,
                       size_t fallback) {
  size_t at = script.find(directive);
  if (at == std::string_view::npos) return fallback;
  size_t pos = at + directive.size();
  while (pos < script.size() && script[pos] == ' ') ++pos;
  size_t n = 0;
  bool any = false;
  while (pos < script.size() && script[pos] >= '0' && script[pos] <= '9') {
    n = n * 10 + static_cast<size_t>(script[pos] - '0');
    ++pos;
    any = true;
  }
  return any ? n : fallback;
}

// "% name: word" -> "word" (to end of line); "" when absent.
std::string DirectiveWord(std::string_view script, std::string_view directive) {
  size_t at = script.find(directive);
  if (at == std::string_view::npos) return "";
  size_t pos = at + directive.size();
  while (pos < script.size() && script[pos] == ' ') ++pos;
  size_t end = pos;
  while (end < script.size() && script[end] != '\n' && script[end] != ' ' &&
         script[end] != '\r') {
    ++end;
  }
  return std::string(script.substr(pos, end - pos));
}

}  // namespace

size_t ServerSessionsDirective(std::string_view script) {
  return DirectiveNumber(script, "% server-sessions:", 0);
}

Result<ServerScriptResult> RunServerScript(Server* server,
                                           std::string_view script,
                                           size_t num_sessions,
                                           const EvalOptions& request_options) {
  if (num_sessions == 0) {
    return InvalidArgument("server script needs at least one session");
  }
  IDL_ASSIGN_OR_RETURN(std::vector<Statement> statements,
                       ParseStatements(script));
  std::vector<ServerSession> sessions;
  sessions.reserve(num_sessions);
  for (size_t i = 0; i < num_sessions; ++i) {
    IDL_ASSIGN_OR_RETURN(ServerSession session, server->Connect());
    sessions.push_back(std::move(session));
  }
  ThreadPool pool(num_sessions > 1 ? num_sessions - 1 : 0);

  ServerScriptResult out;
  std::string& t = out.transcript;
  t += StrCat("server sessions=", num_sessions, "\n");

  auto refresh_all = [&]() -> Status {
    for (auto& session : sessions) IDL_RETURN_IF_ERROR(session.Refresh());
    return Status::Ok();
  };

  for (const auto& statement : statements) {
    switch (statement.kind) {
      case Statement::Kind::kRule: {
        std::string text = ToString(statement.rule);
        Status st = server->DefineRule(text);
        t += StrCat("rule    ", text, "  [",
                    st.ok() ? "ok" : st.ToString(), "]\n");
        if (!st.ok()) {
          out.failed = true;
          return out;
        }
        IDL_RETURN_IF_ERROR(refresh_all());
        break;
      }
      case Statement::Kind::kProgramClause: {
        std::string text = ToString(statement.clause);
        Status st = server->DefineProgram(text);
        t += StrCat("program ", text, "  [",
                    st.ok() ? "ok" : st.ToString(), "]\n");
        if (!st.ok()) {
          out.failed = true;
          return out;
        }
        break;
      }
      case Statement::Kind::kQuery: {
        std::string text = ToString(statement.query);
        t += StrCat(text, "\n");
        if (server->IsUpdateRequest(statement.query)) {
          // Writes serialize through the commit queue; every session then
          // re-pins to the epoch this commit published.
          Result<CommitResult> r =
              sessions[0].Update(text, request_options);
          if (!r.ok()) {
            t += StrCat("  error: ", r.status().ToString(), "\n");
            out.failed = true;
            return out;
          }
          IDL_RETURN_IF_ERROR(refresh_all());
          t += StrCat("  ok: ", r->counts.Total(), " change(s), ",
                      r->bindings, " binding(s) [epoch ", r->epoch->id,
                      "]\n\n");
          ++out.commits;
        } else {
          // All sessions evaluate the same query concurrently against
          // their shared pinned epoch; the answers must be byte-identical.
          std::vector<Result<Answer>> answers(num_sessions,
                                              Result<Answer>(Answer{}));
          pool.ParallelFor(num_sessions, [&](size_t task, size_t) {
            answers[task] = sessions[task].Query(text, request_options);
          });
          if (!answers[0].ok()) {
            t += StrCat("  error: ", answers[0].status().ToString(), "\n");
            out.failed = true;
            return out;
          }
          std::string table = answers[0]->ToTable();
          for (size_t i = 1; i < num_sessions; ++i) {
            if (!answers[i].ok()) {
              return Internal(StrCat(
                  "snapshot isolation violated: session ", i, " failed ('",
                  answers[i].status().ToString(), "') where session 0 ",
                  "succeeded on '", text, "'"));
            }
            if (answers[i]->ToTable() != table) {
              return Internal(StrCat(
                  "snapshot isolation violated: session ", i,
                  " disagrees with session 0 on '", text, "' at epoch ",
                  sessions[i].epoch_id()));
            }
          }
          t += StrCat(table, "\n");
          ++out.queries;
        }
        break;
      }
    }
  }
  out.final_epoch = sessions[0].epoch_id();
  t += StrCat("server sessions=", num_sessions, " epoch=", out.final_epoch,
              " commits=", out.commits, " queries=", out.queries, "\n");
  return out;
}

Result<DurableScriptSpec> ParseDurableScriptSpec(std::string_view script) {
  DurableScriptSpec spec;
  spec.durable = script.find("% wal:") != std::string_view::npos;
  spec.checkpoint_every =
      DirectiveNumber(script, "% checkpoint-every:", spec.checkpoint_every);
  spec.crash_after = DirectiveNumber(script, "% crash-after:", 0);
  std::string at = DirectiveWord(script, "% crash-at:");
  if (!at.empty() && !ParseCrashPointName(at, &spec.crash_at)) {
    return InvalidArgument(StrCat("unknown crash point '", at, "'"));
  }
  return spec;
}

Result<DurableScriptResult> RunDurableScript(
    const std::string& wal_dir, std::string_view script,
    const DurableScriptSpec& spec,
    const std::vector<std::pair<std::string, Value>>& seed_databases,
    const EvalOptions& request_options) {
  IDL_ASSIGN_OR_RETURN(std::vector<Statement> statements,
                       ParseStatements(script));

  DurableScriptResult out;
  std::string& t = out.transcript;

  ServerOptions options;
  options.materialize = spec.materialize;
  options.durability.dir = wal_dir;
  options.durability.checkpoint_every = spec.checkpoint_every;
  // Counted-firing injection: the hook trips the Nth time the armed point
  // is reached, once (the recovered server gets a hook-free copy).
  auto fired = std::make_shared<size_t>(0);
  if (spec.crash_after > 0) {
    CrashPoint target = spec.crash_at;
    size_t after = spec.crash_after;
    options.durability.crash_hook = [fired, target, after](CrashPoint p) {
      return p == target && ++*fired == after;
    };
  }

  auto describe = [](const RecoveryReport& report) {
    return StrCat("wal: recovered epoch=", report.epoch,
                  " replayed=", report.replayed_records,
                  " torn=", report.torn_tail_truncations,
                  " snapshot-lsn=", report.snapshot_lsn, "\n");
  };

  RecoveryReport report;
  IDL_ASSIGN_OR_RETURN(std::unique_ptr<Server> server,
                       Server::Open(options, &report));
  if (report.recovered) {
    t += describe(report);
  } else {
    // Fresh directory: register (and thereby log) the seed databases, so a
    // later recovery rebuilds them from the log rather than from us.
    for (const auto& [name, db] : seed_databases) {
      IDL_RETURN_IF_ERROR(server->RegisterDatabase(name, db).WithContext(
          StrCat("seeding database '", name, "'")));
    }
    t += StrCat("wal: fresh log, seeded ", seed_databases.size(),
                " database(s)\n");
  }
  std::optional<ServerSession> session;
  {
    IDL_ASSIGN_OR_RETURN(ServerSession s, server->Connect());
    session.emplace(std::move(s));
  }

  // The simulated kill: discard the live server (its memory dies with it)
  // and rebuild one from nothing but the directory's bytes.
  auto recover = [&]() -> Status {
    ++out.crashes;
    t += "wal: killed, recovering from disk\n";
    session.reset();
    server.reset();
    ServerOptions recover_options = options;
    recover_options.durability.crash_hook = nullptr;
    RecoveryReport rec;
    IDL_ASSIGN_OR_RETURN(server, Server::Recover(recover_options, &rec));
    t += describe(rec);
    IDL_ASSIGN_OR_RETURN(ServerSession s, server->Connect());
    session.emplace(std::move(s));
    return Status::Ok();
  };
  auto injected = [&](const Status& st) {
    return spec.crash_after > 0 && out.crashes == 0 &&
           st.ToString().find("crash injected") != std::string::npos;
  };

  for (const auto& statement : statements) {
    switch (statement.kind) {
      case Statement::Kind::kRule: {
        std::string text = ToString(statement.rule);
        Status st = server->DefineRule(text);
        t += StrCat("rule    ", text, "  [",
                    st.ok() ? "ok" : st.ToString(), "]\n");
        if (!st.ok()) {
          if (injected(st)) {
            IDL_RETURN_IF_ERROR(recover());
            break;
          }
          out.failed = true;
          return out;
        }
        IDL_RETURN_IF_ERROR(session->Refresh());
        break;
      }
      case Statement::Kind::kProgramClause: {
        std::string text = ToString(statement.clause);
        Status st = server->DefineProgram(text);
        t += StrCat("program ", text, "  [",
                    st.ok() ? "ok" : st.ToString(), "]\n");
        if (!st.ok()) {
          if (injected(st)) {
            IDL_RETURN_IF_ERROR(recover());
            break;
          }
          out.failed = true;
          return out;
        }
        break;
      }
      case Statement::Kind::kQuery: {
        std::string text = ToString(statement.query);
        t += StrCat(text, "\n");
        if (server->IsUpdateRequest(statement.query)) {
          Result<CommitResult> r = session->Update(text, request_options);
          if (!r.ok()) {
            t += StrCat("  error: ", r.status().ToString(), "\n");
            if (injected(r.status())) {
              IDL_RETURN_IF_ERROR(recover());
              break;
            }
            out.failed = true;
            return out;
          }
          t += StrCat("  ok: ", r->counts.Total(), " change(s), ",
                      r->bindings, " binding(s) [epoch ", r->epoch->id,
                      "]\n\n");
          ++out.commits;
        } else {
          Result<Answer> answer = session->Query(text, request_options);
          if (!answer.ok()) {
            t += StrCat("  error: ", answer.status().ToString(), "\n");
            out.failed = true;
            return out;
          }
          t += StrCat(answer->ToTable(), "\n");
          ++out.queries;
        }
        break;
      }
    }
  }
  out.final_epoch = session->epoch_id();
  t += StrCat("wal: epoch=", out.final_epoch, " commits=", out.commits,
              " queries=", out.queries, " crashes=", out.crashes, "\n");
  return out;
}

}  // namespace idl
