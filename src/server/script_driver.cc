#include "server/script_driver.h"

#include <vector>

#include "common/str_util.h"
#include "common/thread_pool.h"
#include "syntax/parser.h"
#include "syntax/printer.h"

namespace idl {

size_t ServerSessionsDirective(std::string_view script) {
  const std::string_view directive = "% server-sessions:";
  size_t at = script.find(directive);
  if (at == std::string_view::npos) return 0;
  size_t pos = at + directive.size();
  while (pos < script.size() && script[pos] == ' ') ++pos;
  size_t n = 0;
  while (pos < script.size() && script[pos] >= '0' && script[pos] <= '9') {
    n = n * 10 + static_cast<size_t>(script[pos] - '0');
    ++pos;
  }
  return n;
}

Result<ServerScriptResult> RunServerScript(Server* server,
                                           std::string_view script,
                                           size_t num_sessions,
                                           const EvalOptions& request_options) {
  if (num_sessions == 0) {
    return InvalidArgument("server script needs at least one session");
  }
  IDL_ASSIGN_OR_RETURN(std::vector<Statement> statements,
                       ParseStatements(script));
  std::vector<ServerSession> sessions;
  sessions.reserve(num_sessions);
  for (size_t i = 0; i < num_sessions; ++i) {
    IDL_ASSIGN_OR_RETURN(ServerSession session, server->Connect());
    sessions.push_back(std::move(session));
  }
  ThreadPool pool(num_sessions > 1 ? num_sessions - 1 : 0);

  ServerScriptResult out;
  std::string& t = out.transcript;
  t += StrCat("server sessions=", num_sessions, "\n");

  auto refresh_all = [&]() -> Status {
    for (auto& session : sessions) IDL_RETURN_IF_ERROR(session.Refresh());
    return Status::Ok();
  };

  for (const auto& statement : statements) {
    switch (statement.kind) {
      case Statement::Kind::kRule: {
        std::string text = ToString(statement.rule);
        Status st = server->DefineRule(text);
        t += StrCat("rule    ", text, "  [",
                    st.ok() ? "ok" : st.ToString(), "]\n");
        if (!st.ok()) {
          out.failed = true;
          return out;
        }
        IDL_RETURN_IF_ERROR(refresh_all());
        break;
      }
      case Statement::Kind::kProgramClause: {
        std::string text = ToString(statement.clause);
        Status st = server->DefineProgram(text);
        t += StrCat("program ", text, "  [",
                    st.ok() ? "ok" : st.ToString(), "]\n");
        if (!st.ok()) {
          out.failed = true;
          return out;
        }
        break;
      }
      case Statement::Kind::kQuery: {
        std::string text = ToString(statement.query);
        t += StrCat(text, "\n");
        if (server->IsUpdateRequest(statement.query)) {
          // Writes serialize through the commit queue; every session then
          // re-pins to the epoch this commit published.
          Result<CommitResult> r =
              sessions[0].Update(text, request_options);
          if (!r.ok()) {
            t += StrCat("  error: ", r.status().ToString(), "\n");
            out.failed = true;
            return out;
          }
          IDL_RETURN_IF_ERROR(refresh_all());
          t += StrCat("  ok: ", r->counts.Total(), " change(s), ",
                      r->bindings, " binding(s) [epoch ", r->epoch->id,
                      "]\n\n");
          ++out.commits;
        } else {
          // All sessions evaluate the same query concurrently against
          // their shared pinned epoch; the answers must be byte-identical.
          std::vector<Result<Answer>> answers(num_sessions,
                                              Result<Answer>(Answer{}));
          pool.ParallelFor(num_sessions, [&](size_t task, size_t) {
            answers[task] = sessions[task].Query(text, request_options);
          });
          if (!answers[0].ok()) {
            t += StrCat("  error: ", answers[0].status().ToString(), "\n");
            out.failed = true;
            return out;
          }
          std::string table = answers[0]->ToTable();
          for (size_t i = 1; i < num_sessions; ++i) {
            if (!answers[i].ok()) {
              return Internal(StrCat(
                  "snapshot isolation violated: session ", i, " failed ('",
                  answers[i].status().ToString(), "') where session 0 ",
                  "succeeded on '", text, "'"));
            }
            if (answers[i]->ToTable() != table) {
              return Internal(StrCat(
                  "snapshot isolation violated: session ", i,
                  " disagrees with session 0 on '", text, "' at epoch ",
                  sessions[i].epoch_id()));
            }
          }
          t += StrCat(table, "\n");
          ++out.queries;
        }
        break;
      }
    }
  }
  out.final_epoch = sessions[0].epoch_id();
  t += StrCat("server sessions=", num_sessions, " epoch=", out.final_epoch,
              " commits=", out.commits, " queries=", out.queries, "\n");
  return out;
}

}  // namespace idl
