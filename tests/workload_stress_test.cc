// Scaled differential sweep, run under the `stress` ctest label (the TSan
// CI leg re-runs it with --repeat until-fail): bigger universes, longer
// evolution traces, full 24-point mode lattice. Shrinking stays ON here —
// a failure in CI leaves a minimized repro script in
// $IDL_WORKLOAD_ARTIFACT_DIR (the workflow uploads it as an artifact).

#include <iostream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "workload/discrepancy_gen.h"
#include "workload/sweep.h"

namespace idl {
namespace {

std::string Describe(const SweepReport& report) {
  std::string out = FormatSweepReport(report);
  for (const auto& m : report.mismatches) out += "  " + m + "\n";
  for (const auto& p : report.repro_paths) out += "  repro: " + p + "\n";
  return out;
}

TEST(WorkloadStress, ScaledSweepAcrossFullLattice) {
  std::vector<DiscrepancyConfig> configs;
  for (size_t i = 0; i < 16; ++i) {
    DiscrepancyConfig config;
    config.seed = 9000 + i;
    config.num_tenants = 4 + i % 4;   // up to 7 tenants
    config.num_entities = 4 + i % 3;  // up to 6 entities
    config.num_keys = 3 + i % 3;      // up to 5 keys
    config.fact_density = 0.4 + 0.15 * static_cast<double>(i % 4);
    config.mangle_rate = 0.4;
    configs.push_back(config);
  }
  SweepOptions options;
  options.trace_steps = 12;
  options.trace_salt = 99;
  SweepReport report = RunDifferentialSweep(configs, options);
  std::cout << FormatSweepReport(report);
  EXPECT_TRUE(report.ok()) << Describe(report);
  EXPECT_EQ(report.universes, 16u);
  EXPECT_EQ(report.modes, 40u);  // 24 base + 16 cost-planned semi-naive
  EXPECT_EQ(report.steps, 16u * 12u);
  EXPECT_EQ(report.fallbacks, 0u) << "incremental maintenance regressed";
}

}  // namespace
}  // namespace idl
