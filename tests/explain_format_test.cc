// Golden-text locks on the rendered Explain() surfaces: the governor usage
// line (common/governor.h), the incremental-maintenance line
// (eval/explain.h), the federation per-site table (eval/explain.h), the
// EXPLAIN ANALYZE table (FormatAnalyze), the trace renderings
// (common/trace.h) and the metrics listing (common/metrics.h). These
// strings are part of the observable interface — idl_shell prints them and
// docs/GOVERNOR.md / docs/INCREMENTAL.md / docs/OBSERVABILITY.md quote them
// — so a format change must be a deliberate edit here, not an accident.

#include <gtest/gtest.h>

#include <cctype>
#include <set>
#include <string>
#include <vector>

#include "common/governor.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "eval/explain.h"
#include "server/trace_sweep.h"
#include "workload/sweep.h"

namespace idl {
namespace {

TEST(ExplainFormatTest, GovernorLineUnbounded) {
  // Fresh governor, nothing consumed, no limits: every bound renders "-".
  GovernorUsage usage;
  GovernorLimits limits;
  EXPECT_EQ(FormatGovernorUsage(usage, limits),
            "governor: passes=0/- derivations=0/- cells=0/- checkpoints=0 "
            "remaining_ms=- status=completed\n");
}

TEST(ExplainFormatTest, GovernorLineBoundedAndAborted) {
  GovernorUsage usage;
  usage.checkpoints = 42;
  usage.passes = 3;
  usage.derivations = 120;
  usage.peak_cells = 900;
  usage.remaining_ms = 7;
  usage.abort_reason =
      "resource exhausted: fixpoint did not converge within max_passes=3";
  GovernorLimits limits;
  limits.deadline_ms = 50;  // reported via remaining_ms, not as a bound
  limits.max_passes = 3;
  limits.max_derivations = 1000;
  limits.max_universe_cells = 2048;
  EXPECT_EQ(
      FormatGovernorUsage(usage, limits),
      "governor: passes=3/3 derivations=120/1000 cells=900/2048 "
      "checkpoints=42 remaining_ms=7 status=resource exhausted: fixpoint "
      "did not converge within max_passes=3\n");
}

TEST(ExplainFormatTest, GovernorLineMatchesLiveGovernor) {
  // The same renderer fed from a real governor: counters land in the
  // expected fields.
  GovernorLimits limits;
  limits.max_derivations = 10;
  ResourceGovernor g(limits);
  ASSERT_TRUE(g.ChargePass().ok());
  ASSERT_TRUE(g.ChargeDerivations(4).ok());
  EXPECT_EQ(FormatGovernorUsage(g.Usage(), g.limits()),
            "governor: passes=1/- derivations=4/10 cells=0/- checkpoints=2 "
            "remaining_ms=- status=completed\n");
}

TEST(ExplainFormatTest, MaintenanceLine) {
  MaintenanceStats stats;
  EXPECT_EQ(FormatMaintenanceStats(stats),
            "maintenance: deltas=0 rederived=0 strata_skipped=0 "
            "strata_rederived=0 fallbacks=0\n");
  stats.deltas_applied = 12;
  stats.rederived = 345;
  stats.strata_skipped = 6;
  stats.strata_rederived = 7;
  stats.fallbacks = 1;
  EXPECT_EQ(FormatMaintenanceStats(stats),
            "maintenance: deltas=12 rederived=345 strata_skipped=6 "
            "strata_rederived=7 fallbacks=1\n");
}

TEST(ExplainFormatTest, SiteStatsTable) {
  SiteStats alpha;
  alpha.site = "alpha";
  alpha.requests = 12;
  alpha.cache_hits = 2;
  alpha.cache_misses = 1;
  alpha.retries = 4;
  alpha.timeouts = 1;
  alpha.failures = 5;
  alpha.shipped_subgoals = 6;
  alpha.pulled_exports = 7;

  SiteStats b;
  b.site = "b";
  b.requests = 3;
  b.pulled_exports = 1;
  b.degraded = true;

  // Right-aligned columns, two-space gutters, a dash rule under the header,
  // and a totals row with an empty state cell.
  EXPECT_EQ(
      FormatSiteStats({alpha, b}),
      " site  reqs  hits  misses  retries  timeouts  failures  shipped  "
      "pulled     state\n"
      "-----  ----  ----  ------  -------  --------  --------  -------  "
      "------  --------\n"
      "alpha    12     2       1        4         1         5        6  "
      "     7        ok\n"
      "    b     3     0       0        0         0         0        0  "
      "     1  degraded\n"
      "total    15     2       1        4         1         5        6  "
      "     8          \n");
}

TEST(ExplainFormatTest, AnalyzeTable) {
  StratumStats s0;
  s0.stratum = 0;
  s0.passes = 1;
  s0.substitutions = 36;
  s0.wall_ms = 0.5;
  s0.cpu_ms = 0.45;
  RuleTimingStats r0;
  r0.rule = 0;
  r0.head = "dbI.p";
  r0.passes = 1;
  r0.substitutions = 36;
  r0.enumerate_ms = 0.25;
  r0.write_ms = 0.2;
  s0.rule_timings.push_back(r0);

  StratumStats s1;
  s1.stratum = 1;
  s1.passes = 3;
  s1.substitutions = 9;
  s1.wall_ms = 1.0;
  s1.cpu_ms = 1.0;
  RuleTimingStats r1;
  r1.rule = 1;
  r1.head = "*";
  r1.passes = 3;
  r1.substitutions = 9;
  r1.enumerate_ms = 0.75;
  r1.write_ms = 0.25;
  // A cost-planned rule: plan time is its own phase column, and the plan
  // itself (order, specializations, est-vs-actual cardinality, fallbacks)
  // renders as a "plan:" line between the table and the trailer.
  r1.plan_ms = 0.05;
  r1.planned = true;
  r1.plan_est_rows = 16;
  r1.plan_actual_rows = 9;
  r1.plan_summary = "order=[1 0] spec=[0:S*4]";
  s1.rule_timings.push_back(r1);

  // Per-stratum rows carry wall/cpu; their per-rule rows carry the phase
  // split; the totals row sums the strata; the trailer reports the
  // materialization's own end-to-end clock next to the strata sum, with
  // planner time attributed separately (never folded into enumerate).
  EXPECT_EQ(FormatAnalyze({s0, s1}, 1.6, 1.45),
            "stratum  rule   head  passes  subs  plan_ms  enum_ms  write_ms"
            "  wall_ms  cpu_ms\n"
            "-------  ----  -----  ------  ----  -------  -------  --------"
            "  -------  ------\n"
            "      0     -      -       1    36        -        -         -"
            "     0.50    0.45\n"
            "      0     0  dbI.p       1    36     0.00     0.25      0.20"
            "        -       -\n"
            "      1     -      -       3     9        -        -         -"
            "     1.00    1.00\n"
            "      1     1      *       3     9     0.05     0.75      0.25"
            "        -       -\n"
            "  total     -      -                                          "
            "     1.50    1.45\n"
            "plan: rule=1 order=[1 0] spec=[0:S*4] est=16 actual=9 "
            "fallback=no\n"
            "analyze: wall=1.60ms cpu=1.45ms strata_wall=1.50ms "
            "plan=0.05ms\n");

  // The masked form every golden transcript pins: timing cells and trailer
  // values become "-", counts stay — including the plan line's est/actual,
  // which are deterministic emission counts, not timings.
  EXPECT_EQ(FormatAnalyze({s0, s1}, 1.6, 1.45, /*mask_timings=*/true),
            "stratum  rule   head  passes  subs  plan_ms  enum_ms  write_ms"
            "  wall_ms  cpu_ms\n"
            "-------  ----  -----  ------  ----  -------  -------  --------"
            "  -------  ------\n"
            "      0     -      -       1    36        -        -         -"
            "        -       -\n"
            "      0     0  dbI.p       1    36        -        -         -"
            "        -       -\n"
            "      1     -      -       3     9        -        -         -"
            "        -       -\n"
            "      1     1      *       3     9        -        -         -"
            "        -       -\n"
            "  total     -      -                                          "
            "        -       -\n"
            "plan: rule=1 order=[1 0] spec=[0:S*4] est=16 actual=9 "
            "fallback=no\n"
            "analyze: wall=- cpu=- strata_wall=- plan=-\n");
}

TEST(ExplainFormatTest, TraceRenderings) {
  Trace::Enable();
  {
    TraceSpan outer("materialize", "strategy=semi-naive");
    { TraceSpan inner("stratum", "level=0 rules=3"); }
    { TraceSpan plain("write"); }
  }
  Trace::Disable();

  // Masked tree: open order, two-space indent per depth, "-" timings.
  EXPECT_EQ(Trace::Render(/*mask_timings=*/true),
            "materialize strategy=semi-naive wall=- cpu=-\n"
            "  stratum level=0 rules=3 wall=- cpu=-\n"
            "  write wall=- cpu=-\n");

  // Unmasked timings render as fixed-point milliseconds. (Match the shape,
  // not the magnitude: under a loaded machine even three trivial spans can
  // cross 1ms of wall.)
  std::string live = Trace::Render();
  size_t wall_at = live.find("materialize strategy=semi-naive wall=");
  ASSERT_NE(wall_at, std::string::npos) << live;
  size_t digits = wall_at + sizeof("materialize strategy=semi-naive wall=") - 1;
  EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(live[digits]))) << live;
  EXPECT_NE(live.find(".", digits), std::string::npos) << live;
  EXPECT_NE(live.find("ms cpu=", digits), std::string::npos) << live;

  // Masked JSON: flat span list, ids parent-before-child, null timings.
  EXPECT_EQ(Trace::RenderJson(/*mask_timings=*/true),
            "{\"spans\":["
            "{\"id\":1,\"parent\":0,\"name\":\"materialize\","
            "\"detail\":\"strategy=semi-naive\","
            "\"wall_ms\":null,\"cpu_ms\":null},"
            "{\"id\":2,\"parent\":1,\"name\":\"stratum\","
            "\"detail\":\"level=0 rules=3\","
            "\"wall_ms\":null,\"cpu_ms\":null},"
            "{\"id\":3,\"parent\":1,\"name\":\"write\",\"detail\":\"\","
            "\"wall_ms\":null,\"cpu_ms\":null}"
            "]}");
  Trace::Clear();
}

TEST(ExplainFormatTest, SweepReportLine) {
  // The differential-sweep summary (src/workload/sweep.h): one line, every
  // counter named. bench_workload and the sweep tests print it, and
  // docs/WORKLOADS.md quotes it.
  SweepReport report;
  EXPECT_EQ(FormatSweepReport(report),
            "sweep: universes=0 traces=0 steps=0 requests=0 modes=0 "
            "comparisons=0 fallbacks=0 mismatches=0\n");
  report.universes = 50;
  report.traces = 10;
  report.steps = 80;
  report.requests = 212;
  report.modes = 24;
  report.comparisons = 12345;
  report.fallbacks = 1;
  report.mismatches.push_back("semi/inc/direct/plain diverges");
  EXPECT_EQ(FormatSweepReport(report),
            "sweep: universes=50 traces=10 steps=80 requests=212 modes=24 "
            "comparisons=12345 fallbacks=1 mismatches=1\n");
}

TEST(ExplainFormatTest, ServerSweepReportLine) {
  // The server trace-sweep summary (src/server/trace_sweep.h): one line,
  // every counter named. The server differential tests print it and
  // docs/SERVER.md quotes it.
  ServerSweepReport report;
  EXPECT_EQ(FormatServerSweepReport(report),
            "server-sweep: universes=0 steps=0 commits=0 epochs=0 "
            "serial_checks=0 reader_checks=0 mismatches=0\n");
  report.universes = 5;
  report.steps = 20;
  report.commits = 63;
  report.epochs = 73;
  report.serial_checks = 63;
  report.reader_checks = 75;
  report.mismatches.push_back("epoch 9 diverges from serial execution");
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(FormatServerSweepReport(report),
            "server-sweep: universes=5 steps=20 commits=63 epochs=73 "
            "serial_checks=63 reader_checks=75 mismatches=1\n");
}

TEST(ExplainFormatTest, ModePointLabels) {
  // Mode labels appear in mismatch reports and shrunk repro scripts; the
  // lattice order (reference first) is part of the sweep's contract.
  std::vector<ModePoint> lattice = FullModeLattice();
  ASSERT_EQ(lattice.size(), 40u);
  EXPECT_EQ(lattice[0].Label(), "naive/remat/direct/plain");
  EXPECT_EQ(lattice[1].Label(), "naive/remat/direct/gov");
  EXPECT_EQ(lattice[2].Label(), "naive/remat/fed+faults/plain");
  // The naive oracle points stay written-order; every semi-naive point is
  // immediately followed by its cost-planned twin.
  EXPECT_EQ(lattice[8].Label(), "semi/remat/direct/plain");
  EXPECT_EQ(lattice[9].Label(), "semi/remat/direct/plain/plan");
  EXPECT_EQ(lattice[38].Label(), "semi-par/inc/fed+faults/gov");
  EXPECT_EQ(lattice[39].Label(), "semi-par/inc/fed+faults/gov/plan");
  std::set<std::string> labels;
  for (const ModePoint& mode : lattice) labels.insert(mode.Label());
  EXPECT_EQ(labels.size(), 40u) << "mode labels collide";

  ModePoint fed_no_faults;
  fed_no_faults.federated = true;
  EXPECT_EQ(fed_no_faults.Label(), "semi/inc/fed/plain");
}

TEST(ExplainFormatTest, MetricsListing) {
  // A private registry keeps this lock independent of what the process has
  // already counted globally.
  MetricsRegistry registry;
  registry.counter("engine.fixpoint_passes")->Increment(12);
  registry.gauge("session.universe_cells")->Set(345);
  Histogram* h = registry.histogram("federation.site_fetch_ms");
  h->Observe(2.0);
  h->Observe(1.0);
  h->Observe(1.5);
  registry.counter("aaa.zero");  // zero-count instruments are listed too

  // Percentiles are nearest-rank bucket upper bounds: the median 1.5 lands
  // in the bucket with upper bound 1.579…, and p95/p99 (the max, 2.0, in the
  // 2.048-bucket) clamp to the observed max.
  EXPECT_EQ(registry.Render(),
            "counter aaa.zero = 0\n"
            "counter engine.fixpoint_passes = 12\n"
            "histogram federation.site_fetch_ms = count=3 sum=4.50 min=1.00 "
            "max=2.00 p50=1.58 p95=2.00 p99=2.00\n"
            "gauge session.universe_cells = 345\n");
  EXPECT_EQ(registry.Render(/*mask_values=*/true),
            "counter aaa.zero = 0\n"
            "counter engine.fixpoint_passes = 12\n"
            "histogram federation.site_fetch_ms = count=3 sum=- min=- "
            "max=- p50=- p95=- p99=-\n"
            "gauge session.universe_cells = 345\n");
  EXPECT_EQ(registry.ToJson(),
            "{\"counters\":{\"aaa.zero\":0,\"engine.fixpoint_passes\":12},"
            "\"gauges\":{\"session.universe_cells\":345},"
            "\"histograms\":{\"federation.site_fetch_ms\":"
            "{\"count\":3,\"sum\":4.5,\"min\":1.0,\"max\":2.0,"
            "\"p50\":1.5792238852177314,\"p95\":2.0,\"p99\":2.0}}}");
}

TEST(ExplainFormatTest, HistogramPercentileEdgeCases) {
  Histogram h;
  EXPECT_EQ(h.Percentile(0.5), 0.0);  // empty: no observations to rank
  h.Observe(5.0);
  // Single observation: every percentile is that observation (bucket upper
  // bound clamped to max=5.0).
  EXPECT_EQ(h.Percentile(0.0), 5.0);
  EXPECT_EQ(h.Percentile(0.5), 5.0);
  EXPECT_EQ(h.Percentile(1.0), 5.0);

  Histogram tiny;
  // At or below kMinBound (and negatives/NaN) land in bucket 0, whose upper
  // bound clamps into the observed range.
  tiny.Observe(-3.0);
  tiny.Observe(0.0005);
  // Both land in bucket 0 (upper bound kMinBound=0.001), clamped to max.
  EXPECT_EQ(tiny.Percentile(0.5), 0.0005);
  EXPECT_EQ(tiny.Percentile(1.0), 0.0005);

  Histogram wide;
  for (int i = 1; i <= 100; ++i) wide.Observe(static_cast<double>(i));
  // p50 ≈ 50 within one bucket width (ratio 2^(1/8) ≈ 1.09).
  EXPECT_GE(wide.Percentile(0.50), 50.0);
  EXPECT_LE(wide.Percentile(0.50), 50.0 * 1.0905077326652577);
  EXPECT_GE(wide.Percentile(0.99), 99.0);
  EXPECT_LE(wide.Percentile(0.99), 100.0);
  // Monotone in q.
  EXPECT_LE(wide.Percentile(0.50), wide.Percentile(0.95));
  EXPECT_LE(wide.Percentile(0.95), wide.Percentile(0.99));
}

}  // namespace
}  // namespace idl
