// Golden-text locks on the rendered Explain() surfaces: the governor usage
// line (common/governor.h), the incremental-maintenance line
// (eval/explain.h) and the federation per-site table (eval/explain.h).
// These strings are part of the observable interface — idl_shell prints
// them and docs/GOVERNOR.md / docs/INCREMENTAL.md quote them — so a format
// change must be a deliberate edit here, not an accident.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/governor.h"
#include "eval/explain.h"

namespace idl {
namespace {

TEST(ExplainFormatTest, GovernorLineUnbounded) {
  // Fresh governor, nothing consumed, no limits: every bound renders "-".
  GovernorUsage usage;
  GovernorLimits limits;
  EXPECT_EQ(FormatGovernorUsage(usage, limits),
            "governor: passes=0/- derivations=0/- cells=0/- checkpoints=0 "
            "remaining_ms=- status=completed\n");
}

TEST(ExplainFormatTest, GovernorLineBoundedAndAborted) {
  GovernorUsage usage;
  usage.checkpoints = 42;
  usage.passes = 3;
  usage.derivations = 120;
  usage.peak_cells = 900;
  usage.remaining_ms = 7;
  usage.abort_reason =
      "resource exhausted: fixpoint did not converge within max_passes=3";
  GovernorLimits limits;
  limits.deadline_ms = 50;  // reported via remaining_ms, not as a bound
  limits.max_passes = 3;
  limits.max_derivations = 1000;
  limits.max_universe_cells = 2048;
  EXPECT_EQ(
      FormatGovernorUsage(usage, limits),
      "governor: passes=3/3 derivations=120/1000 cells=900/2048 "
      "checkpoints=42 remaining_ms=7 status=resource exhausted: fixpoint "
      "did not converge within max_passes=3\n");
}

TEST(ExplainFormatTest, GovernorLineMatchesLiveGovernor) {
  // The same renderer fed from a real governor: counters land in the
  // expected fields.
  GovernorLimits limits;
  limits.max_derivations = 10;
  ResourceGovernor g(limits);
  ASSERT_TRUE(g.ChargePass().ok());
  ASSERT_TRUE(g.ChargeDerivations(4).ok());
  EXPECT_EQ(FormatGovernorUsage(g.Usage(), g.limits()),
            "governor: passes=1/- derivations=4/10 cells=0/- checkpoints=2 "
            "remaining_ms=- status=completed\n");
}

TEST(ExplainFormatTest, MaintenanceLine) {
  MaintenanceStats stats;
  EXPECT_EQ(FormatMaintenanceStats(stats),
            "maintenance: deltas=0 rederived=0 strata_skipped=0 "
            "strata_rederived=0 fallbacks=0\n");
  stats.deltas_applied = 12;
  stats.rederived = 345;
  stats.strata_skipped = 6;
  stats.strata_rederived = 7;
  stats.fallbacks = 1;
  EXPECT_EQ(FormatMaintenanceStats(stats),
            "maintenance: deltas=12 rederived=345 strata_skipped=6 "
            "strata_rederived=7 fallbacks=1\n");
}

TEST(ExplainFormatTest, SiteStatsTable) {
  SiteStats alpha;
  alpha.site = "alpha";
  alpha.requests = 12;
  alpha.cache_hits = 2;
  alpha.cache_misses = 1;
  alpha.retries = 4;
  alpha.timeouts = 1;
  alpha.failures = 5;
  alpha.shipped_subgoals = 6;
  alpha.pulled_exports = 7;

  SiteStats b;
  b.site = "b";
  b.requests = 3;
  b.pulled_exports = 1;
  b.degraded = true;

  // Right-aligned columns, two-space gutters, a dash rule under the header,
  // and a totals row with an empty state cell.
  EXPECT_EQ(
      FormatSiteStats({alpha, b}),
      " site  reqs  hits  misses  retries  timeouts  failures  shipped  "
      "pulled     state\n"
      "-----  ----  ----  ------  -------  --------  --------  -------  "
      "------  --------\n"
      "alpha    12     2       1        4         1         5        6  "
      "     7        ok\n"
      "    b     3     0       0        0         0         0        0  "
      "     1  degraded\n"
      "total    15     2       1        4         1         5        6  "
      "     8          \n");
}

}  // namespace
}  // namespace idl
