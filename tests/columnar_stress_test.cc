// Concurrency stressors for the columnar substrate (re-run by the TSan CI
// leg via the `stress` label):
//  - many reader threads share one ColumnarRelation and race the lazy
//    ProbeEq index build while others Filter / CellValue / ToNested;
//  - concurrent readers evaluate columnar-substrate queries against one
//    shared epoch store while further epochs are published, sharing pages.
// Every thread checks its answers against a serially precomputed oracle, so
// this is a correctness test too, not just a data-race canary.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "eval/query.h"
#include "object/value.h"
#include "relational/columnar.h"
#include "syntax/parser.h"

namespace idl {
namespace {

Value Row(std::initializer_list<std::pair<std::string, Value>> fields) {
  Value t = Value::EmptyTuple();
  for (const auto& [name, value] : fields) t.SetField(name, value);
  return t;
}

Value BigRelation(int rows) {
  Value set = Value::EmptySet();
  for (int i = 0; i < rows; ++i) {
    set.Insert(Row({{"k", Value::Int(i % 17)},
                    {"s", Value::String("sym" + std::to_string(i % 7))},
                    {"x", Value::Real(double(i) / 4.0)},
                    {"row", Value::Int(i)}}));
  }
  return set;
}

TEST(ColumnarStress, ConcurrentReadersShareOnePage) {
  const int kRows = 800;
  const int kThreads = 8;
  const int kIters = 60;
  Value set = BigRelation(kRows);
  auto rel = ColumnarRelation::FromSet(set);
  ASSERT_NE(rel, nullptr);
  const int k = rel->FindColumn("k");
  const int s = rel->FindColumn("s");
  const int x = rel->FindColumn("x");
  ASSERT_TRUE(k >= 0 && s >= 0 && x >= 0);

  // Serial oracle answers, computed before any thread touches the page.
  // (Filter on a fresh relation so the probe index of `rel` is still unbuilt
  // when the threads race EnsureIndex.)
  auto oracle_rel = ColumnarRelation::FromSet(set);
  std::vector<std::vector<uint32_t>> probe_oracle(17);
  for (int key = 0; key < 17; ++key) {
    std::vector<uint32_t> sel;
    oracle_rel->AllRows(&sel);
    oracle_rel->Filter(size_t(k), RelOp::kEq, Value::Int(key), &sel);
    probe_oracle[key] = std::move(sel);
  }
  std::vector<uint32_t> x_oracle;
  oracle_rel->AllRows(&x_oracle);
  oracle_rel->Filter(size_t(x), RelOp::kGt, Value::Real(100.0), &x_oracle);
  const Value nested_oracle = oracle_rel->ToNested();

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int iter = 0; iter < kIters; ++iter) {
        switch ((t + iter) % 4) {
          case 0: {  // races the lazy index build
            int key = (t * 31 + iter) % 17;
            std::vector<uint32_t> rows;
            rel->ProbeEq(size_t(k), Value::Int(key), &rows);
            if (rows != probe_oracle[key]) ++failures;
            break;
          }
          case 1: {  // string probe (second index column, same race)
            std::vector<uint32_t> rows;
            rel->ProbeEq(size_t(s), Value::String("sym3"), &rows);
            std::vector<uint32_t> scan;
            rel->AllRows(&scan);
            rel->Filter(size_t(s), RelOp::kEq, Value::String("sym3"), &scan);
            if (rows != scan) ++failures;
            break;
          }
          case 2: {  // pure scans next to index builds
            std::vector<uint32_t> sel;
            rel->AllRows(&sel);
            rel->Filter(size_t(x), RelOp::kGt, Value::Real(100.0), &sel);
            if (sel != x_oracle) ++failures;
            break;
          }
          case 3: {  // materialization next to everything else
            if (!(rel->CellValue(size_t(s), uint32_t(t * 13 % kRows))
                      .is_string())) {
              ++failures;
            }
            if (iter % 20 == 0 && !(rel->ToNested() == nested_oracle)) {
              ++failures;
            }
            break;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ColumnarStress, ConcurrentQueriesOverSharedStorePages) {
  // One universe, one store; readers run columnar-substrate queries through
  // the store concurrently while new stores build against it (the epoch
  // publication pattern: pages shared, never copied).
  Value universe = Value::EmptyTuple();
  Value db = Value::EmptyTuple();
  db.SetField("p", BigRelation(400));
  universe.SetField("d", std::move(db));

  auto store = ColumnarStore::Build(universe, nullptr);
  ASSERT_NE(store, nullptr);
  ASSERT_EQ(store->pages(), 1u);

  auto query = ParseQuery("?.d.p(.k=3, .s=S, .row=R)");
  ASSERT_TRUE(query.ok());
  EvalOptions options;
  options.columnar_store = store.get();
  auto oracle = EvaluateQuery(universe, *query, options, nullptr, nullptr);
  ASSERT_TRUE(oracle.ok());
  ASSERT_GT(oracle->rows.size(), 0u);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      for (int iter = 0; iter < 25; ++iter) {
        auto answer = EvaluateQuery(universe, *query, options, nullptr,
                                    nullptr);
        if (!answer.ok() || answer->rows != oracle->rows) ++failures;
      }
    });
  }
  // Publisher thread: keeps building next-epoch stores that share the
  // unchanged page with `store` (refcount churn under the readers).
  threads.emplace_back([&] {
    for (int iter = 0; iter < 25; ++iter) {
      auto next = ColumnarStore::Build(universe, store.get());
      if (next == nullptr || next->shared_with_previous() != 1u) ++failures;
    }
  });
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace idl
